//! Offline drop-in subset of the `criterion` benchmark harness.
//!
//! Implements the API the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `Throughput`, the
//! `criterion_group!`/`criterion_main!` macros — with a simple
//! warm-up + timed-samples loop and a one-line median report per
//! benchmark. No statistics beyond median/min/max, no HTML reports.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Work-per-iteration declaration, used to report throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Harness configuration and entry point.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Samples to record per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Target total measurement time.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Warm-up period before sampling.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Parses CLI arguments (accepted and ignored in this subset).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.to_string(),
            throughput: None,
        }
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(self, id, None, &mut f);
        self
    }

    /// Prints the final summary (no-op in this subset).
    pub fn final_summary(&mut self) {}
}

/// A named group sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    c: &'a Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares per-iteration work for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_bench(self.c, &full, self.throughput, &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Passed to each benchmark closure; runs and times the workload.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_budget: usize,
}

impl Bencher {
    /// Times `f`, recording one sample per batch of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..self.sample_budget {
            let t0 = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(f());
            }
            let dt = t0.elapsed() / self.iters_per_sample.max(1) as u32;
            self.samples.push(dt);
        }
    }
}

fn run_bench(
    c: &Criterion,
    id: &str,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    // Warm-up: run once (ignoring time) so lazy setup does not skew the
    // first sample, then calibrate iterations per sample to roughly fill
    // the measurement budget.
    let t0 = Instant::now();
    let mut calib = Bencher {
        samples: Vec::new(),
        iters_per_sample: 1,
        sample_budget: 1,
    };
    f(&mut calib);
    let once = calib
        .samples
        .first()
        .copied()
        .unwrap_or(Duration::from_nanos(1))
        .max(Duration::from_nanos(1));
    let _ = c.warm_up_time;
    let budget = c.measurement_time.max(t0.elapsed());
    let per_sample = budget / c.sample_size.max(1) as u32;
    let iters = (per_sample.as_nanos() / once.as_nanos().max(1))
        .clamp(1, 1_000_000) as u64;

    let mut b = Bencher {
        samples: Vec::new(),
        iters_per_sample: iters,
        sample_budget: c.sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{id:<40} (no samples)");
        return;
    }
    b.samples.sort_unstable();
    let median = b.samples[b.samples.len() / 2];
    let min = b.samples[0];
    let max = b.samples[b.samples.len() - 1];
    let rate = match throughput {
        Some(Throughput::Bytes(n)) if median.as_nanos() > 0 => {
            let mbps = n as f64 / median.as_secs_f64() / (1024.0 * 1024.0);
            format!("  {mbps:10.1} MiB/s")
        }
        Some(Throughput::Elements(n)) if median.as_nanos() > 0 => {
            let eps = n as f64 / median.as_secs_f64();
            format!("  {eps:10.0} elem/s")
        }
        _ => String::new(),
    };
    println!("{id:<40} median {median:>10.2?}  [{min:.2?} .. {max:.2?}]{rate}");
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c: $crate::Criterion = $config;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(20));
        let mut ran = 0u64;
        c.bench_function("smoke", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
        let mut g = c.benchmark_group("group");
        g.throughput(Throughput::Bytes(1024));
        g.bench_function("inner", |b| b.iter(|| black_box(2 + 2)));
        g.finish();
    }
}
