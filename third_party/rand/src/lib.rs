//! Offline drop-in subset of the `rand` crate (0.9-style API).
//!
//! Provides exactly what the workspace uses: a seedable [`rngs::StdRng`]
//! (xoshiro256++ core), [`Rng::random_range`] over integer ranges,
//! [`seq::SliceRandom::shuffle`], and a process-entropy [`random`]. The
//! generator is deterministic per seed, which is what `shuf --seed` and
//! the benchmark corpora rely on; it is *not* the same stream as the real
//! `rand` crate's `StdRng`.

use std::ops::Range;

/// Types constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Derives a generator state from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Integer types usable with [`Rng::random_range`].
pub trait RangeInt: Copy {
    /// Widens to u64 for sampling arithmetic.
    fn to_u64(self) -> u64;
    /// Narrows from u64 after sampling.
    fn from_u64(v: u64) -> Self;
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl RangeInt for $t {
            fn to_u64(self) -> u64 {
                self as u64
            }
            fn from_u64(v: u64) -> Self {
                v as $t
            }
        }
    )*};
}

range_int!(u8, u16, u32, u64, usize, i32, i64);

/// The subset of the `Rng` trait the workspace uses.
pub trait Rng {
    /// The next 64 raw bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample from `range` (half-open, must be non-empty).
    fn random_range<T: RangeInt>(&mut self, range: Range<T>) -> T {
        let lo = range.start.to_u64();
        let hi = range.end.to_u64();
        assert!(lo < hi, "random_range called with an empty range");
        let span = hi - lo;
        // Multiply-shift rejection-free mapping; bias is negligible for
        // the corpus-generation spans used here (< 2^32).
        let sample = ((self.next_u64() as u128 * span as u128) >> 64) as u64;
        T::from_u64(lo + sample)
    }
}

pub mod rngs {
    //! Named generator types.

    use super::{Rng, SeedableRng};

    /// A deterministic xoshiro256++ generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related helpers.

    use super::Rng;

    /// Slice shuffling (Fisher–Yates).
    pub trait SliceRandom {
        /// Shuffles the slice in place using `rng`.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..(i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

/// Values producible by [`random`].
pub trait Random {
    /// A process-entropy value.
    fn random() -> Self;
}

impl Random for u64 {
    fn random() -> u64 {
        use std::time::{SystemTime, UNIX_EPOCH};
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        // Mix in the address of a stack local for per-call variation.
        let local = 0u8;
        let addr = &local as *const u8 as u64;
        let mut rng = rngs::StdRng::seed_from_u64(nanos ^ addr.rotate_left(32));
        Rng::next_u64(&mut rng)
    }
}

/// A non-deterministic value (used by `shuf --seed random`).
pub fn random<T: Random>() -> T {
    T::random()
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: usize = rng.random_range(3..17);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
