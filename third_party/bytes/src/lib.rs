//! Offline drop-in subset of the `bytes` crate.
//!
//! The container this repo builds in has no network access to crates.io,
//! so the workspace vendors the minimal API surface it actually uses:
//! [`Bytes`] (a cheaply cloneable, sliceable, immutable byte buffer) and
//! [`BytesMut`] (a growable buffer that freezes into `Bytes`). Semantics
//! match the real crate for this subset; performance characteristics are
//! close enough for an in-process shell runtime (clone and `slice` are
//! O(1) via a shared `Arc`).

use std::fmt;
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable slice of bytes.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wraps a static slice (copied once into shared storage).
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes::copy_from_slice(data)
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        let arc: Arc<[u8]> = Arc::from(data);
        Bytes {
            start: 0,
            end: arc.len(),
            data: arc,
        }
    }

    /// Number of bytes in the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a sub-view sharing the same storage (O(1)).
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(lo <= hi && hi <= len, "slice out of bounds: {lo}..{hi} of {len}");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// The view as a plain slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Copies the view into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let arc: Arc<[u8]> = Arc::from(v.into_boxed_slice());
        Bytes {
            start: 0,
            end: arc.len(),
            data: arc,
        }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::copy_from_slice(s)
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;

    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// A growable byte buffer that can be frozen into [`Bytes`].
#[derive(Default, Debug, Clone, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Buffered length.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Removes and returns the first `at` bytes.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        let rest = self.buf.split_off(at);
        BytesMut {
            buf: std::mem::replace(&mut self.buf, rest),
        }
    }

    /// Removes and returns the whole buffer contents.
    pub fn split(&mut self) -> BytesMut {
        BytesMut {
            buf: std::mem::take(&mut self.buf),
        }
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_slice_shares_storage() {
        let b = Bytes::from(b"hello world".to_vec());
        let s = b.slice(..5);
        assert_eq!(&s[..], b"hello");
        let t = s.slice(1..3);
        assert_eq!(&t[..], b"el");
        assert_eq!(b.len(), 11);
    }

    #[test]
    fn bytes_mut_split_and_freeze() {
        let mut m = BytesMut::new();
        m.extend_from_slice(b"one\ntwo");
        let line = m.split_to(4).freeze();
        assert_eq!(&line[..], b"one\n");
        assert_eq!(&m[..], b"two");
        let rest = m.split().freeze();
        assert_eq!(&rest[..], b"two");
        assert!(m.is_empty());
    }

    #[test]
    fn equality_against_arrays() {
        let b = Bytes::from_static(b"x");
        assert_eq!(b, *b"x");
        assert!(b == Bytes::copy_from_slice(b"x"));
    }
}
