//! Offline drop-in subset of `parking_lot`.
//!
//! Wraps `std::sync` primitives with the `parking_lot` API the workspace
//! uses: non-poisoning `lock()`/`read()`/`write()` that return guards
//! directly. Poisoned locks are recovered rather than propagated — the
//! executor handles panicking threads itself via `catch_unwind`, so a
//! poisoned std lock only ever holds data a failed node already gave up
//! on.

use std::sync::{self, PoisonError};

/// A non-poisoning mutual-exclusion lock.
#[derive(Default, Debug)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

/// A non-poisoning reader-writer lock.
#[derive(Default, Debug)]
pub struct RwLock<T> {
    inner: sync::RwLock<T>,
}

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Acquires a shared read guard, recovering from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard, recovering from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }
}
