//! Jash — a JIT-optimizing POSIX shell runtime.
//!
//! Umbrella crate re-exporting the workspace members. See the README for
//! the architecture overview and `DESIGN.md` for the paper mapping.

pub use jash_ast as ast;
pub use jash_core as core;
pub use jash_coreutils as coreutils;
pub use jash_cost as cost;
pub use jash_dataflow as dataflow;
pub use jash_exec as exec;
pub use jash_expand as expand;
pub use jash_incremental as incremental;
pub use jash_interp as interp;
pub use jash_io as io;
pub use jash_lint as lint;
pub use jash_parser as parser;
pub use jash_serve as serve;
pub use jash_spec as spec;
pub use jash_trace as trace;
