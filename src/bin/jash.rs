//! The `jash` command-line shell runner.
//!
//! ```text
//! jash [--engine bash|pash|jash] [--explain] [--lint] [--root DIR]
//!      (-c SCRIPT | FILE [args...])
//! ```
//!
//! Runs a POSIX shell script under the chosen engine against a real
//! directory tree (`--root`, default the current directory), printing the
//! script's stdout/stderr and exiting with its status. `--explain` dumps
//! the JIT trace afterwards; `--lint` reports findings and exits without
//! executing.

use jash::core::{Engine, Jash};
use jash::cost::MachineProfile;
use jash::expand::ShellState;
use std::io::{Read, Write};
use std::sync::Arc;

struct Options {
    engine: Engine,
    explain: bool,
    lint: bool,
    root: String,
    script: String,
    args: Vec<String>,
    script_name: String,
}

fn usage() -> ! {
    eprintln!(
        "usage: jash [--engine bash|pash|jash] [--explain] [--lint] [--root DIR] \
         (-c SCRIPT | FILE [args...])"
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut engine = Engine::JashJit;
    let mut explain = false;
    let mut lint = false;
    let mut root = ".".to_string();
    let mut script: Option<String> = None;
    let mut script_name = "jash".to_string();
    let mut rest: Vec<String> = Vec::new();

    let mut argv = std::env::args().skip(1);
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--engine" => {
                engine = match argv.next().as_deref() {
                    Some("bash") => Engine::Bash,
                    Some("pash") => Engine::PashAot,
                    Some("jash") => Engine::JashJit,
                    _ => usage(),
                };
            }
            "--explain" => explain = true,
            "--lint" => lint = true,
            "--root" => root = argv.next().unwrap_or_else(|| usage()),
            "-c" => {
                script = Some(argv.next().unwrap_or_else(|| usage()));
                rest.extend(argv.by_ref());
            }
            "-h" | "--help" => usage(),
            file => {
                script_name = file.to_string();
                let mut buf = String::new();
                match std::fs::File::open(file) {
                    Ok(mut f) => {
                        f.read_to_string(&mut buf).unwrap_or_else(|e| {
                            eprintln!("jash: {file}: {e}");
                            std::process::exit(1);
                        });
                    }
                    Err(e) => {
                        eprintln!("jash: {file}: {e}");
                        std::process::exit(1);
                    }
                }
                script = Some(buf);
                rest.extend(argv.by_ref());
            }
        }
    }
    let Some(script) = script else { usage() };
    Options {
        engine,
        explain,
        lint,
        root,
        script,
        args: rest,
        script_name,
    }
}

fn main() {
    let opts = parse_args();

    if opts.lint {
        match jash::lint::lint_script(&opts.script) {
            Ok(findings) => {
                for f in &findings {
                    println!("{}", f.display(&opts.script));
                }
                std::process::exit(if findings.is_empty() { 0 } else { 1 });
            }
            Err(e) => {
                eprintln!("jash: {}", e.display_with_source(&opts.script));
                std::process::exit(2);
            }
        }
    }

    let fs: jash::io::FsHandle = Arc::new(jash::io::RealFs::new(&opts.root));
    let mut state = ShellState::new(fs);
    state.shell_name = opts.script_name;
    state.positional = opts.args;
    let mut shell = Jash::new(opts.engine, MachineProfile::laptop());

    let result = match shell.run_script(&mut state, &opts.script) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("jash: {e}");
            std::process::exit(2);
        }
    };
    std::io::stdout().write_all(&result.stdout).ok();
    std::io::stderr().write_all(&result.stderr).ok();

    if opts.explain {
        eprintln!("--- jit trace ({} engine) ---", opts.engine);
        for event in &shell.trace {
            eprintln!("{:60} -> {:?}", event.pipeline, event.action);
        }
    }
    std::process::exit(result.status);
}
