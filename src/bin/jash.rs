//! The `jash` command-line shell runner.
//!
//! ```text
//! jash [--engine bash|pash|jash] [--explain] [--lint] [--root DIR]
//!      [--journal DIR] [--no-journal] [--no-durable] [--resume]
//!      [--trace FILE] [--calibrate FILE] [--timeout SECS] [--no-fuse]
//!      [--no-plan-cache]
//!      (-c SCRIPT | FILE [args...])
//! jash trace summarize FILE
//! jash serve --socket PATH [--root DIR] [--workers N] [--queue N]
//!            [--timeout SECS] [--drain-secs S] [--journal DIR]
//!            [--trace-dir DIR] [--no-durable] [--test-faults]
//!            [--tenant NAME=WEIGHT[:ACTIVE[:QUEUE]]]...
//!            [--tenant-active N] [--tenant-queue N]
//!            [--quarantine-failures N] [--quarantine-cooldown N]
//!            [--tenant-burst SECS] [--tenant-share SECS]
//! jash submit --socket PATH [--tenant NAME] [--timeout SECS]
//!             [--key KEY] [--retries N] [--retry-ms MS]
//!             (-c SCRIPT | FILE)
//! ```
//!
//! Runs a POSIX shell script under the chosen engine against a real
//! directory tree (`--root`, default the current directory), printing the
//! script's stdout/stderr and exiting with its status. `--explain` dumps
//! the JIT trace afterwards; `--lint` reports findings and exits without
//! executing.
//!
//! `--no-fuse` disables kernel fusion (the single-pass execution of
//! stateless stage chains); the planner then only considers width. The
//! calibration loop covers fused kernels too: a traced run records a
//! `fused` pseudo-command rate that `--calibrate` feeds back to the
//! fusion decision.
//!
//! `--no-plan-cache` disables the per-fingerprint plan cache, so every
//! pipeline a loop reaches re-plans at its expansion boundary instead of
//! reusing the decision iteration 1 made (planning cost only — behavior
//! and output never change).
//!
//! Observability: `--trace FILE` (or the `JASH_TRACE` env var) records a
//! structured run/region/node span trace plus session metrics as schema-v1
//! JSONL; `jash trace summarize FILE` renders a recorded trace as a
//! per-region table. `--calibrate FILE` feeds a previous run's trace back
//! into the planner: per-command throughput measured then replaces the
//! static cost table now.
//!
//! Crash safety: unless `--no-journal` is given, the session keeps a
//! write-ahead execution journal under `--journal` (default `/.jash`
//! inside the root). After a hard crash, `--resume` replays regions the
//! dead run completed from the durable memo instead of re-executing
//! them. SIGINT/SIGTERM shut the session down gracefully (exit 130/143,
//! run left resumable); `--timeout SECS` imposes a wall-clock deadline
//! through the same graceful-abort path (exit 124, `timeout(1)`
//! convention). `--no-durable` skips the fsync barriers for throwaway
//! runs. On every exit path — success, error, signal, deadline — an
//! open `--trace` sink is flushed before the process exits.
//!
//! `jash serve` runs the multi-tenant daemon on a unix socket: bounded
//! worker pool, per-tenant bounded queues scheduled by weighted deficit
//! round-robin, per-tenant quotas (`QUOTA` rejections) and noisy-neighbor
//! quarantine (`QUARANTINED` rejections until a probe run succeeds),
//! structured overload rejection, per-run deadlines, client-disconnect
//! cancellation, and a SIGTERM-initiated graceful drain (exit 143). With
//! journaling on (the default), admissions are ledgered durably: a
//! SIGKILLed daemon restarts into exactly-once recovery — orphaned keyed
//! runs are finalized (resuming journaled-clean regions), cached results
//! replay to duplicate submissions. See `DESIGN.md` §9, §11, and §12.
//!
//! `jash submit` is the matching client: it submits one script to a
//! running daemon under `--tenant` and mirrors the run's
//! stdout/stderr/status. `--key` attaches an idempotency key, making
//! retries and daemon restarts safe (duplicates replay or attach, never
//! re-execute); `--retries`/`--retry-ms` bound the jittered exponential
//! backoff. Exit taxonomy: retryable rejections (overload, quota,
//! quarantine, draining) and exhausted retries exit 75 (`EX_TEMPFAIL`);
//! permanent rejections (malformed, faults-disabled) exit 65
//! (`EX_DATAERR`).

use jash::core::{Engine, Jash};
use jash::cost::MachineProfile;
use jash::expand::ShellState;
use std::io::{Read, Write};
use std::sync::Arc;

/// POSIX signal trapping without a libc crate: every Rust binary on this
/// target already links the C runtime, so declaring the one symbol we
/// need is enough. The handler only stores to an atomic (async-signal
/// safe); a watcher thread translates that into a cancellation.
mod sig {
    use std::sync::atomic::{AtomicI32, Ordering};

    static PENDING: AtomicI32 = AtomicI32::new(0);

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn on_signal(signum: i32) {
        PENDING.store(signum, Ordering::SeqCst);
    }

    /// Installs handlers for SIGINT (2) and SIGTERM (15).
    pub fn install() {
        unsafe {
            signal(2, on_signal);
            signal(15, on_signal);
        }
    }

    /// The signal number received, if any.
    pub fn pending() -> Option<i32> {
        match PENDING.load(Ordering::SeqCst) {
            0 => None,
            s => Some(s),
        }
    }
}

struct Options {
    engine: Engine,
    explain: bool,
    lint: bool,
    root: String,
    journal_dir: String,
    journal: bool,
    durable: bool,
    resume: bool,
    trace: Option<String>,
    calibrate: Option<String>,
    timeout: Option<u64>,
    fuse: bool,
    plan_cache: bool,
    script: String,
    args: Vec<String>,
    script_name: String,
}

fn usage() -> ! {
    eprintln!(
        "usage: jash [--engine bash|pash|jash] [--explain] [--lint] [--root DIR] \
         [--journal DIR] [--no-journal] [--no-durable] [--resume] \
         [--trace FILE] [--calibrate FILE] [--timeout SECS] [--no-fuse] \
         [--no-plan-cache] (-c SCRIPT | FILE [args...])\n       jash trace summarize FILE\n       \
         jash serve --socket PATH [--root DIR] [--workers N] [--queue N] \
         [--timeout SECS] [--drain-secs S] [--journal DIR] [--trace-dir DIR] \
         [--no-durable] [--test-faults] [--tenant NAME=WEIGHT[:ACTIVE[:QUEUE]]]... \
         [--tenant-active N] [--tenant-queue N] [--quarantine-failures N] \
         [--quarantine-cooldown N] [--tenant-burst SECS] [--tenant-share SECS]\n       \
         jash submit --socket PATH [--tenant NAME] [--timeout SECS] [--key KEY] \
         [--retries N] [--retry-ms MS] (-c SCRIPT | FILE)"
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut engine = Engine::JashJit;
    let mut explain = false;
    let mut lint = false;
    let mut root = ".".to_string();
    let mut journal_dir = "/.jash".to_string();
    let mut journal = true;
    let mut durable = true;
    let mut resume = false;
    let mut trace = std::env::var("JASH_TRACE").ok().filter(|s| !s.is_empty());
    let mut calibrate: Option<String> = None;
    let mut timeout: Option<u64> = None;
    let mut fuse = true;
    let mut plan_cache = true;
    let mut script: Option<String> = None;
    let mut script_name = "jash".to_string();
    let mut rest: Vec<String> = Vec::new();

    let mut argv = std::env::args().skip(1);
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--engine" => {
                engine = match argv.next().as_deref() {
                    Some("bash") => Engine::Bash,
                    Some("pash") => Engine::PashAot,
                    Some("jash") => Engine::JashJit,
                    _ => usage(),
                };
            }
            "--explain" => explain = true,
            "--lint" => lint = true,
            "--root" => root = argv.next().unwrap_or_else(|| usage()),
            "--journal" => journal_dir = argv.next().unwrap_or_else(|| usage()),
            "--no-journal" => journal = false,
            "--no-durable" => durable = false,
            "--resume" => resume = true,
            "--trace" => trace = Some(argv.next().unwrap_or_else(|| usage())),
            "--calibrate" => calibrate = Some(argv.next().unwrap_or_else(|| usage())),
            "--timeout" => {
                timeout = Some(
                    argv.next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--no-fuse" => fuse = false,
            "--no-plan-cache" => plan_cache = false,
            "-c" => {
                script = Some(argv.next().unwrap_or_else(|| usage()));
                rest.extend(argv.by_ref());
            }
            "-h" | "--help" => usage(),
            file => {
                script_name = file.to_string();
                let mut buf = String::new();
                match std::fs::File::open(file) {
                    Ok(mut f) => {
                        f.read_to_string(&mut buf).unwrap_or_else(|e| {
                            eprintln!("jash: {file}: {e}");
                            std::process::exit(1);
                        });
                    }
                    Err(e) => {
                        eprintln!("jash: {file}: {e}");
                        std::process::exit(1);
                    }
                }
                script = Some(buf);
                rest.extend(argv.by_ref());
            }
        }
    }
    let Some(script) = script else { usage() };
    Options {
        engine,
        explain,
        lint,
        root,
        journal_dir,
        journal,
        durable,
        resume,
        trace,
        calibrate,
        timeout,
        fuse,
        plan_cache,
        script,
        args: rest,
        script_name,
    }
}

/// The `jash trace summarize FILE` subcommand: parse a recorded JSONL
/// trace (host path) and render the per-region table.
fn trace_subcommand(args: &[String]) -> ! {
    let file = match args {
        [sub, file] if sub == "summarize" => file,
        _ => usage(),
    };
    let text = std::fs::read_to_string(file).unwrap_or_else(|e| {
        eprintln!("jash: {file}: {e}");
        std::process::exit(1);
    });
    match jash::trace::parse_jsonl(&text) {
        Ok(records) => {
            print!("{}", jash::trace::summarize(&records));
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("jash: {file}: {e}");
            std::process::exit(1);
        }
    }
}

/// Loads a prior run's trace as planner calibration, rebased onto the
/// planner's unscaled time base via the machine's time scale.
fn load_calibration(file: &str, machine: &MachineProfile) -> Option<jash::cost::Calibration> {
    let text = match std::fs::read_to_string(file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("jash: --calibrate {file}: {e}");
            return None;
        }
    };
    match jash::trace::parse_jsonl(&text) {
        Ok(records) => {
            let cal = jash::cost::Calibration::from_records(&records)
                .with_time_scale(machine.disk.time_scale);
            if cal.is_empty() {
                eprintln!("jash: --calibrate {file}: no node spans with throughput data");
                None
            } else {
                Some(cal)
            }
        }
        Err(e) => {
            eprintln!("jash: --calibrate {file}: {e}");
            None
        }
    }
}

/// Test hook: `JASH_TEST_STALL_WRITE=path:offset:millis` wedges the
/// first write to `path` that reaches `offset`, giving crash tests a
/// deterministic window to SIGKILL the process mid-region.
fn test_stall_plan() -> Option<(jash::io::FaultPlan, String)> {
    let spec = std::env::var("JASH_TEST_STALL_WRITE").ok()?;
    let mut it = spec.rsplitn(3, ':');
    let ms: u64 = it.next()?.parse().ok()?;
    let offset: u64 = it.next()?.parse().ok()?;
    let path = it.next()?.to_string();
    let plan = jash::io::FaultPlan::new().stall_writes_at(
        &path,
        offset,
        std::time::Duration::from_millis(ms),
    );
    Some((plan, path))
}

/// The `jash serve` subcommand: run the multi-tenant daemon until a
/// SIGINT/SIGTERM, then drain gracefully and exit 128+signum.
fn serve_subcommand(args: &[String]) -> ! {
    let mut socket: Option<String> = None;
    let mut root = ".".to_string();
    let mut workers = 4usize;
    let mut queue = 8usize;
    let mut timeout: Option<u64> = None;
    let mut drain_secs = 5u64;
    let mut journal_dir = "/.jash-serve".to_string();
    let mut trace_dir: Option<String> = None;
    let mut durable = true;
    let mut test_faults = false;
    let mut tenants: Vec<(String, jash::serve::TenantPolicy)> = Vec::new();
    let mut default_active = 0usize;
    let mut default_queue = 0usize;
    let mut quarantine_failures = 5u32;
    let mut quarantine_cooldown = 16u64;
    let mut tenant_burst = 2.0f64;
    let mut tenant_share = 0.5f64;

    fn parse_num(arg: Option<&String>) -> u64 {
        arg.and_then(|s| s.parse().ok()).unwrap_or_else(|| usage())
    }
    fn parse_float(arg: Option<&String>) -> f64 {
        arg.and_then(|s| s.parse().ok()).unwrap_or_else(|| usage())
    }
    /// `NAME=WEIGHT[:MAX_ACTIVE[:QUEUE_CAP]]`, e.g. `batch=0.5:2:4`.
    fn parse_tenant(arg: Option<&String>) -> (String, jash::serve::TenantPolicy) {
        let Some(spec) = arg else { usage() };
        let Some((name, rest)) = spec.split_once('=') else { usage() };
        let mut parts = rest.split(':');
        let mut policy = jash::serve::TenantPolicy::default();
        match parts.next().map(str::parse) {
            Some(Ok(w)) => policy.weight = w,
            _ => usage(),
        }
        if let Some(a) = parts.next() {
            policy.max_active = a.parse().unwrap_or_else(|_| usage());
        }
        if let Some(q) = parts.next() {
            policy.queue_cap = q.parse().unwrap_or_else(|_| usage());
        }
        if parts.next().is_some() || name.is_empty() {
            usage();
        }
        (name.to_string(), policy)
    }
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--socket" => socket = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--root" => root = it.next().cloned().unwrap_or_else(|| usage()),
            "--workers" => workers = (parse_num(it.next()) as usize).max(1),
            "--queue" => queue = parse_num(it.next()) as usize,
            "--timeout" => timeout = Some(parse_num(it.next())),
            "--drain-secs" => drain_secs = parse_num(it.next()),
            "--journal" => journal_dir = it.next().cloned().unwrap_or_else(|| usage()),
            "--trace-dir" => trace_dir = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--no-durable" => durable = false,
            "--test-faults" => test_faults = true,
            "--tenant" => tenants.push(parse_tenant(it.next())),
            "--tenant-active" => default_active = parse_num(it.next()) as usize,
            "--tenant-queue" => default_queue = parse_num(it.next()) as usize,
            "--quarantine-failures" => quarantine_failures = parse_num(it.next()) as u32,
            "--quarantine-cooldown" => quarantine_cooldown = parse_num(it.next()),
            "--tenant-burst" => tenant_burst = parse_float(it.next()),
            "--tenant-share" => tenant_share = parse_float(it.next()),
            _ => usage(),
        }
    }
    let Some(socket) = socket else { usage() };

    let fs: jash::io::FsHandle = Arc::new(jash::io::RealFs::new(&root));
    let machine = MachineProfile::laptop();
    let mut cfg = jash::serve::ServerConfig::new(&socket, fs);
    cfg.machine = machine;
    cfg.workers = workers;
    cfg.queue_cap = queue;
    cfg.default_timeout = timeout.map(std::time::Duration::from_secs);
    cfg.drain_budget = std::time::Duration::from_secs(drain_secs);
    cfg.journal_root = Some(journal_dir);
    cfg.trace_root = trace_dir;
    cfg.durable = durable;
    cfg.eager = std::env::var("JASH_TEST_EAGER").as_deref() == Ok("1");
    // The shared CPU token bucket: time_scale 0 meters without
    // throttling, so the pressure signal sees aggregate load for free.
    cfg.cpu = Some(jash::io::CpuModel::new(machine.cores, 0.0));
    cfg.tenant_default = jash::serve::TenantPolicy {
        weight: 1.0,
        max_active: default_active,
        queue_cap: default_queue,
    };
    cfg.tenants = tenants;
    cfg.quarantine_failures = quarantine_failures;
    cfg.quarantine_cooldown = quarantine_cooldown;
    cfg.tenant_burst_secs = tenant_burst;
    cfg.tenant_share_secs = tenant_share;
    if test_faults {
        cfg.fault_injector = Some(jash::serve::spec_fault_injector());
    }

    let server = match jash::serve::Server::start(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("jash: serve: bind {socket}: {e}");
            std::process::exit(1);
        }
    };
    // One parseable line when the startup janitor found a previous
    // daemon's estate — the crash drill asserts on these counters.
    let rec = server.recovery();
    if rec.acted() {
        eprintln!(
            "jash: serve recovery: finalized={} aborted={} resumed={} cached={} scopes={} swept={}{}",
            rec.finalized,
            rec.aborted,
            rec.regions_resumed,
            rec.cached,
            rec.scopes_removed,
            rec.swept,
            if rec.torn_tail { " (torn ledger tail dropped)" } else { "" },
        );
    }
    eprintln!(
        "jash: serving on {socket} ({workers} worker(s), queue {queue}{})",
        if test_faults { ", fault injection ON" } else { "" }
    );

    sig::install();
    let signum = loop {
        if let Some(s) = sig::pending() {
            break s;
        }
        std::thread::sleep(std::time::Duration::from_millis(25));
    };
    eprintln!("jash: {} received, draining", if signum == 15 { "SIGTERM" } else { "SIGINT" });
    let report = server.drain();
    eprintln!(
        "jash: drained: {} in flight, {} shed, {} straggler(s), {} run(s) completed",
        report.in_flight, report.shed, report.stragglers, report.stats.completed
    );
    for t in &report.tenants {
        eprintln!(
            "jash:   tenant {}: {} completed, {} failed, {} quarantine(s), \
             {} quota-shed, {} quarantine-shed, max wait {}ms, cpu {:.3}s, disk {}B",
            t.tenant,
            t.completed,
            t.failures,
            t.quarantines,
            t.rejected_quota,
            t.rejected_quarantined,
            t.max_queue_wait_ms,
            t.cpu_seconds,
            t.disk_bytes,
        );
    }
    std::process::exit(128 + signum);
}

/// The `jash submit` subcommand: a one-shot client for a running
/// `jash serve` daemon. Mirrors the run's stdout/stderr and exits with
/// its status. Connect failures and retryable rejections (overload,
/// quota, quarantine, draining) are retried with jittered exponential
/// backoff, then exit 75 (`EX_TEMPFAIL`); permanent rejections
/// (malformed, faults-disabled) exit 65 (`EX_DATAERR`). With `--key`,
/// a mid-run disconnect is also retryable: the resubmission attaches to
/// the live run or replays the cached result.
fn submit_subcommand(args: &[String]) -> ! {
    let mut socket: Option<String> = None;
    let mut tenant = "cli".to_string();
    let mut timeout: Option<u64> = None;
    let mut key = String::new();
    let mut retries = 4u32;
    let mut retry_ms = 100u64;
    let mut script: Option<String> = None;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--socket" => socket = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--tenant" => tenant = it.next().cloned().unwrap_or_else(|| usage()),
            "--timeout" => {
                timeout = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--key" => key = it.next().cloned().unwrap_or_else(|| usage()),
            "--retries" => {
                retries = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--retry-ms" => {
                retry_ms = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "-c" => script = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "-h" | "--help" => usage(),
            file if script.is_none() => match std::fs::read_to_string(file) {
                Ok(s) => script = Some(s),
                Err(e) => {
                    eprintln!("jash: {file}: {e}");
                    std::process::exit(1);
                }
            },
            _ => usage(),
        }
    }
    let (Some(socket), Some(script)) = (socket, script) else {
        usage()
    };

    let mut req = jash::serve::Request::new(script)
        .with_tenant(tenant)
        .with_key(key);
    if let Some(secs) = timeout {
        req.timeout_ms = secs.saturating_mul(1000);
    }
    let cfg = jash::serve::RetryConfig {
        attempts: retries.saturating_add(1),
        base: std::time::Duration::from_millis(retry_ms.max(1)),
        ..jash::serve::RetryConfig::default()
    };
    match jash::serve::submit_with_retry(std::path::Path::new(&socket), &req, &cfg) {
        Ok(reply) => {
            std::io::stdout().write_all(&reply.stdout).ok();
            std::io::stderr().write_all(&reply.stderr).ok();
            if let Some((code, active, queued, reason)) = &reply.rejected {
                // Only permanent rejections reach here (retryable ones
                // were retried and, exhausted, surface as Err) — but
                // classify defensively either way.
                let temp = jash::serve::reject::is_retryable(*code);
                eprintln!(
                    "jash: submit rejected ({}): {reason} [{active} active, {queued} queued]",
                    jash::serve::reject::name(*code),
                );
                std::process::exit(if temp { 75 } else { 65 });
            }
            if reply.attached.is_some() {
                eprintln!("jash: submit: duplicate key: attached to existing run");
            }
            if reply.retries > 0 {
                eprintln!("jash: submit: succeeded after {} retr{}",
                    reply.retries, if reply.retries == 1 { "y" } else { "ies" });
            }
            if let Some(reason) = &reply.aborted {
                eprintln!("jash: run aborted: {reason}");
            }
            std::process::exit(reply.status.unwrap_or(1));
        }
        Err(e) => {
            eprintln!("jash: submit: {socket}: {e}");
            std::process::exit(75);
        }
    }
}

fn main() {
    // Subcommand dispatch before flag parsing: `jash trace summarize F`
    // and `jash serve ...`.
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("trace") {
        trace_subcommand(&argv[1..]);
    }
    if argv.first().map(String::as_str) == Some("serve") {
        serve_subcommand(&argv[1..]);
    }
    if argv.first().map(String::as_str) == Some("submit") {
        submit_subcommand(&argv[1..]);
    }

    let opts = parse_args();

    if opts.lint {
        match jash::lint::lint_script(&opts.script) {
            Ok(findings) => {
                for f in &findings {
                    println!("{}", f.display(&opts.script));
                }
                std::process::exit(if findings.is_empty() { 0 } else { 1 });
            }
            Err(e) => {
                eprintln!("jash: {}", e.display_with_source(&opts.script));
                std::process::exit(2);
            }
        }
    }

    // Graceful shutdown: trap SIGINT/SIGTERM, translate into a
    // cooperative cancel so a running region aborts (and journals the
    // abort) instead of dying mid-write.
    let cancel = jash::io::CancelToken::new();
    sig::install();
    {
        let cancel = cancel.clone();
        std::thread::spawn(move || loop {
            if let Some(s) = sig::pending() {
                cancel.cancel(jash::core::shutdown_reason(s));
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(25));
        });
    }
    // `--timeout SECS`: a wall-clock deadline rides the same
    // graceful-abort path as a signal (region aborted + journaled, run
    // resumable), surfacing exit 124.
    let _deadline = opts
        .timeout
        .map(|secs| jash::io::DeadlineGuard::arm(&cancel, std::time::Duration::from_secs(secs)));

    let mut fs: jash::io::FsHandle = Arc::new(jash::io::RealFs::new(&opts.root));
    if let Some((plan, _path)) = test_stall_plan() {
        fs = jash::io::FaultFs::wrap_with_cancel(fs, plan, cancel.clone());
    }

    let mut state = ShellState::new(Arc::clone(&fs));
    state.shell_name = opts.script_name;
    state.positional = opts.args;
    let mut shell = Jash::new(opts.engine, MachineProfile::laptop());
    shell.cancel = Some(cancel);
    shell.durable = opts.durable;
    shell.planner.allow_fusion = opts.fuse;
    shell.plan_cache.set_enabled(opts.plan_cache);
    if opts.trace.is_some() {
        shell.tracer = Some(Arc::new(jash::trace::Tracer::new()));
    }
    if let Some(file) = &opts.calibrate {
        shell.calibration = load_calibration(file, &shell.machine);
    }
    if std::env::var("JASH_TEST_EAGER").as_deref() == Ok("1") {
        shell.planner.min_speedup = 0.0;
        shell.planner.force_width = Some(4);
    }

    if opts.journal && opts.engine == Engine::JashJit {
        match shell.attach_journal(&fs, &opts.journal_dir, opts.resume) {
            Ok(report) => {
                if report.interrupted {
                    eprintln!(
                        "jash: previous run interrupted{} ({} region(s) resumable, {} stage file(s) swept)",
                        if report.torn_tail { ", torn journal tail dropped" } else { "" },
                        report.resumable,
                        report.swept.len(),
                    );
                }
            }
            Err(e) => eprintln!("jash: journal disabled: {e}"),
        }
    }

    // The trace sink flushes on *every* exit path — success, script
    // error, signal abort, deadline — never only the happy one. A
    // SIGTERM drain that truncated the final spans would leave the
    // schema-v1 file unparseable exactly when it matters most.
    let flush_trace = |shell: &Jash| {
        if let (Some(file), Some(tracer)) = (&opts.trace, &shell.tracer) {
            if let Err(e) = std::fs::write(file, tracer.to_jsonl()) {
                eprintln!("jash: --trace {file}: {e}");
            }
        }
    };

    let result = match shell.run_script(&mut state, &opts.script) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("jash: {e}");
            flush_trace(&shell);
            std::process::exit(2);
        }
    };
    std::io::stdout().write_all(&result.stdout).ok();
    std::io::stderr().write_all(&result.stderr).ok();
    flush_trace(&shell);

    if opts.explain {
        eprintln!("--- jit trace ({} engine) ---", opts.engine);
        for event in &shell.trace {
            eprintln!("{:60} -> {:?}", event.pipeline, event.action);
        }
        eprintln!(
            "jit summary: optimized={} resumed={} recovered={} failed_over={}",
            shell.runtime.regions_optimized,
            shell.runtime.regions_resumed,
            shell.runtime.regions_recovered,
            shell.runtime.regions_failed_over,
        );
    }
    std::process::exit(result.status);
}
