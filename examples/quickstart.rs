//! Quickstart: run a shell script under the Jash JIT.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Builds an in-memory filesystem, stages a data file, and runs a small
//! script. The session trace shows what the JIT decided for each
//! pipeline.

use jash::core::{Engine, Jash};
use jash::cost::MachineProfile;
use jash::expand::ShellState;

fn main() {
    // 1. A hermetic filesystem (use `jash::io::RealFs` for real files).
    let fs = jash::io::mem_fs();
    jash::io::fs::write_file(
        fs.as_ref(),
        "/data/words.txt",
        b"Delta\nalpha\nCHARLIE\nbravo\nalpha\n",
    )
    .expect("stage input");

    // 2. Shell state + a Jash session. `Engine::JashJit` is the paper's
    //    proposal; `Engine::Bash` gives plain interpretation.
    let mut state = ShellState::new(fs);
    let mut shell = Jash::new(Engine::JashJit, MachineProfile::laptop());

    // 3. Run a script: dynamic variables, a pipeline, an if-statement.
    let script = r#"
SRC=/data/words.txt
cat $SRC | tr A-Z a-z | sort -u
if [ -f "$SRC" ]; then echo "processed $SRC"; fi
"#;
    let result = shell
        .run_script(&mut state, script)
        .expect("script executes");

    println!("--- stdout ---\n{}", String::from_utf8_lossy(&result.stdout));
    println!("exit status: {}", result.status);

    // 4. What did the JIT do?
    println!("--- jit trace ---");
    for event in &shell.trace {
        println!("{:60} -> {:?}", event.pipeline, event.action);
    }
}
