//! The paper's §3.2 motivating scenario: the classic `spell` script,
//! whose inputs arrive through `$FILES` and `$DICT` at *runtime*.
//!
//! ```sh
//! cargo run --release --example spell_check
//! ```
//!
//! Runs the script under all three engines and prints, for each, whether
//! the pipeline was optimized — demonstrating the paper's claim that an
//! ahead-of-time system cannot touch this script while the JIT can,
//! with byte-identical output.

use jash::core::{Engine, Jash, TraceEvent};
use jash::cost::MachineProfile;
use jash::expand::ShellState;
use std::sync::Arc;

const SPELL: &str = r#"
DICT=/usr/share/dict/words
FILES="/docs/essay.txt /docs/notes.txt"
cat $FILES | tr A-Z a-z | tr -cs A-Za-z '\n' | sort -u | comm -13 $DICT -
"#;

fn make_fs() -> jash::io::FsHandle {
    let fs = jash::io::mem_fs();
    let dict = "and\nbrown\ndog\nfox\nis\njumps\nlazy\nover\nquick\nthe\nwrites\n";
    let essay = "The quick brown fox jumps over the lazy dog\n".repeat(2000)
        + "the dog wrties and jmups\n"; // two typos
    let notes = "QUICK notes: the fox is LAZY today\nmispeled word here\n".repeat(500);
    jash::io::fs::write_file(fs.as_ref(), "/usr/share/dict/words", dict.as_bytes()).unwrap();
    jash::io::fs::write_file(fs.as_ref(), "/docs/essay.txt", essay.as_bytes()).unwrap();
    jash::io::fs::write_file(fs.as_ref(), "/docs/notes.txt", notes.as_bytes()).unwrap();
    fs
}

fn main() {
    let machine = MachineProfile {
        cores: 8,
        disk: jash::io::DiskProfile::ramdisk(),
        mem_mb: 8 * 1024,
    };
    let mut reference: Option<Vec<u8>> = None;
    for engine in Engine::ALL {
        let fs = make_fs();
        let mut state = ShellState::new(Arc::clone(&fs));
        let mut shell = Jash::new(engine, machine);
        // Small demo corpus: skip the size guard so decisions show.
        shell.planner.min_speedup = 1.0;
        shell.planner.force_width = Some(4);

        let result = shell.run_script(&mut state, SPELL).expect("spell runs");
        assert_eq!(result.status, 0);
        match &reference {
            None => reference = Some(result.stdout.clone()),
            Some(r) => assert_eq!(
                r, &result.stdout,
                "outputs must be byte-identical across engines"
            ),
        }

        let optimized = shell.trace.iter().any(TraceEvent::was_optimized);
        println!("== {engine}: pipeline optimized? {optimized}");
        for e in shell.trace.iter().filter(|e| e.pipeline.contains('|')) {
            println!("   {:?}", e.action);
        }
    }
    println!(
        "\nmisspelled words (identical under every engine):\n{}",
        String::from_utf8_lossy(reference.as_deref().unwrap_or_default())
    );
}
