//! Heuristic support (paper §4): static lints plus the JIT-time misuse
//! guard that sees *expanded* values.
//!
//! ```sh
//! cargo run --example lint_and_guard
//! ```

use jash::lint::{guard_argv, lint_script, GuardVerdict};

const SCRIPT: &str = r#"
# deploy.sh -- riddled with classics
cd /opt/app
BUILD_DIR=$1
rm -rf $BUILD_DIR/
for f in $(ls releases); do
    cat release-notes.txt | grep $f
done
read version
x=`date`
[ $version = latest ] && echo deploying
"#;

fn main() {
    println!("--- static findings (ShellCheck-style) ---");
    let findings = lint_script(SCRIPT).expect("script parses");
    for f in &findings {
        println!("{}", f.display(SCRIPT));
    }
    assert!(!findings.is_empty());

    // The static rule can only warn about `rm -rf $BUILD_DIR/`. At
    // runtime the JIT expands words first, so the guard sees the real
    // argv — and can refuse *before* execution.
    println!("\n--- runtime guard (post-expansion) ---");
    for (desc, argv, cwd) in [
        (
            "BUILD_DIR=staging (fine)",
            vec!["rm", "-rf", "staging/"],
            "/opt/app",
        ),
        (
            "BUILD_DIR unset → `rm -rf /`",
            vec!["rm", "-rf", "/"],
            "/opt/app",
        ),
        ("empty operand", vec!["rm", "-rf", ""], "/opt/app"),
    ] {
        let argv: Vec<String> = argv.iter().map(|s| s.to_string()).collect();
        let verdict = guard_argv(&argv, cwd);
        println!("{desc:<34} -> {verdict:?}");
        if desc.contains("fine") {
            assert_eq!(verdict, GuardVerdict::Allow);
        } else {
            assert!(!matches!(verdict, GuardVerdict::Allow));
        }
    }
}
