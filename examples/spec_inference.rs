//! Specification inference and conformance testing (paper §4, Heuristic
//! support): "fuzz testing … could (i) test that a command conforms to
//! its specification or even (ii) learn important aspects of a command's
//! specification by inspecting its behavior".
//!
//! ```sh
//! cargo run --release --example spec_inference
//! ```

use jash::coreutils::{run_on_bytes, UtilCtx};
use jash::spec::{check_conformance, infer_class, Registry, UserSpec};

fn main() {
    println!("--- inferring classes by black-box probing ---");
    let cases: &[(&str, &[&str])] = &[
        ("cat", &[]),
        ("tr", &["A-Z", "a-z"]),
        ("grep", &["o"]),
        ("sort", &[]),
        ("sort", &["-rn"]),
        ("wc", &["-l"]),
        ("head", &["-n2"]),
        ("tac", &[]),
    ];
    for (name, args) in cases {
        let runner = move |input: &[u8]| {
            let ctx = UtilCtx::new(jash::io::mem_fs());
            run_on_bytes(&ctx, name, args, input).expect("probe").1
        };
        let inferred = infer_class(&runner);
        println!(
            "{name} {args:?}: {:?} ({} probes)",
            inferred.class, inferred.probes
        );
        // Cross-check against the hand-written registry spec.
        let argv: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        if let Some(spec) = Registry::builtin().resolve(name, &argv) {
            check_conformance(&runner, &spec.class)
                .unwrap_or_else(|e| panic!("{name}: registry spec refuted: {e}"));
        }
    }

    println!("\n--- a shareable specification library (JSON) ---");
    let mut registry = Registry::builtin();
    registry
        .load_json(
            r#"[{
                "name": "my-anonymizer",
                "version": "2.1",
                "default_class": {"kind": "stateless"},
                "rules": [
                    {"when_flag": "--dedup", "class": {"kind": "non-parallelizable"}}
                ]
            }]"#,
        )
        .expect("valid spec library");
    let argv: Vec<String> = vec!["--fast".into()];
    let spec = registry.resolve("my-anonymizer", &argv).expect("registered");
    println!("my-anonymizer --fast resolves to {:?}", spec.class);
    let _ = UserSpec {
        name: "doc-example".into(),
        version: "1".into(),
        default_class: jash::spec::ParallelClass::Stateless,
        rules: vec![],
        reads_stdin: true,
        blocking: false,
    };
    println!("\nexported library:\n{}", registry.to_json());
}
