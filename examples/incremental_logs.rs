//! Incremental computation over a growing log (paper §4, U3): "small
//! changes to the input [cause] a complete re-execution, leading to many
//! hours of wasted redundant computation".
//!
//! ```sh
//! cargo run --release --example incremental_logs
//! ```

use jash::dataflow::{ExpandedCommand, Region};
use jash::incremental::IncRunner;
use std::sync::Arc;

fn main() {
    let fs = jash::io::mem_fs();
    let mut log = String::new();
    for i in 0..200_000 {
        let status = if i % 37 == 0 { 500 } else { 200 };
        log.push_str(&format!("10.0.0.{} GET /item/{i} {status}\n", i % 256));
    }
    jash::io::fs::write_file(fs.as_ref(), "/var/log/access.log", log.as_bytes()).unwrap();

    // The region: errors in the access log (stateless per line, so the
    // specification framework licenses suffix reuse).
    let region = Region {
        commands: vec![
            ExpandedCommand::new("cat", &["/var/log/access.log"]),
            ExpandedCommand::new("grep", &[" 500"]),
        ],
    };

    let mut runner = IncRunner::new(Arc::clone(&fs), "/.jash-cache");

    let t = std::time::Instant::now();
    let cold = runner.run(&region).expect("cold run");
    println!(
        "cold run : {:>8.1} ms  ({:?}, {} error lines)",
        t.elapsed().as_secs_f64() * 1e3,
        cold.outcome,
        cold.stdout.iter().filter(|&&b| b == b'\n').count()
    );

    let t = std::time::Instant::now();
    let warm = runner.run(&region).expect("warm run");
    println!(
        "warm run : {:>8.1} ms  ({:?})",
        t.elapsed().as_secs_f64() * 1e3,
        warm.outcome
    );

    // The log grows (the everyday case).
    let mut h = fs.open_write("/var/log/access.log", true).unwrap();
    for i in 0..1000 {
        h.write_all(format!("10.0.0.9 GET /new/{i} 500\n").as_bytes())
            .unwrap();
    }
    drop(h);

    let t = std::time::Instant::now();
    let grown = runner.run(&region).expect("append run");
    println!(
        "after 0.5% append: {:>8.1} ms  ({:?}, {} error lines)",
        t.elapsed().as_secs_f64() * 1e3,
        grown.outcome,
        grown.stdout.iter().filter(|&&b| b == b'\n').count()
    );

    println!("\ncache stats: {:?}", runner.stats);
    assert_eq!(warm.stdout, cold.stdout);
    assert!(grown.stdout.len() > cold.stdout.len());
}
