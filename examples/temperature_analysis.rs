//! The paper's §2.1 example: "over 100 lines of Java … can be translated
//! to a 48-character four-stage pipeline":
//!
//! ```text
//! cut -c 89-92 | grep -v 999 | sort -rn | head -n1
//! ```
//!
//! ```sh
//! cargo run --release --example temperature_analysis
//! ```
//!
//! Also shows the dataflow view: the compiled graph, the parallelized
//! graph, and the round-trip back to shell syntax.

use jash::dataflow::{compile, parallelize_all, ExpandedCommand, Region};
use jash::spec::Registry;
use std::sync::Arc;

fn main() {
    // Synthesize NOAA-ish fixed-width records: temperature at cols 89-92.
    let fs = jash::io::mem_fs();
    let mut records = String::new();
    for i in 0..5000u32 {
        let temp = (i * 373) % 600;
        records.push_str(&"w".repeat(88));
        records.push_str(&format!("{temp:04}trailing-fields\n"));
    }
    jash::io::fs::write_file(fs.as_ref(), "/noaa.dat", records.as_bytes()).unwrap();

    // Run the 48-character pipeline through the shell.
    let pipeline = "cut -c 89-92 | grep -v 999 | sort -rn | head -n1";
    println!("pipeline ({} chars): {pipeline}", pipeline.len());
    let script = "cut -c 89-92 < /noaa.dat | grep -v 999 | sort -rn | head -n1".to_string();
    let result = jash::interp::run(Arc::clone(&fs), &script).expect("pipeline runs");
    println!("maximum valid temperature: {}", String::from_utf8_lossy(&result.stdout).trim());

    // The dataflow view of the same region.
    let mut cut = ExpandedCommand::new("cut", &["-c", "89-92"]);
    cut.stdin_redirect = Some("/noaa.dat".into());
    let region = Region {
        commands: vec![
            cut,
            ExpandedCommand::new("grep", &["-v", "999"]),
            ExpandedCommand::new("sort", &["-rn"]),
            ExpandedCommand::new("head", &["-n1"]),
        ],
    };
    let mut compiled = compile(&region, &Registry::builtin()).expect("compiles");
    println!("\n--- compiled dataflow graph ---");
    print!("{}", jash::dataflow::explain(&compiled.dfg));
    println!(
        "round-trip to shell: {}",
        jash::ast::unparse(&jash::dataflow::to_shell(&compiled.dfg).expect("linear graph"))
    );

    let replicated = parallelize_all(&mut compiled.dfg, 4);
    println!("\n--- after parallelize_all(width=4): {replicated} stages replicated ---");
    print!("{}", jash::dataflow::explain(&compiled.dfg));
    println!("(head and the merge stay sequential: head is prefix-only,");
    println!(" so only cut/grep/sort were replicated — exactly what the specs allow)");

    // Execute the rewritten graph and confirm the same answer.
    let mut cfg = jash::exec::ExecConfig::new(fs);
    for n in compiled.dfg.node_ids() {
        if let jash::dataflow::NodeKind::Split { width } = compiled.dfg.node(n).kind {
            cfg.split_targets
                .insert(n, jash::exec::balanced_targets(records.len() as u64, width));
        }
    }
    let outcome = jash::exec::execute(&compiled.dfg, &cfg).expect("executes");
    println!(
        "\nparallel execution answer: {} (status {})",
        String::from_utf8_lossy(&outcome.stdout).trim(),
        outcome.status
    );
    assert_eq!(outcome.stdout, result.stdout);
}
