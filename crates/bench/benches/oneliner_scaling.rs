//! **In-text claim T-3 (E2)** — "PaSh and POSH showed that shell scripts
//! can enjoy order-of-magnitude performance improvements with adroit
//! preprocessing": a width sweep over a suite of common one-liner
//! pipelines on a CPU-rich machine.
//!
//! Reported: modeled wall time per (pipeline, width), and the speedup at
//! the widest setting.

use jash_bench::{bench_input_bytes, report_header, run_engine, sim_machine, stage, word_corpus};
use jash_core::Engine;
use jash_cost::MachineProfile;
use jash_io::DiskProfile;

const SUITE: &[(&str, &str)] = &[
    ("wf (word frequency)", "cat /in.txt | tr -cs A-Za-z '\\n' | tr A-Z a-z | sort | uniq -c"),
    ("sort", "cat /in.txt | sort"),
    ("grep-filter", "cat /in.txt | tr A-Z a-z | grep shell | grep -v paper"),
    ("set-ops", "cat /in.txt | tr -cs A-Za-z '\\n' | sort -u"),
    ("count", "cat /in.txt | grep -c shell"),
];

fn main() {
    let bytes = bench_input_bytes();
    let corpus = word_corpus(bytes, 99);
    let widths = [1usize, 2, 4, 8, 16];
    println!(
        "one-liner suite, {} MiB corpus, width sweep {widths:?} on a 16-core machine",
        bytes / (1024 * 1024)
    );

    for (name, script) in SUITE {
        report_header(name);
        let mut base = 0.0f64;
        let mut reference: Option<Vec<u8>> = None;
        for &w in &widths {
            let profile = MachineProfile {
                cores: 16,
                disk: DiskProfile::ramdisk(),
                mem_mb: 16 * 1024,
            };
            let sim = sim_machine(profile, bytes);
            stage(&sim, "/in.txt", &corpus);
            let (wall, result, trace) = if w == 1 {
                run_engine(Engine::Bash, &sim, script)
            } else {
                // Force the width so the sweep is exact.
                let mut state = jash_expand::ShellState::new(std::sync::Arc::clone(&sim.fs));
                state.cpu = Some(std::sync::Arc::clone(&sim.cpu));
                let mut shell = jash_core::Jash::new(Engine::JashJit, sim.profile);
                shell.planner.force_width = Some(w);
                let t0 = std::time::Instant::now();
                let r = shell.run_script(&mut state, script).expect("runs");
                (t0.elapsed(), r, shell.core.trace)
            };
            assert!(result.status == 0 || result.status == 1, "{trace:?}");
            match &reference {
                None => reference = Some(result.stdout.clone()),
                Some(r) => assert_eq!(r, &result.stdout, "{name} diverged at width {w}"),
            }
            let t = wall.as_secs_f64();
            if w == 1 {
                base = t;
            }
            println!("  width {w:>2}: {t:>8.3} s   speedup {:>5.2}x", base / t);
        }
    }
}
