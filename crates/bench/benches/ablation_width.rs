//! **Ablation A2** — resource awareness: what width does the planner pick
//! across disk profiles, and how do forced widths actually perform there?
//! The planner's chosen width should track the measured optimum within
//! one step on every profile ("a shell that can be used by anyone on any
//! infrastructure", §3.2).

use jash_bench::{bench_input_bytes, report_header, run_engine, sim_machine, stage, word_corpus};
use jash_core::{Action, Engine};
use jash_cost::MachineProfile;
use jash_io::DiskProfile;

const SCRIPT: &str = "cat /in.txt | tr -cs A-Za-z '\\n' | sort > /out";

fn main() {
    let bytes = bench_input_bytes();
    let corpus = word_corpus(bytes, 21);
    println!(
        "width ablation, {} MiB input, widths 1/2/4/8 across disk profiles",
        bytes / (1024 * 1024)
    );

    let profiles = [
        ("gp2-standard", DiskProfile::gp2_standard()),
        ("gp3-io-opt", DiskProfile::gp3_io_opt()),
        ("ramdisk", DiskProfile::ramdisk()),
    ];
    let mut all_ok = true;
    for (disk_name, disk) in profiles {
        report_header(disk_name);
        let profile = MachineProfile {
            cores: 8,
            disk,
            mem_mb: 8 * 1024,
        };
        // Measure forced widths.
        let mut best = (1usize, f64::MAX);
        for w in [1usize, 2, 4, 8] {
            let sim = sim_machine(profile, bytes);
            stage(&sim, "/in.txt", &corpus);
            let t = if w == 1 {
                run_engine(Engine::Bash, &sim, SCRIPT).0
            } else {
                let mut state = jash_expand::ShellState::new(std::sync::Arc::clone(&sim.fs));
                state.cpu = Some(std::sync::Arc::clone(&sim.cpu));
                let mut shell = jash_core::Jash::new(Engine::JashJit, sim.profile);
                shell.planner.force_width = Some(w);
                let t0 = std::time::Instant::now();
                shell.run_script(&mut state, SCRIPT).expect("runs");
                t0.elapsed()
            };
            let secs = t.as_secs_f64();
            println!("  forced width {w}: {secs:>8.3} s");
            if secs < best.1 {
                best = (w, secs);
            }
        }
        // What does the planner pick?
        let sim = sim_machine(profile, bytes);
        stage(&sim, "/in.txt", &corpus);
        let (t, _, trace) = run_engine(Engine::JashJit, &sim, SCRIPT);
        let chosen = trace
            .iter()
            .find_map(|e| match e.action {
                Action::Optimized { width, .. } => Some(width),
                _ => None,
            })
            .unwrap_or(1);
        println!(
            "  planner chose width {chosen}: {:>8.3} s (measured optimum: width {})",
            t.as_secs_f64(),
            best.0
        );
        // Within a factor-of-two step of the optimum counts as tracking.
        let tracks = chosen == best.0
            || chosen == best.0 * 2
            || best.0 == chosen * 2
            || t.as_secs_f64() <= best.1 * 1.3;
        println!("  [{}] planner tracks the optimum", if tracks { "PASS" } else { "FAIL" });
        all_ok &= tracks;
    }
    if !all_ok {
        std::process::exit(1);
    }
}
