//! **Ablation A1** — the no-regression guard ("performance benefits *and
//! no regressions!*", §3.2): input-size sweep comparing Jash-with-guard
//! against Jash forced to parallelize. On tiny inputs the forced variant
//! pays startup/merge overhead; the guard must keep Jash at sequential
//! speed there while still optimizing large inputs.

use jash_bench::{report_header, run_engine, sim_machine, stage, word_corpus};
use jash_core::{Engine, TraceEvent};
use jash_cost::MachineProfile;
use jash_io::DiskProfile;

const SCRIPT: &str = "cat /in.txt | tr -cs A-Za-z '\\n' | sort > /out";

fn main() {
    println!("guard ablation: Jash (guarded) vs Jash (forced width 8) vs bash");
    let profile = MachineProfile {
        cores: 8,
        disk: DiskProfile::ramdisk(),
        mem_mb: 8 * 1024,
    };
    let sizes: &[u64] = &[16 * 1024, 256 * 1024, 4 * 1024 * 1024, 24 * 1024 * 1024];
    let mut guard_never_lost = true;
    for &size in sizes {
        report_header(&format!("input {} KiB", size / 1024));
        let corpus = word_corpus(size, 5);

        let sim = sim_machine(profile, size);
        stage(&sim, "/in.txt", &corpus);
        let (bash_t, _, _) = run_engine(Engine::Bash, &sim, SCRIPT);

        let sim = sim_machine(profile, size);
        stage(&sim, "/in.txt", &corpus);
        let (guard_t, r, trace) = run_engine(Engine::JashJit, &sim, SCRIPT);
        assert_eq!(r.status, 0);
        let decided = if trace.iter().any(TraceEvent::was_optimized) {
            "optimized"
        } else {
            "declined"
        };

        let sim = sim_machine(profile, size);
        stage(&sim, "/in.txt", &corpus);
        let mut state = jash_expand::ShellState::new(std::sync::Arc::clone(&sim.fs));
        state.cpu = Some(std::sync::Arc::clone(&sim.cpu));
        let mut shell = jash_core::Jash::new(Engine::JashJit, sim.profile);
        shell.planner.force_width = Some(8);
        let t0 = std::time::Instant::now();
        shell.run_script(&mut state, SCRIPT).expect("runs");
        let forced_t = t0.elapsed();

        println!(
            "  bash {:>8.3}s | jash-guarded {:>8.3}s ({decided}) | jash-forced {:>8.3}s",
            bash_t.as_secs_f64(),
            guard_t.as_secs_f64(),
            forced_t.as_secs_f64()
        );
        if guard_t.as_secs_f64() > bash_t.as_secs_f64() * 1.35 {
            guard_never_lost = false;
        }
    }
    println!(
        "\n[{}] guarded Jash never regresses >35% behind bash at any size",
        if guard_never_lost { "PASS" } else { "FAIL" }
    );
    if !guard_never_lost {
        std::process::exit(1);
    }
}
