//! **Figure 1** — "Executing a script that sorts the words of a 3GB input
//! file with bash, PaSh, and the Jash prototype. Both instances are
//! c5.2xlarge AWS EC2. The standard instance has a gp2 disk (100 IOPS
//! that bursts to 3K) while the IO-opt has a gp3 disk (15K IOPS). PaSh
//! performs worse on 'Standard' because it doesn't take system resources
//! into account."
//!
//! See `jash_bench::fig1` for the harness; the shape to reproduce:
//!
//! * Standard: `pash` **slower than** `bash`; `jash` ≤ `bash`;
//! * IO-opt:   `jash` ≤ `pash` < `bash`.

fn main() {
    jash_bench::fig1::main_with_checks();
}
