//! **M (micro)** — substrate sanity benchmarks under Criterion: parser
//! throughput, word expansion, the regex engine, line framing, and the
//! split/merge operators. These quantify the JIT's fixed costs (the
//! overhead the no-regression guard amortizes).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use jash_expand::{NoSubst, ShellState};
use std::hint::black_box;

fn bench_parser(c: &mut Criterion) {
    let script = r#"
FILES="/a /b"
if [ -f /etc/conf ]; then
    cat $FILES | tr A-Z a-z | tr -cs A-Za-z '\n' | sort -u | comm -13 $DICT -
fi
for f in one two three; do
    grep -v 999 "$f" | sort -rn | head -n1 > "out-$f"
done
case $1 in -v) verbose=1;; *) :;; esac
"#;
    let mut g = c.benchmark_group("parser");
    g.throughput(Throughput::Bytes(script.len() as u64));
    g.bench_function("parse_script", |b| {
        b.iter(|| jash_parser::parse(black_box(script)).unwrap())
    });
    let prog = jash_parser::parse_unwrap(script);
    g.bench_function("unparse_script", |b| {
        b.iter(|| jash_ast::unparse(black_box(&prog)))
    });
    g.finish();
}

fn bench_expansion(c: &mut Criterion) {
    let mut state = ShellState::new(jash_io::mem_fs());
    state.set_var("FILES", "/a.txt /b.txt /c.txt");
    state.set_var("X", "value-of-x");
    let prog = jash_parser::parse_unwrap("echo $FILES ${X:-d} ${X%-*} \"$X $FILES\" $((1+2*3))");
    let jash_ast::CommandKind::Simple(sc) = &prog.items[0].and_or.first.commands[0].kind else {
        unreachable!()
    };
    let words = sc.words[1..].to_vec();
    c.bench_function("expand/five_words", |b| {
        b.iter(|| {
            jash_expand::expand_words(black_box(&mut state), &mut NoSubst, black_box(&words))
                .unwrap()
        })
    });
}

fn bench_regex(c: &mut Criterion) {
    use jash_coreutils::regex::{Flavor, Regex};
    let line = b"10.20.30.40 GET /api/v1/items?id=12345 took 99ms status 200";
    let mut g = c.benchmark_group("regex");
    g.throughput(Throughput::Bytes(line.len() as u64));
    let literal = Regex::new("status", Flavor::Bre, false).unwrap();
    g.bench_function("literal_search", |b| {
        b.iter(|| literal.is_match(black_box(line)))
    });
    let cls = Regex::new("[0-9][0-9]*ms", Flavor::Bre, false).unwrap();
    g.bench_function("class_star", |b| b.iter(|| cls.is_match(black_box(line))));
    let alt = Regex::new("GET|POST|PUT", Flavor::Ere, false).unwrap();
    g.bench_function("ere_alternation", |b| b.iter(|| alt.is_match(black_box(line))));
    g.finish();
}

fn bench_line_framing(c: &mut Criterion) {
    let data: Vec<u8> = "the quick brown fox\n".repeat(5000).into_bytes();
    let mut g = c.benchmark_group("framing");
    g.throughput(Throughput::Bytes(data.len() as u64));
    g.bench_function("line_buffer", |b| {
        b.iter(|| {
            let mut lb = jash_io::LineBuffer::new();
            lb.push(black_box(&data));
            let mut n = 0usize;
            while let Some(l) = lb.next_line() {
                n += l.len();
            }
            n
        })
    });
    g.finish();
}

fn bench_split_merge(c: &mut Criterion) {
    let corpus = jash_bench::word_corpus(1 << 20, 17);
    let mut sorted: Vec<&[u8]> = jash_io::split_lines(&corpus);
    sorted.sort();
    let mut halves: Vec<Vec<u8>> = vec![Vec::new(), Vec::new()];
    for (i, l) in sorted.iter().enumerate() {
        // Alternate sorted lines so both halves stay sorted.
        halves[i % 2].extend_from_slice(l);
        halves[i % 2].push(b'\n');
    }
    let mut g = c.benchmark_group("operators");
    g.throughput(Throughput::Bytes(corpus.len() as u64));
    g.bench_function("merge_sort_2way", |b| {
        b.iter(|| {
            let inputs: Vec<Box<dyn jash_io::ByteStream>> = halves
                .iter()
                .map(|h| {
                    Box::new(jash_io::MemStream::from_bytes(h.clone())) as Box<dyn jash_io::ByteStream>
                })
                .collect();
            let mut sink = jash_io::VecSink::new();
            jash_exec::run_merge(
                &jash_spec::Aggregator::MergeSort {
                    key: jash_spec::SortKeySpec::default(),
                },
                inputs,
                &mut sink,
            )
            .unwrap();
            sink.data.len()
        })
    });
    g.bench_function("contiguous_split_4way", |b| {
        b.iter(|| {
            let mut input = jash_io::MemStream::from_bytes(corpus.clone());
            let mut sinks: Vec<Box<dyn jash_io::Sink>> =
                (0..4).map(|_| Box::new(jash_io::VecSink::new()) as Box<dyn jash_io::Sink>).collect();
            jash_exec::split_contiguous(
                &mut input,
                &mut sinks,
                &jash_exec::balanced_targets(corpus.len() as u64, 4),
            )
            .unwrap()
        })
    });
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_parser, bench_expansion, bench_regex, bench_line_framing, bench_split_merge
}
criterion_main!(benches);
