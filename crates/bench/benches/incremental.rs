//! **Ablation A3 (paper §4, Incremental Computation)** — re-running a
//! log-processing region after (a) no change, (b) a 1% append, (c) a
//! point edit. The specification-driven runtime should make (a) nearly
//! free and (b) cost only the appended suffix.

use jash_bench::{bench_input_bytes, log_lines, report_header, report_row, sim_machine, stage};
use jash_cost::MachineProfile;
use jash_dataflow::{ExpandedCommand, Region};
use jash_incremental::{CacheOutcome, IncRunner};
use std::sync::Arc;
use std::time::Instant;

fn region() -> Region {
    Region {
        commands: vec![
            ExpandedCommand::new("cat", &["/access.log"]),
            ExpandedCommand::new("grep", &["500"]),
        ],
    }
}

fn main() {
    let n = (bench_input_bytes() / 40).max(10_000) as usize;
    let base = log_lines(n, 3);
    println!("incremental: grep-500 over a {n}-line access log");

    let sim = sim_machine(MachineProfile::io_opt_ec2(), base.len() as u64);
    stage(&sim, "/access.log", &base);
    let mut runner = IncRunner::new(Arc::clone(&sim.fs), "/.jash-cache");

    report_header("runs");
    let t0 = Instant::now();
    let cold = runner.run(&region()).expect("cold run");
    let cold_t = t0.elapsed();
    assert_eq!(cold.outcome, CacheOutcome::Miss);
    report_row("  cold (full execution)", cold_t);

    let t0 = Instant::now();
    let warm = runner.run(&region()).expect("warm run");
    let warm_t = t0.elapsed();
    assert_eq!(warm.outcome, CacheOutcome::Hit);
    assert_eq!(warm.stdout, cold.stdout);
    report_row("  warm (identical rerun)", warm_t);

    // Append 1%.
    let delta = log_lines(n / 100, 4);
    let mut h = sim.fs.open_write("/access.log", true).expect("append");
    h.write_all(&delta).expect("append");
    drop(h);
    let t0 = Instant::now();
    let appended = runner.run(&region()).expect("append run");
    let append_t = t0.elapsed();
    assert_eq!(appended.outcome, CacheOutcome::PartialAppend);
    report_row("  after 1% append (suffix only)", append_t);

    // Point edit invalidates.
    let mut edited = base.clone();
    edited[10] = b'X';
    stage(&sim, "/access.log", &edited);
    let t0 = Instant::now();
    let invalidated = runner.run(&region()).expect("edit run");
    let edit_t = t0.elapsed();
    assert_eq!(invalidated.outcome, CacheOutcome::Miss);
    report_row("  after point edit (full re-run)", edit_t);

    report_header("shape checks");
    // A hit still reads the input once to fingerprint it, so the modeled
    // disk read is the floor on warm time; the win is everything else
    // (the grep pass, pipe plumbing, output re-generation).
    let checks = [
        (
            "warm rerun ≥2.5x faster than cold",
            warm_t.as_secs_f64() * 2.5 < cold_t.as_secs_f64(),
        ),
        (
            "1% append ≥2.5x faster than cold",
            append_t.as_secs_f64() * 2.5 < cold_t.as_secs_f64(),
        ),
        (
            "point edit costs about a full run",
            edit_t.as_secs_f64() > cold_t.as_secs_f64() * 0.5,
        ),
    ];
    let mut ok = true;
    for (name, passed) in checks {
        println!("  [{}] {name}", if passed { "PASS" } else { "FAIL" });
        ok &= passed;
    }
    if !ok {
        std::process::exit(1);
    }
}
