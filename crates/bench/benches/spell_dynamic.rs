//! **In-text claim T-2 (§3.2)** — the classic `spell` script, "lightly
//! modified for modern environments":
//!
//! ```text
//! FILES="$@"
//! cat $FILES | tr A-Z a-z | tr -cs A-Za-z '\n' | sort -u | comm -13 $DICT -
//! ```
//!
//! "An ahead-of-time compiler has no knowledge of the input files and thus
//! cannot properly decide if and how to parallelize or distribute the
//! above pipeline — i.e., neither PaSh nor POSH optimize this script."
//! The JIT expands `$FILES` and `$DICT` first, then parallelizes.

use jash_bench::{
    bench_input_bytes, dictionary, documents, report_header, report_row, run_engine,
    sim_machine, stage,
};
use jash_core::{Engine, TraceEvent};
use jash_cost::MachineProfile;

const SPELL: &str = r#"
DICT=/usr/share/dict/words
FILES="/docs/a.txt /docs/b.txt"
cat $FILES | tr A-Z a-z | tr -cs A-Za-z '\n' | sort -u | comm -13 $DICT -
"#;

fn main() {
    let bytes = bench_input_bytes() / 2;
    let doc_a = documents(bytes, 11);
    let doc_b = documents(bytes, 12);
    let dict = dictionary();
    println!(
        "spell: {} MiB of documents against a {}-word dictionary",
        2 * bytes / (1024 * 1024),
        dict.iter().filter(|&&b| b == b'\n').count()
    );

    report_header("spell (dynamic $FILES/$DICT)");
    let profile = MachineProfile::io_opt_ec2();
    let mut reference: Option<Vec<u8>> = None;
    let mut optimized = std::collections::HashMap::new();
    let mut times = std::collections::HashMap::new();
    for engine in Engine::ALL {
        let sim = sim_machine(profile, 2 * bytes);
        stage(&sim, "/docs/a.txt", &doc_a);
        stage(&sim, "/docs/b.txt", &doc_b);
        stage(&sim, "/usr/share/dict/words", &dict);
        let (wall, result, trace) = run_engine(engine, &sim, SPELL);
        assert_eq!(result.status, 0);
        match &reference {
            None => reference = Some(result.stdout.clone()),
            Some(r) => assert_eq!(r, &result.stdout, "{engine} output diverged"),
        }
        report_row(&format!("  {engine}"), wall);
        optimized.insert(engine, trace.iter().any(TraceEvent::was_optimized));
        times.insert(engine, wall.as_secs_f64());
    }
    let misspellings = reference
        .as_ref()
        .map(|r| r.iter().filter(|&&b| b == b'\n').count())
        .unwrap_or(0);
    println!("\nmisspellings found: {misspellings}");

    report_header("shape checks");
    let checks = [
        ("PashAot did NOT optimize (dynamic words)", !optimized[&Engine::PashAot]),
        ("JashJit DID optimize", optimized[&Engine::JashJit]),
        (
            "jash beats bash",
            times[&Engine::JashJit] < times[&Engine::Bash],
        ),
        (
            "pash ~= bash (it fell back to sequential)",
            (times[&Engine::PashAot] / times[&Engine::Bash]) < 1.25
                && (times[&Engine::PashAot] / times[&Engine::Bash]) > 0.8,
        ),
    ];
    let mut ok = true;
    for (name, passed) in checks {
        println!("  [{}] {name}", if passed { "PASS" } else { "FAIL" });
        ok &= passed;
    }
    assert!(misspellings > 0, "workload must contain misspellings");
    if !ok {
        std::process::exit(1);
    }
}
