//! **In-text claim T-1 (§2.1)** — "over 100 lines of Java code that
//! perform a temperature analysis task can be translated to a
//! 48-character four-stage pipeline of comparable performance":
//!
//! ```text
//! cut -c 89-92 | grep -v 999 | sort -rn | head -n1
//! ```
//!
//! We compare the pipeline (under all three engines) against a
//! hand-written single-pass native program (the stand-in for the Java
//! baseline), checking both answers agree and the runtimes are comparable.

use jash_bench::{
    noaa_max_valid, noaa_records, report_header, report_row, run_engine, sim_machine, stage,
};
use jash_core::Engine;
use jash_cost::MachineProfile;
use std::time::Instant;

const PIPELINE: &str = "cut -c 89-92 | grep -v 999 | sort -rn | head -n1";

/// The "100 lines of Java" single-pass max-temperature program, reduced
/// to its essence: one scan, no sort.
fn native_max(records: &[u8], cpu: &std::sync::Arc<jash_io::CpuModel>) -> u32 {
    // Charge the same modeled CPU the pipeline pays, at a representative
    // single-pass rate (a scan is about as cheap as `cut`).
    cpu.charge(records.len() as f64 / jash_io::cpu_rate("cut"));
    let mut max = 0u32;
    let mut col = 0usize;
    let mut field = [0u8; 4];
    for &b in records {
        if b == b'\n' {
            col = 0;
            continue;
        }
        if (88..92).contains(&col) {
            field[col - 88] = b;
            if col == 91 {
                if let Ok(t) = std::str::from_utf8(&field)
                    .unwrap_or("0")
                    .parse::<u32>()
                {
                    let s = std::str::from_utf8(&field).unwrap_or("");
                    if !s.contains("999") && t > max {
                        max = t;
                    }
                }
            }
        }
        col += 1;
    }
    max
}

fn main() {
    let n_records = (jash_bench::bench_input_bytes() / 106).max(1000) as usize;
    let records = noaa_records(n_records, 7);
    let oracle = noaa_max_valid(&records);
    println!(
        "Temperature analysis over {n_records} fixed-width records; pipeline is {} chars (paper: 48)",
        PIPELINE.len()
    );

    report_header("temperature max");
    let profile = MachineProfile::io_opt_ec2();
    let mut pipeline_time = f64::MAX;
    for engine in Engine::ALL {
        let sim = sim_machine(profile, records.len() as u64);
        let script = "cut -c 89-92 < /noaa.dat | grep -v 999 | sort -rn | head -n1".to_string();
        stage(&sim, "/noaa.dat", &records);
        let (wall, result, _) = run_engine(engine, &sim, &script);
        assert_eq!(result.status, 0);
        let answer: u32 = String::from_utf8_lossy(&result.stdout)
            .trim()
            .parse()
            .expect("numeric answer");
        assert_eq!(answer, oracle, "{engine} computed the wrong maximum");
        report_row(&format!("  pipeline/{engine}"), wall);
        pipeline_time = pipeline_time.min(wall.as_secs_f64());
    }

    // Native single-pass baseline on the same modeled machine.
    let sim = sim_machine(profile, records.len() as u64);
    stage(&sim, "/noaa.dat", &records);
    let t0 = Instant::now();
    let data = jash_io::fs::read_to_vec(sim.fs.as_ref(), "/noaa.dat").expect("read");
    let answer = native_max(&data, &sim.cpu);
    let native = t0.elapsed();
    assert_eq!(answer, oracle);
    report_row("  native single-pass (the '100-line' program)", native);

    let ratio = pipeline_time / native.as_secs_f64().max(1e-9);
    println!("\npipeline/native ratio (best engine): {ratio:.2}x (paper: 'comparable')");
    // "Comparable performance": within an order of magnitude either way.
    if !(0.1..=10.0).contains(&ratio) {
        std::process::exit(1);
    }
}
