//! Crash-recovery sweep: SIGKILL a real `jash` child mid-pipeline, then
//! `--resume` and prove the journal's promise — byte-identical output,
//! zero staging debris, and no re-execution of journaled-clean regions.
//!
//! Unlike the in-process sweeps in [`crate::faults`], these crashes are
//! real: a child process is killed with SIGKILL (uncatchable, no
//! destructors) while a region's output file is mid-write, exactly the
//! failure the write-ahead journal exists for. The kill window is made
//! deterministic with the binary's `JASH_TEST_STALL_WRITE` hook, which
//! wedges the staged write at a byte offset until the sweep delivers the
//! kill.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

/// How one kill-point scenario went.
#[derive(Debug)]
pub struct CrashRow {
    /// Regions the child completed before the SIGKILL landed.
    pub kill_after: usize,
    /// `regions_resumed` reported by the resumed run.
    pub resumed: u64,
    /// `regions_optimized` reported by the resumed run.
    pub optimized: u64,
    /// Resumed run's exit status.
    pub exit: Option<i32>,
    /// All output files byte-identical to the uninterrupted baseline.
    pub identical: bool,
    /// `.jash-stage-*` files left anywhere after the resume.
    pub debris: usize,
    /// Failure annotation, empty when the scenario held.
    pub note: String,
}

const REGIONS: usize = 3;

fn script() -> String {
    (0..REGIONS)
        .map(|k| format!("cat /in{k} | tr A-Z a-z | sort > /out{k}\n"))
        .collect()
}

/// The `jash` binary under test: `JASH_BIN` when set, else the build
/// sibling of the currently-running benchmark binary.
pub fn jash_binary() -> PathBuf {
    if let Ok(p) = std::env::var("JASH_BIN") {
        return PathBuf::from(p);
    }
    let mut p = std::env::current_exe().expect("current_exe");
    p.set_file_name("jash");
    p
}

fn stage_root(root: &Path, bytes: u64, seed: u64) {
    fs::create_dir_all(root).expect("create crash root");
    for k in 0..REGIONS {
        // At least 128 KiB per region, so the staged write always
        // reaches the 64 KiB stall offset and the kill window opens.
        let per_region = (bytes / REGIONS as u64).max(128 * 1024);
        let docs = crate::documents(per_region, seed + k as u64);
        fs::write(root.join(format!("in{k}")), docs).expect("stage input");
    }
}

fn jash_cmd(root: &Path) -> Command {
    let mut cmd = Command::new(jash_binary());
    cmd.arg("--root")
        .arg(root)
        .env("JASH_TEST_EAGER", "1")
        .stdout(Stdio::null())
        .stderr(Stdio::piped());
    cmd
}

fn read_outputs(root: &Path) -> Vec<Option<Vec<u8>>> {
    (0..REGIONS)
        .map(|k| fs::read(root.join(format!("out{k}"))).ok())
        .collect()
}

fn count_debris(root: &Path) -> usize {
    let mut n = 0;
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = fs::read_dir(&dir) else { continue };
        for e in entries.flatten() {
            let path = e.path();
            if path.is_dir() {
                stack.push(path);
            } else if path
                .file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.contains(".jash-stage-"))
            {
                n += 1;
            }
        }
    }
    n
}

/// Waits until the child's journal shows `kill_after` completed regions
/// and a live (k+1)-th region with its staging file on disk — the
/// deterministic kill window — then returns. Gives up after `timeout`.
fn wait_for_kill_window(root: &Path, kill_after: usize, timeout: Duration) -> bool {
    let journal = root.join(".jash/journal");
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        let text = fs::read_to_string(&journal).unwrap_or_default();
        let done = text.lines().filter(|l| l.contains(" region-done ")).count();
        let started = text
            .lines()
            .filter(|l| l.contains(" region-start "))
            .count();
        if done >= kill_after && started > kill_after && count_debris(root) > 0 {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    false
}

fn summary_counter(stderr: &str, key: &str) -> Option<u64> {
    let line = stderr.lines().find(|l| l.starts_with("jit summary:"))?;
    line.split_whitespace()
        .find_map(|tok| tok.strip_prefix(&format!("{key}=")))
        .and_then(|v| v.parse().ok())
}

/// Runs the crash sweep: an uninterrupted baseline, then one scenario
/// per kill point k — SIGKILL the child after it has journaled k clean
/// regions (mid-write of region k+1), `--resume`, and audit the result.
pub fn run_crash_sweep(bytes: u64, seed: u64) -> Vec<CrashRow> {
    // RAII scratch: removed when the sweep returns — or panics, so an
    // aborted sweep can't seed the next one with stale journals.
    let scratch = jash_io::TempDir::new("jash-crash");

    // Baseline: the same script, never interrupted.
    let base_root = scratch.path().join("baseline");
    stage_root(&base_root, bytes, seed);
    let status = jash_cmd(&base_root)
        .args(["-c", &script()])
        .status()
        .expect("run baseline jash");
    assert!(status.success(), "baseline run failed: {status:?}");
    let baseline = read_outputs(&base_root);

    let mut rows = Vec::new();
    for kill_after in 0..REGIONS {
        let root = scratch.path().join(format!("kill{kill_after}"));
        stage_root(&root, bytes, seed);
        // Wedge the (kill_after+1)-th region's staged output write after
        // its first chunk, leaving the child stalled inside the region
        // with its intent journaled and a staging file on disk.
        let mut child = jash_cmd(&root)
            .args(["-c", &script()])
            .env(
                "JASH_TEST_STALL_WRITE",
                format!("/out{kill_after}:65536:600000"),
            )
            .spawn()
            .expect("spawn jash child");
        let windowed = wait_for_kill_window(&root, kill_after, Duration::from_secs(60));
        child.kill().expect("SIGKILL jash child"); // SIGKILL: no cleanup runs
        let _ = child.wait();
        if !windowed {
            rows.push(CrashRow {
                kill_after,
                resumed: 0,
                optimized: 0,
                exit: None,
                identical: false,
                debris: count_debris(&root),
                note: "kill window never opened".into(),
            });
            continue;
        }

        let resumed_out = jash_cmd(&root)
            .args(["--resume", "--explain", "-c", &script()])
            .output()
            .expect("run resume jash");
        let exit = resumed_out.status;
        let stderr = String::from_utf8_lossy(&resumed_out.stderr).into_owned();

        let outputs = read_outputs(&root);
        let identical = outputs == baseline;
        let debris = count_debris(&root);
        let resumed = summary_counter(&stderr, "resumed").unwrap_or(0);
        let optimized = summary_counter(&stderr, "optimized").unwrap_or(0);
        let mut notes = Vec::new();
        if !exit.success() {
            notes.push(format!("resume exit {exit:?}"));
        }
        if !identical {
            notes.push("output diverged from baseline".into());
        }
        if debris > 0 {
            notes.push(format!("{debris} staging file(s) leaked"));
        }
        if resumed != kill_after as u64 {
            notes.push(format!("resumed {resumed}, expected {kill_after}"));
        }
        if optimized != (REGIONS - kill_after) as u64 {
            notes.push(format!(
                "optimized {optimized}, expected {}",
                REGIONS - kill_after
            ));
        }
        rows.push(CrashRow {
            kill_after,
            resumed,
            optimized,
            exit: exit.code(),
            identical,
            debris,
            note: notes.join("; "),
        });
    }
    rows
}

/// Renders the sweep as a fixed-width table.
pub fn render_crash(rows: &[CrashRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<12} {:>8} {:>10} {:>6} {:>10} {:>7}  note\n",
        "kill-after", "resumed", "optimized", "exit", "identical", "debris"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<12} {:>8} {:>10} {:>6} {:>10} {:>7}  {}\n",
            r.kill_after,
            r.resumed,
            r.optimized,
            r.exit.map_or("?".into(), |c| c.to_string()),
            if r.identical { "yes" } else { "NO" },
            r.debris,
            r.note,
        ));
    }
    out
}

/// Whether every scenario recovered perfectly: exit 0, byte-identical
/// outputs, zero debris, and exactly the journaled regions resumed.
pub fn crash_holds(rows: &[CrashRow]) -> bool {
    rows.len() == REGIONS && rows.iter().all(|r| r.note.is_empty())
}
