//! Fault-sweep harness: crash-equivalence measurement.
//!
//! Where `fig1` measures *speed*, this harness measures *soundness under
//! failure*: it runs one script under a family of deterministic fault
//! plans on all three engines and checks, per fault, that the optimizing
//! engines degrade to exactly the sequential baseline — same exit
//! status, byte-identical stdout, same surviving files, and no
//! transactional staging debris. It is the measurement instrument for
//! the tentpole claim that optimized execution is crash-equivalent to
//! sequential execution.
//!
//! Run it with `cargo run --release -p jash-bench --bin faultsweep`
//! (knobs: `JASH_BENCH_MB`, `JASH_FAULT_SEED`).

use jash_core::{Engine, Jash, RuntimeInfo, TraceEvent};
use jash_cost::{MachineProfile, PlannerOptions};
use jash_expand::ShellState;
use jash_io::{FaultFs, FaultPlan, FsHandle};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One fault scenario in a sweep.
pub struct FaultCase {
    /// Display name.
    pub name: String,
    /// The injected plan (empty for the baseline case).
    pub plan: FaultPlan,
}

/// The default sweep over a single input file of `input_len` bytes:
/// a clean control, read errors at the head / middle / tail (the tail
/// lands in the last parallel branch of a contiguous split), mid-stream
/// truncation, an open failure, benign short reads, and a seeded
/// probabilistic error mix.
pub fn default_sweep(path: &str, input_len: u64, seed: u64) -> Vec<FaultCase> {
    let mk = |name: &str, plan: FaultPlan| FaultCase {
        name: name.to_string(),
        plan,
    };
    vec![
        mk("clean (control)", FaultPlan::new()),
        mk(
            "read error @ head",
            FaultPlan::new().read_error_at(path, input_len / 100, "disk surface error"),
        ),
        mk(
            "read error @ middle",
            FaultPlan::new().read_error_at(path, input_len / 2, "disk surface error"),
        ),
        mk(
            "read error @ tail",
            FaultPlan::new().read_error_at(path, input_len - input_len / 100, "disk surface error"),
        ),
        mk(
            "truncation @ middle",
            FaultPlan::new().truncate_at(path, input_len / 2),
        ),
        mk(
            "open failure",
            FaultPlan::new().open_error(path, "permission denied"),
        ),
        mk(
            "short reads (benign)",
            FaultPlan::new().short_reads(path, 101),
        ),
        mk(
            "probabilistic read errors",
            FaultPlan::new().with_seed(seed).rule(jash_io::fault::FaultRule {
                path: Some(path.to_string()),
                op: jash_io::fault::FaultOp::Read,
                trigger: jash_io::fault::Trigger::Probability(0.02),
                kind: jash_io::fault::FaultKind::Error {
                    kind: std::io::ErrorKind::Other,
                    msg: "injected: probabilistic read error".to_string(),
                },
                once: false,
            }),
        ),
    ]
}

/// One engine's behavior under one fault case.
pub struct SweepRow {
    /// Fault case name.
    pub case: String,
    /// Engine measured.
    pub engine: Engine,
    /// Exit status of the session.
    pub status: i32,
    /// Whether an optimized region faulted and fell back.
    pub failed_over: bool,
    /// Wall time of the run.
    pub wall: Duration,
    /// Status and stdout both equal to the Bash baseline under the same
    /// fault.
    pub matches_baseline: bool,
    /// Whether any `.jash-stage-*` file survived (must never happen).
    pub staging_debris: bool,
}

fn debris(fs: &FsHandle) -> bool {
    for dir in ["/", "/tmp", "/data"] {
        for name in fs.list_dir(dir).unwrap_or_default() {
            if name.contains(".jash-stage-") {
                return true;
            }
        }
    }
    false
}

/// Runs `script` on every engine under every case. `stage` is called
/// with a fresh in-memory fs per run so each run sees identical inputs.
pub fn run_sweep(
    script: &str,
    stage: &dyn Fn(&FsHandle),
    cases: &[FaultCase],
    machine: MachineProfile,
) -> Vec<SweepRow> {
    let mut rows = Vec::new();
    for case in cases {
        let mut baseline: Option<(i32, Vec<u8>)> = None;
        for engine in Engine::ALL {
            let inner = jash_io::mem_fs();
            stage(&inner);
            let fs: FsHandle = if case.plan.is_empty() {
                Arc::clone(&inner)
            } else {
                FaultFs::wrap(Arc::clone(&inner), case.plan.clone())
            };
            let mut state = ShellState::new(fs);
            let mut shell = Jash::new(engine, machine);
            shell.planner = PlannerOptions {
                min_speedup: 0.0,
                force_width: Some(machine.cores.min(4)),
                ..Default::default()
            };
            let t0 = Instant::now();
            let result = match shell.run_script(&mut state, script) {
                Ok(r) => r,
                Err(e) => jash_interp::RunResult {
                    status: 2,
                    stdout: Vec::new(),
                    stderr: format!("jash: {e}\n").into_bytes(),
                },
            };
            let wall = t0.elapsed();
            let matches_baseline = match &baseline {
                None => {
                    baseline = Some((result.status, result.stdout.clone()));
                    true
                }
                Some((st, out)) => *st == result.status && *out == result.stdout,
            };
            rows.push(SweepRow {
                case: case.name.clone(),
                engine,
                status: result.status,
                failed_over: shell.trace.iter().any(TraceEvent::failed_over),
                wall,
                matches_baseline,
                staging_debris: debris(&inner),
            });
        }
    }
    rows
}

/// Renders the sweep as an aligned text table.
pub fn render(rows: &[SweepRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<28} {:<6} {:>6} {:>10} {:>9} {:>8} {:>7}\n",
        "fault", "engine", "status", "failover", "equal", "debris", "ms"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<28} {:<6} {:>6} {:>10} {:>9} {:>8} {:>7}\n",
            r.case,
            r.engine.to_string(),
            r.status,
            if r.failed_over { "yes" } else { "-" },
            if r.matches_baseline { "ok" } else { "DIVERGED" },
            if r.staging_debris { "LEAKED" } else { "-" },
            r.wall.as_millis(),
        ));
    }
    out
}

/// Whether the sweep upholds crash-equivalence: every row matches the
/// baseline and no row leaked staging files.
pub fn sweep_holds(rows: &[SweepRow]) -> bool {
    rows.iter().all(|r| r.matches_baseline && !r.staging_debris)
}

/// Which recovery mechanism a supervision case is expected to exercise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Recovery {
    /// Transient fault absorbed by retry-with-backoff: no failover, no
    /// width change.
    Retry,
    /// Resource fault absorbed by stepping down the width ladder: the
    /// region still optimizes, at reduced width.
    Degrade,
    /// Permanent fault repeated until the circuit breaker opens: later
    /// matching regions route straight to the interpreter.
    Breaker,
    /// Fused-kernel fault absorbed one rung down: the kernel is evicted
    /// and the unfused channel-per-stage pipeline completes the region —
    /// no failover, no width change.
    KernelDegrade,
    /// Fused-kernel fault whose unfused rung *also* faults (sticky commit
    /// error): the region walks the whole ladder and lands on the
    /// interpreter.
    KernelFailover,
    /// A fault inside iteration k of a JIT'd loop: that iteration (and
    /// only that iteration) walks kernel → unfused → interpreter; loop
    /// state stays correct, and iteration k+1 re-attempts the cached
    /// plan instead of staying de-optimized.
    LoopRecovery,
}

impl std::fmt::Display for Recovery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Recovery::Retry => write!(f, "retry"),
            Recovery::Degrade => write!(f, "degrade"),
            Recovery::Breaker => write!(f, "breaker"),
            Recovery::KernelDegrade => write!(f, "unfuse"),
            Recovery::KernelFailover => write!(f, "unfuse+fo"),
            Recovery::LoopRecovery => write!(f, "loop-iter"),
        }
    }
}

/// One supervised-recovery scenario.
pub struct SupervisionCase {
    /// Display name.
    pub name: String,
    /// The script (cases differ: the breaker needs a repeated shape).
    pub script: String,
    /// The injected plan.
    pub plan: FaultPlan,
    /// The recovery mechanism that must be visible in the log.
    pub expect: Recovery,
    /// Whether the Bash baseline runs under the same fault. Transient
    /// and resource faults are consumed by the retrying JIT, so its
    /// output must equal the *clean* run; sticky faults are visible to
    /// every engine, so the baseline runs faulted.
    pub baseline_faulted: bool,
    /// Injected fused-kernel fault ([`Jash::kernel_fault`]): every fused
    /// kernel in the run fails with this message. Only meaningful with
    /// `force_fusion`.
    pub kernel_fault: Option<String>,
    /// Pin kernel fusion on so the fused rung is actually on the ladder.
    pub force_fusion: bool,
}

/// The default supervised-recovery sweep: one case per rung of the
/// degradation ladder (retry at full width, width degradation, breaker
/// routing to the interpreter, kernel eviction to the unfused pipeline,
/// and the full kernel -> unfused -> interpreter walk).
pub fn default_supervision_sweep(path: &str, input_len: u64) -> Vec<SupervisionCase> {
    let single = format!("cat {path} | tr A-Z a-z | tr -cs a-z '\\n' | sort -u > /out");
    // A chain with a fusible run (`tr|grep|cut`) for the kernel cases.
    let fusible = format!("cat {path} | tr A-Z a-z | grep -v qqqq | cut -c 1-40 > /out");
    vec![
        SupervisionCase {
            name: "transient read fault -> retry".to_string(),
            script: single.clone(),
            plan: FaultPlan::new().rule(jash_io::fault::FaultRule {
                path: Some(path.to_string()),
                op: jash_io::fault::FaultOp::Read,
                trigger: jash_io::fault::Trigger::AtByte(input_len / 2),
                kind: jash_io::fault::FaultKind::Error {
                    kind: std::io::ErrorKind::Other,
                    msg: "injected: transient controller reset".to_string(),
                },
                once: true,
            }),
            expect: Recovery::Retry,
            baseline_faulted: false,
            kernel_fault: None,
            force_fusion: false,
        },
        SupervisionCase {
            name: "resource open faults -> width degradation".to_string(),
            script: single,
            plan: FaultPlan::new().resource_open_errors(path, 2),
            expect: Recovery::Degrade,
            baseline_faulted: false,
            kernel_fault: None,
            force_fusion: false,
        },
        SupervisionCase {
            name: "sticky commit fault -> breaker".to_string(),
            // The same shape five times: fail-overs 1-3 open the breaker,
            // statements 4-5 route to the interpreter.
            script: format!("cat {path} | tr A-Z a-z | sort -u > /out\n").repeat(5),
            plan: FaultPlan::new().rename_error("/out", "media failure on commit"),
            expect: Recovery::Breaker,
            baseline_faulted: true,
            kernel_fault: None,
            force_fusion: false,
        },
        SupervisionCase {
            name: "kernel fault -> unfused pipeline".to_string(),
            script: fusible.clone(),
            plan: FaultPlan::new(),
            expect: Recovery::KernelDegrade,
            baseline_faulted: false,
            kernel_fault: Some("injected: fused kernel fault".to_string()),
            force_fusion: true,
        },
        SupervisionCase {
            name: "kernel fault + sticky commit -> interpreter".to_string(),
            script: fusible,
            plan: FaultPlan::new().rename_error("/out", "media failure on commit"),
            expect: Recovery::KernelFailover,
            baseline_faulted: true,
            kernel_fault: Some("injected: fused kernel fault".to_string()),
            force_fusion: true,
        },
        SupervisionCase {
            name: "loop: iteration-1 fault -> recover next iter".to_string(),
            // Three iterations of a fused chain. The kernel fault hits
            // every fused rung; the once-only commit fault additionally
            // breaks iteration 1's unfused rung — so iteration 1 walks
            // the whole ladder to the interpreter while iterations 2-3
            // stop at the unfused pipeline, re-attempting the plan the
            // cache kept (failures never evict). The trailing echo
            // proves loop state ($f, $?) survived the mid-loop failover.
            script: format!(
                "for f in 1 2 3; do cat {path} | tr A-Z a-z | grep -v qqqq | cut -c 1-40 >> /out; done\n\
                 echo loop-done $f $?"
            ),
            plan: FaultPlan::new().rule(jash_io::fault::FaultRule {
                path: Some("/out".to_string()),
                op: jash_io::fault::FaultOp::Rename,
                trigger: jash_io::fault::Trigger::Always,
                kind: jash_io::fault::FaultKind::Error {
                    kind: std::io::ErrorKind::Other,
                    msg: "injected: media failure on commit".to_string(),
                },
                once: true,
            }),
            expect: Recovery::LoopRecovery,
            baseline_faulted: false,
            kernel_fault: Some("injected: fused kernel fault".to_string()),
            force_fusion: true,
        },
    ]
}

/// The JIT's behavior under one supervision case.
pub struct SupervisionRow {
    /// Case name.
    pub case: String,
    /// Expected mechanism.
    pub expect: Recovery,
    /// Session exit status.
    pub status: i32,
    /// Status, stdout, and `/out` all equal to the baseline run.
    pub matches_baseline: bool,
    /// Whether any `.jash-stage-*` file survived (must never happen).
    pub staging_debris: bool,
    /// Whether the supervision log shows the expected recovery events.
    pub expected_behavior: bool,
    /// Plan-cache hits in the JashJit run (loop cases reuse iteration
    /// 1's plan; failures must not evict it).
    pub plan_cache_hits: u64,
    /// The runtime record of the JashJit run (counters + event log).
    pub runtime: RuntimeInfo,
}

/// Runs the supervision sweep: each case on JashJit under the fault,
/// compared against a Bash baseline (faulted or clean per the case).
pub fn run_supervision_sweep(
    stage: &dyn Fn(&FsHandle),
    cases: &[SupervisionCase],
    machine: MachineProfile,
) -> Vec<SupervisionRow> {
    let planner = PlannerOptions {
        min_speedup: 0.0,
        force_width: Some(machine.cores.min(4)),
        ..Default::default()
    };
    let run = |engine: Engine, plan: Option<FaultPlan>, case: &SupervisionCase| {
        let inner = jash_io::mem_fs();
        stage(&inner);
        let fs: FsHandle = match plan {
            Some(p) if !p.is_empty() => FaultFs::wrap(Arc::clone(&inner), p),
            _ => Arc::clone(&inner),
        };
        let mut state = ShellState::new(fs);
        let mut shell = Jash::new(engine, machine);
        shell.planner = planner;
        shell.planner.force_fusion = case.force_fusion;
        if engine == Engine::JashJit {
            shell.kernel_fault = case.kernel_fault.clone();
        }
        let result = match shell.run_script(&mut state, &case.script) {
            Ok(r) => r,
            Err(e) => jash_interp::RunResult {
                status: 2,
                stdout: Vec::new(),
                stderr: format!("jash: {e}\n").into_bytes(),
            },
        };
        let out_file = jash_io::fs::read_to_vec(inner.as_ref(), "/out").ok();
        let hits = shell.core.plan_cache.hits;
        (result, out_file, debris(&inner), shell.core.runtime, hits)
    };

    cases
        .iter()
        .map(|case| {
            let baseline_plan = case.baseline_faulted.then(|| case.plan.clone());
            let (base, base_out, _, _, _) = run(Engine::Bash, baseline_plan, case);
            let (jit, jit_out, jit_debris, runtime, plan_cache_hits) =
                run(Engine::JashJit, Some(case.plan.clone()), case);
            let log = &runtime.supervision;
            let expected_behavior = match case.expect {
                Recovery::Retry => {
                    runtime.regions_failed_over == 0
                        && log.recoveries() >= 1
                        && log.degradations() == 0
                        && log
                            .events
                            .iter()
                            .any(|e| matches!(e, jash_core::SupervisionEvent::Backoff { .. }))
                }
                Recovery::Degrade => {
                    runtime.regions_failed_over == 0
                        && log.recoveries() >= 1
                        && log.degradations() >= 1
                }
                Recovery::Breaker => log.breaker_opens() >= 1 && log.breaker_routed() >= 1,
                Recovery::KernelDegrade => {
                    runtime.regions_failed_over == 0
                        && log.kernel_degradations() >= 1
                        && log.recoveries() >= 1
                }
                Recovery::KernelFailover => {
                    log.kernel_degradations() >= 1 && runtime.regions_failed_over >= 1
                }
                Recovery::LoopRecovery => {
                    // Iteration 1 (and only it) failed over; later
                    // iterations re-attempted the cached plan and
                    // recovered at the unfused rung.
                    runtime.regions_failed_over == 1
                        && log.kernel_degradations() >= 2
                        && runtime.regions_optimized >= 2
                        && log.recoveries() >= 1
                        && plan_cache_hits >= 2
                }
            };
            SupervisionRow {
                case: case.name.clone(),
                expect: case.expect,
                status: jit.status,
                matches_baseline: jit.status == base.status
                    && jit.stdout == base.stdout
                    && jit_out == base_out,
                staging_debris: jit_debris,
                expected_behavior,
                plan_cache_hits,
                runtime,
            }
        })
        .collect()
}

/// Renders the supervision sweep: one summary line per case, followed by
/// that case's full supervision event log (the recovery story, step by
/// step).
pub fn render_supervision(rows: &[SupervisionRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<44} {:<8} {:>6} {:>9} {:>8} {:>9}\n",
        "case", "expect", "status", "equal", "debris", "behavior"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<44} {:<8} {:>6} {:>9} {:>8} {:>9}\n",
            r.case,
            r.expect.to_string(),
            r.status,
            if r.matches_baseline { "ok" } else { "DIVERGED" },
            if r.staging_debris { "LEAKED" } else { "-" },
            if r.expected_behavior { "ok" } else { "MISSING" },
        ));
    }
    for r in rows {
        out.push_str(&format!(
            "\n[{}] optimized={} recovered={} failed_over={}\n",
            r.case,
            r.runtime.regions_optimized,
            r.runtime.regions_recovered,
            r.runtime.regions_failed_over
        ));
        for line in r.runtime.supervision.render().lines() {
            out.push_str("  ");
            out.push_str(line);
            out.push('\n');
        }
    }
    out
}

/// Whether the supervision sweep holds: every case matches its baseline,
/// leaked nothing, and showed the expected recovery mechanism.
pub fn supervision_holds(rows: &[SupervisionRow]) -> bool {
    rows.iter()
        .all(|r| r.matches_baseline && !r.staging_debris && r.expected_behavior)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_sweep_is_crash_equivalent() {
        let docs = crate::documents(64 * 1024, 11);
        let dict = crate::dictionary();
        let len = docs.len() as u64;
        let stage = move |fs: &FsHandle| {
            jash_io::fs::write_file(fs.as_ref(), "/data/docs.txt", &docs).unwrap();
            jash_io::fs::write_file(fs.as_ref(), "/data/dict.txt", &dict).unwrap();
        };
        let script =
            "cat /data/docs.txt | tr A-Z a-z | tr -cs a-z '\\n' | sort -u | comm -13 /data/dict.txt - > /out";
        let machine = MachineProfile {
            cores: 4,
            disk: jash_io::DiskProfile::ramdisk(),
            mem_mb: 4 * 1024,
        };
        let rows = run_sweep(script, &stage, &default_sweep("/data/docs.txt", len, 7), machine);
        assert_eq!(rows.len(), 8 * Engine::ALL.len());
        assert!(sweep_holds(&rows), "\n{}", render(&rows));
        // The injected faults actually made the JIT fail over somewhere.
        assert!(rows
            .iter()
            .any(|r| r.engine == Engine::JashJit && r.failed_over));
    }

    #[test]
    fn supervision_sweep_demonstrates_the_ladder() {
        let docs = crate::documents(64 * 1024, 11);
        let dict = crate::dictionary();
        let len = docs.len() as u64;
        let stage = move |fs: &FsHandle| {
            jash_io::fs::write_file(fs.as_ref(), "/data/docs.txt", &docs).unwrap();
            jash_io::fs::write_file(fs.as_ref(), "/data/dict.txt", &dict).unwrap();
        };
        let machine = MachineProfile {
            cores: 4,
            disk: jash_io::DiskProfile::ramdisk(),
            mem_mb: 4 * 1024,
        };
        let cases = default_supervision_sweep("/data/docs.txt", len);
        let rows = run_supervision_sweep(&stage, &cases, machine);
        assert_eq!(rows.len(), 6);
        assert!(
            supervision_holds(&rows),
            "\n{}",
            render_supervision(&rows)
        );
        // Each case exercised a *different* mechanism.
        assert_eq!(rows[0].expect, Recovery::Retry);
        assert_eq!(rows[1].expect, Recovery::Degrade);
        assert_eq!(rows[2].expect, Recovery::Breaker);
        assert_eq!(rows[3].expect, Recovery::KernelDegrade);
        assert_eq!(rows[4].expect, Recovery::KernelFailover);
        assert_eq!(rows[5].expect, Recovery::LoopRecovery);
        // The loop case's fault hit one iteration; the others recovered
        // on the cached plan.
        assert_eq!(rows[5].runtime.regions_failed_over, 1);
        assert!(rows[5].plan_cache_hits >= 2, "\n{}", render_supervision(&rows));
        // The kernel-eviction story is spelled out in the rendered log.
        assert!(
            render_supervision(&rows).contains("kernel-degrade"),
            "\n{}",
            render_supervision(&rows)
        );
    }
}
