//! Fault-sweep harness: crash-equivalence measurement.
//!
//! Where `fig1` measures *speed*, this harness measures *soundness under
//! failure*: it runs one script under a family of deterministic fault
//! plans on all three engines and checks, per fault, that the optimizing
//! engines degrade to exactly the sequential baseline — same exit
//! status, byte-identical stdout, same surviving files, and no
//! transactional staging debris. It is the measurement instrument for
//! the tentpole claim that optimized execution is crash-equivalent to
//! sequential execution.
//!
//! Run it with `cargo run --release -p jash-bench --bin faultsweep`
//! (knobs: `JASH_BENCH_MB`, `JASH_FAULT_SEED`).

use jash_core::{Engine, Jash, TraceEvent};
use jash_cost::{MachineProfile, PlannerOptions};
use jash_expand::ShellState;
use jash_io::{FaultFs, FaultPlan, FsHandle};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One fault scenario in a sweep.
pub struct FaultCase {
    /// Display name.
    pub name: String,
    /// The injected plan (empty for the baseline case).
    pub plan: FaultPlan,
}

/// The default sweep over a single input file of `input_len` bytes:
/// a clean control, read errors at the head / middle / tail (the tail
/// lands in the last parallel branch of a contiguous split), mid-stream
/// truncation, an open failure, benign short reads, and a seeded
/// probabilistic error mix.
pub fn default_sweep(path: &str, input_len: u64, seed: u64) -> Vec<FaultCase> {
    let mk = |name: &str, plan: FaultPlan| FaultCase {
        name: name.to_string(),
        plan,
    };
    vec![
        mk("clean (control)", FaultPlan::new()),
        mk(
            "read error @ head",
            FaultPlan::new().read_error_at(path, input_len / 100, "disk surface error"),
        ),
        mk(
            "read error @ middle",
            FaultPlan::new().read_error_at(path, input_len / 2, "disk surface error"),
        ),
        mk(
            "read error @ tail",
            FaultPlan::new().read_error_at(path, input_len - input_len / 100, "disk surface error"),
        ),
        mk(
            "truncation @ middle",
            FaultPlan::new().truncate_at(path, input_len / 2),
        ),
        mk(
            "open failure",
            FaultPlan::new().open_error(path, "permission denied"),
        ),
        mk(
            "short reads (benign)",
            FaultPlan::new().short_reads(path, 101),
        ),
        mk(
            "probabilistic read errors",
            FaultPlan::new().with_seed(seed).rule(jash_io::fault::FaultRule {
                path: Some(path.to_string()),
                op: jash_io::fault::FaultOp::Read,
                trigger: jash_io::fault::Trigger::Probability(0.02),
                kind: jash_io::fault::FaultKind::Error {
                    kind: std::io::ErrorKind::Other,
                    msg: "injected: probabilistic read error".to_string(),
                },
                once: false,
            }),
        ),
    ]
}

/// One engine's behavior under one fault case.
pub struct SweepRow {
    /// Fault case name.
    pub case: String,
    /// Engine measured.
    pub engine: Engine,
    /// Exit status of the session.
    pub status: i32,
    /// Whether an optimized region faulted and fell back.
    pub failed_over: bool,
    /// Wall time of the run.
    pub wall: Duration,
    /// Status and stdout both equal to the Bash baseline under the same
    /// fault.
    pub matches_baseline: bool,
    /// Whether any `.jash-stage-*` file survived (must never happen).
    pub staging_debris: bool,
}

fn debris(fs: &FsHandle) -> bool {
    for dir in ["/", "/tmp", "/data"] {
        for name in fs.list_dir(dir).unwrap_or_default() {
            if name.contains(".jash-stage-") {
                return true;
            }
        }
    }
    false
}

/// Runs `script` on every engine under every case. `stage` is called
/// with a fresh in-memory fs per run so each run sees identical inputs.
pub fn run_sweep(
    script: &str,
    stage: &dyn Fn(&FsHandle),
    cases: &[FaultCase],
    machine: MachineProfile,
) -> Vec<SweepRow> {
    let mut rows = Vec::new();
    for case in cases {
        let mut baseline: Option<(i32, Vec<u8>)> = None;
        for engine in Engine::ALL {
            let inner = jash_io::mem_fs();
            stage(&inner);
            let fs: FsHandle = if case.plan.is_empty() {
                Arc::clone(&inner)
            } else {
                FaultFs::wrap(Arc::clone(&inner), case.plan.clone())
            };
            let mut state = ShellState::new(fs);
            let mut shell = Jash::new(engine, machine);
            shell.planner = PlannerOptions {
                min_speedup: 0.0,
                force_width: Some(machine.cores.min(4)),
                ..Default::default()
            };
            let t0 = Instant::now();
            let result = match shell.run_script(&mut state, script) {
                Ok(r) => r,
                Err(e) => jash_interp::RunResult {
                    status: 2,
                    stdout: Vec::new(),
                    stderr: format!("jash: {e}\n").into_bytes(),
                },
            };
            let wall = t0.elapsed();
            let matches_baseline = match &baseline {
                None => {
                    baseline = Some((result.status, result.stdout.clone()));
                    true
                }
                Some((st, out)) => *st == result.status && *out == result.stdout,
            };
            rows.push(SweepRow {
                case: case.name.clone(),
                engine,
                status: result.status,
                failed_over: shell.trace.iter().any(TraceEvent::failed_over),
                wall,
                matches_baseline,
                staging_debris: debris(&inner),
            });
        }
    }
    rows
}

/// Renders the sweep as an aligned text table.
pub fn render(rows: &[SweepRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<28} {:<6} {:>6} {:>10} {:>9} {:>8} {:>7}\n",
        "fault", "engine", "status", "failover", "equal", "debris", "ms"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<28} {:<6} {:>6} {:>10} {:>9} {:>8} {:>7}\n",
            r.case,
            r.engine.to_string(),
            r.status,
            if r.failed_over { "yes" } else { "-" },
            if r.matches_baseline { "ok" } else { "DIVERGED" },
            if r.staging_debris { "LEAKED" } else { "-" },
            r.wall.as_millis(),
        ));
    }
    out
}

/// Whether the sweep upholds crash-equivalence: every row matches the
/// baseline and no row leaked staging files.
pub fn sweep_holds(rows: &[SweepRow]) -> bool {
    rows.iter().all(|r| r.matches_baseline && !r.staging_debris)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_sweep_is_crash_equivalent() {
        let docs = crate::documents(64 * 1024, 11);
        let dict = crate::dictionary();
        let len = docs.len() as u64;
        let stage = move |fs: &FsHandle| {
            jash_io::fs::write_file(fs.as_ref(), "/data/docs.txt", &docs).unwrap();
            jash_io::fs::write_file(fs.as_ref(), "/data/dict.txt", &dict).unwrap();
        };
        let script =
            "cat /data/docs.txt | tr A-Z a-z | tr -cs a-z '\\n' | sort -u | comm -13 /data/dict.txt - > /out";
        let machine = MachineProfile {
            cores: 4,
            disk: jash_io::DiskProfile::ramdisk(),
            mem_mb: 4 * 1024,
        };
        let rows = run_sweep(script, &stage, &default_sweep("/data/docs.txt", len, 7), machine);
        assert_eq!(rows.len(), 8 * Engine::ALL.len());
        assert!(sweep_holds(&rows), "\n{}", render(&rows));
        // The injected faults actually made the JIT fail over somewhere.
        assert!(rows
            .iter()
            .any(|r| r.engine == Engine::JashJit && r.failed_over));
    }
}
