//! Benchmark harness: workload generators, simulated machines, and
//! engine runners for regenerating the paper's figure and in-text claims.
//!
//! Every experiment follows the same scheme: build a fresh simulated
//! machine (in-memory filesystem + modeled disk + modeled multi-core
//! CPU), stage inputs for free, run a script under one of the three
//! engines, and report wall-clock time — which, because the models sleep,
//! reflects the *modeled* machine rather than the CI host.
//!
//! Environment knobs:
//! * `JASH_BENCH_MB` — input corpus size in MiB (default 16);
//! * `JASH_TIME_SCALE` — multiplier on all modeled durations (default
//!   5.0 so the modeled machine dominates host compute — scales below
//!   ~2 let the host's real single-core time pollute the ratios; the
//!   full Figure 1 run stays under a minute).

use jash_core::{Engine, Jash, TraceEvent};

pub mod crash;
pub mod dynbench;
pub mod faults;
pub mod fig1;
pub mod fusion;
pub mod serve;
pub mod servecrash;
pub mod tenant;
pub mod traceover;
use jash_cost::MachineProfile;
use jash_expand::ShellState;
use jash_io::{CpuModel, DiskModel, DiskProfile, FsHandle, MemFs};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The corpus size the paper's Figure 1 used.
pub const PAPER_INPUT_BYTES: u64 = 3 * 1024 * 1024 * 1024;

/// Input size for benchmark runs.
pub fn bench_input_bytes() -> u64 {
    let mb: u64 = std::env::var("JASH_BENCH_MB")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(16);
    mb * 1024 * 1024
}

/// Global time-scale for modeled durations.
pub fn time_scale() -> f64 {
    std::env::var("JASH_TIME_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5.0)
}

/// Scales a disk profile's burst bucket to the benchmark input size, so a
/// scaled-down corpus exhausts gp2 burst credit the way 3 GB exhausts the
/// real one.
pub fn scale_burst(mut profile: DiskProfile, input_bytes: u64) -> DiskProfile {
    let ratio = input_bytes as f64 / PAPER_INPUT_BYTES as f64;
    profile.burst_credit_ios = (profile.burst_credit_ios * ratio).max(1.0);
    profile
}

/// A fully wired simulated machine.
pub struct SimMachine {
    /// Planner-visible profile.
    pub profile: MachineProfile,
    /// Filesystem with the modeled disk attached.
    pub fs: FsHandle,
    /// Concrete handle for free staging of inputs.
    mem: Arc<MemFs>,
    /// The modeled CPU.
    pub cpu: Arc<CpuModel>,
}

/// Builds a simulated machine for `profile`, scaling the disk's burst
/// bucket to `input_bytes` and applying the global time scale.
pub fn sim_machine(profile: MachineProfile, input_bytes: u64) -> SimMachine {
    let scale = time_scale();
    let disk = scale_burst(profile.disk, input_bytes).scaled(scale);
    let mem = Arc::new(MemFs::with_disk(DiskModel::new(disk)));
    let cpu = CpuModel::new(profile.cores, scale);
    SimMachine {
        // The planner sees the *unscaled* profile: its estimates are in
        // modeled seconds, consistent with the modeled sleeps.
        profile: MachineProfile {
            disk: scale_burst(profile.disk, input_bytes),
            ..profile
        },
        fs: Arc::clone(&mem) as FsHandle,
        mem,
        cpu,
    }
}

/// Stages a file without charging the disk model.
pub fn stage(sim: &SimMachine, path: &str, data: &[u8]) {
    sim.mem.install(path, data.to_vec());
}

/// One engine run: returns wall time, the result, and the JIT trace.
pub fn run_engine(
    engine: Engine,
    sim: &SimMachine,
    script: &str,
) -> (Duration, jash_interp::RunResult, Vec<TraceEvent>) {
    run_engine_traced(engine, sim, script, None)
}

/// [`run_engine`] with an optional structured tracer attached — the
/// probe the trace-overhead gate measures against the untraced run.
pub fn run_engine_traced(
    engine: Engine,
    sim: &SimMachine,
    script: &str,
    tracer: Option<Arc<jash_trace::Tracer>>,
) -> (Duration, jash_interp::RunResult, Vec<TraceEvent>) {
    let mut state = ShellState::new(Arc::clone(&sim.fs));
    state.cpu = Some(Arc::clone(&sim.cpu));
    let mut shell = Jash::new(engine, sim.profile);
    shell.tracer = tracer;
    let t0 = Instant::now();
    let result = shell
        .run_script(&mut state, script)
        .expect("benchmark script runs");
    (t0.elapsed(), result, shell.core.trace)
}

// ---------------------------------------------------------------------
// Workload generators
// ---------------------------------------------------------------------

const VOCAB: &[&str] = &[
    "the", "quick", "brown", "Fox", "jumps", "OVER", "lazy", "dog", "shell", "pipeline",
    "stream", "Unix", "data", "sort", "words", "paper", "HotOS", "jash", "compile", "merge",
    "split", "cloud", "script", "posix", "expand", "Kernel", "buffer", "thread", "core",
];

/// A corpus of whitespace-separated words, ~`bytes` long.
pub fn word_corpus(bytes: u64, seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(bytes as usize + 64);
    while (out.len() as u64) < bytes {
        let words = rng.random_range(4..12);
        for i in 0..words {
            if i > 0 {
                out.push(b' ');
            }
            out.extend_from_slice(VOCAB[rng.random_range(0..VOCAB.len())].as_bytes());
        }
        out.push(b'\n');
    }
    out
}

/// NOAA-style fixed-width weather records (temperature in columns 89-92,
/// `9999` meaning missing) — the input of the paper's §2.1 pipeline.
pub fn noaa_records(n: usize, seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n * 106);
    for _ in 0..n {
        let mut line = vec![b'0'; 105];
        for b in line.iter_mut().take(88) {
            *b = b'a' + rng.random_range(0..26) as u8;
        }
        let temp: u32 = if rng.random_range(0..10) == 0 {
            9999
        } else {
            rng.random_range(0..600)
        };
        line[88..92].copy_from_slice(format!("{temp:04}").as_bytes());
        line.push(b'\n');
        out.extend_from_slice(&line);
    }
    out
}

/// The maximum temperature surviving `grep -v 999` in a generated record
/// set — the oracle the pipeline's answer is checked against.
pub fn noaa_max_valid(records: &[u8]) -> u32 {
    jash_io::split_lines(records)
        .iter()
        .filter_map(|l| {
            let field = std::str::from_utf8(&l[88..92]).ok()?;
            if field.contains("999") {
                return None;
            }
            field.parse::<u32>().ok()
        })
        .max()
        .unwrap_or(0)
}

/// A small English dictionary, sorted, for the spell workload.
pub fn dictionary() -> Vec<u8> {
    let mut words: Vec<&str> = VOCAB.to_vec();
    let mut lower: Vec<String> = words.drain(..).map(|w| w.to_lowercase()).collect();
    lower.sort();
    lower.dedup();
    let mut out = Vec::new();
    for w in lower {
        out.extend_from_slice(w.as_bytes());
        out.push(b'\n');
    }
    out
}

/// Documents with occasional misspellings for the spell workload.
pub fn documents(bytes: u64, seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = word_corpus(bytes, seed);
    // Sprinkle misspellings.
    for _ in 0..8 {
        let word = format!(" misspeling{} ", rng.random_range(0..100));
        out.extend_from_slice(word.as_bytes());
        out.push(b'\n');
    }
    out
}

/// Apache-ish log lines for incremental workloads.
pub fn log_lines(n: usize, seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n * 48);
    for i in 0..n {
        let status = [200, 200, 200, 404, 500][rng.random_range(0..5)];
        out.extend_from_slice(
            format!("10.0.0.{} GET /page/{i} {status}\n", rng.random_range(0..255)).as_bytes(),
        );
    }
    out
}

// ---------------------------------------------------------------------
// Reporting
// ---------------------------------------------------------------------

/// Prints one table row: label plus time in modeled-seconds.
pub fn report_row(label: &str, wall: Duration) {
    println!("{label:<44} {:>9.3} s", wall.as_secs_f64());
}

/// Prints a section header.
pub fn report_header(title: &str) {
    println!("\n=== {title} ===");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_line_shaped_and_sized() {
        let c = word_corpus(10_000, 1);
        assert!(c.len() >= 10_000);
        assert!(c.ends_with(b"\n"));
        assert!(c.iter().filter(|&&b| b == b'\n').count() > 50);
    }

    #[test]
    fn corpus_deterministic_by_seed() {
        assert_eq!(word_corpus(5_000, 7), word_corpus(5_000, 7));
        assert_ne!(word_corpus(5_000, 7), word_corpus(5_000, 8));
    }

    #[test]
    fn noaa_records_fixed_width() {
        let r = noaa_records(100, 3);
        for line in jash_io::split_lines(&r) {
            assert_eq!(line.len(), 105);
            assert!(line[88..92].iter().all(u8::is_ascii_digit));
        }
    }

    #[test]
    fn dictionary_sorted() {
        let d = dictionary();
        let lines: Vec<&[u8]> = jash_io::split_lines(&d);
        assert!(lines.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn burst_scaling_proportional() {
        let p = scale_burst(DiskProfile::gp2_standard(), PAPER_INPUT_BYTES / 96);
        assert!(p.burst_credit_ios < DiskProfile::gp2_standard().burst_credit_ios / 50.0);
    }

    #[test]
    fn sim_machine_runs_an_engine() {
        let sim = sim_machine(
            MachineProfile {
                cores: 4,
                disk: DiskProfile::ramdisk(),
                mem_mb: 1024,
            },
            1024,
        );
        stage(&sim, "/in", b"b\na\n");
        let (wall, result, _) = run_engine(Engine::Bash, &sim, "sort /in");
        assert_eq!(result.stdout, b"a\nb\n");
        assert!(wall.as_nanos() > 0);
    }
}
