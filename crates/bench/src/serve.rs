//! Serve-mode fault sweep: the existing fault matrix driven through the
//! daemon path.
//!
//! The in-process sweep ([`crate::faults::run_sweep`]) established that
//! the optimizing engines are crash-equivalent to sequential execution.
//! This harness re-asks that question *through the front door*: each
//! fault case is submitted to a real [`Server`] over its unix socket,
//! executed by the JIT engine behind admission control, and the reply
//! frames are compared against an in-process sequential Bash baseline
//! under the same fault — same exit status, byte-identical stdout and
//! `/out`, and zero transactional staging debris after drain.
//!
//! Run it with `cargo run --release -p jash-bench --bin faultsweep -- --serve`.

use crate::faults::FaultCase;
use jash_core::{Engine, Jash};
use jash_cost::MachineProfile;
use jash_expand::ShellState;
use jash_io::{FaultFs, FsHandle, TempDir};
use jash_serve::{submit, Request, Server, ServerConfig};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The daemon's behavior under one fault case.
pub struct ServeSweepRow {
    /// Fault case name.
    pub case: String,
    /// Exit status the `Done` frame reported.
    pub status: i32,
    /// Whether the daemon admitted and answered the run at all.
    pub answered: bool,
    /// Status, stdout, and `/out` all equal to the sequential baseline
    /// under the same fault.
    pub matches_baseline: bool,
    /// Whether any `.jash-stage-*` file survived the drain.
    pub staging_debris: bool,
    /// Submit-to-Done wall time.
    pub wall: Duration,
}

/// Recursive staging-debris audit over the whole virtual tree (served
/// runs journal under per-run directories, so the flat probe in
/// `faults.rs` is not enough here).
fn debris(fs: &FsHandle) -> bool {
    let mut stack = vec!["/".to_string()];
    while let Some(dir) = stack.pop() {
        for name in fs.list_dir(&dir).unwrap_or_default() {
            let path = if dir == "/" {
                format!("/{name}")
            } else {
                format!("{dir}/{name}")
            };
            if fs.metadata(&path).map(|m| m.is_dir).unwrap_or(false) {
                stack.push(path);
            } else if name.contains(".jash-stage-") {
                return true;
            }
        }
    }
    false
}

/// Runs every case through a fault-injecting daemon and compares each
/// reply against the sequential baseline. `stage` is called with a
/// fresh in-memory fs per run so each run sees identical inputs.
pub fn run_serve_sweep(
    script: &str,
    stage: &dyn Fn(&FsHandle),
    cases: &[FaultCase],
    machine: MachineProfile,
) -> Vec<ServeSweepRow> {
    cases
        .iter()
        .map(|case| {
            // Sequential ground truth under the same fault.
            let base_fs = jash_io::mem_fs();
            stage(&base_fs);
            let faulted: FsHandle = if case.plan.is_empty() {
                Arc::clone(&base_fs)
            } else {
                FaultFs::wrap(Arc::clone(&base_fs), case.plan.clone())
            };
            let mut state = ShellState::new(faulted);
            let mut shell = Jash::new(Engine::Bash, machine);
            let base = match shell.run_script(&mut state, script) {
                Ok(r) => (r.status, r.stdout),
                Err(e) => (2, format!("jash: {e}\n").into_bytes()),
            };
            let base_out = jash_io::fs::read_to_vec(base_fs.as_ref(), "/out").ok();

            // The same case through the daemon: JIT engine, admission
            // control, per-run journal, fault injected by the run's
            // injector hook (wired to its cancel token).
            let dir = TempDir::new("jash-serve-sweep");
            let served_fs = jash_io::mem_fs();
            stage(&served_fs);
            let mut cfg = ServerConfig::new(dir.path().join("sock"), Arc::clone(&served_fs));
            cfg.machine = machine;
            cfg.workers = 2;
            cfg.eager = true;
            cfg.durable = false;
            cfg.journal_root = Some("/.jash-serve".to_string());
            let plan = case.plan.clone();
            cfg.fault_injector = Some(Arc::new(move |_spec, fs, token| {
                Some(FaultFs::wrap_with_cancel(fs, plan.clone(), token.clone()) as FsHandle)
            }));
            let server = Server::start(cfg).expect("serve sweep: bind");

            let mut req = Request::new(script);
            req.tenant = "sweep".to_string();
            if !case.plan.is_empty() {
                req.fault = Some(case.name.clone());
            }
            let t0 = Instant::now();
            let reply = submit(server.socket(), &req).expect("serve sweep: submit");
            let wall = t0.elapsed();
            server.drain();

            let served_out = jash_io::fs::read_to_vec(served_fs.as_ref(), "/out").ok();
            ServeSweepRow {
                case: case.name.clone(),
                status: reply.status.unwrap_or(-1),
                answered: reply.completed(),
                matches_baseline: reply.status == Some(base.0)
                    && reply.stdout == base.1
                    && served_out == base_out,
                staging_debris: debris(&served_fs),
                wall,
            }
        })
        .collect()
}

/// Renders the serve sweep as an aligned text table.
pub fn render_serve(rows: &[ServeSweepRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<28} {:>6} {:>9} {:>9} {:>8} {:>7}\n",
        "fault", "status", "answered", "equal", "debris", "ms"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<28} {:>6} {:>9} {:>9} {:>8} {:>7}\n",
            r.case,
            r.status,
            if r.answered { "yes" } else { "NO" },
            if r.matches_baseline { "ok" } else { "DIVERGED" },
            if r.staging_debris { "LEAKED" } else { "-" },
            r.wall.as_millis(),
        ));
    }
    out
}

/// Whether the daemon path upholds crash-equivalence: every case was
/// answered, matched the sequential baseline, and leaked nothing.
pub fn serve_sweep_holds(rows: &[ServeSweepRow]) -> bool {
    rows.iter()
        .all(|r| r.answered && r.matches_baseline && !r.staging_debris)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::default_sweep;

    #[test]
    fn daemon_path_is_crash_equivalent_to_sequential() {
        let docs = crate::documents(64 * 1024, 11);
        let dict = crate::dictionary();
        let len = docs.len() as u64;
        let stage = move |fs: &FsHandle| {
            jash_io::fs::write_file(fs.as_ref(), "/data/docs.txt", &docs).unwrap();
            jash_io::fs::write_file(fs.as_ref(), "/data/dict.txt", &dict).unwrap();
        };
        let script =
            "cat /data/docs.txt | tr A-Z a-z | tr -cs a-z '\\n' | sort -u | comm -13 /data/dict.txt - > /out";
        let machine = MachineProfile {
            cores: 4,
            disk: jash_io::DiskProfile::ramdisk(),
            mem_mb: 4 * 1024,
        };
        let rows = run_serve_sweep(
            script,
            &stage,
            &default_sweep("/data/docs.txt", len, 7),
            machine,
        );
        assert_eq!(rows.len(), 8);
        assert!(serve_sweep_holds(&rows), "\n{}", render_serve(&rows));
    }
}
