//! Serve-mode fault sweep: the existing fault matrix driven through the
//! daemon path.
//!
//! The in-process sweep ([`crate::faults::run_sweep`]) established that
//! the optimizing engines are crash-equivalent to sequential execution.
//! This harness re-asks that question *through the front door*: each
//! fault case is submitted to a real [`Server`] over its unix socket,
//! executed by the JIT engine behind admission control, and the reply
//! frames are compared against an in-process sequential Bash baseline
//! under the same fault — same exit status, byte-identical stdout and
//! `/out`, and zero transactional staging debris after drain.
//!
//! Run it with `cargo run --release -p jash-bench --bin faultsweep -- --serve`.

use crate::faults::FaultCase;
use jash_core::{Engine, Jash};
use jash_cost::MachineProfile;
use jash_expand::ShellState;
use jash_io::{FaultFs, FsHandle, TempDir};
use jash_serve::{submit, Request, Server, ServerConfig};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The daemon's behavior under one fault case.
pub struct ServeSweepRow {
    /// Fault case name.
    pub case: String,
    /// Exit status the `Done` frame reported.
    pub status: i32,
    /// Whether the daemon admitted and answered the run at all.
    pub answered: bool,
    /// Status, stdout, and `/out` all equal to the sequential baseline
    /// under the same fault.
    pub matches_baseline: bool,
    /// Whether any `.jash-stage-*` file survived the drain.
    pub staging_debris: bool,
    /// Submit-to-Done wall time.
    pub wall: Duration,
}

/// Recursive staging-debris audit over the whole virtual tree (served
/// runs journal under per-run directories, so the flat probe in
/// `faults.rs` is not enough here).
fn debris(fs: &FsHandle) -> bool {
    let mut stack = vec!["/".to_string()];
    while let Some(dir) = stack.pop() {
        for name in fs.list_dir(&dir).unwrap_or_default() {
            let path = if dir == "/" {
                format!("/{name}")
            } else {
                format!("{dir}/{name}")
            };
            if fs.metadata(&path).map(|m| m.is_dir).unwrap_or(false) {
                stack.push(path);
            } else if name.contains(".jash-stage-") {
                return true;
            }
        }
    }
    false
}

/// Runs every case through a fault-injecting daemon and compares each
/// reply against the sequential baseline. `stage` is called with a
/// fresh in-memory fs per run so each run sees identical inputs.
pub fn run_serve_sweep(
    script: &str,
    stage: &dyn Fn(&FsHandle),
    cases: &[FaultCase],
    machine: MachineProfile,
) -> Vec<ServeSweepRow> {
    cases
        .iter()
        .map(|case| {
            // Sequential ground truth under the same fault.
            let base_fs = jash_io::mem_fs();
            stage(&base_fs);
            let faulted: FsHandle = if case.plan.is_empty() {
                Arc::clone(&base_fs)
            } else {
                FaultFs::wrap(Arc::clone(&base_fs), case.plan.clone())
            };
            let mut state = ShellState::new(faulted);
            let mut shell = Jash::new(Engine::Bash, machine);
            let base = match shell.run_script(&mut state, script) {
                Ok(r) => (r.status, r.stdout),
                Err(e) => (2, format!("jash: {e}\n").into_bytes()),
            };
            let base_out = jash_io::fs::read_to_vec(base_fs.as_ref(), "/out").ok();

            // The same case through the daemon: JIT engine, admission
            // control, per-run journal, fault injected by the run's
            // injector hook (wired to its cancel token).
            let dir = TempDir::new("jash-serve-sweep");
            let served_fs = jash_io::mem_fs();
            stage(&served_fs);
            let mut cfg = ServerConfig::new(dir.path().join("sock"), Arc::clone(&served_fs));
            cfg.machine = machine;
            cfg.workers = 2;
            cfg.eager = true;
            cfg.durable = false;
            cfg.journal_root = Some("/.jash-serve".to_string());
            let plan = case.plan.clone();
            cfg.fault_injector = Some(Arc::new(move |_spec, fs, token| {
                Some(FaultFs::wrap_with_cancel(fs, plan.clone(), token.clone()) as FsHandle)
            }));
            let server = Server::start(cfg).expect("serve sweep: bind");

            let mut req = Request::new(script);
            req.tenant = "sweep".to_string();
            if !case.plan.is_empty() {
                req.fault = Some(case.name.clone());
            }
            let t0 = Instant::now();
            let reply = submit(server.socket(), &req).expect("serve sweep: submit");
            let wall = t0.elapsed();
            server.drain();

            let served_out = jash_io::fs::read_to_vec(served_fs.as_ref(), "/out").ok();
            ServeSweepRow {
                case: case.name.clone(),
                status: reply.status.unwrap_or(-1),
                answered: reply.completed(),
                matches_baseline: reply.status == Some(base.0)
                    && reply.stdout == base.1
                    && served_out == base_out,
                staging_debris: debris(&served_fs),
                wall,
            }
        })
        .collect()
}

/// Renders the serve sweep as an aligned text table.
pub fn render_serve(rows: &[ServeSweepRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<28} {:>6} {:>9} {:>9} {:>8} {:>7}\n",
        "fault", "status", "answered", "equal", "debris", "ms"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<28} {:>6} {:>9} {:>9} {:>8} {:>7}\n",
            r.case,
            r.status,
            if r.answered { "yes" } else { "NO" },
            if r.matches_baseline { "ok" } else { "DIVERGED" },
            if r.staging_debris { "LEAKED" } else { "-" },
            r.wall.as_millis(),
        ));
    }
    out
}

/// Whether the daemon path upholds crash-equivalence: every case was
/// answered, matched the sequential baseline, and leaked nothing.
pub fn serve_sweep_holds(rows: &[ServeSweepRow]) -> bool {
    rows.iter()
        .all(|r| r.answered && r.matches_baseline && !r.staging_debris)
}

/// What the noisy-neighbor quarantine drill observed.
#[derive(Debug)]
pub struct QuarantineDrill {
    /// Every steady-tenant run completed with status 0.
    pub steady_all_clean: bool,
    /// The steady tenants' committed outputs are byte-identical to the
    /// sequential baseline.
    pub steady_matches_baseline: bool,
    /// The noisy tenant's post-threshold submission was bounced with
    /// `QUARANTINED` (without running).
    pub noisy_rejected: bool,
    /// The half-open probe ran clean and lifted the quarantine.
    pub paroled: bool,
    /// Consecutive failures the drain report attributed to the noisy
    /// tenant (expect exactly the threshold).
    pub noisy_failures: u64,
    /// Quarantine onsets the drain report counted (expect 1).
    pub quarantines: u64,
    /// Whether any `.jash-stage-*` file survived the drain.
    pub staging_debris: bool,
}

/// Whether the quarantine drill upholds tenant isolation end to end.
pub fn quarantine_holds(d: &QuarantineDrill) -> bool {
    d.steady_all_clean
        && d.steady_matches_baseline
        && d.noisy_rejected
        && d.paroled
        && d.noisy_failures == 3
        && d.quarantines == 1
        && !d.staging_debris
}

/// Renders the drill result as a checklist.
pub fn render_quarantine(d: &QuarantineDrill) -> String {
    let tick = |ok: bool| if ok { "ok" } else { "FAILED" };
    format!(
        "{:<44} {}\n{:<44} {}\n{:<44} {}\n{:<44} {}\n{:<44} {} ({} failures, {} quarantine(s))\n\
         {:<44} {}\n",
        "steady tenants all clean",
        tick(d.steady_all_clean),
        "steady outputs byte-identical to baseline",
        tick(d.steady_matches_baseline),
        "noisy tenant bounced with QUARANTINED",
        tick(d.noisy_rejected),
        "half-open probe paroled the tenant",
        tick(d.paroled),
        "drain report attribution",
        tick(d.noisy_failures == 3 && d.quarantines == 1),
        d.noisy_failures,
        d.quarantines,
        "zero staging debris",
        tick(!d.staging_debris),
    )
}

/// The noisy-neighbor quarantine drill: one tenant fails its way into
/// quarantine while two steady tenants keep committing; the breaker
/// must exile only the noisy tenant, the steady outputs must match the
/// sequential baseline byte for byte, and the probe must parole.
pub fn run_quarantine_drill(input_bytes: u64, machine: MachineProfile) -> QuarantineDrill {
    let docs = crate::documents(input_bytes, 19);
    let steady_script = |out: &str| {
        format!("cat /data/docs.txt | tr A-Z a-z | tr -cs a-z '\\n' | sort -u > {out}")
    };
    const NOISY_SCRIPT: &str = "cat /data/docs.txt | tr A-Z a-z | sort -u";

    // Sequential ground truth for the steady tenants' committed file.
    let base_fs = jash_io::mem_fs();
    jash_io::fs::write_file(base_fs.as_ref(), "/data/docs.txt", &docs).unwrap();
    let mut state = ShellState::new(Arc::clone(&base_fs));
    let mut shell = Jash::new(Engine::Bash, machine);
    shell
        .run_script(&mut state, &steady_script("/out-base"))
        .expect("baseline runs");
    let baseline = jash_io::fs::read_to_vec(base_fs.as_ref(), "/out-base").expect("baseline /out");

    let dir = TempDir::new("jash-quarantine-drill");
    let served_fs = jash_io::mem_fs();
    jash_io::fs::write_file(served_fs.as_ref(), "/data/docs.txt", &docs).unwrap();
    let mut cfg = ServerConfig::new(dir.path().join("sock"), Arc::clone(&served_fs));
    cfg.machine = machine;
    cfg.workers = 2;
    cfg.eager = true;
    cfg.durable = false;
    cfg.journal_root = Some("/.jash-serve".to_string());
    cfg.quarantine_failures = 3;
    cfg.quarantine_cooldown = 2;
    cfg.fault_injector = Some(jash_serve::spec_fault_injector());
    let server = Server::start(cfg).expect("quarantine drill: bind");
    let socket = server.socket().to_path_buf();

    // Phase 1: the steady tenants run concurrently (4 runs each, two
    // workers) and must all commit.
    let steady: Vec<_> = [("steady-a", "/out-a"), ("steady-b", "/out-b")]
        .into_iter()
        .map(|(tenant, out)| {
            let socket = socket.clone();
            let script = steady_script(out);
            std::thread::spawn(move || {
                (0..4).all(|_| {
                    submit(&socket, &Request::new(&script).with_tenant(tenant))
                        .is_ok_and(|r| r.status == Some(0))
                })
            })
        })
        .collect();
    let mut steady_all_clean = steady.into_iter().all(|h| h.join().unwrap());

    // Phase 2: the noisy tenant fails three consecutive runs (sticky
    // read fault), tripping the breaker.
    for _ in 0..3 {
        let mut req = Request::new(NOISY_SCRIPT).with_tenant("noisy");
        req.fault = Some("read-error:/data/docs.txt:16384".to_string());
        let reply = submit(&socket, &req).expect("noisy submit");
        assert!(reply.completed() && reply.status != Some(0), "noisy run was meant to fail");
    }

    // Phase 3: quarantined — the next submission bounces without a run.
    let reply = submit(&socket, &Request::new(NOISY_SCRIPT).with_tenant("noisy")).unwrap();
    let noisy_rejected = reply
        .rejected
        .as_ref()
        .is_some_and(|(code, ..)| *code == jash_serve::reject::QUARANTINED)
        && reply.run_id.is_none();

    // Phase 4: a steady run during the quarantine stays clean and ages
    // the cooldown by one admission tick.
    let reply = submit(&socket, &Request::new(steady_script("/out-a")).with_tenant("steady-a"))
        .unwrap();
    steady_all_clean &= reply.status == Some(0);

    // Phase 5-6: cooldown elapsed — the probe runs clean and paroles;
    // the run after it is admitted normally.
    let paroled = (0..2).all(|_| {
        submit(&socket, &Request::new(NOISY_SCRIPT).with_tenant("noisy"))
            .is_ok_and(|r| r.status == Some(0))
    });

    let report = server.drain();
    let noisy_row = report.tenants.iter().find(|t| t.tenant == "noisy");
    let steady_matches_baseline = ["/out-a", "/out-b"].iter().all(|out| {
        jash_io::fs::read_to_vec(served_fs.as_ref(), out).ok().as_deref() == Some(&baseline[..])
    });
    QuarantineDrill {
        steady_all_clean,
        steady_matches_baseline,
        noisy_rejected,
        paroled,
        noisy_failures: noisy_row.map_or(0, |t| t.failures),
        quarantines: noisy_row.map_or(0, |t| t.quarantines),
        staging_debris: debris(&served_fs),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::default_sweep;

    #[test]
    fn daemon_path_is_crash_equivalent_to_sequential() {
        let docs = crate::documents(64 * 1024, 11);
        let dict = crate::dictionary();
        let len = docs.len() as u64;
        let stage = move |fs: &FsHandle| {
            jash_io::fs::write_file(fs.as_ref(), "/data/docs.txt", &docs).unwrap();
            jash_io::fs::write_file(fs.as_ref(), "/data/dict.txt", &dict).unwrap();
        };
        let script =
            "cat /data/docs.txt | tr A-Z a-z | tr -cs a-z '\\n' | sort -u | comm -13 /data/dict.txt - > /out";
        let machine = MachineProfile {
            cores: 4,
            disk: jash_io::DiskProfile::ramdisk(),
            mem_mb: 4 * 1024,
        };
        let rows = run_serve_sweep(
            script,
            &stage,
            &default_sweep("/data/docs.txt", len, 7),
            machine,
        );
        assert_eq!(rows.len(), 8);
        assert!(serve_sweep_holds(&rows), "\n{}", render_serve(&rows));
    }

    #[test]
    fn noisy_neighbor_is_quarantined_without_collateral() {
        let machine = MachineProfile {
            cores: 4,
            disk: jash_io::DiskProfile::ramdisk(),
            mem_mb: 4 * 1024,
        };
        let drill = run_quarantine_drill(64 * 1024, machine);
        assert!(quarantine_holds(&drill), "\n{}", render_quarantine(&drill));
    }
}
