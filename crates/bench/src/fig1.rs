//! The Figure 1 harness, shared by the bench target and the `fig1` binary.

use crate::{bench_input_bytes, report_header, report_row, run_engine, sim_machine, stage, word_corpus};
use jash_core::Engine;
use jash_cost::MachineProfile;

/// The paper's sort-the-words script (stdout bound to a file, as in the
/// original experiment).
pub const SCRIPT: &str = "cat /in.txt | tr -cs A-Za-z '\\n' | sort > /out.txt";

/// One measured cell of the figure.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Instance label.
    pub machine: &'static str,
    /// Engine.
    pub engine: Engine,
    /// Modeled wall seconds.
    pub seconds: f64,
}

/// Runs the full figure; returns the six cells. Panics on output
/// divergence between engines (the soundness requirement).
pub fn run_fig1() -> Vec<Cell> {
    let bytes = bench_input_bytes();
    let corpus = word_corpus(bytes, 42);
    println!(
        "Figure 1: sort-words, input {} MiB (paper: 3 GiB), time-scale {}",
        bytes / (1024 * 1024),
        crate::time_scale()
    );

    let mut cells = Vec::new();
    let mut reference: Option<Vec<u8>> = None;
    for (label, profile) in [
        ("Standard", MachineProfile::standard_ec2()),
        ("IO-opt", MachineProfile::io_opt_ec2()),
    ] {
        report_header(&format!(
            "{label} ({})",
            if label == "Standard" {
                "gp2, 100 IOPS burst 3K"
            } else {
                "gp3, 15K IOPS"
            }
        ));
        for engine in Engine::ALL {
            let sim = sim_machine(profile, bytes);
            stage(&sim, "/in.txt", &corpus);
            let (wall, result, trace) = run_engine(engine, &sim, SCRIPT);
            assert_eq!(result.status, 0, "{engine} failed: {trace:?}");
            let out = jash_io::fs::read_to_vec(sim.fs.as_ref(), "/out.txt")
                .expect("script wrote /out.txt");
            match &reference {
                None => reference = Some(out),
                Some(r) => assert_eq!(r, &out, "{engine} output diverged on {label}"),
            }
            report_row(&format!("  {engine}"), wall);
            cells.push(Cell {
                machine: label,
                engine,
                seconds: wall.as_secs_f64(),
            });
        }
    }
    cells
}

/// Figure 1's qualitative shape, checked over measured cells. Returns
/// `(description, passed)` pairs.
pub fn shape_checks(cells: &[Cell]) -> Vec<(&'static str, bool)> {
    let get = |m: &str, e: Engine| {
        cells
            .iter()
            .find(|c| c.machine == m && c.engine == e)
            .expect("cell")
            .seconds
    };
    vec![
        (
            "Standard: pash regresses behind bash",
            get("Standard", Engine::PashAot) > get("Standard", Engine::Bash),
        ),
        (
            "Standard: jash does not regress",
            get("Standard", Engine::JashJit) <= get("Standard", Engine::Bash) * 1.10,
        ),
        (
            "IO-opt: pash beats bash",
            get("IO-opt", Engine::PashAot) < get("IO-opt", Engine::Bash),
        ),
        (
            "IO-opt: jash beats bash",
            get("IO-opt", Engine::JashJit) < get("IO-opt", Engine::Bash),
        ),
        (
            "IO-opt: jash <= pash (within 10%)",
            get("IO-opt", Engine::JashJit) <= get("IO-opt", Engine::PashAot) * 1.10,
        ),
    ]
}

/// Full run + checks; exits nonzero on a shape failure.
pub fn main_with_checks() {
    let cells = run_fig1();
    report_header("shape checks");
    let mut ok = true;
    for (name, passed) in shape_checks(&cells) {
        println!("  [{}] {name}", if passed { "PASS" } else { "FAIL" });
        ok &= passed;
    }
    if !ok {
        std::process::exit(1);
    }
}
