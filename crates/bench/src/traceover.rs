//! Trace-overhead gate: the observability layer must be close to free.
//!
//! Runs the Figure 1 pipeline under the JIT engine with and without a
//! structured tracer attached, interleaving trials so host noise lands
//! on both sides evenly, and compares median wall time. The modeled
//! machine sleeps dominate each run, so the tracing cost (span
//! bookkeeping, attribute writes, metric updates) has to show up as a
//! genuine slowdown to move the ratio — which is exactly the promise
//! being enforced: `--trace` on a production run costs less than 5%.

use crate::{bench_input_bytes, fig1, run_engine, run_engine_traced, sim_machine, stage, word_corpus};
use jash_core::Engine;
use jash_cost::MachineProfile;
use std::sync::Arc;
use std::time::Duration;

/// Measured overhead of tracing the Figure 1 run.
#[derive(Debug)]
pub struct OverheadReport {
    /// Median wall time without a tracer.
    pub untraced: Duration,
    /// Median wall time with a tracer attached.
    pub traced: Duration,
    /// Fractional overhead: `traced / untraced - 1` (may be negative
    /// under noise).
    pub overhead: f64,
    /// The last traced trial's full JSONL trace — the CI artifact.
    pub jsonl: String,
}

fn median(mut xs: Vec<Duration>) -> Duration {
    xs.sort();
    xs[xs.len() / 2]
}

/// Runs `trials` interleaved traced/untraced Figure 1 cells on the
/// IO-optimized profile and reports the median overhead.
///
/// # Panics
/// Panics if a trial fails, emits an empty trace, or `trials` is zero.
pub fn run_trace_overhead(trials: usize) -> OverheadReport {
    assert!(trials > 0, "need at least one trial");
    let bytes = bench_input_bytes();
    let corpus = word_corpus(bytes, 42);
    let profile = MachineProfile::io_opt_ec2();

    let mut untraced = Vec::with_capacity(trials);
    let mut traced = Vec::with_capacity(trials);
    let mut jsonl = String::new();
    for _ in 0..trials {
        let sim = sim_machine(profile, bytes);
        stage(&sim, "/in.txt", &corpus);
        let (wall, result, _) = run_engine(Engine::JashJit, &sim, fig1::SCRIPT);
        assert_eq!(result.status, 0, "untraced fig1 trial failed");
        untraced.push(wall);

        let sim = sim_machine(profile, bytes);
        stage(&sim, "/in.txt", &corpus);
        let tracer = Arc::new(jash_trace::Tracer::new());
        let (wall, result, _) =
            run_engine_traced(Engine::JashJit, &sim, fig1::SCRIPT, Some(Arc::clone(&tracer)));
        assert_eq!(result.status, 0, "traced fig1 trial failed");
        traced.push(wall);
        jsonl = tracer.to_jsonl();
    }
    assert!(!jsonl.is_empty(), "traced run must emit a trace");

    let untraced = median(untraced);
    let traced = median(traced);
    let overhead = traced.as_secs_f64() / untraced.as_secs_f64() - 1.0;
    OverheadReport {
        untraced,
        traced,
        overhead,
        jsonl,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_is_order_insensitive() {
        let d = |ms| Duration::from_millis(ms);
        assert_eq!(median(vec![d(9), d(1), d(5)]), d(5));
        assert_eq!(median(vec![d(1)]), d(1));
    }
}
