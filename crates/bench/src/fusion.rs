//! The fusion benchmark: single-pass fused kernels vs channel-per-stage
//! threads vs sequential interpretation on a Figure-1-style stateless
//! chain.
//!
//! Unlike Figure 1, this experiment runs over a *raw* in-memory
//! filesystem with no disk or CPU models attached: the quantity under
//! test is real engine overhead (thread hand-offs, pipe chunk copies,
//! per-stage buffers) against the fused kernel's one pass per chunk, and
//! a modeled machine would drown that signal in simulated sleeps.
//!
//! The `fusionbench` binary renders the table, writes `BENCH_fusion.json`
//! for the CI artifact, and exits nonzero when the fused kernel fails to
//! clear the configured speedup gate over the unfused path.

use jash_core::{Engine, Jash};
use jash_cost::MachineProfile;
use jash_dataflow::{compile, Dfg, ExpandedCommand, NodeKind, Region};
use jash_exec::ExecConfig;
use jash_expand::ShellState;
use jash_io::FsHandle;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The benchmarked chain: four stateless stages, all per-line, exactly
/// the shape the fusion pass targets. `cat` compiles into the read
/// layer, so the fused kernel covers `tr|grep|cut`.
pub const SCRIPT: &str = "cat /in.txt | tr A-Z a-z | grep -v qqq | cut -c 1-48";

fn chain_region() -> Region {
    Region {
        commands: vec![
            ExpandedCommand::new("cat", &["/in.txt"]),
            ExpandedCommand::new("tr", &["A-Z", "a-z"]),
            ExpandedCommand::new("grep", &["-v", "qqq"]),
            ExpandedCommand::new("cut", &["-c", "1-48"]),
        ],
    }
}

/// One measured execution path.
#[derive(Debug, Clone, Copy)]
pub struct Measure {
    /// Best-of-N wall time.
    pub wall: Duration,
    /// Input throughput at that wall time.
    pub bytes_per_sec: f64,
}

impl Measure {
    fn from_wall(wall: Duration, input_bytes: u64) -> Measure {
        Measure {
            wall,
            bytes_per_sec: input_bytes as f64 / wall.as_secs_f64().max(1e-9),
        }
    }
}

/// The full experiment result.
#[derive(Debug, Clone)]
pub struct FusionBench {
    /// Input size.
    pub input_bytes: u64,
    /// Iterations per path (best wall time kept).
    pub iterations: u32,
    /// Stages collapsed into the kernel.
    pub stages_fused: usize,
    /// Fused-kernel path.
    pub fused: Measure,
    /// Channel-per-stage threaded path.
    pub unfused: Measure,
    /// Sequential interpreter.
    pub interpreter: Measure,
}

impl FusionBench {
    /// Fused throughput over unfused throughput (the gated ratio).
    pub fn fused_over_unfused(&self) -> f64 {
        self.fused.bytes_per_sec / self.unfused.bytes_per_sec
    }

    /// Fused throughput over the interpreter's.
    pub fn fused_over_interpreter(&self) -> f64 {
        self.fused.bytes_per_sec / self.interpreter.bytes_per_sec
    }

    /// Renders the `BENCH_fusion.json` document.
    pub fn to_json(&self) -> String {
        let m = |m: &Measure| {
            format!(
                "{{\"wall_s\": {:.6}, \"bytes_per_sec\": {:.0}}}",
                m.wall.as_secs_f64(),
                m.bytes_per_sec
            )
        };
        format!(
            "{{\n  \"bench\": \"fusion\",\n  \"script\": \"{}\",\n  \"input_bytes\": {},\n  \
             \"iterations\": {},\n  \"stages_fused\": {},\n  \"fused\": {},\n  \"unfused\": {},\n  \
             \"interpreter\": {},\n  \"fused_over_unfused\": {:.3},\n  \
             \"fused_over_interpreter\": {:.3}\n}}\n",
            SCRIPT.replace('\\', "\\\\").replace('"', "\\\""),
            self.input_bytes,
            self.iterations,
            self.stages_fused,
            m(&self.fused),
            m(&self.unfused),
            m(&self.interpreter),
            self.fused_over_unfused(),
            self.fused_over_interpreter(),
        )
    }
}

fn compile_chain(fused: bool) -> (Dfg, usize) {
    let registry = jash_spec::Registry::builtin();
    let compiled = compile(&chain_region(), &registry).expect("chain compiles");
    let mut dfg = compiled.dfg;
    let mut stages = 0;
    if fused {
        let regions = jash_dataflow::fuse_kernels(&mut dfg);
        assert!(regions >= 1, "the benchmark chain must contain a fusible run");
        stages = dfg
            .node_ids()
            .filter_map(|n| match &dfg.node(n).kind {
                NodeKind::Fused { stages } => Some(stages.len()),
                _ => None,
            })
            .sum();
    }
    (dfg, stages)
}

fn run_executor(fs: &FsHandle, fused: bool) -> (Duration, i32, Vec<u8>, usize) {
    let (dfg, stages) = compile_chain(fused);
    let cfg = ExecConfig::new(Arc::clone(fs));
    let t0 = Instant::now();
    let out = jash_exec::execute(&dfg, &cfg).expect("chain executes");
    let wall = t0.elapsed();
    assert!(
        out.is_clean(),
        "benchmark chain faulted ({}): {:?}",
        if fused { "fused" } else { "unfused" },
        out.failures
    );
    (wall, out.status, out.stdout, stages)
}

fn run_interpreter(fs: &FsHandle) -> (Duration, i32, Vec<u8>) {
    let mut state = ShellState::new(Arc::clone(fs));
    let mut shell = Jash::new(Engine::Bash, MachineProfile::laptop());
    let t0 = Instant::now();
    let r = shell.run_script(&mut state, SCRIPT).expect("script runs");
    (t0.elapsed(), r.status, r.stdout)
}

/// Runs the experiment: `iterations` timed runs per path (best wall
/// kept), with the three paths' stdout and status checked byte-identical
/// before anything is reported.
pub fn run_fusion_bench(input_bytes: u64, iterations: u32) -> FusionBench {
    let fs = jash_io::mem_fs();
    let corpus = crate::word_corpus(input_bytes, 42);
    jash_io::fs::write_file(fs.as_ref(), "/in.txt", &corpus).expect("stage input");
    let input_bytes = corpus.len() as u64;

    let mut fused_wall = Duration::MAX;
    let mut unfused_wall = Duration::MAX;
    let mut interp_wall = Duration::MAX;
    let mut stages_fused = 0;
    let (_, ref_status, ref_out) = run_interpreter(&fs);
    for _ in 0..iterations.max(1) {
        let (wall, status, out, stages) = run_executor(&fs, true);
        assert_eq!((status, &out), (ref_status, &ref_out), "fused output diverged");
        fused_wall = fused_wall.min(wall);
        stages_fused = stages;

        let (wall, status, out, _) = run_executor(&fs, false);
        assert_eq!((status, &out), (ref_status, &ref_out), "unfused output diverged");
        unfused_wall = unfused_wall.min(wall);

        let (wall, status, out) = run_interpreter(&fs);
        assert_eq!((status, &out), (ref_status, &ref_out), "interpreter run diverged");
        interp_wall = interp_wall.min(wall);
    }

    FusionBench {
        input_bytes,
        iterations: iterations.max(1),
        stages_fused,
        fused: Measure::from_wall(fused_wall, input_bytes),
        unfused: Measure::from_wall(unfused_wall, input_bytes),
        interpreter: Measure::from_wall(interp_wall, input_bytes),
    }
}

/// Full run for the `fusionbench` binary: table, `BENCH_fusion.json`,
/// and the perf gate (`JASH_FUSION_GATE`, default 1.0 — fused must not
/// be slower than unfused).
pub fn main_with_gate() {
    let bytes = crate::bench_input_bytes();
    let iters: u32 = std::env::var("JASH_FUSION_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    println!(
        "Fusion: {SCRIPT}\ninput {} MiB, best of {iters} (raw mem fs, no machine models)",
        bytes / (1024 * 1024)
    );
    let bench = run_fusion_bench(bytes, iters);

    crate::report_header(&format!("results ({} stages in kernel)", bench.stages_fused));
    for (label, m) in [
        ("fused kernel", &bench.fused),
        ("unfused (channel-per-stage)", &bench.unfused),
        ("interpreter", &bench.interpreter),
    ] {
        println!(
            "  {label:<30} {:>9.1} ms  {:>8.1} MiB/s",
            m.wall.as_secs_f64() * 1000.0,
            m.bytes_per_sec / (1024.0 * 1024.0)
        );
    }
    println!(
        "  fused/unfused {:.2}x, fused/interpreter {:.2}x",
        bench.fused_over_unfused(),
        bench.fused_over_interpreter()
    );

    let path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_fusion.json".to_string());
    std::fs::write(&path, bench.to_json()).expect("write BENCH_fusion.json");
    println!("  wrote {path}");

    let gate: f64 = std::env::var("JASH_FUSION_GATE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0);
    if bench.fused_over_unfused() < gate {
        eprintln!(
            "FAIL: fused/unfused {:.2}x below gate {gate:.2}x",
            bench.fused_over_unfused()
        );
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_paths_agree_and_report() {
        let bench = run_fusion_bench(64 * 1024, 1);
        assert_eq!(bench.stages_fused, 3);
        assert!(bench.fused.bytes_per_sec > 0.0);
        assert!(bench.unfused.bytes_per_sec > 0.0);
        assert!(bench.interpreter.bytes_per_sec > 0.0);
        let json = bench.to_json();
        assert!(json.contains("\"bench\": \"fusion\""), "{json}");
        assert!(json.contains("\"stages_fused\": 3"), "{json}");
        assert!(json.contains("fused_over_unfused"), "{json}");
    }
}
