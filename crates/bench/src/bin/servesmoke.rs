//! CI smoke drill for the `jash serve` daemon:
//! `cargo run --release -p jash-bench --bin servesmoke`
//!
//! Starts a *real* `jash serve` child on a unix socket (the binary under
//! test — `JASH_BIN` overrides its location), drives a 24-client
//! multi-tenant storm — 16 clients across four well-behaved tenants
//! with injected transient and sticky read faults plus four
//! deliberately stalled runs, and 8 clients of a quota-shaped `flood`
//! tenant (`--tenant flood=1.0:1:2`) — delivers SIGTERM mid-storm, and
//! audits the drain:
//!
//! * the daemon exits 143 (128+SIGTERM) within the drain budget;
//! * every client got a definitive answer — a `Done` frame (clean,
//!   faulted, or aborted 143) or a structured `DRAINING`/`QUOTA`
//!   rejection;
//! * only the flood tenant absorbed `QUOTA` rejections, and it absorbed
//!   at least one — its per-tenant cap held under the burst;
//! * the stalled in-flight runs were aborted, not leaked;
//! * zero `.jash-stage-*` staging debris survives anywhere under the
//!   serve root;
//! * every per-run trace the daemon flushed parses with the schema-v1
//!   parser.
//!
//! Phase two then proves the *ungraceful* path on the same root: a
//! durable daemon takes eight keyed submissions (two wedged on long
//! stalls), is SIGKILLed mid-storm, and a third daemon restarts —
//! every keyed client must still collect `Done 0` through its retry
//! loop (interrupted runs finalized by the startup janitor), every
//! resubmitted key must replay the cached result byte-identically, and
//! the final drain must leave zero staging debris and zero orphaned
//! `run-*` scopes. Flushed traces are copied to `servesmoke-traces/`
//! in the working directory for CI artifact upload.
//!
//! Exits nonzero on any violation, printing what broke.

use jash_bench::crash::jash_binary;
use jash_serve::{reject, submit, submit_with_retry, Request, RetryConfig};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const SCRIPT: &str = "cat /in.txt | tr A-Z a-z | tr -cs a-z '\\n' | sort -u";

#[derive(Debug)]
enum Outcome {
    Clean,
    Faulted(i32),
    Aborted,
    Shed,
    Quota,
    Error(String),
}

fn classify(i: usize, socket: &Path) -> Outcome {
    let flood = i >= 16;
    let mut req = Request::new(SCRIPT);
    req.tenant = if flood {
        // The quota-shaped tenant: 8 clients burst against a cap of
        // one active run + two queued, so most must shed with QUOTA.
        "flood".to_string()
    } else {
        format!("smoke-{}", i % 4)
    };
    req.timeout_ms = 30_000;
    req.fault = match i {
        // Four runs wedge on a long stall so SIGTERM lands mid-run;
        // the injected stall is wired to the run's cancel token, so
        // the drain aborts it instead of waiting it out.
        0..=3 => Some("stall-read:/in.txt:60000".to_string()),
        // Transient faults the supervisor must absorb.
        4 | 5 => Some("transient-read:/in.txt:65536".to_string()),
        // Sticky faults every engine sees.
        6 | 7 => Some("read-error:/in.txt:65536".to_string()),
        _ => None,
    };
    match submit(socket, &req) {
        Err(e) => Outcome::Error(format!("client {i}: {e}")),
        Ok(reply) => {
            if let Some((code, ..)) = reply.rejected {
                if code == reject::DRAINING {
                    Outcome::Shed
                } else if code == reject::QUOTA && flood {
                    Outcome::Quota
                } else {
                    Outcome::Error(format!("client {i}: unexpected rejection code {code}"))
                }
            } else {
                match reply.status {
                    Some(0) => Outcome::Clean,
                    Some(143) => Outcome::Aborted,
                    Some(s) => Outcome::Faulted(s),
                    None => Outcome::Error(format!("client {i}: connection closed mid-run")),
                }
            }
        }
    }
}

fn debris(root: &Path) -> Vec<PathBuf> {
    let mut found = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else { continue };
        for e in entries.flatten() {
            let p = e.path();
            if p.is_dir() {
                stack.push(p);
            } else if p
                .file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.contains(".jash-stage-"))
            {
                found.push(p);
            }
        }
    }
    found
}

fn fail(root: &Path, msg: &str) -> ! {
    let _ = std::fs::remove_dir_all(root);
    println!("\nSERVE SMOKE FAILED: {msg}");
    std::process::exit(1);
}

fn main() {
    let root = std::env::temp_dir().join(format!("jash-servesmoke-{}", std::process::id()));
    std::fs::create_dir_all(&root).expect("create smoke root");
    let docs = jash_bench::documents(512 * 1024, 7);
    std::fs::write(root.join("in.txt"), &docs).expect("stage input");
    let socket = root.join("sock");

    println!(
        "serve smoke: binary {}, root {}",
        jash_binary().display(),
        root.display()
    );
    let mut child = Command::new(jash_binary())
        .arg("serve")
        .arg("--socket")
        .arg(&socket)
        .arg("--root")
        .arg(&root)
        // 8 workers: the 4 stalled runs wedge half the pool while the
        // other half churns through the fast submissions, so the storm
        // exercises completion *and* mid-run abort in one drill.
        .args(["--workers", "8", "--queue", "24"])
        .args(["--tenant", "flood=1.0:1:2"])
        .args(["--drain-secs", "5", "--trace-dir", "/traces"])
        .args(["--no-durable", "--test-faults"])
        .env("JASH_TEST_EAGER", "1")
        .stdout(Stdio::null())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn jash serve");

    // Wait for the daemon to bind.
    let bind_deadline = Instant::now() + Duration::from_secs(10);
    while !socket.exists() {
        if Instant::now() > bind_deadline {
            let _ = child.kill();
            fail(&root, "daemon never bound its socket");
        }
        std::thread::sleep(Duration::from_millis(10));
    }

    // The storm: 24 concurrent clients — 16 mixed clean /
    // transient-fault / sticky-fault / stalled submissions across four
    // tenants, plus 8 flood-tenant bursts against a 1-active/2-queued
    // quota.
    let clients: Vec<_> = (0..24)
        .map(|i| {
            let socket = socket.clone();
            std::thread::spawn(move || (i, classify(i, &socket)))
        })
        .collect();

    // Let the fast runs finish and the stalled ones wedge in the
    // workers, then SIGTERM the daemon mid-storm.
    std::thread::sleep(Duration::from_millis(1500));
    let term = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("deliver SIGTERM");
    assert!(term.success(), "kill -TERM failed");

    let mut counts = (0usize, 0usize, 0usize, 0usize); // clean, aborted, shed, quota
    let mut faulted = Vec::new();
    let mut errors = Vec::new();
    for c in clients {
        let (i, outcome) = c.join().expect("client thread panicked");
        println!("  client {i:2}: {outcome:?}");
        match outcome {
            Outcome::Clean => counts.0 += 1,
            Outcome::Faulted(s) => faulted.push(s),
            Outcome::Aborted => counts.1 += 1,
            Outcome::Shed => counts.2 += 1,
            Outcome::Quota => counts.3 += 1,
            Outcome::Error(e) => errors.push(e),
        }
    }

    let status = child.wait().expect("wait for daemon");
    println!(
        "daemon exit: {:?}; clean={} faulted={:?} aborted={} shed={} quota={}",
        status.code(),
        counts.0,
        faulted,
        counts.1,
        counts.2,
        counts.3
    );
    if !errors.is_empty() {
        fail(&root, &errors.join("; "));
    }
    if status.code() != Some(143) {
        fail(&root, &format!("daemon exited {:?}, want 143", status.code()));
    }
    if counts.0 == 0 {
        fail(&root, "no client completed cleanly before the SIGTERM");
    }
    if counts.1 == 0 {
        fail(&root, "no in-flight run was aborted by the drain");
    }
    if counts.3 == 0 {
        fail(&root, "the flood tenant's burst was never shed with QUOTA");
    }

    let leaked = debris(&root);
    if !leaked.is_empty() {
        fail(&root, &format!("staging debris survived the drain: {leaked:?}"));
    }

    // ---- Phase two: SIGKILL + restart on the same root. -------------
    // A durable daemon (admission ledger ON) takes eight keyed clients
    // — two wedged on long stalls — and is killed ungracefully; a third
    // daemon restarts, finalizes the interrupted runs, and replays the
    // finished ones.
    println!("\nphase 2: crash-restart resilience");
    let mut daemon2 = spawn_durable(&root, &socket);
    let bind_deadline = Instant::now() + Duration::from_secs(10);
    while !socket.exists() {
        if Instant::now() > bind_deadline {
            let _ = daemon2.kill();
            fail(&root, "phase-2 daemon never bound its socket");
        }
        std::thread::sleep(Duration::from_millis(10));
    }

    let keyed: Vec<_> = (0..8)
        .map(|i| {
            let socket = socket.clone();
            std::thread::spawn(move || {
                let mut req = Request::new(SCRIPT).with_key(format!("smoke2-{i}"));
                req.timeout_ms = 120_000;
                if i < 2 {
                    // Wedged mid-read: these are the runs the SIGKILL
                    // orphans and the restart's janitor must finalize.
                    req.fault = Some("stall-read:/in.txt:60000".to_string());
                }
                let cfg = RetryConfig {
                    attempts: 40,
                    base: Duration::from_millis(100),
                    ..RetryConfig::default()
                };
                (i, submit_with_retry(&socket, &req, &cfg))
            })
        })
        .collect();

    // Let the clean runs finish and the stalled pair wedge, then pull
    // the plug — SIGKILL, no drain, no destructors.
    std::thread::sleep(Duration::from_millis(1200));
    daemon2.kill().expect("SIGKILL phase-2 daemon");
    let _ = daemon2.wait();

    let mut daemon3 = spawn_durable(&root, &socket);
    // No bind-wait possible: the dead daemon's socket file lingers
    // until the restart rebinds it. The clients' retry loops are the
    // readiness probe.
    let mut replies = Vec::new();
    for c in keyed {
        let (i, result) = c.join().expect("phase-2 client panicked");
        match result {
            Ok(reply) if reply.status == Some(0) => replies.push((i, reply)),
            other => {
                let _ = daemon3.kill();
                fail(
                    &root,
                    &format!("phase-2 client {i} did not recover to Done 0: {other:?}"),
                );
            }
        }
    }

    // Every key resubmitted once: must replay the cached result —
    // attached, byte-identical, never re-executed.
    for (i, first) in &replies {
        let req = Request::new(SCRIPT).with_key(format!("smoke2-{i}"));
        match submit(&socket, &req) {
            Ok(r)
                if r.status == Some(0)
                    && r.attached.is_some()
                    && r.stdout == first.stdout => {}
            other => {
                let _ = daemon3.kill();
                fail(
                    &root,
                    &format!("phase-2 key smoke2-{i} was not replayed byte-identically: {other:?}"),
                );
            }
        }
    }

    let term = Command::new("kill")
        .args(["-TERM", &daemon3.id().to_string()])
        .status()
        .expect("deliver SIGTERM");
    assert!(term.success(), "kill -TERM failed");
    let status3 = daemon3.wait().expect("wait for phase-2 daemon");
    if status3.code() != Some(143) {
        fail(
            &root,
            &format!("restarted daemon exited {:?}, want 143", status3.code()),
        );
    }

    let leaked = debris(&root);
    if !leaked.is_empty() {
        fail(&root, &format!("staging debris survived the restart: {leaked:?}"));
    }
    let scopes: Vec<_> = std::fs::read_dir(root.join(".jash-serve"))
        .map(|it| {
            it.flatten()
                .filter(|e| {
                    e.path().is_dir()
                        && e.file_name().to_str().is_some_and(|n| n.starts_with("run-"))
                })
                .map(|e| e.path())
                .collect()
        })
        .unwrap_or_default();
    if !scopes.is_empty() {
        fail(&root, &format!("orphaned run scopes survived the restart: {scopes:?}"));
    }

    // Every trace any daemon flushed must parse with the schema-v1
    // parser — including the aborted and recovered runs' traces — and
    // the set is copied out for CI artifact upload.
    let artifact_dir = PathBuf::from("servesmoke-traces");
    let _ = std::fs::remove_dir_all(&artifact_dir);
    std::fs::create_dir_all(&artifact_dir).expect("create trace artifact dir");
    let mut traces = 0usize;
    if let Ok(entries) = std::fs::read_dir(root.join("traces")) {
        for e in entries.flatten() {
            let text = std::fs::read_to_string(e.path()).expect("read trace");
            if let Err(err) = jash_trace::parse_jsonl(&text) {
                fail(
                    &root,
                    &format!("trace {} unparseable: {err}", e.path().display()),
                );
            }
            let _ = std::fs::copy(e.path(), artifact_dir.join(e.file_name()));
            traces += 1;
        }
    }
    if traces == 0 {
        fail(&root, "daemon flushed no traces");
    }

    let _ = std::fs::remove_dir_all(&root);
    println!(
        "\nserve smoke holds: clean drain, crash-restart recovered all {} keyed run(s), \
         {traces} parseable trace(s), {} quota shed(s), zero debris",
        replies.len(),
        counts.3
    );
}

/// A durable daemon for the crash-restart phase: admission ledger ON
/// (`--no-durable` omitted), same root, same fault injection.
fn spawn_durable(root: &Path, socket: &Path) -> Child {
    Command::new(jash_binary())
        .arg("serve")
        .arg("--socket")
        .arg(socket)
        .arg("--root")
        .arg(root)
        .args(["--workers", "8", "--queue", "24"])
        .args(["--drain-secs", "5", "--trace-dir", "/traces"])
        .arg("--test-faults")
        .env("JASH_TEST_EAGER", "1")
        .stdout(Stdio::null())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn durable jash serve")
}
