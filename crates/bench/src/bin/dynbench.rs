//! Dynamic-region benchmark runner:
//! `cargo run --release -p jash-bench --bin dynbench [out.json]`
//! (knobs: `JASH_DYN_MB`, `JASH_DYN_LOOP`, `JASH_DYN_ITERS`,
//! `JASH_DYN_GATE`).

fn main() {
    jash_bench::dynbench::main_with_gate();
}
