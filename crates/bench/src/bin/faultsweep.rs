//! Standalone fault-sweep runner:
//! `cargo run --release -p jash-bench --bin faultsweep`
//! (knobs: `JASH_BENCH_MB`, `JASH_FAULT_SEED`).
//!
//! Exits nonzero if any engine diverged from the sequential baseline
//! under any injected fault, or if a transactional staging file leaked.
//!
//! With `--transient`, runs the supervised-recovery sweep instead: three
//! fault scenarios that must each recover through a *different*
//! mechanism (retry with backoff, width degradation, circuit-breaker
//! routing), with the full supervision event log printed per case. Exits
//! nonzero on baseline divergence, staging debris, or a missing recovery
//! mechanism.
//!
//! With `--crash`, runs the crash-recovery sweep: a real `jash` child is
//! SIGKILLed mid-pipeline at every kill point, re-run with `--resume`,
//! and audited for byte-identical output, zero staging debris, and no
//! re-execution of journaled-clean regions. Requires the `jash` binary
//! to be built (`JASH_BIN` overrides its location).
//!
//! With `--serve-crash`, runs the exactly-once serve-recovery drill: a
//! real `jash serve` daemon is SIGKILLed mid-storm at every kill point,
//! restarted on the same root, and audited — every keyed submission
//! completes exactly once and byte-identically (interrupted runs
//! finalized by the startup janitor, finished runs replayed from the
//! cached result, never re-executed), the drain stays clean, and zero
//! staging debris or orphaned run scopes survive.
//!
//! With `--serve`, runs the same fault matrix through the daemon path
//! instead: every case is submitted to a real `jash serve` instance
//! over its unix socket and the reply frames are compared against the
//! sequential baseline, followed by the noisy-neighbor quarantine
//! drill (a tenant failing into quarantine and paroling by probe while
//! steady tenants commit byte-identical outputs). Exits nonzero on
//! divergence, an unanswered submission, broken quarantine isolation,
//! or staging debris surviving the drain.

use jash_bench::faults::{
    default_supervision_sweep, default_sweep, render, render_supervision, run_supervision_sweep,
    run_sweep, supervision_holds, sweep_holds,
};
use jash_cost::MachineProfile;
use jash_io::FsHandle;

fn main() {
    let transient = std::env::args().any(|a| a == "--transient");
    let crash = std::env::args().any(|a| a == "--crash");
    let serve_crash = std::env::args().any(|a| a == "--serve-crash");
    let serve = std::env::args().any(|a| a == "--serve");
    let bytes = jash_bench::bench_input_bytes().min(8 * 1024 * 1024);

    if serve_crash {
        let seed: u64 = std::env::var("JASH_FAULT_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(7);
        println!(
            "serve-crash sweep: {bytes} input bytes, binary {}\n",
            jash_bench::crash::jash_binary().display()
        );
        let rows = jash_bench::servecrash::run_serve_crash_sweep(bytes, seed);
        print!("{}", jash_bench::servecrash::render_serve_crash(&rows));
        if jash_bench::servecrash::serve_crash_holds(&rows) {
            println!(
                "\nexactly-once serve recovery holds across {} kill points",
                rows.len()
            );
        } else {
            println!("\nSERVE CRASH RECOVERY VIOLATED");
            std::process::exit(1);
        }
        return;
    }

    if crash {
        let seed: u64 = std::env::var("JASH_FAULT_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(7);
        println!(
            "crash-recovery sweep: {bytes} input bytes, binary {}\n",
            jash_bench::crash::jash_binary().display()
        );
        let rows = jash_bench::crash::run_crash_sweep(bytes, seed);
        print!("{}", jash_bench::crash::render_crash(&rows));
        if jash_bench::crash::crash_holds(&rows) {
            println!("\ncrash recovery holds across {} kill points", rows.len());
        } else {
            println!("\nCRASH RECOVERY VIOLATED");
            std::process::exit(1);
        }
        return;
    }
    let seed: u64 = std::env::var("JASH_FAULT_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(7);
    let docs = jash_bench::documents(bytes, seed);
    let dict = jash_bench::dictionary();
    let len = docs.len() as u64;
    let stage = move |fs: &FsHandle| {
        jash_io::fs::write_file(fs.as_ref(), "/data/docs.txt", &docs).unwrap();
        jash_io::fs::write_file(fs.as_ref(), "/data/dict.txt", &dict).unwrap();
    };
    let machine = MachineProfile {
        cores: 8,
        disk: jash_io::DiskProfile::ramdisk(),
        mem_mb: 8 * 1024,
    };

    if transient {
        println!("supervised-recovery sweep: {len} input bytes\n");
        let cases = default_supervision_sweep("/data/docs.txt", len);
        let rows = run_supervision_sweep(&stage, &cases, machine);
        print!("{}", render_supervision(&rows));
        if supervision_holds(&rows) {
            println!("\nsupervised recovery holds across {} cases", rows.len());
        } else {
            println!("\nSUPERVISED RECOVERY VIOLATED");
            std::process::exit(1);
        }
        return;
    }

    let script = "cat /data/docs.txt | tr A-Z a-z | tr -cs a-z '\\n' | sort -u | comm -13 /data/dict.txt - > /out";

    if serve {
        println!("serve-mode fault sweep: {len} input bytes, seed {seed}\nscript: {script}\n");
        let rows = jash_bench::serve::run_serve_sweep(
            script,
            &stage,
            &default_sweep("/data/docs.txt", len, seed),
            machine,
        );
        print!("{}", jash_bench::serve::render_serve(&rows));
        if jash_bench::serve::serve_sweep_holds(&rows) {
            println!(
                "\ncrash-equivalence holds through the daemon path across {} cases",
                rows.len()
            );
        } else {
            println!("\nSERVE-MODE CRASH-EQUIVALENCE VIOLATED");
            std::process::exit(1);
        }

        println!("\nnoisy-neighbor quarantine drill:");
        let drill = jash_bench::serve::run_quarantine_drill(len.min(256 * 1024), machine);
        print!("{}", jash_bench::serve::render_quarantine(&drill));
        if jash_bench::serve::quarantine_holds(&drill) {
            println!("\nquarantine isolation holds: noisy tenant exiled and paroled, steady tenants untouched");
        } else {
            println!("\nQUARANTINE ISOLATION VIOLATED");
            std::process::exit(1);
        }
        return;
    }

    println!("fault sweep: {len} input bytes, seed {seed}\nscript: {script}\n");
    let rows = run_sweep(script, &stage, &default_sweep("/data/docs.txt", len, seed), machine);
    print!("{}", render(&rows));
    if sweep_holds(&rows) {
        println!("\ncrash-equivalence holds across {} runs", rows.len());
    } else {
        println!("\nCRASH-EQUIVALENCE VIOLATED");
        std::process::exit(1);
    }
}
