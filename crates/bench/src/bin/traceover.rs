//! Trace-overhead gate binary:
//! `cargo run --release -p jash-bench --bin traceover [-- TRACE_OUT.jsonl]`
//!
//! Measures the cost of `--trace` on the Figure 1 JIT run, writes the
//! traced run's JSONL to `TRACE_OUT` (when given) as the CI artifact,
//! prints the recorded trace's per-region summary, and exits nonzero if
//! the median overhead exceeds the gate (`JASH_TRACE_GATE`, default
//! 0.05). `JASH_TRACE_TRIALS` (default 5) sets the trial count;
//! `JASH_BENCH_MB` / `JASH_TIME_SCALE` shape the run as usual.

fn env_parse<T: std::str::FromStr>(key: &str, default: T) -> T {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let out = std::env::args().nth(1);
    let trials: usize = env_parse("JASH_TRACE_TRIALS", 5);
    let gate: f64 = env_parse("JASH_TRACE_GATE", 0.05);

    let report = jash_bench::traceover::run_trace_overhead(trials);
    println!(
        "fig1 (jash engine), {trials} trials: untraced {:.3}s, traced {:.3}s, overhead {:+.2}%",
        report.untraced.as_secs_f64(),
        report.traced.as_secs_f64(),
        report.overhead * 100.0,
    );

    match jash_trace::parse_jsonl(&report.jsonl) {
        Ok(records) => print!("\n{}", jash_trace::summarize(&records)),
        Err(e) => {
            eprintln!("traceover: emitted trace failed to parse: {e}");
            std::process::exit(1);
        }
    }

    if let Some(path) = out {
        if let Err(e) = std::fs::write(&path, &report.jsonl) {
            eprintln!("traceover: write {path}: {e}");
            std::process::exit(1);
        }
        println!("\ntrace artifact written to {path}");
    }

    if report.overhead > gate {
        eprintln!(
            "traceover: FAIL — overhead {:.2}% exceeds the {:.0}% gate",
            report.overhead * 100.0,
            gate * 100.0
        );
        std::process::exit(1);
    }
    println!("traceover: PASS (gate {:.0}%)", gate * 100.0);
}
