//! Multi-tenant fairness gate:
//! `cargo run --release -p jash-bench --bin tenantbench -- BENCH_tenant.json`
//! (knobs: `JASH_TENANT_MS`, `JASH_TENANT_GATE`).
//!
//! Drives an 8-vs-2 closed-loop client storm (a 4:1 offered-load skew)
//! at equal tenant weights through an in-process daemon, writes
//! `BENCH_tenant.json`, and exits nonzero when Jain's fairness index
//! over completed runs falls below the gate (default 0.9 — a FIFO
//! admission queue scores ≈ 0.74 here and must fail).

fn main() {
    jash_bench::tenant::main_with_gate();
}
