//! Fusion benchmark runner:
//! `cargo run --release -p jash-bench --bin fusionbench [out.json]`
//! (knobs: `JASH_BENCH_MB`, `JASH_FUSION_ITERS`, `JASH_FUSION_GATE`).

fn main() {
    jash_bench::fusion::main_with_gate();
}
