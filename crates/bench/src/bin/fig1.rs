//! Standalone Figure 1 runner:
//! `cargo run --release -p jash-bench --bin fig1`
//! (knobs: `JASH_BENCH_MB`, `JASH_TIME_SCALE`).

fn main() {
    jash_bench::fig1::main_with_checks();
}
