//! The dynamic-region benchmark: a `for` loop over a fusible chain,
//! timed three ways — JIT with the per-fingerprint plan cache (iteration
//! 1 plans, iterations 2..N reuse), JIT with the cache disabled (every
//! iteration re-plans from scratch), and plain interpretation.
//!
//! The quantity under test is the planning cost the cache elides: the
//! loop body is identical across iterations up to the file path it
//! reads, so a width-insensitive fingerprint hits on every iteration
//! after the first. The `dynbench` binary renders the table, writes
//! `BENCH_dyn.json` for the CI artifact, and exits nonzero when the
//! cached path fails to clear the configured gate over re-planning.

use jash_core::{Engine, Jash};
use jash_cost::MachineProfile;
use jash_expand::ShellState;
use jash_io::FsHandle;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The benchmarked loop body — the same fusible shape `fusionbench`
/// measures, reached through the interpreter's `for` walk instead of a
/// top-level statement.
pub const BODY: &str = "cat $f | tr A-Z a-z | grep -v qqq | cut -c 1-48";

/// Builds the loop script over however many files were staged.
pub fn loop_script() -> String {
    format!("for f in /loop/*.txt; do {BODY}; done")
}

/// One measured execution path.
#[derive(Debug, Clone, Copy)]
pub struct Measure {
    /// Best-of-N wall time.
    pub wall: Duration,
    /// Input throughput at that wall time.
    pub bytes_per_sec: f64,
}

impl Measure {
    fn from_wall(wall: Duration, input_bytes: u64) -> Measure {
        Measure {
            wall,
            bytes_per_sec: input_bytes as f64 / wall.as_secs_f64().max(1e-9),
        }
    }
}

/// The full experiment result.
#[derive(Debug, Clone)]
pub struct DynBench {
    /// Total staged input across all loop files.
    pub input_bytes: u64,
    /// Timed repeats per path (best wall time kept).
    pub iterations: u32,
    /// Loop trip count (number of staged files).
    pub loop_iters: usize,
    /// Plan-cache hits observed in one cached run.
    pub cache_hits: u64,
    /// JIT with the plan cache on.
    pub cached: Measure,
    /// JIT re-planning every iteration.
    pub replanned: Measure,
    /// Sequential interpreter.
    pub interpreter: Measure,
}

impl DynBench {
    /// Cached throughput over re-planned throughput (the gated ratio).
    pub fn cached_over_replanned(&self) -> f64 {
        self.cached.bytes_per_sec / self.replanned.bytes_per_sec
    }

    /// Cached throughput over the interpreter's.
    pub fn cached_over_interpreter(&self) -> f64 {
        self.cached.bytes_per_sec / self.interpreter.bytes_per_sec
    }

    /// Renders the `BENCH_dyn.json` document.
    pub fn to_json(&self) -> String {
        let m = |m: &Measure| {
            format!(
                "{{\"wall_s\": {:.6}, \"bytes_per_sec\": {:.0}}}",
                m.wall.as_secs_f64(),
                m.bytes_per_sec
            )
        };
        format!(
            "{{\n  \"bench\": \"dyn\",\n  \"script\": \"{}\",\n  \"input_bytes\": {},\n  \
             \"iterations\": {},\n  \"loop_iters\": {},\n  \"cache_hits\": {},\n  \
             \"cached\": {},\n  \"replanned\": {},\n  \"interpreter\": {},\n  \
             \"cached_over_replanned\": {:.3},\n  \"cached_over_interpreter\": {:.3}\n}}\n",
            loop_script().replace('\\', "\\\\").replace('"', "\\\""),
            self.input_bytes,
            self.iterations,
            self.loop_iters,
            self.cache_hits,
            m(&self.cached),
            m(&self.replanned),
            m(&self.interpreter),
            self.cached_over_replanned(),
            self.cached_over_interpreter(),
        )
    }
}

fn machine() -> MachineProfile {
    MachineProfile {
        cores: 8,
        disk: jash_io::DiskProfile::ramdisk(),
        mem_mb: 8 * 1024,
    }
}

fn stage(loop_iters: usize, total_bytes: u64) -> (FsHandle, u64) {
    let fs = jash_io::mem_fs();
    let per_file = (total_bytes / loop_iters as u64).max(4 * 1024);
    let mut staged = 0u64;
    for i in 0..loop_iters {
        let corpus = crate::word_corpus(per_file, 1000 + i as u64);
        staged += corpus.len() as u64;
        jash_io::fs::write_file(fs.as_ref(), &format!("/loop/f{i:02}.txt"), &corpus)
            .expect("stage input");
    }
    (fs, staged)
}

/// One timed JIT run over a fresh shell; returns wall, status, stdout,
/// and the plan-cache counters the run accumulated.
fn run_jit(fs: &FsHandle, cache: bool) -> (Duration, i32, Vec<u8>, u64, u64) {
    let mut state = ShellState::new(Arc::clone(fs));
    let mut shell = Jash::new(Engine::JashJit, machine());
    shell.planner.min_speedup = 0.0;
    shell.plan_cache.set_enabled(cache);
    let src = loop_script();
    let t0 = Instant::now();
    let r = shell.run_script(&mut state, &src).expect("script runs");
    let wall = t0.elapsed();
    (wall, r.status, r.stdout, shell.plan_cache.hits, shell.plan_cache.misses)
}

fn run_interpreter(fs: &FsHandle) -> (Duration, i32, Vec<u8>) {
    let mut state = ShellState::new(Arc::clone(fs));
    let mut shell = Jash::new(Engine::Bash, machine());
    let src = loop_script();
    let t0 = Instant::now();
    let r = shell.run_script(&mut state, &src).expect("script runs");
    (t0.elapsed(), r.status, r.stdout)
}

/// Runs the experiment: `iterations` timed runs per path (best wall
/// kept), with all three paths' stdout and status checked byte-identical
/// before anything is reported, and the cached path required to show
/// `loop_iters - 1` plan-cache hits.
pub fn run_dyn_bench(loop_iters: usize, total_bytes: u64, iterations: u32) -> DynBench {
    let (fs, input_bytes) = stage(loop_iters, total_bytes);

    let (_, ref_status, ref_out) = run_interpreter(&fs);
    let mut cached_wall = Duration::MAX;
    let mut replan_wall = Duration::MAX;
    let mut interp_wall = Duration::MAX;
    let mut cache_hits = 0;
    for _ in 0..iterations.max(1) {
        let (wall, status, out, hits, misses) = run_jit(&fs, true);
        assert_eq!((status, &out), (ref_status, &ref_out), "cached output diverged");
        assert_eq!(
            hits as usize,
            loop_iters - 1,
            "iterations 2..N must hit the plan cache (misses: {misses})"
        );
        cached_wall = cached_wall.min(wall);
        cache_hits = hits;

        let (wall, status, out, hits, _) = run_jit(&fs, false);
        assert_eq!((status, &out), (ref_status, &ref_out), "re-planned output diverged");
        assert_eq!(hits, 0, "a disabled cache must never hit");
        replan_wall = replan_wall.min(wall);

        let (wall, status, out) = run_interpreter(&fs);
        assert_eq!((status, &out), (ref_status, &ref_out), "interpreter run diverged");
        interp_wall = interp_wall.min(wall);
    }

    DynBench {
        input_bytes,
        iterations: iterations.max(1),
        loop_iters,
        cache_hits,
        cached: Measure::from_wall(cached_wall, input_bytes),
        replanned: Measure::from_wall(replan_wall, input_bytes),
        interpreter: Measure::from_wall(interp_wall, input_bytes),
    }
}

/// Full run for the `dynbench` binary: table, `BENCH_dyn.json`, and the
/// perf gate (`JASH_DYN_GATE`, default 1.0 — the cache must not make
/// loops slower than re-planning every iteration).
pub fn main_with_gate() {
    // The signal under test is per-iteration planning cost, so the
    // default shape is many small files (planning share visible), not
    // the streaming-throughput shape `fusionbench` uses.
    let mb: u64 = std::env::var("JASH_DYN_MB")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let bytes = mb * 1024 * 1024;
    let loop_iters: usize = std::env::var("JASH_DYN_LOOP")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(96);
    let iters: u32 = std::env::var("JASH_DYN_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    println!(
        "Dynamic regions: {}\n{} loop iterations over {} MiB total, best of {iters}",
        loop_script(),
        loop_iters,
        bytes / (1024 * 1024)
    );
    let bench = run_dyn_bench(loop_iters, bytes, iters);

    crate::report_header(&format!(
        "results ({} plan-cache hit(s) per run)",
        bench.cache_hits
    ));
    for (label, m) in [
        ("jit + plan cache", &bench.cached),
        ("jit, re-plan every iter", &bench.replanned),
        ("interpreter", &bench.interpreter),
    ] {
        println!(
            "  {label:<30} {:>9.1} ms  {:>8.1} MiB/s",
            m.wall.as_secs_f64() * 1000.0,
            m.bytes_per_sec / (1024.0 * 1024.0)
        );
    }
    println!(
        "  cached/replanned {:.2}x, cached/interpreter {:.2}x",
        bench.cached_over_replanned(),
        bench.cached_over_interpreter()
    );

    let path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_dyn.json".to_string());
    std::fs::write(&path, bench.to_json()).expect("write BENCH_dyn.json");
    println!("  wrote {path}");

    let gate: f64 = std::env::var("JASH_DYN_GATE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0);
    if bench.cached_over_replanned() < gate {
        eprintln!(
            "FAIL: cached/replanned {:.2}x below gate {gate:.2}x",
            bench.cached_over_replanned()
        );
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_paths_agree_and_report() {
        let bench = run_dyn_bench(6, 96 * 1024, 1);
        assert_eq!(bench.loop_iters, 6);
        assert_eq!(bench.cache_hits, 5);
        assert!(bench.cached.bytes_per_sec > 0.0);
        assert!(bench.replanned.bytes_per_sec > 0.0);
        assert!(bench.interpreter.bytes_per_sec > 0.0);
        let json = bench.to_json();
        assert!(json.contains("\"bench\": \"dyn\""), "{json}");
        assert!(json.contains("\"loop_iters\": 6"), "{json}");
        assert!(json.contains("\"cache_hits\": 5"), "{json}");
        assert!(json.contains("cached_over_replanned"), "{json}");
    }
}
