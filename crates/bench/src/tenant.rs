//! Multi-tenant fairness benchmark: a closed-loop storm with a 4:1
//! offered-load skew, measured with Jain's fairness index.
//!
//! Eight "heavy" clients and two "light" clients hammer one daemon in
//! closed loops (submit, wait for `Done`, submit again) for a fixed
//! window. Both tenants carry equal weight, so the fair outcome is an
//! even split of completed runs regardless of offered load. A FIFO
//! admission queue hands the heavy tenant ~4/5 of the service (Jain
//! ≈ 0.74 for a 4:1 split); the deficit-round-robin scheduler should
//! hold the split near even (Jain ≈ 1.0).
//!
//! The `tenantbench` binary renders the table, writes
//! `BENCH_tenant.json` for the CI artifact, and exits nonzero when the
//! index falls below the configured gate (`JASH_TENANT_GATE`,
//! default 0.9).

use jash_serve::{submit, Request, Server, ServerConfig, TenantReport};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The benchmarked script — identical for both tenants, so completed
/// runs are directly comparable units of service.
pub const SCRIPT: &str = "cat /in.txt | tr A-Z a-z | tr -cs a-z '\\n' | sort -u";

const HEAVY_CLIENTS: usize = 8;
const LIGHT_CLIENTS: usize = 2;

/// One tenant's side of the experiment.
#[derive(Debug, Clone, Default)]
pub struct TenantSide {
    /// Runs that came back `Done` with status 0.
    pub completed: u64,
    /// Submissions that came back rejected (any code).
    pub rejected: u64,
    /// Longest queue wait the daemon recorded for the tenant.
    pub max_wait_ms: u64,
}

/// The full experiment result.
#[derive(Debug, Clone)]
pub struct TenantBench {
    /// Length of the submission window.
    pub duration: Duration,
    /// Daemon worker count.
    pub workers: usize,
    /// Closed-loop clients per tenant (the 4:1 skew).
    pub heavy_clients: usize,
    /// See `heavy_clients`.
    pub light_clients: usize,
    /// The flooding tenant.
    pub heavy: TenantSide,
    /// The trickling tenant.
    pub light: TenantSide,
}

/// Jain's fairness index over per-tenant service totals:
/// `(Σx)² / (n·Σx²)`. 1.0 is a perfectly even split; `1/n` is one
/// tenant taking everything.
pub fn jain_index(shares: &[f64]) -> f64 {
    let n = shares.len() as f64;
    let sum: f64 = shares.iter().sum();
    let sq: f64 = shares.iter().map(|x| x * x).sum();
    if sq <= 0.0 {
        return 1.0; // No service at all is (vacuously) even.
    }
    (sum * sum) / (n * sq)
}

impl TenantBench {
    /// The gated quantity: Jain's index over the two tenants'
    /// completed-run counts.
    pub fn jain(&self) -> f64 {
        jain_index(&[self.heavy.completed as f64, self.light.completed as f64])
    }

    /// The light tenant's share of all completed runs (fair = 0.5).
    pub fn light_share(&self) -> f64 {
        let total = self.heavy.completed + self.light.completed;
        if total == 0 {
            return 0.0;
        }
        self.light.completed as f64 / total as f64
    }

    /// Renders the `BENCH_tenant.json` document.
    pub fn to_json(&self) -> String {
        let side = |s: &TenantSide| {
            format!(
                "{{\"completed\": {}, \"rejected\": {}, \"max_wait_ms\": {}}}",
                s.completed, s.rejected, s.max_wait_ms
            )
        };
        format!(
            "{{\n  \"bench\": \"tenant\",\n  \"script\": \"{}\",\n  \"duration_s\": {:.3},\n  \
             \"workers\": {},\n  \"heavy_clients\": {},\n  \"light_clients\": {},\n  \
             \"heavy\": {},\n  \"light\": {},\n  \"light_share\": {:.3},\n  \"jain\": {:.4}\n}}\n",
            SCRIPT.replace('\\', "\\\\").replace('"', "\\\""),
            self.duration.as_secs_f64(),
            self.workers,
            self.heavy_clients,
            self.light_clients,
            side(&self.heavy),
            side(&self.light),
            self.light_share(),
            self.jain(),
        )
    }
}

fn client_loop(socket: std::path::PathBuf, tenant: String, deadline: Instant) -> (u64, u64) {
    let mut completed = 0u64;
    let mut rejected = 0u64;
    while Instant::now() < deadline {
        let req = Request::new(SCRIPT).with_tenant(tenant.clone());
        match submit(&socket, &req) {
            Ok(reply) if reply.status == Some(0) => completed += 1,
            Ok(reply) if reply.rejected.is_some() => rejected += 1,
            _ => {}
        }
    }
    (completed, rejected)
}

fn report_for<'a>(reports: &'a [TenantReport], tenant: &str) -> Option<&'a TenantReport> {
    reports.iter().find(|t| t.tenant == tenant)
}

/// Runs the experiment: a 2-worker daemon, both tenants at default
/// (equal) weight, closed-loop clients at 4:1 for `duration`.
pub fn run_tenant_bench(duration: Duration) -> TenantBench {
    let dir = jash_io::TempDir::new("jash-tenantbench");
    let socket = dir.path().join("sock");
    let fs = jash_io::mem_fs();
    let corpus = crate::word_corpus(256 * 1024, 13);
    jash_io::fs::write_file(fs.as_ref(), "/in.txt", &corpus).expect("stage input");

    let mut cfg = ServerConfig::new(&socket, Arc::clone(&fs));
    cfg.workers = 2;
    cfg.queue_cap = 64;
    cfg.eager = true;
    cfg.durable = false;
    cfg.drain_budget = Duration::from_secs(10);
    let server = Server::start(cfg).expect("tenantbench: bind");

    let deadline = Instant::now() + duration;
    let spawn = |tenant: &str, n: usize| -> Vec<std::thread::JoinHandle<(u64, u64)>> {
        (0..n)
            .map(|_| {
                let socket = socket.clone();
                let tenant = tenant.to_string();
                std::thread::spawn(move || client_loop(socket, tenant, deadline))
            })
            .collect()
    };
    let heavy_handles = spawn("heavy", HEAVY_CLIENTS);
    let light_handles = spawn("light", LIGHT_CLIENTS);

    let tally = |handles: Vec<std::thread::JoinHandle<(u64, u64)>>| {
        handles.into_iter().fold((0u64, 0u64), |acc, h| {
            let (c, r) = h.join().expect("client thread panicked");
            (acc.0 + c, acc.1 + r)
        })
    };
    let (heavy_completed, heavy_rejected) = tally(heavy_handles);
    let (light_completed, light_rejected) = tally(light_handles);

    let report = server.drain();
    let wait = |tenant: &str| {
        report_for(&report.tenants, tenant).map_or(0, |t| t.max_queue_wait_ms)
    };
    TenantBench {
        duration,
        workers: 2,
        heavy_clients: HEAVY_CLIENTS,
        light_clients: LIGHT_CLIENTS,
        heavy: TenantSide {
            completed: heavy_completed,
            rejected: heavy_rejected,
            max_wait_ms: wait("heavy"),
        },
        light: TenantSide {
            completed: light_completed,
            rejected: light_rejected,
            max_wait_ms: wait("light"),
        },
    }
}

/// Full run for the `tenantbench` binary: table, `BENCH_tenant.json`,
/// and the fairness gate (`JASH_TENANT_GATE`, default 0.9 — a FIFO
/// queue's 4:1 split scores ≈ 0.74 and must fail).
pub fn main_with_gate() {
    let ms: u64 = std::env::var("JASH_TENANT_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3_000);
    println!(
        "Tenant fairness: {SCRIPT}\n{HEAVY_CLIENTS} heavy vs {LIGHT_CLIENTS} light closed-loop \
         clients, equal weights, {ms} ms window"
    );
    let bench = run_tenant_bench(Duration::from_millis(ms));

    crate::report_header("results");
    for (label, side) in [("heavy (8 clients)", &bench.heavy), ("light (2 clients)", &bench.light)]
    {
        println!(
            "  {label:<20} {:>6} completed, {:>4} rejected, max wait {:>5} ms",
            side.completed, side.rejected, side.max_wait_ms
        );
    }
    println!(
        "  light share {:.3} (fair 0.5), Jain index {:.4}",
        bench.light_share(),
        bench.jain()
    );

    let path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_tenant.json".to_string());
    std::fs::write(&path, bench.to_json()).expect("write BENCH_tenant.json");
    println!("  wrote {path}");

    let gate: f64 = std::env::var("JASH_TENANT_GATE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.9);
    if bench.jain() < gate {
        eprintln!("FAIL: Jain index {:.4} below gate {gate:.2}", bench.jain());
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jain_index_brackets() {
        assert!((jain_index(&[1.0, 1.0]) - 1.0).abs() < 1e-9);
        assert!((jain_index(&[4.0, 1.0]) - 25.0 / 34.0).abs() < 1e-9);
        assert!((jain_index(&[1.0, 0.0]) - 0.5).abs() < 1e-9);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
    }

    #[test]
    fn skewed_storm_stays_fair() {
        let bench = run_tenant_bench(Duration::from_millis(1_200));
        assert!(bench.heavy.completed > 0, "{bench:?}");
        assert!(bench.light.completed > 0, "{bench:?}");
        // The CI gate is 0.9; in-tree we only insist the light tenant
        // was not starved outright (FIFO under this skew sits ≈ 0.74).
        assert!(bench.jain() > 0.74, "unfair split: {bench:?}");
        let json = bench.to_json();
        assert!(json.contains("\"bench\": \"tenant\""), "{json}");
        assert!(json.contains("\"jain\""), "{json}");
    }
}
