//! Serve-crash drill: SIGKILL a real `jash serve` daemon mid-storm,
//! restart it, and prove the admission ledger's promise — every keyed
//! submission completes **exactly once**, byte-identical, with zero
//! staging debris and zero orphaned run scopes.
//!
//! Per kill point k ∈ {0, 1, 2}:
//!
//! 1. A fresh daemon serves two workloads: run **A**, a three-region
//!    pipeline whose (k+1)-th region is wedged mid-write by an injected
//!    `stall-write` fault (the deterministic kill window), submitted
//!    through [`jash_serve::submit_with_retry`] with idempotency key
//!    `crash-A`; and runs **B0..B2**, keyed submissions that finish
//!    cleanly before the crash.
//! 2. The daemon is SIGKILLed inside the window — no destructors, no
//!    drain. The B output files are then overwritten with sentinel
//!    junk: if the restarted daemon re-executes a finished run, the
//!    sentinels get clobbered and the drill fails.
//! 3. A second daemon starts on the same root. Its startup janitor
//!    must finalize A (resuming the k journaled-clean regions from the
//!    durable memo, not re-running them) and cache B's terminal
//!    results. Client A's retry loop rides the restart and collects
//!    A's terminal reply; resubmitting the B keys must *replay* the
//!    cached results — byte-identical stdout, sentinels untouched.
//! 4. The audit: A's outputs byte-identical to an uninterrupted
//!    baseline, the recovery banner reporting `finalized=1 resumed=k
//!    cached=3`, a clean SIGTERM drain (exit 143), zero `.jash-stage-*`
//!    debris, and zero leftover `run-*` scopes.

use std::fs;
use std::io::{BufRead, BufReader};
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::crash::jash_binary;
use jash_serve::{submit, submit_with_retry, Request, RetryConfig};

/// How one kill-point scenario went.
#[derive(Debug)]
pub struct ServeCrashRow {
    /// Regions run A completed before the SIGKILL landed.
    pub kill_after: usize,
    /// `finalized=` counter from the restarted daemon's recovery banner.
    pub finalized: u64,
    /// `resumed=` counter — journaled-clean regions replayed from memo.
    pub resumed: u64,
    /// `cached=` counter — finished keyed runs loaded for replay.
    pub cached: u64,
    /// Extra attempts client A needed to ride out the restart.
    pub a_retries: u32,
    /// Restarted daemon's exit status after the SIGTERM drain.
    pub exit: Option<i32>,
    /// Run A's outputs byte-identical to the uninterrupted baseline.
    pub identical: bool,
    /// Resubmitted B keys replayed (attached, same bytes, sentinels
    /// untouched) instead of re-executing.
    pub replayed: bool,
    /// `.jash-stage-*` files left anywhere after the drain.
    pub debris: usize,
    /// `run-*` scopes left under the serve journal root after the drain.
    pub scopes: usize,
    /// Failure annotation, empty when the scenario held.
    pub note: String,
}

const REGIONS: usize = 3;
const B_RUNS: usize = 3;
const SENTINEL: &[u8] = b"sentinel: replay must not clobber this\n";

fn script_a() -> String {
    (0..REGIONS)
        .map(|j| format!("cat /inA{j} | tr A-Z a-z | sort > /outA{j}\n"))
        .collect()
}

fn script_b(i: usize) -> String {
    // Two statements: produce a file *and* stream it back, so replay
    // has both a result blob and an on-disk artifact to protect.
    format!("cat /inB{i} | tr A-Z a-z | sort > /outB{i}\ncat /outB{i}\n")
}

fn stage_root(root: &Path, bytes: u64, seed: u64) {
    fs::create_dir_all(root).expect("create serve-crash root");
    for j in 0..REGIONS {
        // At least 128 KiB per region so the staged write always
        // reaches the 64 KiB stall offset and the kill window opens.
        let per_region = (bytes / REGIONS as u64).max(128 * 1024);
        let docs = crate::documents(per_region, seed + j as u64);
        fs::write(root.join(format!("inA{j}")), docs).expect("stage A input");
    }
    for i in 0..B_RUNS {
        let docs = crate::documents(64 * 1024, seed + 100 + i as u64);
        fs::write(root.join(format!("inB{i}")), docs).expect("stage B input");
    }
}

fn spawn_daemon(root: &Path, socket: &Path, stderr: Stdio) -> Child {
    Command::new(jash_binary())
        .arg("serve")
        .arg("--socket")
        .arg(socket)
        .arg("--root")
        .arg(root)
        .args(["--workers", "4", "--queue", "16"])
        .args(["--drain-secs", "5", "--test-faults"])
        .env("JASH_TEST_EAGER", "1")
        .stdout(Stdio::null())
        .stderr(stderr)
        .spawn()
        .expect("spawn jash serve")
}

fn read_outputs(root: &Path) -> Vec<Option<Vec<u8>>> {
    (0..REGIONS)
        .map(|j| fs::read(root.join(format!("outA{j}"))).ok())
        .collect()
}

fn count_debris(root: &Path) -> usize {
    let mut n = 0;
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = fs::read_dir(&dir) else { continue };
        for e in entries.flatten() {
            let path = e.path();
            if path.is_dir() {
                stack.push(path);
            } else if path
                .file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.contains(".jash-stage-"))
            {
                n += 1;
            }
        }
    }
    n
}

fn count_scopes(root: &Path) -> usize {
    let Ok(entries) = fs::read_dir(root.join(".jash-serve")) else {
        return 0;
    };
    entries
        .flatten()
        .filter(|e| {
            e.path().is_dir()
                && e.file_name()
                    .to_str()
                    .is_some_and(|n| n.starts_with("run-"))
        })
        .count()
}

/// Waits until run A's journal shows `kill_after` completed regions, a
/// live (k+1)-th region, and its stalled staging file on disk — the
/// deterministic kill window. Gives up after `timeout`.
fn wait_for_kill_window(root: &Path, kill_after: usize, timeout: Duration) -> bool {
    let journal = root.join(".jash-serve/run-1/journal");
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        let text = fs::read_to_string(&journal).unwrap_or_default();
        let done = text.lines().filter(|l| l.contains(" region-done ")).count();
        let started = text
            .lines()
            .filter(|l| l.contains(" region-start "))
            .count();
        if done >= kill_after && started > kill_after && count_debris(root) > 0 {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    false
}

/// Pulls `key=value` counters off the daemon's
/// `jash: serve recovery: ...` banner.
fn recovery_counter(stderr: &str, key: &str) -> Option<u64> {
    let line = stderr
        .lines()
        .find(|l| l.contains("serve recovery:"))?;
    line.split_whitespace()
        .find_map(|tok| tok.strip_prefix(&format!("{key}=")))
        .and_then(|v| v.parse().ok())
}

/// Drains a piped stderr into a shared buffer without blocking the
/// child on a full pipe.
fn capture_stderr(child: &mut Child) -> Arc<Mutex<String>> {
    let buf = Arc::new(Mutex::new(String::new()));
    let pipe = child.stderr.take().expect("piped stderr");
    let sink = Arc::clone(&buf);
    std::thread::spawn(move || {
        for line in BufReader::new(pipe).lines().map_while(Result::ok) {
            sink.lock().unwrap().push_str(&line);
            sink.lock().unwrap().push('\n');
        }
    });
    buf
}

fn sigterm(child: &Child) {
    let _ = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status();
}

/// Runs the serve-crash sweep: an uninterrupted baseline, then one
/// scenario per kill point.
pub fn run_serve_crash_sweep(bytes: u64, seed: u64) -> Vec<ServeCrashRow> {
    // RAII scratch: removed when the sweep returns — or panics, so an
    // aborted sweep can't seed the next one with stale ledgers.
    let scratch = jash_io::TempDir::new("jash-servecrash");

    // Baseline: run A's script one-shot, never interrupted.
    let base_root = scratch.path().join("baseline");
    stage_root(&base_root, bytes, seed);
    let status = Command::new(jash_binary())
        .arg("--root")
        .arg(&base_root)
        .args(["-c", &script_a()])
        .env("JASH_TEST_EAGER", "1")
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .expect("run baseline jash");
    assert!(status.success(), "baseline run failed: {status:?}");
    let baseline = read_outputs(&base_root);

    let mut rows = Vec::new();
    for kill_after in 0..REGIONS {
        rows.push(run_scenario(
            &scratch.path().join(format!("kill{kill_after}")),
            kill_after,
            bytes,
            seed,
            &baseline,
        ));
    }
    rows
}

#[allow(clippy::too_many_lines)]
fn run_scenario(
    root: &Path,
    kill_after: usize,
    bytes: u64,
    seed: u64,
    baseline: &[Option<Vec<u8>>],
) -> ServeCrashRow {
    let mut row = ServeCrashRow {
        kill_after,
        finalized: 0,
        resumed: 0,
        cached: 0,
        a_retries: 0,
        exit: None,
        identical: false,
        replayed: false,
        debris: 0,
        scopes: 0,
        note: String::new(),
    };
    let mut notes = Vec::new();

    stage_root(root, bytes, seed);
    let socket = root.join("sock");
    let mut daemon = spawn_daemon(root, &socket, Stdio::null());
    let bind_deadline = Instant::now() + Duration::from_secs(10);
    while !socket.exists() {
        if Instant::now() > bind_deadline {
            let _ = daemon.kill();
            let _ = daemon.wait();
            row.note = "first daemon never bound its socket".into();
            return row;
        }
        std::thread::sleep(Duration::from_millis(10));
    }

    // Client A: keyed, wedged mid-write of region (k+1), and patient
    // enough to ride out the SIGKILL + restart on its retry budget.
    let a_thread = {
        let socket = socket.to_path_buf();
        let req = Request::new(script_a())
            .with_key("crash-A")
            .with_timeout_ms(120_000);
        let req = Request {
            fault: Some(format!("stall-write:/outA{kill_after}:65536:600000")),
            ..req
        };
        let cfg = RetryConfig {
            attempts: 80,
            base: Duration::from_millis(250),
            ..RetryConfig::default()
        };
        std::thread::spawn(move || submit_with_retry(&socket, &req, &cfg))
    };

    // Wait until A is admitted and running (its journal scope exists),
    // so the B runs land while A wedges a worker.
    let a_deadline = Instant::now() + Duration::from_secs(30);
    while !root.join(".jash-serve/run-1/journal").exists() {
        if Instant::now() > a_deadline {
            let _ = daemon.kill();
            let _ = daemon.wait();
            row.note = "run A never started".into();
            return row;
        }
        std::thread::sleep(Duration::from_millis(10));
    }

    // The B runs: keyed, finish cleanly, terminal results journaled to
    // the ledger before the Done frame reaches us.
    let mut b_stdout = Vec::new();
    for i in 0..B_RUNS {
        let req = Request::new(script_b(i)).with_key(format!("crash-B{i}"));
        match submit(&socket, &req) {
            Ok(reply) if reply.status == Some(0) && !reply.stdout.is_empty() => {
                b_stdout.push(reply.stdout);
            }
            other => {
                let _ = daemon.kill();
                let _ = daemon.wait();
                row.note = format!("run B{i} did not complete cleanly: {other:?}");
                return row;
            }
        }
    }

    let windowed = wait_for_kill_window(root, kill_after, Duration::from_secs(60));
    daemon.kill().expect("SIGKILL jash serve"); // SIGKILL: no cleanup runs
    let _ = daemon.wait();
    if !windowed {
        row.note = "kill window never opened".into();
        return row;
    }

    // Plant the sentinels: re-execution of any B run would clobber them.
    for i in 0..B_RUNS {
        fs::write(root.join(format!("outB{i}")), SENTINEL).expect("plant sentinel");
    }

    // Restart on the same root. Recovery runs before the bind, so any
    // client that gets a connection sees the janitor's finished estate.
    let mut daemon2 = spawn_daemon(root, &socket, Stdio::piped());
    let stderr2 = capture_stderr(&mut daemon2);

    // Client A's retry loop must deliver A's terminal reply through the
    // restart: the resubmitted key replays the recovered result.
    match a_thread.join().expect("client A panicked") {
        Ok(reply) if reply.status == Some(0) => row.a_retries = reply.retries,
        other => notes.push(format!("run A did not recover: {other:?}")),
    }

    // Resubmitting the B keys must replay, not re-execute.
    let mut replayed = true;
    for (i, first_stdout) in b_stdout.iter().enumerate() {
        let req = Request::new(script_b(i)).with_key(format!("crash-B{i}"));
        match submit(&socket, &req) {
            Ok(reply)
                if reply.status == Some(0)
                    && reply.attached.is_some()
                    && &reply.stdout == first_stdout => {}
            other => {
                replayed = false;
                notes.push(format!("run B{i} was not replayed byte-identically: {other:?}"));
            }
        }
        let on_disk = fs::read(root.join(format!("outB{i}"))).unwrap_or_default();
        if on_disk != SENTINEL {
            replayed = false;
            notes.push(format!("run B{i} re-executed: sentinel clobbered"));
        }
    }
    row.replayed = replayed;

    // Drain the second daemon and audit the estate.
    sigterm(&daemon2);
    let drain_deadline = Instant::now() + Duration::from_secs(15);
    let exit = loop {
        match daemon2.try_wait().expect("wait for daemon") {
            Some(status) => break status.code(),
            None if Instant::now() > drain_deadline => {
                let _ = daemon2.kill();
                let _ = daemon2.wait();
                break None;
            }
            None => std::thread::sleep(Duration::from_millis(20)),
        }
    };
    row.exit = exit;
    if exit != Some(143) {
        notes.push(format!("restarted daemon exited {exit:?}, want 143"));
    }

    let stderr = stderr2.lock().unwrap().clone();
    row.finalized = recovery_counter(&stderr, "finalized").unwrap_or(0);
    row.resumed = recovery_counter(&stderr, "resumed").unwrap_or(0);
    row.cached = recovery_counter(&stderr, "cached").unwrap_or(0);
    if row.finalized != 1 {
        notes.push(format!("finalized {}, expected 1", row.finalized));
    }
    if row.resumed != kill_after as u64 {
        notes.push(format!("resumed {}, expected {kill_after}", row.resumed));
    }
    if row.cached != B_RUNS as u64 {
        notes.push(format!("cached {}, expected {B_RUNS}", row.cached));
    }

    row.identical = read_outputs(root) == baseline;
    if !row.identical {
        notes.push("run A output diverged from baseline".into());
    }
    row.debris = count_debris(root);
    if row.debris > 0 {
        notes.push(format!("{} staging file(s) leaked", row.debris));
    }
    row.scopes = count_scopes(root);
    if row.scopes > 0 {
        notes.push(format!("{} orphan run scope(s) leaked", row.scopes));
    }
    row.note = notes.join("; ");
    row
}

/// Renders the sweep as a fixed-width table.
pub fn render_serve_crash(rows: &[ServeCrashRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<12} {:>9} {:>7} {:>6} {:>9} {:>6} {:>10} {:>8} {:>7} {:>7}  note\n",
        "kill-after",
        "finalized",
        "resumed",
        "cached",
        "a-retries",
        "exit",
        "identical",
        "replayed",
        "debris",
        "scopes"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<12} {:>9} {:>7} {:>6} {:>9} {:>6} {:>10} {:>8} {:>7} {:>7}  {}\n",
            r.kill_after,
            r.finalized,
            r.resumed,
            r.cached,
            r.a_retries,
            r.exit.map_or("?".into(), |c| c.to_string()),
            if r.identical { "yes" } else { "NO" },
            if r.replayed { "yes" } else { "NO" },
            r.debris,
            r.scopes,
            r.note,
        ));
    }
    out
}

/// Whether every scenario held: exactly-once completion, byte-identical
/// outputs, clean drain, zero debris, zero orphan scopes.
pub fn serve_crash_holds(rows: &[ServeCrashRow]) -> bool {
    rows.len() == REGIONS && rows.iter().all(|r| r.note.is_empty())
}
