//! Per-invocation command specifications.
//!
//! A command specification describes a command *name*; resolving it
//! against a concrete argument vector yields an [`InstanceSpec`] — the classification
//! the dataflow compiler consumes. Flags matter: `sort` is
//! merge-aggregatable, `sort -rn` needs a numeric-reverse merge, `grep -q`
//! stops consuming input early, `tee` writes extra files.

use crate::class::{Aggregator, ParallelClass, SortKeySpec};

/// The specification of one concrete command invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct InstanceSpec {
    /// Parallelizability classification.
    pub class: ParallelClass,
    /// Indices into the argument vector that name input files.
    pub input_args: Vec<usize>,
    /// Whether the command reads stdin when no file operands are given
    /// (or when `-` appears).
    pub reads_stdin: bool,
    /// Extra output files the command writes (e.g. `tee`).
    pub output_files: Vec<String>,
    /// Emits nothing until it has consumed all input (`sort`, `wc`, …).
    pub blocking: bool,
    /// May stop consuming input before EOF (`head`, `grep -q`).
    pub prefix_only: bool,
}

impl InstanceSpec {
    fn stateless() -> Self {
        InstanceSpec {
            class: ParallelClass::Stateless,
            input_args: Vec::new(),
            reads_stdin: true,
            output_files: Vec::new(),
            blocking: false,
            prefix_only: false,
        }
    }

    fn non_parallel() -> Self {
        InstanceSpec {
            class: ParallelClass::NonParallelizable,
            ..InstanceSpec::stateless()
        }
    }

    fn side_effectful() -> Self {
        InstanceSpec {
            class: ParallelClass::SideEffectful,
            reads_stdin: false,
            ..InstanceSpec::stateless()
        }
    }
}

/// Resolves the built-in specification for `name` applied to `args`.
///
/// Returns `None` for commands without a registered spec — the dataflow
/// compiler then treats them as opaque and leaves the pipeline to the
/// interpreter (the paper's B1 barrier, which user spec files lift).
pub fn resolve_builtin(name: &str, args: &[String]) -> Option<InstanceSpec> {
    let file_operands = |skip_flags: bool| -> Vec<usize> {
        let mut v = Vec::new();
        let mut past_flags = false;
        for (i, a) in args.iter().enumerate() {
            if !past_flags && skip_flags && a.starts_with('-') && a.len() > 1 {
                if a == "--" {
                    past_flags = true;
                }
                continue;
            }
            v.push(i);
        }
        v
    };

    Some(match name {
        "cat" => {
            let inputs = file_operands(true);
            InstanceSpec {
                reads_stdin: inputs.is_empty() || args.iter().any(|a| a == "-"),
                input_args: inputs,
                ..InstanceSpec::stateless()
            }
        }
        "tr" => {
            // All operands are sets, not files; purely stdin→stdout.
            // `-s` (squeeze) is stateful across a boundary only for the
            // byte at the seam; treating it as stateless would duplicate a
            // squeezed run across a split, so squeeze runs are bordered.
            let flags: Vec<&String> = args
                .iter()
                .take_while(|a| a.starts_with('-') && a.len() > 1)
                .collect();
            let squeeze = flags.iter().any(|a| a.contains('s'));
            let complement = flags.iter().any(|a| a.contains('c') || a.contains('C'));
            let delete = flags.iter().any(|a| a.contains('d'));
            if squeeze {
                let operands: Vec<&String> =
                    args.iter().skip(flags.len()).collect();
                // Squeezing applies to SET2 when translating, else SET1
                // (complemented when -c without a SET2).
                let set = match (operands.first(), operands.get(1), delete) {
                    (_, Some(s2), false) => jash_coreutils::cmds::tr::expand_set(s2),
                    (Some(s1), _, _) => {
                        let base = jash_coreutils::cmds::tr::expand_set(s1);
                        if complement {
                            (0u8..=255)
                                .filter(|b| !base.contains(b))
                                .collect()
                        } else {
                            base
                        }
                    }
                    _ => Vec::new(),
                };
                InstanceSpec {
                    class: ParallelClass::Parallelizable {
                        agg: Aggregator::SqueezeBoundary { set },
                    },
                    ..InstanceSpec::stateless()
                }
            } else {
                InstanceSpec::stateless()
            }
        }
        "grep" => {
            let mut inputs = Vec::new();
            let mut seen_pattern = args.iter().any(|a| a == "-e");
            let mut quiet = false;
            let mut skip_next = false;
            for (i, a) in args.iter().enumerate() {
                if skip_next {
                    skip_next = false;
                    // `-e PATTERN` argument.
                    continue;
                }
                if a == "-e" || a == "-m" {
                    skip_next = true;
                    continue;
                }
                if a.starts_with('-') && a.len() > 1 {
                    if a.contains('q') {
                        quiet = true;
                    }
                    continue;
                }
                if !seen_pattern {
                    seen_pattern = true;
                    continue;
                }
                inputs.push(i);
            }
            let counting = args.iter().any(|a| {
                a.starts_with('-') && a.len() > 1 && a.contains('c') && !a.starts_with("--")
            });
            InstanceSpec {
                class: if counting {
                    ParallelClass::Parallelizable {
                        agg: Aggregator::SumCounts,
                    }
                } else {
                    ParallelClass::Stateless
                },
                reads_stdin: inputs.is_empty() || args.iter().any(|a| a == "-"),
                input_args: inputs,
                prefix_only: quiet || args.iter().any(|a| a == "-m"),
                output_files: Vec::new(),
                blocking: false,
            }
        }
        "cut" | "fold" => InstanceSpec::stateless(),
        "sed" => {
            // Only pure per-line scripts are stateless; anything with
            // addresses (line numbers, ranges, `$`), `q`, or hold-space
            // commands is order/position dependent.
            let script = args.iter().find(|a| !a.starts_with('-'))?;
            let simple = script.starts_with("s")
                || script.starts_with("/") && script.ends_with("d");
            let positional = script.chars().next().is_some_and(|c| c.is_ascii_digit())
                || script.contains('$')
                || script.contains('q');
            if simple && !positional {
                InstanceSpec::stateless()
            } else {
                InstanceSpec::non_parallel()
            }
        }
        "sort" => {
            let (opts, operands) =
                jash_coreutils::cmds::sort::SortOptions::parse(args)?;
            let key: SortKeySpec = opts.into();
            InstanceSpec {
                class: ParallelClass::Parallelizable {
                    agg: Aggregator::MergeSort { key },
                },
                reads_stdin: operands.is_empty() || operands.iter().any(|o| o == "-"),
                input_args: file_operands(true),
                output_files: Vec::new(),
                blocking: true,
                prefix_only: false,
            }
        }
        "uniq" => {
            let counted = args.iter().any(|a| a.starts_with('-') && a.contains('c'));
            let selective = args
                .iter()
                .any(|a| a.starts_with('-') && (a.contains('d') || a.contains('u')));
            if selective {
                // -d/-u verdicts at a boundary depend on the neighbor run.
                InstanceSpec::non_parallel()
            } else {
                InstanceSpec {
                    class: ParallelClass::Parallelizable {
                        agg: Aggregator::UniqBoundary { counted },
                    },
                    input_args: file_operands(true),
                    ..InstanceSpec::stateless()
                }
            }
        }
        "wc" => InstanceSpec {
            class: ParallelClass::Parallelizable {
                agg: Aggregator::SumCounts,
            },
            input_args: file_operands(true),
            blocking: true,
            ..InstanceSpec::stateless()
        },
        "head" => InstanceSpec {
            prefix_only: true,
            input_args: file_operands(true),
            ..InstanceSpec::non_parallel()
        },
        "tail" => InstanceSpec {
            blocking: true,
            input_args: file_operands(true),
            ..InstanceSpec::non_parallel()
        },
        "comm" | "join" => {
            // Two-input relational operators: dataflow nodes, but not
            // splittable without key-range partitioning.
            InstanceSpec {
                input_args: file_operands(true),
                ..InstanceSpec::non_parallel()
            }
        }
        "rev" | "nl" => {
            if name == "nl" {
                InstanceSpec {
                    input_args: file_operands(true),
                    ..InstanceSpec::non_parallel()
                }
            } else {
                InstanceSpec {
                    input_args: file_operands(true),
                    ..InstanceSpec::stateless()
                }
            }
        }
        "tac" | "shuf" | "paste" => InstanceSpec {
            blocking: true,
            input_args: file_operands(true),
            ..InstanceSpec::non_parallel()
        },
        "seq" | "echo" | "printf" => InstanceSpec {
            reads_stdin: false,
            ..InstanceSpec::non_parallel()
        },
        "tee" => {
            let (_, files) = split_tee_args(args);
            InstanceSpec {
                class: ParallelClass::Stateless,
                input_args: Vec::new(),
                reads_stdin: true,
                output_files: files,
                blocking: false,
                prefix_only: false,
            }
        }
        "true" | "false" => InstanceSpec {
            reads_stdin: false,
            ..InstanceSpec::non_parallel()
        },
        "rm" | "cp" | "mv" | "ls" | "mkfifo" => InstanceSpec::side_effectful(),
        _ => return None,
    })
}

fn split_tee_args(args: &[String]) -> (bool, Vec<String>) {
    let mut append = false;
    let mut files = Vec::new();
    for a in args {
        if a == "-a" {
            append = true;
        } else if !a.starts_with('-') || a == "-" {
            files.push(a.clone());
        }
    }
    (append, files)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(a: &[&str]) -> Vec<String> {
        a.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn cat_is_stateless_with_inputs() {
        let s = resolve_builtin("cat", &args(&["f1", "f2"])).unwrap();
        assert_eq!(s.class, ParallelClass::Stateless);
        assert_eq!(s.input_args, vec![0, 1]);
        assert!(!s.reads_stdin);
        let s = resolve_builtin("cat", &args(&[])).unwrap();
        assert!(s.reads_stdin);
    }

    #[test]
    fn plain_tr_stateless_squeeze_bordered() {
        let s = resolve_builtin("tr", &args(&["A-Z", "a-z"])).unwrap();
        assert_eq!(s.class, ParallelClass::Stateless);
        let s = resolve_builtin("tr", &args(&["-cs", "A-Za-z", "\\n"])).unwrap();
        match s.class {
            ParallelClass::Parallelizable {
                agg: Aggregator::SqueezeBoundary { set },
            } => assert_eq!(set, vec![b'\n']),
            other => panic!("{other:?}"),
        }
        // Squeeze without translation: SET1 itself.
        let s = resolve_builtin("tr", &args(&["-s", "l"])).unwrap();
        match s.class {
            ParallelClass::Parallelizable {
                agg: Aggregator::SqueezeBoundary { set },
            } => assert_eq!(set, vec![b'l']),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn sort_gets_merge_aggregator_with_flags() {
        let s = resolve_builtin("sort", &args(&["-rn"])).unwrap();
        match s.class {
            ParallelClass::Parallelizable {
                agg: Aggregator::MergeSort { key },
            } => {
                assert!(key.reverse && key.numeric);
            }
            other => panic!("{other:?}"),
        }
        assert!(s.blocking);
    }

    #[test]
    fn sort_u_unique_in_key() {
        let s = resolve_builtin("sort", &args(&["-u"])).unwrap();
        match s.class {
            ParallelClass::Parallelizable {
                agg: Aggregator::MergeSort { key },
            } => assert!(key.unique),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn grep_variants() {
        let s = resolve_builtin("grep", &args(&["-v", "999"])).unwrap();
        assert_eq!(s.class, ParallelClass::Stateless);
        assert!(s.reads_stdin);
        let s = resolve_builtin("grep", &args(&["-c", "x"])).unwrap();
        assert!(matches!(
            s.class,
            ParallelClass::Parallelizable {
                agg: Aggregator::SumCounts
            }
        ));
        let s = resolve_builtin("grep", &args(&["-q", "x", "file"])).unwrap();
        assert!(s.prefix_only);
        assert_eq!(s.input_args, vec![2]);
    }

    #[test]
    fn head_is_prefix_only() {
        let s = resolve_builtin("head", &args(&["-n1"])).unwrap();
        assert!(s.prefix_only);
        assert!(!s.class.is_splittable());
    }

    #[test]
    fn wc_sums() {
        let s = resolve_builtin("wc", &args(&["-l"])).unwrap();
        assert!(matches!(
            s.class,
            ParallelClass::Parallelizable {
                agg: Aggregator::SumCounts
            }
        ));
    }

    #[test]
    fn uniq_classes() {
        let s = resolve_builtin("uniq", &args(&[])).unwrap();
        assert!(matches!(
            s.class,
            ParallelClass::Parallelizable {
                agg: Aggregator::UniqBoundary { counted: false }
            }
        ));
        let s = resolve_builtin("uniq", &args(&["-c"])).unwrap();
        assert!(matches!(
            s.class,
            ParallelClass::Parallelizable {
                agg: Aggregator::UniqBoundary { counted: true }
            }
        ));
        let s = resolve_builtin("uniq", &args(&["-d"])).unwrap();
        assert_eq!(s.class, ParallelClass::NonParallelizable);
    }

    #[test]
    fn sed_pure_substitution_is_stateless() {
        let s = resolve_builtin("sed", &args(&["s/a/b/g"])).unwrap();
        assert_eq!(s.class, ParallelClass::Stateless);
        let s = resolve_builtin("sed", &args(&["2q"])).unwrap();
        assert_eq!(s.class, ParallelClass::NonParallelizable);
        let s = resolve_builtin("sed", &args(&["$d"])).unwrap();
        assert_eq!(s.class, ParallelClass::NonParallelizable);
    }

    #[test]
    fn tee_declares_output_files() {
        let s = resolve_builtin("tee", &args(&["-a", "log1", "log2"])).unwrap();
        assert_eq!(s.output_files, vec!["log1", "log2"]);
        assert_eq!(s.class, ParallelClass::Stateless);
    }

    #[test]
    fn mutators_are_side_effectful() {
        for cmd in ["rm", "cp", "mv"] {
            let s = resolve_builtin(cmd, &args(&["x"])).unwrap();
            assert_eq!(s.class, ParallelClass::SideEffectful);
        }
    }

    #[test]
    fn unknown_commands_unresolved() {
        assert!(resolve_builtin("frobnicate", &args(&[])).is_none());
    }

    #[test]
    fn comm_is_dataflow_but_not_splittable() {
        let s = resolve_builtin("comm", &args(&["-13", "dict", "-"])).unwrap();
        assert_eq!(s.class, ParallelClass::NonParallelizable);
        assert!(s.input_args.contains(&1));
    }
}
