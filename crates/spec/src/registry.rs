//! The specification registry: built-ins plus user-supplied libraries.
//!
//! The paper (E2) envisions specification libraries "shared between users,
//! not unlike completion libraries"; [`Registry::load_json`] implements
//! that interchange: a JSON document describing default classes and
//! flag-conditional overrides for commands the built-in table doesn't
//! know.

use crate::class::ParallelClass;
use crate::json::{self, JsonError, Value};
use crate::spec::{resolve_builtin, InstanceSpec};
use std::collections::HashMap;

/// A user-provided specification for one command, as serialized in a
/// specification library file.
#[derive(Debug, Clone)]
pub struct UserSpec {
    /// Command name the spec applies to.
    pub name: String,
    /// Spec version (commands change behavior across versions; specs are
    /// written per version, like man pages). Defaults to empty.
    pub version: String,
    /// Class when no overriding rule matches.
    pub default_class: ParallelClass,
    /// First matching rule wins. Defaults to empty.
    pub rules: Vec<FlagRule>,
    /// Whether the command reads stdin when it has no file operands.
    /// Defaults to true.
    pub reads_stdin: bool,
    /// Whether it buffers all input before emitting (cost model hint).
    /// Defaults to false.
    pub blocking: bool,
}

/// A conditional class override keyed on a present flag.
#[derive(Debug, Clone)]
pub struct FlagRule {
    /// Flag that triggers the rule (exact argument match, e.g. `-z`).
    pub when_flag: String,
    /// Class to use when the flag is present.
    pub class: ParallelClass,
}

impl UserSpec {
    /// Serializes to the spec-library wire format.
    pub fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("name".to_string(), Value::Str(self.name.clone())),
            ("version".to_string(), Value::Str(self.version.clone())),
            ("default_class".to_string(), self.default_class.to_value()),
            (
                "rules".to_string(),
                Value::Arr(
                    self.rules
                        .iter()
                        .map(|r| {
                            Value::Obj(vec![
                                ("when_flag".to_string(), Value::Str(r.when_flag.clone())),
                                ("class".to_string(), r.class.to_value()),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("reads_stdin".to_string(), Value::Bool(self.reads_stdin)),
            ("blocking".to_string(), Value::Bool(self.blocking)),
        ])
    }

    /// Parses the spec-library wire format; optional fields default.
    pub fn from_value(v: &Value) -> Result<Self, JsonError> {
        let name = v
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| JsonError("spec needs a \"name\"".into()))?
            .to_string();
        let default_class = v
            .get("default_class")
            .ok_or_else(|| JsonError(format!("spec {name:?} needs \"default_class\"")))
            .and_then(ParallelClass::from_value)?;
        let rules = v
            .get("rules")
            .and_then(Value::as_arr)
            .unwrap_or(&[])
            .iter()
            .map(|r| {
                Ok(FlagRule {
                    when_flag: r
                        .get("when_flag")
                        .and_then(Value::as_str)
                        .ok_or_else(|| JsonError("rule needs \"when_flag\"".into()))?
                        .to_string(),
                    class: r
                        .get("class")
                        .ok_or_else(|| JsonError("rule needs \"class\"".into()))
                        .and_then(ParallelClass::from_value)?,
                })
            })
            .collect::<Result<Vec<_>, JsonError>>()?;
        Ok(UserSpec {
            name,
            version: v
                .get("version")
                .and_then(Value::as_str)
                .unwrap_or("")
                .to_string(),
            default_class,
            rules,
            reads_stdin: v.get("reads_stdin").and_then(Value::as_bool).unwrap_or(true),
            blocking: v.get("blocking").and_then(Value::as_bool).unwrap_or(false),
        })
    }
}

/// A resolvable collection of command specifications.
#[derive(Default)]
pub struct Registry {
    user: HashMap<String, UserSpec>,
}

impl Registry {
    /// A registry with only the built-in specifications.
    pub fn builtin() -> Self {
        Registry::default()
    }

    /// Registers (or replaces) a user specification.
    pub fn register(&mut self, spec: UserSpec) {
        self.user.insert(spec.name.clone(), spec);
    }

    /// Loads a JSON specification library (an array of [`UserSpec`]).
    pub fn load_json(&mut self, json: &str) -> Result<usize, JsonError> {
        let doc = json::parse(json)?;
        let items = doc
            .as_arr()
            .ok_or_else(|| JsonError("a spec library is a JSON array".into()))?;
        let specs = items
            .iter()
            .map(UserSpec::from_value)
            .collect::<Result<Vec<_>, _>>()?;
        let n = specs.len();
        for s in specs {
            self.register(s);
        }
        Ok(n)
    }

    /// Serializes the user-registered specs back to JSON.
    pub fn to_json(&self) -> String {
        let mut specs: Vec<&UserSpec> = self.user.values().collect();
        specs.sort_by(|a, b| a.name.cmp(&b.name));
        Value::Arr(specs.iter().map(|s| s.to_value()).collect()).to_pretty()
    }

    /// Resolves a command invocation: user specs take precedence over
    /// built-ins (a user may correct or shadow a built-in model).
    pub fn resolve(&self, name: &str, args: &[String]) -> Option<InstanceSpec> {
        if let Some(user) = self.user.get(name) {
            let mut class = user.default_class.clone();
            for rule in &user.rules {
                if args.iter().any(|a| a == &rule.when_flag) {
                    class = rule.class.clone();
                    break;
                }
            }
            let input_args = args
                .iter()
                .enumerate()
                .filter(|(_, a)| !a.starts_with('-') || a.as_str() == "-")
                .map(|(i, _)| i)
                .collect::<Vec<_>>();
            return Some(InstanceSpec {
                class,
                reads_stdin: user.reads_stdin && input_args.is_empty(),
                input_args,
                output_files: Vec::new(),
                blocking: user.blocking,
                prefix_only: false,
            });
        }
        resolve_builtin(name, args)
    }

    /// Names of all user-registered commands.
    pub fn user_commands(&self) -> Vec<String> {
        let mut v: Vec<String> = self.user.keys().cloned().collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::Aggregator;

    fn args(a: &[&str]) -> Vec<String> {
        a.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn builtin_resolution_passthrough() {
        let r = Registry::builtin();
        assert!(r.resolve("sort", &args(&["-n"])).is_some());
        assert!(r.resolve("unknown-cmd", &args(&[])).is_none());
    }

    #[test]
    fn user_spec_for_unknown_command() {
        let mut r = Registry::builtin();
        r.load_json(
            r#"[{
                "name": "my-filter",
                "version": "1.0",
                "default_class": {"kind": "stateless"},
                "rules": [
                    {"when_flag": "-g", "class": {"kind": "non-parallelizable"}}
                ]
            }]"#,
        )
        .unwrap();
        let s = r.resolve("my-filter", &args(&["-x"])).unwrap();
        assert_eq!(s.class, ParallelClass::Stateless);
        let s = r.resolve("my-filter", &args(&["-g"])).unwrap();
        assert_eq!(s.class, ParallelClass::NonParallelizable);
    }

    #[test]
    fn user_spec_shadows_builtin() {
        let mut r = Registry::builtin();
        r.register(UserSpec {
            name: "sort".into(),
            version: "weird".into(),
            default_class: ParallelClass::NonParallelizable,
            rules: vec![],
            reads_stdin: true,
            blocking: true,
        });
        let s = r.resolve("sort", &args(&[])).unwrap();
        assert_eq!(s.class, ParallelClass::NonParallelizable);
    }

    #[test]
    fn json_roundtrip() {
        let mut r = Registry::builtin();
        r.register(UserSpec {
            name: "tool".into(),
            version: "2".into(),
            default_class: ParallelClass::Parallelizable {
                agg: Aggregator::SumCounts,
            },
            rules: vec![],
            reads_stdin: false,
            blocking: false,
        });
        let json = r.to_json();
        let mut r2 = Registry::builtin();
        assert_eq!(r2.load_json(&json).unwrap(), 1);
        assert_eq!(r2.user_commands(), vec!["tool"]);
    }

    #[test]
    fn bad_json_is_an_error() {
        let mut r = Registry::builtin();
        assert!(r.load_json("not json").is_err());
    }
}
