//! Parallelizability classes and aggregators.
//!
//! This is the heart of the PaSh/POSH annotation model (paper §3.1 E2):
//! each command invocation is assigned a class describing how its work can
//! be decomposed, and — when decomposable — an [`Aggregator`] describing
//! how partial outputs recombine into exactly the output the sequential
//! command would have produced.

use serde::{Deserialize, Serialize};

/// How a command invocation's work decomposes over a split input.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "kebab-case")]
pub enum ParallelClass {
    /// A pure per-line function: `f(a ⧺ b) = f(a) ⧺ f(b)`. Split anywhere
    /// on a line boundary, run copies, concatenate in order.
    Stateless,
    /// Pure and decomposable, but partial outputs need an aggregator
    /// (e.g. `sort`: merge; `wc`: sum).
    Parallelizable {
        /// How to recombine partial outputs.
        agg: Aggregator,
    },
    /// Pure (a function of its input only) but not decomposable — it must
    /// see the whole input in order (e.g. `head`, stateful `sed` ranges).
    NonParallelizable,
    /// Interacts with state beyond its declared inputs/outputs; excluded
    /// from dataflow regions entirely.
    SideEffectful,
}

impl ParallelClass {
    /// Whether the node can be replicated over input splits.
    pub fn is_splittable(&self) -> bool {
        matches!(
            self,
            ParallelClass::Stateless | ParallelClass::Parallelizable { .. }
        )
    }

    /// The aggregator used when splitting (concat for stateless).
    pub fn aggregator(&self) -> Option<Aggregator> {
        match self {
            ParallelClass::Stateless => Some(Aggregator::Concat),
            ParallelClass::Parallelizable { agg } => Some(agg.clone()),
            _ => None,
        }
    }
}

/// Recombination strategies for partial outputs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "op", rename_all = "kebab-case")]
pub enum Aggregator {
    /// Concatenate partial outputs in input order.
    Concat,
    /// Merge sorted partial outputs under a sort key.
    MergeSort {
        /// Key/order description.
        key: SortKeySpec,
    },
    /// Sum whitespace-separated numeric columns (for `wc` family).
    SumCounts,
    /// Concatenate, then collapse duplicate lines adjacent across chunk
    /// boundaries (for `uniq` over contiguous splits).
    UniqBoundary {
        /// Whether partials carry `uniq -c` count prefixes to be summed.
        counted: bool,
    },
    /// Keep only the first N lines of the concatenation (for `head` when
    /// it is forced into a parallel region).
    TakeFirst {
        /// Line budget.
        n: u64,
    },
    /// Concatenate, collapsing a run of the previous chunk's final byte at
    /// each boundary (for `tr -s`, whose squeezing is byte-level).
    SqueezeBoundary {
        /// Bytes subject to squeezing.
        set: Vec<u8>,
    },
}

/// Serializable mirror of a sort ordering (see
/// `jash_coreutils::cmds::sort::SortOptions`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SortKeySpec {
    /// `-r`.
    #[serde(default)]
    pub reverse: bool,
    /// `-n`.
    #[serde(default)]
    pub numeric: bool,
    /// `-u`.
    #[serde(default)]
    pub unique: bool,
    /// `-k N` (0 = whole line).
    #[serde(default)]
    pub key_field: usize,
    /// `-t C`.
    #[serde(default)]
    pub separator: Option<u8>,
}

impl From<jash_coreutils::cmds::sort::SortOptions> for SortKeySpec {
    fn from(o: jash_coreutils::cmds::sort::SortOptions) -> Self {
        SortKeySpec {
            reverse: o.reverse,
            numeric: o.numeric,
            unique: o.unique,
            key_field: o.key_field,
            separator: o.separator,
        }
    }
}

impl From<SortKeySpec> for jash_coreutils::cmds::sort::SortOptions {
    fn from(k: SortKeySpec) -> Self {
        jash_coreutils::cmds::sort::SortOptions {
            reverse: k.reverse,
            numeric: k.numeric,
            unique: k.unique,
            key_field: k.key_field,
            separator: k.separator,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splittable_classes() {
        assert!(ParallelClass::Stateless.is_splittable());
        assert!(ParallelClass::Parallelizable {
            agg: Aggregator::Concat
        }
        .is_splittable());
        assert!(!ParallelClass::NonParallelizable.is_splittable());
        assert!(!ParallelClass::SideEffectful.is_splittable());
    }

    #[test]
    fn stateless_aggregates_by_concat() {
        assert_eq!(
            ParallelClass::Stateless.aggregator(),
            Some(Aggregator::Concat)
        );
        assert_eq!(ParallelClass::NonParallelizable.aggregator(), None);
    }

    #[test]
    fn serde_roundtrip() {
        let c = ParallelClass::Parallelizable {
            agg: Aggregator::MergeSort {
                key: SortKeySpec {
                    reverse: true,
                    numeric: true,
                    ..Default::default()
                },
            },
        };
        let json = serde_json::to_string(&c).unwrap();
        let back: ParallelClass = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }

    #[test]
    fn sort_key_conversion() {
        let opts = jash_coreutils::cmds::sort::SortOptions {
            reverse: true,
            numeric: true,
            unique: false,
            key_field: 2,
            separator: Some(b':'),
        };
        let key: SortKeySpec = opts.into();
        let back: jash_coreutils::cmds::sort::SortOptions = key.into();
        assert_eq!(back, opts);
    }
}
