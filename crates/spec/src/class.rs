//! Parallelizability classes and aggregators.
//!
//! This is the heart of the PaSh/POSH annotation model (paper §3.1 E2):
//! each command invocation is assigned a class describing how its work can
//! be decomposed, and — when decomposable — an [`Aggregator`] describing
//! how partial outputs recombine into exactly the output the sequential
//! command would have produced.

use crate::json::{JsonError, Value};

/// How a command invocation's work decomposes over a split input.
///
/// Wire format (spec libraries): internally tagged on `"kind"` with
/// kebab-case tags, e.g. `{"kind": "stateless"}`,
/// `{"kind": "parallelizable", "agg": {...}}`.
#[derive(Debug, Clone, PartialEq)]
pub enum ParallelClass {
    /// A pure per-line function: `f(a ⧺ b) = f(a) ⧺ f(b)`. Split anywhere
    /// on a line boundary, run copies, concatenate in order.
    Stateless,
    /// Pure and decomposable, but partial outputs need an aggregator
    /// (e.g. `sort`: merge; `wc`: sum).
    Parallelizable {
        /// How to recombine partial outputs.
        agg: Aggregator,
    },
    /// Pure (a function of its input only) but not decomposable — it must
    /// see the whole input in order (e.g. `head`, stateful `sed` ranges).
    NonParallelizable,
    /// Interacts with state beyond its declared inputs/outputs; excluded
    /// from dataflow regions entirely.
    SideEffectful,
}

impl ParallelClass {
    /// Whether the node can be replicated over input splits.
    pub fn is_splittable(&self) -> bool {
        matches!(
            self,
            ParallelClass::Stateless | ParallelClass::Parallelizable { .. }
        )
    }

    /// The aggregator used when splitting (concat for stateless).
    pub fn aggregator(&self) -> Option<Aggregator> {
        match self {
            ParallelClass::Stateless => Some(Aggregator::Concat),
            ParallelClass::Parallelizable { agg } => Some(agg.clone()),
            _ => None,
        }
    }
}

/// Recombination strategies for partial outputs.
///
/// Wire format: internally tagged on `"op"` with kebab-case tags, e.g.
/// `{"op": "merge-sort", "key": {...}}`.
#[derive(Debug, Clone, PartialEq)]
pub enum Aggregator {
    /// Concatenate partial outputs in input order.
    Concat,
    /// Merge sorted partial outputs under a sort key.
    MergeSort {
        /// Key/order description.
        key: SortKeySpec,
    },
    /// Sum whitespace-separated numeric columns (for `wc` family).
    SumCounts,
    /// Concatenate, then collapse duplicate lines adjacent across chunk
    /// boundaries (for `uniq` over contiguous splits).
    UniqBoundary {
        /// Whether partials carry `uniq -c` count prefixes to be summed.
        counted: bool,
    },
    /// Keep only the first N lines of the concatenation (for `head` when
    /// it is forced into a parallel region).
    TakeFirst {
        /// Line budget.
        n: u64,
    },
    /// Concatenate, collapsing a run of the previous chunk's final byte at
    /// each boundary (for `tr -s`, whose squeezing is byte-level).
    SqueezeBoundary {
        /// Bytes subject to squeezing.
        set: Vec<u8>,
    },
}

/// Serializable mirror of a sort ordering (see
/// `jash_coreutils::cmds::sort::SortOptions`). Every field defaults when
/// absent from a spec file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SortKeySpec {
    /// `-r`.
    pub reverse: bool,
    /// `-n`.
    pub numeric: bool,
    /// `-u`.
    pub unique: bool,
    /// `-k N` (0 = whole line).
    pub key_field: usize,
    /// `-t C`.
    pub separator: Option<u8>,
}

impl ParallelClass {
    /// Serializes to the spec-library wire format.
    pub fn to_value(&self) -> Value {
        let kind = |k: &str| ("kind".to_string(), Value::Str(k.to_string()));
        match self {
            ParallelClass::Stateless => Value::Obj(vec![kind("stateless")]),
            ParallelClass::Parallelizable { agg } => Value::Obj(vec![
                kind("parallelizable"),
                ("agg".to_string(), agg.to_value()),
            ]),
            ParallelClass::NonParallelizable => Value::Obj(vec![kind("non-parallelizable")]),
            ParallelClass::SideEffectful => Value::Obj(vec![kind("side-effectful")]),
        }
    }

    /// Parses the spec-library wire format.
    pub fn from_value(v: &Value) -> Result<Self, JsonError> {
        let tag = v
            .get("kind")
            .and_then(Value::as_str)
            .ok_or_else(|| JsonError("class object needs a \"kind\" tag".into()))?;
        match tag {
            "stateless" => Ok(ParallelClass::Stateless),
            "parallelizable" => {
                let agg = v
                    .get("agg")
                    .ok_or_else(|| JsonError("parallelizable class needs \"agg\"".into()))?;
                Ok(ParallelClass::Parallelizable {
                    agg: Aggregator::from_value(agg)?,
                })
            }
            "non-parallelizable" => Ok(ParallelClass::NonParallelizable),
            "side-effectful" => Ok(ParallelClass::SideEffectful),
            other => Err(JsonError(format!("unknown class kind {other:?}"))),
        }
    }
}

impl Aggregator {
    /// Serializes to the spec-library wire format.
    pub fn to_value(&self) -> Value {
        let op = |o: &str| ("op".to_string(), Value::Str(o.to_string()));
        match self {
            Aggregator::Concat => Value::Obj(vec![op("concat")]),
            Aggregator::MergeSort { key } => {
                Value::Obj(vec![op("merge-sort"), ("key".to_string(), key.to_value())])
            }
            Aggregator::SumCounts => Value::Obj(vec![op("sum-counts")]),
            Aggregator::UniqBoundary { counted } => Value::Obj(vec![
                op("uniq-boundary"),
                ("counted".to_string(), Value::Bool(*counted)),
            ]),
            Aggregator::TakeFirst { n } => Value::Obj(vec![
                op("take-first"),
                ("n".to_string(), Value::Num(*n as f64)),
            ]),
            Aggregator::SqueezeBoundary { set } => Value::Obj(vec![
                op("squeeze-boundary"),
                (
                    "set".to_string(),
                    Value::Arr(set.iter().map(|b| Value::Num(*b as f64)).collect()),
                ),
            ]),
        }
    }

    /// Parses the spec-library wire format.
    pub fn from_value(v: &Value) -> Result<Self, JsonError> {
        let tag = v
            .get("op")
            .and_then(Value::as_str)
            .ok_or_else(|| JsonError("aggregator object needs an \"op\" tag".into()))?;
        match tag {
            "concat" => Ok(Aggregator::Concat),
            "merge-sort" => {
                let key = v
                    .get("key")
                    .map(SortKeySpec::from_value)
                    .transpose()?
                    .unwrap_or_default();
                Ok(Aggregator::MergeSort { key })
            }
            "sum-counts" => Ok(Aggregator::SumCounts),
            "uniq-boundary" => Ok(Aggregator::UniqBoundary {
                counted: v.get("counted").and_then(Value::as_bool).unwrap_or(false),
            }),
            "take-first" => Ok(Aggregator::TakeFirst {
                n: v.get("n")
                    .and_then(Value::as_u64)
                    .ok_or_else(|| JsonError("take-first needs integer \"n\"".into()))?,
            }),
            "squeeze-boundary" => {
                let set = v
                    .get("set")
                    .and_then(Value::as_arr)
                    .unwrap_or(&[])
                    .iter()
                    .map(|b| {
                        b.as_u64()
                            .filter(|n| *n <= u8::MAX as u64)
                            .map(|n| n as u8)
                            .ok_or_else(|| JsonError("squeeze-boundary set must be bytes".into()))
                    })
                    .collect::<Result<Vec<u8>, _>>()?;
                Ok(Aggregator::SqueezeBoundary { set })
            }
            other => Err(JsonError(format!("unknown aggregator op {other:?}"))),
        }
    }
}

impl SortKeySpec {
    /// Serializes to the spec-library wire format.
    pub fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("reverse".to_string(), Value::Bool(self.reverse)),
            ("numeric".to_string(), Value::Bool(self.numeric)),
            ("unique".to_string(), Value::Bool(self.unique)),
            ("key_field".to_string(), Value::Num(self.key_field as f64)),
            (
                "separator".to_string(),
                match self.separator {
                    Some(b) => Value::Num(b as f64),
                    None => Value::Null,
                },
            ),
        ])
    }

    /// Parses the spec-library wire format; missing fields default.
    pub fn from_value(v: &Value) -> Result<Self, JsonError> {
        Ok(SortKeySpec {
            reverse: v.get("reverse").and_then(Value::as_bool).unwrap_or(false),
            numeric: v.get("numeric").and_then(Value::as_bool).unwrap_or(false),
            unique: v.get("unique").and_then(Value::as_bool).unwrap_or(false),
            key_field: v
                .get("key_field")
                .and_then(Value::as_u64)
                .unwrap_or(0) as usize,
            separator: match v.get("separator") {
                None | Some(Value::Null) => None,
                Some(b) => Some(
                    b.as_u64()
                        .filter(|n| *n <= u8::MAX as u64)
                        .map(|n| n as u8)
                        .ok_or_else(|| JsonError("separator must be a byte".into()))?,
                ),
            },
        })
    }
}

impl From<jash_coreutils::cmds::sort::SortOptions> for SortKeySpec {
    fn from(o: jash_coreutils::cmds::sort::SortOptions) -> Self {
        SortKeySpec {
            reverse: o.reverse,
            numeric: o.numeric,
            unique: o.unique,
            key_field: o.key_field,
            separator: o.separator,
        }
    }
}

impl From<SortKeySpec> for jash_coreutils::cmds::sort::SortOptions {
    fn from(k: SortKeySpec) -> Self {
        jash_coreutils::cmds::sort::SortOptions {
            reverse: k.reverse,
            numeric: k.numeric,
            unique: k.unique,
            key_field: k.key_field,
            separator: k.separator,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splittable_classes() {
        assert!(ParallelClass::Stateless.is_splittable());
        assert!(ParallelClass::Parallelizable {
            agg: Aggregator::Concat
        }
        .is_splittable());
        assert!(!ParallelClass::NonParallelizable.is_splittable());
        assert!(!ParallelClass::SideEffectful.is_splittable());
    }

    #[test]
    fn stateless_aggregates_by_concat() {
        assert_eq!(
            ParallelClass::Stateless.aggregator(),
            Some(Aggregator::Concat)
        );
        assert_eq!(ParallelClass::NonParallelizable.aggregator(), None);
    }

    #[test]
    fn json_roundtrip() {
        let c = ParallelClass::Parallelizable {
            agg: Aggregator::MergeSort {
                key: SortKeySpec {
                    reverse: true,
                    numeric: true,
                    ..Default::default()
                },
            },
        };
        let json = c.to_value().to_compact();
        assert!(json.contains(r#""kind":"parallelizable""#), "{json}");
        assert!(json.contains(r#""op":"merge-sort""#), "{json}");
        let back = ParallelClass::from_value(&crate::json::parse(&json).unwrap()).unwrap();
        assert_eq!(c, back);
    }

    #[test]
    fn json_roundtrip_all_aggregators() {
        for agg in [
            Aggregator::Concat,
            Aggregator::SumCounts,
            Aggregator::UniqBoundary { counted: true },
            Aggregator::TakeFirst { n: 7 },
            Aggregator::SqueezeBoundary { set: vec![b'\n', b' '] },
        ] {
            let v = agg.to_value();
            assert_eq!(Aggregator::from_value(&v).unwrap(), agg);
        }
    }

    #[test]
    fn sort_key_conversion() {
        let opts = jash_coreutils::cmds::sort::SortOptions {
            reverse: true,
            numeric: true,
            unique: false,
            key_field: 2,
            separator: Some(b':'),
        };
        let key: SortKeySpec = opts.into();
        let back: jash_coreutils::cmds::sort::SortOptions = key.into();
        assert_eq!(back, opts);
    }
}
