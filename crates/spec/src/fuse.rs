//! Fusibility classification — which stages admit single-pass kernel
//! composition.
//!
//! Fusibility is *not* parallelizability. A stage is fusible when its
//! whole effect is a sequential stdin→stdout transform a kernel op can
//! reproduce in-order: `head -n` is non-parallelizable (prefix-only) yet
//! perfectly fusible, while `sort` is parallelizable yet a barrier (it
//! buffers everything). The spec layer supplies the coarse guards —
//! blocking, extra outputs, file inputs, side effects — and delegates
//! the fine-grained per-invocation answer to
//! [`jash_coreutils::kernel::op_shape`], the same classifier the kernel
//! builder uses. Classification and buildability therefore cannot
//! drift: a stage is `PerLine`/`PerChunk` exactly when a kernel op
//! exists for its concrete argument vector.

use crate::class::ParallelClass;
use crate::spec::InstanceSpec;
use jash_coreutils::kernel::KernelShape;

/// How a stage participates in kernel fusion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fusible {
    /// Consumes framed lines; composable into a fused kernel.
    PerLine,
    /// Consumes raw byte chunks; composable into a fused kernel.
    PerChunk,
    /// Cannot join a fused run (buffers input, touches files, has side
    /// effects, or uses features the kernel does not reproduce).
    Barrier,
}

impl Fusible {
    /// Whether the stage can join a fused run.
    pub fn is_fusible(self) -> bool {
        !matches!(self, Fusible::Barrier)
    }
}

/// Classifies one concrete invocation.
///
/// `spec` is the invocation's resolved [`InstanceSpec`] — the guards
/// here keep fusion away from anything whose behavior is not a pure
/// in-order stdin→stdout byte transform.
pub fn fusibility(name: &str, args: &[String], spec: &InstanceSpec) -> Fusible {
    if spec.blocking
        || !spec.output_files.is_empty()
        || !spec.input_args.is_empty()
        || !spec.reads_stdin
        || matches!(spec.class, ParallelClass::SideEffectful)
    {
        return Fusible::Barrier;
    }
    match jash_coreutils::kernel::op_shape(name, args) {
        Some(KernelShape::PerLine) => Fusible::PerLine,
        Some(KernelShape::PerChunk) => Fusible::PerChunk,
        None => Fusible::Barrier,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn classify(name: &str, args: &[&str]) -> Fusible {
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let spec = Registry::builtin().resolve(name, &args).unwrap();
        fusibility(name, &args, &spec)
    }

    #[test]
    fn streaming_transforms_are_fusible() {
        assert_eq!(classify("tr", &["A-Z", "a-z"]), Fusible::PerChunk);
        assert_eq!(classify("cat", &[]), Fusible::PerChunk);
        assert_eq!(classify("grep", &["x"]), Fusible::PerLine);
        assert_eq!(classify("cut", &["-c", "1-3"]), Fusible::PerLine);
        assert_eq!(classify("sed", &["s/a/b/"]), Fusible::PerLine);
        assert_eq!(classify("rev", &[]), Fusible::PerLine);
        assert_eq!(classify("fold", &["-w5"]), Fusible::PerLine);
        assert_eq!(classify("uniq", &[]), Fusible::PerLine);
    }

    #[test]
    fn prefix_only_is_fusible_sequentially() {
        // Not parallelizable, but exact in a single in-order pass.
        assert_eq!(classify("head", &["-n3"]), Fusible::PerLine);
        assert_eq!(classify("sed", &["3q"]), Fusible::PerLine);
        assert_eq!(classify("sed", &["2,4d"]), Fusible::PerLine);
    }

    #[test]
    fn blocking_and_stateful_commands_are_barriers() {
        assert_eq!(classify("sort", &[]), Fusible::Barrier);
        assert_eq!(classify("wc", &["-l"]), Fusible::Barrier);
        assert_eq!(classify("tac", &[]), Fusible::Barrier);
        assert_eq!(classify("shuf", &[]), Fusible::Barrier);
        assert_eq!(classify("nl", &[]), Fusible::Barrier);
    }

    #[test]
    fn file_touching_invocations_are_barriers() {
        // File operands bypass stdin; tee writes extra outputs.
        assert_eq!(classify("cat", &["/etc/passwd"]), Fusible::Barrier);
        assert_eq!(classify("grep", &["x", "/f"]), Fusible::Barrier);
        assert_eq!(classify("tee", &["/out"]), Fusible::Barrier);
        assert_eq!(classify("echo", &["hi"]), Fusible::Barrier);
    }

    #[test]
    fn unsupported_kernel_features_are_barriers() {
        assert_eq!(classify("grep", &["-c", "x"]), Fusible::Barrier);
        assert_eq!(classify("head", &["-c", "5"]), Fusible::Barrier);
        assert_eq!(classify("sed", &["$d"]), Fusible::Barrier);
        assert_eq!(classify("uniq", &["-c"]), Fusible::Barrier);
    }
}
