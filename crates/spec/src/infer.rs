//! Specification inference by black-box testing (paper §4, "Heuristic
//! support": *"fuzz testing … could (i) test that a command conforms to
//! its specification or even (ii) learn important aspects of a command's
//! specification by inspecting its behavior"*).
//!
//! The inferencer treats the command as a function from stdin bytes to
//! stdout bytes (the caller supplies the runner) and probes algebraic
//! properties on generated inputs:
//!
//! * **stateless**: `f(a ⧺ b) = f(a) ⧺ f(b)` for every split point tried;
//! * **merge-aggregatable**: `f(a ⧺ b) = merge(f(a), f(b))` under a
//!   candidate sort key;
//! * **sum-aggregatable**: numeric columns of `f(a ⧺ b)` equal the column
//!   sums of `f(a)` and `f(b)`.
//!
//! A property that fails on any probe is definitively *not* part of the
//! spec; a property that survives all probes is reported with the usual
//! testing caveat (it is evidence, not proof — exactly how the paper
//! frames learned specs).

use crate::class::{Aggregator, ParallelClass, SortKeySpec};

/// A black-box view of a command: bytes in, bytes out.
pub type Runner<'a> = dyn Fn(&[u8]) -> Vec<u8> + 'a;

/// The outcome of an inference session.
#[derive(Debug, Clone, PartialEq)]
pub struct Inference {
    /// The strongest class all probes are consistent with.
    pub class: ParallelClass,
    /// Number of probe inputs exercised.
    pub probes: usize,
}

/// Deterministic pseudo-random line generator (xorshift; no external
/// entropy so inference is reproducible).
fn gen_corpus(seed: u64, docs: usize) -> Vec<Vec<u8>> {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let words = [
        "alpha", "beta", "Gamma", "DELTA", "42", "007", "x", "zebra", "apple", "apple",
    ];
    (0..docs)
        .map(|_| {
            let lines = (next() % 12) as usize + 1;
            let mut doc = Vec::new();
            for _ in 0..lines {
                let w1 = words[(next() % words.len() as u64) as usize];
                let w2 = words[(next() % words.len() as u64) as usize];
                doc.extend_from_slice(w1.as_bytes());
                doc.push(b' ');
                doc.extend_from_slice(w2.as_bytes());
                doc.push(b'\n');
            }
            doc
        })
        .collect()
}

/// Splits `doc` at a line boundary roughly in the middle.
fn split_doc(doc: &[u8]) -> Option<(Vec<u8>, Vec<u8>)> {
    let mid = doc.len() / 2;
    let split = doc[mid..].iter().position(|&b| b == b'\n')? + mid + 1;
    if split >= doc.len() {
        return None;
    }
    Some((doc[..split].to_vec(), doc[split..].to_vec()))
}

/// Infers the strongest parallelizability class consistent with observed
/// behavior.
pub fn infer_class(run: &Runner<'_>) -> Inference {
    let corpus = gen_corpus(0x9E37_79B9_7F4A_7C15, 24);
    let mut stateless = true;
    let mut mergeable_keys: Vec<SortKeySpec> = vec![
        SortKeySpec::default(),
        SortKeySpec {
            numeric: true,
            ..Default::default()
        },
        SortKeySpec {
            reverse: true,
            ..Default::default()
        },
        SortKeySpec {
            reverse: true,
            numeric: true,
            ..Default::default()
        },
        SortKeySpec {
            unique: true,
            ..Default::default()
        },
    ];
    let mut summable = true;
    let mut probes = 0;

    for doc in &corpus {
        let Some((a, b)) = split_doc(doc) else {
            continue;
        };
        probes += 1;
        let whole = run(doc);
        let fa = run(&a);
        let fb = run(&b);

        // Stateless: concatenation law.
        let mut concat = fa.clone();
        concat.extend_from_slice(&fb);
        if concat != whole {
            stateless = false;
        }

        // Merge-aggregatable under each candidate key.
        mergeable_keys.retain(|key| merge_under(key, &fa, &fb) == whole);

        // Sum-aggregatable.
        if !sums_match(&whole, &fa, &fb) {
            summable = false;
        }
    }

    let class = if stateless {
        ParallelClass::Stateless
    } else if let Some(key) = mergeable_keys.first() {
        ParallelClass::Parallelizable {
            agg: Aggregator::MergeSort { key: *key },
        }
    } else if summable {
        ParallelClass::Parallelizable {
            agg: Aggregator::SumCounts,
        }
    } else {
        ParallelClass::NonParallelizable
    };
    Inference { class, probes }
}

/// Checks that a claimed class is consistent with observed behavior.
///
/// Returns `Ok(probes)` when every probe satisfied the claim, or a
/// description of the first violated law.
pub fn check_conformance(run: &Runner<'_>, claimed: &ParallelClass) -> Result<usize, String> {
    let inferred = infer_class(run);
    let ok = match claimed {
        ParallelClass::Stateless => inferred.class == ParallelClass::Stateless,
        ParallelClass::Parallelizable { agg } => match (&inferred.class, agg) {
            (ParallelClass::Stateless, _) => true,
            (
                ParallelClass::Parallelizable {
                    agg: Aggregator::MergeSort { key: ik },
                },
                Aggregator::MergeSort { key: ck },
            ) => ik == ck || verify_key(run, ck),
            (_, Aggregator::MergeSort { key }) => verify_key(run, key),
            (
                ParallelClass::Parallelizable {
                    agg: Aggregator::SumCounts,
                },
                Aggregator::SumCounts,
            ) => true,
            (_, Aggregator::SumCounts) => verify_sums(run),
            _ => true, // Weaker or untestable aggregators pass by default.
        },
        // Claims of non-parallelizability and side effects are always safe.
        ParallelClass::NonParallelizable | ParallelClass::SideEffectful => true,
    };
    if ok {
        Ok(inferred.probes)
    } else {
        Err(format!(
            "claimed {claimed:?} but observed behavior consistent only with {:?}",
            inferred.class
        ))
    }
}

fn verify_key(run: &Runner<'_>, key: &SortKeySpec) -> bool {
    let corpus = gen_corpus(0xDEAD_BEEF, 12);
    for doc in &corpus {
        if let Some((a, b)) = split_doc(doc) {
            let whole = run(doc);
            if merge_under(key, &run(&a), &run(&b)) != whole {
                return false;
            }
        }
    }
    true
}

fn verify_sums(run: &Runner<'_>) -> bool {
    let corpus = gen_corpus(0xFEED_FACE, 12);
    for doc in &corpus {
        if let Some((a, b)) = split_doc(doc) {
            if !sums_match(&run(doc), &run(&a), &run(&b)) {
                return false;
            }
        }
    }
    true
}

fn merge_under(key: &SortKeySpec, a: &[u8], b: &[u8]) -> Vec<u8> {
    let opts: jash_coreutils::cmds::sort::SortOptions = (*key).into();
    let mut lines: Vec<&[u8]> = Vec::new();
    lines.extend(jash_io::split_lines(a));
    lines.extend(jash_io::split_lines(b));
    lines.sort_by(|x, y| opts.compare(x, y));
    let mut out = Vec::new();
    let mut prev: Option<&[u8]> = None;
    for l in lines {
        if key.unique {
            if let Some(p) = prev {
                if opts.compare(p, l) == std::cmp::Ordering::Equal {
                    continue;
                }
            }
        }
        out.extend_from_slice(l);
        out.push(b'\n');
        prev = Some(l);
    }
    out
}

fn sums_match(whole: &[u8], a: &[u8], b: &[u8]) -> bool {
    let parse = |data: &[u8]| -> Option<Vec<i64>> {
        let text = std::str::from_utf8(data).ok()?;
        let nums: Vec<i64> = text
            .split_whitespace()
            .map(|t| t.parse::<i64>())
            .collect::<Result<_, _>>()
            .ok()?;
        if nums.is_empty() {
            None
        } else {
            Some(nums)
        }
    };
    match (parse(whole), parse(a), parse(b)) {
        (Some(w), Some(x), Some(y)) if w.len() == x.len() && x.len() == y.len() => w
            .iter()
            .zip(x.iter().zip(y.iter()))
            .all(|(w, (x, y))| *w == x + y),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jash_coreutils::{run_on_bytes, UtilCtx};

    fn util_runner(name: &'static str, args: &'static [&'static str]) -> impl Fn(&[u8]) -> Vec<u8> {
        move |input: &[u8]| {
            let ctx = UtilCtx::new(jash_io::mem_fs());
            run_on_bytes(&ctx, name, args, input).expect("runner").1
        }
    }

    #[test]
    fn cat_inferred_stateless() {
        let r = util_runner("cat", &[]);
        assert_eq!(infer_class(&r).class, ParallelClass::Stateless);
    }

    #[test]
    fn tr_inferred_stateless() {
        let r = util_runner("tr", &["A-Z", "a-z"]);
        assert_eq!(infer_class(&r).class, ParallelClass::Stateless);
    }

    #[test]
    fn grep_inferred_stateless() {
        let r = util_runner("grep", &["a"]);
        assert_eq!(infer_class(&r).class, ParallelClass::Stateless);
    }

    #[test]
    fn sort_inferred_mergeable() {
        let r = util_runner("sort", &[]);
        match infer_class(&r).class {
            ParallelClass::Parallelizable {
                agg: Aggregator::MergeSort { key },
            } => assert!(!key.numeric && !key.reverse),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn sort_rn_inferred_with_matching_key() {
        let r = util_runner("sort", &["-rn"]);
        match infer_class(&r).class {
            ParallelClass::Parallelizable {
                agg: Aggregator::MergeSort { key },
            } => assert!(key.numeric && key.reverse),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn wc_inferred_summable() {
        let r = util_runner("wc", &["-lw"]);
        assert_eq!(
            infer_class(&r).class,
            ParallelClass::Parallelizable {
                agg: Aggregator::SumCounts
            }
        );
    }

    #[test]
    fn head_inferred_non_parallelizable() {
        let r = util_runner("head", &["-n3"]);
        assert_eq!(infer_class(&r).class, ParallelClass::NonParallelizable);
    }

    #[test]
    fn conformance_of_builtin_registry_specs() {
        // The headline check: every splittable builtin spec survives
        // black-box probing (the paper's "test that a command conforms to
        // its specification").
        let cases: &[(&str, &[&str])] = &[
            ("cat", &[]),
            ("tr", &["A-Z", "a-z"]),
            ("grep", &["a"]),
            ("cut", &["-c", "1-3"]),
            ("sort", &[]),
            ("sort", &["-rn"]),
            ("wc", &["-l"]),
            ("sed", &["s/a/X/g"]),
        ];
        for (name, args) in cases {
            let argv: Vec<String> = args.iter().map(|s| s.to_string()).collect();
            let spec = crate::resolve_builtin(name, &argv).unwrap();
            let r = move |input: &[u8]| {
                let ctx = UtilCtx::new(jash_io::mem_fs());
                run_on_bytes(&ctx, name, args, input).expect("runner").1
            };
            check_conformance(&r, &spec.class)
                .unwrap_or_else(|e| panic!("{name} {args:?}: {e}"));
        }
    }

    #[test]
    fn conformance_rejects_wrong_claim() {
        // Claiming `head -n3` is stateless must fail.
        let r = util_runner("head", &["-n3"]);
        assert!(check_conformance(&r, &ParallelClass::Stateless).is_err());
    }
}
