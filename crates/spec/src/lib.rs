//! Command specifications — the PaSh/POSH annotation framework
//! (enabler E2 of the HotOS '21 paper).
//!
//! Specifications characterize "important properties about commands —
//! e.g., their interaction with state and their inputs and outputs — and
//! can be used as abstract models of the command behaviors": every
//! invocation resolves to an [`InstanceSpec`] carrying a
//! [`ParallelClass`], the input/output shape, and streaming hints the
//! cost model consumes.
//!
//! Three pieces:
//! * [`resolve_builtin`] — hand-written specs for the bundled coreutils
//!   (flag-sensitive, like the paper's per-version annotations);
//! * [`Registry`] — user-extensible spec libraries with a JSON
//!   interchange format ("shared between users, not unlike completion
//!   libraries");
//! * [`infer`] — black-box specification inference and conformance
//!   testing (paper §4, *Heuristic support*).
//!
//! # Examples
//!
//! ```
//! use jash_spec::{Registry, ParallelClass, Aggregator};
//!
//! let reg = Registry::builtin();
//! let args: Vec<String> = vec!["-rn".into()];
//! let spec = reg.resolve("sort", &args).unwrap();
//! assert!(matches!(spec.class, ParallelClass::Parallelizable { agg: Aggregator::MergeSort { .. } }));
//! assert!(spec.blocking);
//! ```

pub mod class;
pub mod fuse;
pub mod infer;
pub mod json;
pub mod registry;
pub mod spec;

pub use class::{Aggregator, ParallelClass, SortKeySpec};
pub use fuse::{fusibility, Fusible};
pub use json::JsonError;
pub use infer::{check_conformance, infer_class, Inference};
pub use registry::{FlagRule, Registry, UserSpec};
pub use spec::{resolve_builtin, InstanceSpec};
