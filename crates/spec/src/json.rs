//! Minimal JSON support for specification libraries.
//!
//! Specification files are plain JSON so they can be "shared between
//! users, not unlike completion libraries" (paper §3.1 E2). This module
//! is a small, dependency-free parser/serializer for exactly that
//! interchange; the wire format matches what the registry has always
//! emitted: internally tagged enums (`{"kind": "stateless"}`,
//! `{"op": "merge-sort", ...}`) with kebab-case tags.

use std::fmt;

/// A parsed JSON value. Object keys preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object (insertion-ordered key/value pairs).
    Obj(Vec<(String, Value)>),
}

/// A parse or shape error, with a human-readable description.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError(pub String);

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json: {}", self.0)
    }
}

impl std::error::Error for JsonError {}

impl Value {
    /// Looks up `key` in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload as u64, if a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The array payload, if an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Compact serialization.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty serialization with 2-space indents.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(w) => (
                "\n",
                " ".repeat(w * depth),
                " ".repeat(w * (depth + 1)),
            ),
            None => ("", String::new(), String::new()),
        };
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            Value::Str(s) => write_escaped(out, s),
            Value::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Value::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document, requiring it to be fully consumed.
pub fn parse(input: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not used by our writers;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Copy a full UTF-8 scalar.
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len()
                        && (self.bytes[self.pos] & 0xc0) == 0x80
                    {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid utf-8"))?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Num)
            .ok_or_else(|| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v = parse(r#"{"a": [1, -2.5, true, null], "b": {"c": "x\ny"}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 4);
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
    }

    #[test]
    fn roundtrips_compact_and_pretty() {
        let v = parse(r#"{"kind":"merge-sort","set":[1,2],"flag":false}"#).unwrap();
        assert_eq!(parse(&v.to_compact()).unwrap(), v);
        assert_eq!(parse(&v.to_pretty()).unwrap(), v);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("not json").is_err());
        assert!(parse(r#"{"a": }"#).is_err());
        assert!(parse(r#"{"a": 1} trailing"#).is_err());
        assert!(parse(r#""unterminated"#).is_err());
    }

    #[test]
    fn escapes_roundtrip() {
        let v = Value::Str("quote\" slash\\ tab\t nl\n".to_string());
        assert_eq!(parse(&v.to_compact()).unwrap(), v);
    }
}
