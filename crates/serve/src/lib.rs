//! `jash serve`: the hardened multi-tenant daemon.
//!
//! The paper's closing argument is that the shell should grow from a
//! one-shot interpreter into a long-lived, resource-aware *runtime*.
//! This crate is that runtime's front door: a unix-socket daemon
//! ([`Server`]) speaking a seven-frame length-prefixed protocol
//! ([`proto::Frame`]), multiplexing isolated shell runs over one shared
//! machine — shared filesystem, shared disk/CPU token buckets, and a
//! cross-run pressure signal that stops concurrent runs from widening
//! into each other.
//!
//! Robustness is the organizing principle, not a feature list: bounded
//! admission with structured overload rejection, per-run wall-clock
//! deadlines, client-disconnect cancellation, panic isolation, a
//! SIGTERM drain that retires every run within a budget and exits 143,
//! and — with a journal root — a durable admission ledger giving a
//! SIGKILLed daemon exactly-once restart recovery (idempotency keys,
//! cached-result replay, attach-to-live-run). See `DESIGN.md` §9 for
//! the admission/drain state machine and §12 for crash recovery.

pub mod client;
pub mod proto;
pub mod sched;
pub mod server;

pub use client::{
    submit, submit_detached, submit_with_retry, Request, RetryConfig, RunReply,
};
pub use proto::{read_frame, reject, write_frame, Frame, MAX_FRAME};
pub use sched::{Popped, Scheduler, TenantPolicy, TenantSnapshot};
pub use server::{
    parse_fault_spec, spec_fault_injector, DrainReport, FaultInjector, ServeStats, Server,
    ServerConfig, TenantReport, Terminal,
};
