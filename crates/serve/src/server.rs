//! The `jash serve` daemon: a bounded worker pool multiplexing isolated
//! shell runs over one shared machine.
//!
//! Robustness decisions, in the order a submission meets them:
//!
//! * **Admission control** — a bounded queue in front of a bounded pool.
//!   A full queue answers with a structured [`Frame::Rejected`]
//!   (code, active, queued, reason) and closes the connection: the
//!   daemon *sheds* load, it never stalls accepting it. Draining is its
//!   own rejection code so clients can tell "retry later" from "find
//!   another server".
//! * **Isolation** — every admitted run gets its own [`Jash`] engine,
//!   journal scope, tracer, and [`CancelToken`]. What runs *share* is
//!   the machine: one filesystem, one [`CpuModel`] token bucket, one
//!   disk model — so the planner's resource math sees aggregate load.
//! * **Cross-run pressure** — before each run is planned, the daemon
//!   reads [`jash_core::cross_run_pressure`] (worker occupancy + queue
//!   backlog + shared-model saturation) and tightens the run's
//!   [`PlannerOptions::under_pressure`]: a busy daemon stops widening
//!   regions into its own other tenants.
//! * **Deadlines** — a per-run [`DeadlineGuard`] cancels the run's token
//!   with the `deadline:` reason; the session layer aborts the region,
//!   journals `RegionAborted`, and surfaces exit 124.
//! * **Disconnect detection** — a monitor thread reads the client's half
//!   of the socket; EOF before `Done` cancels the orphaned run and frees
//!   its worker slot for queued submissions.
//! * **Panic isolation** — the run executes under `catch_unwind`
//!   (defense in depth over the executor's own per-node isolation): a
//!   panicking run reports status 125 to its client and the daemon keeps
//!   serving.
//! * **Graceful drain** — [`Server::drain`] stops admission, sheds the
//!   queue with `DRAINING` rejections, cancels in-flight runs with the
//!   SIGTERM shutdown reason (journaled, resumable, exit 143), and waits
//!   out a bounded drain budget. Stragglers are *reported*, never
//!   waited on forever — the budget is the contract.

use crate::proto::{self, reject, Frame};
use jash_core::{cross_run_pressure, resource_pressure, Engine, Jash};
use jash_cost::MachineProfile;
use jash_expand::ShellState;
use jash_io::{CancelToken, CpuModel, DeadlineGuard, DiskModel, FsHandle};
use jash_trace::Tracer;
use std::collections::{HashMap, VecDeque};
use std::io;
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Hook for wrapping a run's filesystem with injected faults. Called
/// with the submission's fault spec, the shared filesystem, and the
/// run's cancel token (so stall-style faults stay cancellable); returns
/// the wrapped handle, or `None` when the spec does not parse.
pub type FaultInjector =
    Arc<dyn Fn(&str, FsHandle, &CancelToken) -> Option<FsHandle> + Send + Sync>;

/// Daemon configuration.
pub struct ServerConfig {
    /// Unix socket path (host filesystem).
    pub socket: PathBuf,
    /// The shared filesystem every run executes against.
    pub fs: FsHandle,
    /// Machine profile handed to every run's planner.
    pub machine: MachineProfile,
    /// Engine for submitted runs.
    pub engine: Engine,
    /// Worker pool size (concurrent runs).
    pub workers: usize,
    /// Admission queue bound; submissions past it are rejected.
    pub queue_cap: usize,
    /// Deadline imposed on runs whose submission asked for none.
    pub default_timeout: Option<Duration>,
    /// How long [`Server::drain`] waits for in-flight runs to abort.
    pub drain_budget: Duration,
    /// Virtual directory for per-run journals (`<root>/run-<id>`), or
    /// `None` to disable journaling.
    pub journal_root: Option<String>,
    /// Virtual directory for per-run schema-v1 traces
    /// (`<root>/run-<id>.jsonl`), or `None` to disable tracing.
    pub trace_root: Option<String>,
    /// Whether run commits use the full durability protocol.
    pub durable: bool,
    /// Test knob: plan eagerly (`min_speedup = 0`, width 4) so small
    /// inputs still exercise the optimized path.
    pub eager: bool,
    /// Shared CPU token bucket, charged by every run.
    pub cpu: Option<Arc<CpuModel>>,
    /// Shared disk model, read by the pressure signal.
    pub disk: Option<Arc<DiskModel>>,
    /// Fault-injection hook; `None` rejects submissions carrying fault
    /// specs (production posture).
    pub fault_injector: Option<FaultInjector>,
}

impl ServerConfig {
    /// A config with production-shaped defaults: 4 workers, a queue of
    /// 8, a 5-second drain budget, JIT engine, durable commits, no
    /// fault injection.
    pub fn new(socket: impl Into<PathBuf>, fs: FsHandle) -> ServerConfig {
        ServerConfig {
            socket: socket.into(),
            fs,
            machine: MachineProfile::laptop(),
            engine: Engine::JashJit,
            workers: 4,
            queue_cap: 8,
            default_timeout: None,
            drain_budget: Duration::from_secs(5),
            journal_root: None,
            trace_root: None,
            durable: true,
            eager: false,
            cpu: None,
            disk: None,
            fault_injector: None,
        }
    }
}

/// Daemon-lifetime counters, readable while running and reported by
/// [`DrainReport`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Submissions admitted (Accepted frame sent).
    pub accepted: u64,
    /// Runs that finished and sent their Done frame.
    pub completed: u64,
    /// Submissions shed because the queue was full.
    pub rejected_overload: u64,
    /// Submissions shed because the daemon was draining.
    pub rejected_draining: u64,
    /// Connections dropped for unparseable submissions.
    pub rejected_malformed: u64,
    /// Submissions carrying fault specs while injection was disabled.
    pub rejected_faults_disabled: u64,
    /// Runs aborted by their wall-clock deadline.
    pub deadline_aborts: u64,
    /// Runs cancelled because their client vanished mid-run.
    pub disconnect_cancels: u64,
    /// Runs whose engine panicked and was contained.
    pub panics_isolated: u64,
}

/// What [`Server::drain`] observed.
#[derive(Debug, Clone)]
pub struct DrainReport {
    /// Runs in flight when drain began (each was cancelled with the
    /// SIGTERM shutdown reason and given the budget to abort cleanly).
    pub in_flight: usize,
    /// Queued submissions shed with `DRAINING` rejections.
    pub shed: usize,
    /// Runs still executing when the budget expired (the daemon exits
    /// anyway; a wedged run must not hold the process hostage).
    pub stragglers: usize,
    /// Whether every run retired within the budget.
    pub within_budget: bool,
    /// Final counters.
    pub stats: ServeStats,
}

struct Job {
    run_id: u64,
    tenant: String,
    script: String,
    timeout: Option<Duration>,
    fault: Option<String>,
    conn: UnixStream,
}

#[derive(Default)]
struct Gate {
    draining: bool,
    active: usize,
    queue: VecDeque<Job>,
    live: HashMap<u64, CancelToken>,
    next_run: u64,
    stats: ServeStats,
}

struct Shared {
    cfg: ServerConfig,
    gate: Mutex<Gate>,
    /// Workers park here waiting for queued jobs.
    work: Condvar,
    /// Drain parks here waiting for `active` to reach zero.
    idle: Condvar,
    started: Instant,
}

/// A running daemon. Create with [`Server::start`], stop with
/// [`Server::drain`].
pub struct Server {
    shared: Arc<Shared>,
    accept: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds the socket and starts the accept loop and worker pool.
    pub fn start(cfg: ServerConfig) -> io::Result<Server> {
        // A stale socket file from a dead daemon refuses the bind.
        let _ = std::fs::remove_file(&cfg.socket);
        let listener = UnixListener::bind(&cfg.socket)?;
        // Nonblocking accept + short poll, so drain can stop the loop
        // without a wake-up connection or platform-specific tricks.
        listener.set_nonblocking(true)?;
        let shared = Arc::new(Shared {
            cfg,
            gate: Mutex::new(Gate::default()),
            work: Condvar::new(),
            idle: Condvar::new(),
            started: Instant::now(),
        });
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&shared, &listener))
        };
        let workers = (0..shared.cfg.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Ok(Server {
            shared,
            accept: Some(accept),
            workers,
        })
    }

    /// The socket path clients connect to.
    pub fn socket(&self) -> &PathBuf {
        &self.shared.cfg.socket
    }

    /// A snapshot of the daemon counters.
    pub fn stats(&self) -> ServeStats {
        self.shared.gate.lock().unwrap().stats.clone()
    }

    /// `(active, queued)` right now — the admission state tests and
    /// operators poll to sequence against the worker pool.
    pub fn load(&self) -> (usize, usize) {
        let gate = self.shared.gate.lock().unwrap();
        (gate.active, gate.queue.len())
    }

    /// The current cross-run pressure reading, as the next admitted
    /// run's planner would see it.
    pub fn pressure(&self) -> f64 {
        self.shared.pressure()
    }

    /// Graceful drain: stop admitting, shed the queue, cancel in-flight
    /// runs with the SIGTERM shutdown reason, and wait out the budget.
    ///
    /// Never blocks past `drain_budget` (plus scheduling noise): a run
    /// that ignores its cancel token is reported as a straggler, and the
    /// caller is expected to exit the process regardless.
    pub fn drain(mut self) -> DrainReport {
        let shared = Arc::clone(&self.shared);
        let budget = shared.cfg.drain_budget;
        let (in_flight, shed) = {
            let mut gate = shared.gate.lock().unwrap();
            gate.draining = true;
            let shed: Vec<Job> = gate.queue.drain(..).collect();
            for token in gate.live.values() {
                token.cancel(jash_core::shutdown_reason(15));
            }
            let in_flight = gate.active;
            gate.stats.rejected_draining += shed.len() as u64;
            // Wake parked workers so they observe `draining` and exit.
            self.shared.work.notify_all();
            (in_flight, shed)
        };
        let shed_count = shed.len();
        for job in shed {
            let mut conn = job.conn;
            let (active, queued) = (in_flight as u32, 0);
            let _ = proto::write_frame(
                &mut conn,
                &Frame::Rejected {
                    code: reject::DRAINING,
                    active,
                    queued,
                    reason: "daemon draining (SIGTERM): submission shed".to_string(),
                },
            );
        }
        // Wait for in-flight runs to retire, bounded by the budget.
        let deadline = Instant::now() + budget;
        let stragglers = {
            let mut gate = shared.gate.lock().unwrap();
            loop {
                if gate.active == 0 {
                    break 0;
                }
                let now = Instant::now();
                if now >= deadline {
                    break gate.active;
                }
                let (g, _timeout) = shared.idle.wait_timeout(gate, deadline - now).unwrap();
                gate = g;
            }
        };
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if stragglers == 0 {
            for h in self.workers.drain(..) {
                let _ = h.join();
            }
        } else {
            // Wedged runs keep their (detached) threads; the process is
            // about to exit and must not inherit their fate.
            self.workers.clear();
        }
        let _ = std::fs::remove_file(&shared.cfg.socket);
        let stats = shared.gate.lock().unwrap().stats.clone();
        DrainReport {
            in_flight,
            shed: shed_count,
            stragglers,
            within_budget: stragglers == 0,
            stats,
        }
    }
}

impl Shared {
    fn pressure(&self) -> f64 {
        let (active, queued) = {
            let gate = self.gate.lock().unwrap();
            (gate.active, gate.queue.len())
        };
        let resources = resource_pressure(
            self.cfg.disk.as_ref(),
            self.cfg.cpu.as_ref(),
            self.started.elapsed().as_secs_f64(),
        );
        cross_run_pressure(
            active,
            self.cfg.workers,
            queued,
            self.cfg.queue_cap,
            resources,
        )
    }
}

fn accept_loop(shared: &Arc<Shared>, listener: &UnixListener) {
    loop {
        if shared.gate.lock().unwrap().draining {
            return;
        }
        match listener.accept() {
            Ok((conn, _addr)) => {
                let shared = Arc::clone(shared);
                // Intake runs off-thread: reading the submit frame from
                // a slow client must not block the accept loop.
                std::thread::spawn(move || intake(&shared, conn));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// Reads one submission and runs admission control. All rejection paths
/// answer with a structured frame before closing — shedding is visible,
/// stalling is forbidden.
fn intake(shared: &Arc<Shared>, mut conn: UnixStream) {
    // A client that connects and then wedges without submitting must not
    // pin the intake thread forever.
    let _ = conn.set_read_timeout(Some(Duration::from_secs(10)));
    let submit = match proto::read_frame(&mut conn) {
        Ok(Some(f @ Frame::Submit { .. })) => f,
        _ => {
            let mut gate = shared.gate.lock().unwrap();
            gate.stats.rejected_malformed += 1;
            let (active, queued) = (gate.active as u32, gate.queue.len() as u32);
            drop(gate);
            let _ = proto::write_frame(
                &mut conn,
                &Frame::Rejected {
                    code: reject::MALFORMED,
                    active,
                    queued,
                    reason: "expected a Submit frame".to_string(),
                },
            );
            return;
        }
    };
    let _ = conn.set_read_timeout(None);
    let Frame::Submit {
        script,
        timeout_ms,
        tenant,
        fault,
    } = submit
    else {
        unreachable!("matched Submit above");
    };

    let mut gate = shared.gate.lock().unwrap();
    let reject_with = |code: u8, reason: String, gate: &Gate, conn: &mut UnixStream| {
        let frame = Frame::Rejected {
            code,
            active: gate.active as u32,
            queued: gate.queue.len() as u32,
            reason,
        };
        let _ = proto::write_frame(conn, &frame);
    };
    if gate.draining {
        gate.stats.rejected_draining += 1;
        reject_with(
            reject::DRAINING,
            "daemon draining (SIGTERM): not admitting".to_string(),
            &gate,
            &mut conn,
        );
        return;
    }
    if fault.is_some() && shared.cfg.fault_injector.is_none() {
        gate.stats.rejected_faults_disabled += 1;
        reject_with(
            reject::FAULTS_DISABLED,
            "fault injection not enabled on this daemon".to_string(),
            &gate,
            &mut conn,
        );
        return;
    }
    if gate.queue.len() >= shared.cfg.queue_cap {
        gate.stats.rejected_overload += 1;
        reject_with(
            reject::OVERLOADED,
            format!(
                "admission queue full ({}/{}), {} active",
                gate.queue.len(),
                shared.cfg.queue_cap,
                gate.active
            ),
            &gate,
            &mut conn,
        );
        return;
    }
    gate.next_run += 1;
    let run_id = gate.next_run;
    // Accepted is written under the lock so no later frame for this run
    // can be ordered before it.
    if proto::write_frame(&mut conn, &Frame::Accepted { run_id }).is_err() {
        return; // Client vanished between connect and accept.
    }
    gate.stats.accepted += 1;
    gate.queue.push_back(Job {
        run_id,
        tenant,
        script,
        timeout: (timeout_ms > 0).then(|| Duration::from_millis(timeout_ms)),
        fault,
        conn,
    });
    shared.work.notify_one();
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let job = {
            let mut gate = shared.gate.lock().unwrap();
            loop {
                if let Some(job) = gate.queue.pop_front() {
                    gate.active += 1;
                    break job;
                }
                if gate.draining {
                    return;
                }
                gate = shared.work.wait(gate).unwrap();
            }
        };
        let run_id = job.run_id;
        run_job(shared, job);
        let mut gate = shared.gate.lock().unwrap();
        gate.active -= 1;
        gate.live.remove(&run_id);
        gate.stats.completed += 1;
        shared.idle.notify_all();
    }
}

/// Executes one admitted run, fully isolated: own engine, journal,
/// tracer, cancel token; shared fs/CPU/disk.
fn run_job(shared: &Arc<Shared>, job: Job) {
    let cfg = &shared.cfg;
    let token = CancelToken::new();
    shared
        .gate
        .lock()
        .unwrap()
        .live
        .insert(job.run_id, token.clone());

    // Deadline: the submission's limit, else the daemon's default. The
    // guard disarms on drop, so a finished run retires its watcher.
    let limit = job.timeout.or(cfg.default_timeout);
    let _deadline = limit.map(|d| DeadlineGuard::arm(&token, d));

    // Disconnect detection: the client sends nothing after Submit, so
    // any read completing with 0 bytes means the peer closed. The
    // monitor polls with a short read timeout and stands down once the
    // run is done.
    let done = Arc::new(AtomicBool::new(false));
    if let Ok(reader) = job.conn.try_clone() {
        let done = Arc::clone(&done);
        let token = token.clone();
        let shared = Arc::clone(shared);
        std::thread::spawn(move || {
            let mut reader = reader;
            let _ = reader.set_read_timeout(Some(Duration::from_millis(50)));
            let mut scratch = [0u8; 64];
            loop {
                if done.load(Ordering::SeqCst) {
                    return;
                }
                match io::Read::read(&mut reader, &mut scratch) {
                    Ok(0) => {
                        if !done.load(Ordering::SeqCst) {
                            token.cancel("client disconnected");
                            shared.gate.lock().unwrap().stats.disconnect_cancels += 1;
                        }
                        return;
                    }
                    Ok(_) => {} // Extra client bytes are ignored.
                    Err(e)
                        if matches!(
                            e.kind(),
                            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                        ) => {}
                    Err(_) => {
                        if !done.load(Ordering::SeqCst) {
                            token.cancel("client disconnected");
                            shared.gate.lock().unwrap().stats.disconnect_cancels += 1;
                        }
                        return;
                    }
                }
            }
        });
    }

    // Per-run filesystem: the shared handle, optionally wrapped with the
    // submission's injected faults (test daemons only).
    let mut run_fs = Arc::clone(&cfg.fs);
    if let (Some(injector), Some(spec)) = (&cfg.fault_injector, &job.fault) {
        match injector(spec, Arc::clone(&run_fs), &token) {
            Some(wrapped) => run_fs = wrapped,
            None => {
                done.store(true, Ordering::SeqCst);
                let mut conn = job.conn;
                let _ = proto::write_frame(
                    &mut conn,
                    &Frame::Rejected {
                        code: reject::MALFORMED,
                        active: 0,
                        queued: 0,
                        reason: format!("unparseable fault spec: {spec}"),
                    },
                );
                return;
            }
        }
    }

    // The isolated engine, planned under the *current* aggregate
    // pressure: a busy daemon raises every new run's widening bar.
    let mut shell = Jash::new(cfg.engine, cfg.machine);
    shell.cancel = Some(token.clone());
    shell.durable = cfg.durable;
    if cfg.eager {
        shell.planner.min_speedup = 0.0;
        shell.planner.force_width = Some(4);
    }
    shell.planner = shell.planner.under_pressure(shared.pressure());
    if cfg.trace_root.is_some() {
        shell.tracer = Some(Arc::new(Tracer::new()));
        shell.run_attrs = vec![
            ("run_id".to_string(), job.run_id.into()),
            ("tenant".to_string(), job.tenant.clone().into()),
        ];
    }
    if let Some(root) = &cfg.journal_root {
        if cfg.engine == Engine::JashJit {
            let dir = format!("{root}/run-{}", job.run_id);
            let _ = shell.attach_journal(&run_fs, &dir, false);
        }
    }

    let mut state = ShellState::new(Arc::clone(&run_fs));
    state.cpu = cfg.cpu.clone();
    state.shell_name = format!("jash-serve:{}", job.run_id);

    // Panic isolation: a run that blows up inside the engine must not
    // take the worker (or the daemon) with it.
    let script = job.script;
    let outcome = catch_unwind(AssertUnwindSafe(|| shell.run_script(&mut state, &script)));

    let (status, stdout, stderr, panicked) = match outcome {
        Ok(Ok(r)) => (r.status, r.stdout, r.stderr, false),
        Ok(Err(e)) => (2, Vec::new(), format!("jash: {e}\n").into_bytes(), false),
        Err(panic) => {
            let what = panic
                .downcast_ref::<&str>()
                .map(ToString::to_string)
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic".to_string());
            (
                125,
                Vec::new(),
                format!("jash: run panicked: {what}\n").into_bytes(),
                true,
            )
        }
    };
    let aborted = token.reason();
    {
        let mut gate = shared.gate.lock().unwrap();
        if panicked {
            gate.stats.panics_isolated += 1;
        }
        if aborted
            .as_deref()
            .is_some_and(|r| jash_io::deadline_code(r).is_some())
        {
            gate.stats.deadline_aborts += 1;
        }
    }

    // Flush the run's trace through the *unwrapped* shared fs — the
    // observability record must survive the very faults it documents.
    // This runs on every exit path (clean, aborted, panicked): a drain
    // must never truncate a run's spans.
    if let (Some(root), Some(tracer)) = (&cfg.trace_root, &shell.tracer) {
        let path = format!("{root}/run-{}.jsonl", job.run_id);
        let _ = jash_io::fs::write_file(cfg.fs.as_ref(), &path, tracer.to_jsonl().as_bytes());
    }

    // Stream the results. The client may be gone (that may be *why* the
    // run aborted); send errors are unremarkable.
    done.store(true, Ordering::SeqCst);
    let mut conn = job.conn;
    if !stdout.is_empty() {
        let _ = proto::write_frame(&mut conn, &Frame::Stdout(stdout));
    }
    if !stderr.is_empty() {
        let _ = proto::write_frame(&mut conn, &Frame::Stderr(stderr));
    }
    let _ = proto::write_frame(&mut conn, &Frame::Done { status, aborted });
    let _ = conn.shutdown(std::net::Shutdown::Both);
}

/// Parses the wire-level fault specs the `jash serve --test-faults`
/// daemon accepts, mirroring the crash/fault sweeps' vocabulary:
///
/// * `read-error:PATH:OFFSET` — sticky read error at a byte offset
/// * `transient-read:PATH:OFFSET` — same, but fires once (retryable)
/// * `stall-read:PATH:MILLIS` — first read stalls (cancellable)
/// * `open-error:PATH` — open fails with permission denied
/// * `truncate:PATH:OFFSET` — reads see early EOF
///
/// Returns `None` for anything else — the daemon answers with a
/// structured rejection rather than guessing.
pub fn parse_fault_spec(spec: &str) -> Option<jash_io::FaultPlan> {
    let mut parts = spec.split(':');
    let kind = parts.next()?;
    let plan = jash_io::FaultPlan::new();
    match kind {
        "read-error" => {
            let path = parts.next()?;
            let offset: u64 = parts.next()?.parse().ok()?;
            Some(plan.read_error_at(path, offset, "injected: disk surface error"))
        }
        "transient-read" => {
            let path = parts.next()?;
            let offset: u64 = parts.next()?.parse().ok()?;
            Some(plan.rule(jash_io::fault::FaultRule {
                path: Some(path.to_string()),
                op: jash_io::fault::FaultOp::Read,
                trigger: jash_io::fault::Trigger::AtByte(offset),
                kind: jash_io::fault::FaultKind::Error {
                    kind: std::io::ErrorKind::Other,
                    msg: "injected: transient controller reset".to_string(),
                },
                once: true,
            }))
        }
        "stall-read" => {
            let path = parts.next()?;
            let ms: u64 = parts.next()?.parse().ok()?;
            Some(plan.stall_reads(path, Duration::from_millis(ms)))
        }
        "open-error" => {
            let path = parts.next()?;
            Some(plan.open_error(path, "permission denied"))
        }
        "truncate" => {
            let path = parts.next()?;
            let offset: u64 = parts.next()?.parse().ok()?;
            Some(plan.truncate_at(path, offset))
        }
        _ => None,
    }
}

/// The [`FaultInjector`] for [`parse_fault_spec`]'s vocabulary: wraps
/// the shared fs in a [`jash_io::FaultFs`] wired to the run's cancel
/// token, so injected stalls abort with the run instead of outliving it.
pub fn spec_fault_injector() -> FaultInjector {
    Arc::new(|spec: &str, fs: FsHandle, token: &CancelToken| {
        parse_fault_spec(spec).map(|plan| {
            jash_io::FaultFs::wrap_with_cancel(fs, plan, token.clone()) as FsHandle
        })
    })
}
