//! The `jash serve` daemon: a bounded worker pool multiplexing isolated
//! shell runs over one shared machine.
//!
//! Robustness decisions, in the order a submission meets them:
//!
//! * **Admission control** — per-tenant bounded queues under one global
//!   bound, scheduled by weighted deficit round-robin
//!   ([`crate::sched::Scheduler`]). Every shed answers with a
//!   structured [`Frame::Rejected`] (code, active, queued, reason) and
//!   closes the connection: the daemon *sheds* load, it never stalls
//!   accepting it. The code says exactly why: `OVERLOADED` (machine
//!   full — retry later), `QUOTA` (your own queue full — drain your
//!   backlog), `QUARANTINED` (your runs keep failing — fix them),
//!   `DRAINING` (find another server).
//! * **Noisy-neighbor quarantine** — a tenant-keyed
//!   [`CircuitBreaker`] (the same open/half-open/closed machine the
//!   JIT uses on region fingerprints) counts each tenant's consecutive
//!   failed/panicked/deadlined runs. At the threshold the tenant is
//!   quarantined: submissions bounce with `QUARANTINED` for a cooldown
//!   measured in admission ticks, after which exactly one probe run is
//!   admitted half-open — success lifts the quarantine, failure
//!   re-arms it. Drain aborts and client disconnects are *not*
//!   failures; a tenant must not be exiled for the daemon's shutdown.
//! * **Isolation** — every admitted run gets its own [`Jash`] engine,
//!   journal scope, tracer, and [`CancelToken`]. What runs *share* is
//!   the machine: one filesystem, one [`CpuModel`] token bucket, one
//!   disk model — so the planner's resource math sees aggregate load.
//! * **Per-tenant attribution** — each run's filesystem is wrapped in a
//!   [`MeteredFs`] and its CPU charges flow through a
//!   [`CpuModel::sub_model`], tallying a per-tenant [`UsageMeter`]. A
//!   [`FairShareBucket`] converts the tally into tenant pressure:
//!   heavy tenants overdraw their weight-share of the machine and see
//!   narrower plans *before* light tenants feel anything.
//! * **Cross-run pressure** — before each run is planned, the daemon
//!   reads [`jash_core::cross_run_pressure`] (worker occupancy + queue
//!   backlog + shared-model saturation), takes the max with the
//!   tenant's own bucket pressure, and tightens the run's
//!   [`PlannerOptions::under_pressure`]: a busy daemon stops widening
//!   regions into its own other tenants, and a greedy tenant stops
//!   widening into anyone.
//! * **Deadlines** — a per-run [`DeadlineGuard`] cancels the run's token
//!   with the `deadline:` reason; the session layer aborts the region,
//!   journals `RegionAborted`, and surfaces exit 124.
//! * **Disconnect detection** — a monitor thread reads the client's half
//!   of the socket; EOF before `Done` cancels the orphaned run and frees
//!   its worker slot for queued submissions.
//! * **Panic isolation** — the run executes under `catch_unwind`
//!   (defense in depth over the executor's own per-node isolation): a
//!   panicking run reports status 125 to its client and the daemon keeps
//!   serving.
//! * **Graceful drain** — [`Server::drain`] stops admission, sheds the
//!   queue with `DRAINING` rejections, cancels in-flight runs with the
//!   SIGTERM shutdown reason (journaled, resumable, exit 143), and waits
//!   out a bounded drain budget. Stragglers are *reported*, never
//!   waited on forever — the budget is the contract.
//! * **Durable admission ledger** — with a journal root configured,
//!   every admission is appended to `<root>/ledger` *before* the
//!   `Accepted` frame is written and every terminal result is recorded
//!   (blobs first, then the `Done` record). [`Server::start`] runs the
//!   startup janitor ([`jash_core::recover_serve_root`]) before binding
//!   the socket: orphaned keyed runs are finalized (resuming
//!   journaled-clean regions from the durable memo), unkeyed orphans
//!   aborted, and cached results reloaded — a SIGKILLed daemon restarts
//!   into exactly-once semantics.
//! * **Idempotency keys** — a submission carrying a key that matches a
//!   finished run replays the cached terminal result (`Attach` frame +
//!   the original bytes, no re-execution); a key matching an in-flight
//!   run attaches the connection as a waiter that receives the same
//!   terminal frames the primary client does. Keyed runs are *not*
//!   cancelled when their client disconnects — the key is the client's
//!   promise to come back.
//! * **Slow-loris hardening** — every connection carries a bounded
//!   write timeout ([`ServerConfig::write_stall`]); a client that stops
//!   reading its own result frames stalls out and frees the slot
//!   instead of pinning a worker forever.

use crate::proto::{self, reject, Frame};
use crate::sched::{Scheduler, TenantPolicy, TenantSnapshot};
use jash_core::{
    cross_run_pressure, recover_serve_root, remove_tree, resource_pressure, BreakerConfig,
    CircuitBreaker, Engine, Jash, Route, ServeRecovery,
};
use jash_cost::MachineProfile;
use jash_expand::ShellState;
use jash_io::{
    CancelToken, CpuModel, DeadlineGuard, DiskModel, FairShareBucket, FsHandle, Ledger,
    LedgerRecord, MeteredFs, UsageMeter,
};
use jash_trace::Tracer;
use std::collections::{HashMap, VecDeque};
use std::io;
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Hook for wrapping a run's filesystem with injected faults. Called
/// with the submission's fault spec, the shared filesystem, and the
/// run's cancel token (so stall-style faults stay cancellable); returns
/// the wrapped handle, or `None` when the spec does not parse.
pub type FaultInjector =
    Arc<dyn Fn(&str, FsHandle, &CancelToken) -> Option<FsHandle> + Send + Sync>;

/// Daemon configuration.
pub struct ServerConfig {
    /// Unix socket path (host filesystem).
    pub socket: PathBuf,
    /// The shared filesystem every run executes against.
    pub fs: FsHandle,
    /// Machine profile handed to every run's planner.
    pub machine: MachineProfile,
    /// Engine for submitted runs.
    pub engine: Engine,
    /// Worker pool size (concurrent runs).
    pub workers: usize,
    /// Admission queue bound; submissions past it are rejected.
    pub queue_cap: usize,
    /// Deadline imposed on runs whose submission asked for none.
    pub default_timeout: Option<Duration>,
    /// How long [`Server::drain`] waits for in-flight runs to abort.
    pub drain_budget: Duration,
    /// Virtual directory for per-run journals (`<root>/run-<id>`), or
    /// `None` to disable journaling.
    pub journal_root: Option<String>,
    /// Virtual directory for per-run schema-v1 traces
    /// (`<root>/run-<id>.jsonl`), or `None` to disable tracing.
    pub trace_root: Option<String>,
    /// Whether run commits use the full durability protocol.
    pub durable: bool,
    /// Test knob: plan eagerly (`min_speedup = 0`, width 4) so small
    /// inputs still exercise the optimized path.
    pub eager: bool,
    /// Shared CPU token bucket, charged by every run.
    pub cpu: Option<Arc<CpuModel>>,
    /// Shared disk model, read by the pressure signal.
    pub disk: Option<Arc<DiskModel>>,
    /// Fault-injection hook; `None` rejects submissions carrying fault
    /// specs (production posture).
    pub fault_injector: Option<FaultInjector>,
    /// Policy for tenants not listed in `tenants`.
    pub tenant_default: TenantPolicy,
    /// Per-tenant policy overrides (weight, concurrency cap, queue cap).
    pub tenants: Vec<(String, TenantPolicy)>,
    /// Consecutive failed runs that quarantine a tenant; `0` disables
    /// the tenant breaker entirely.
    pub quarantine_failures: u32,
    /// Quarantine cooldown in admission ticks (one tick per well-formed
    /// submission, so a busy daemon ages quarantines quickly and an
    /// idle one holds them — deterministic either way).
    pub quarantine_cooldown: u64,
    /// Per-tenant burst allowance in modeled resource-seconds: how far
    /// a tenant can run ahead of its sustained share before its bucket
    /// pressure starts rising.
    pub tenant_burst_secs: f64,
    /// Sustained entitlement in modeled resource-seconds per wall
    /// second *per unit weight*. Scale to `cores / expected-tenants`
    /// for a machine-proportional split.
    pub tenant_share_secs: f64,
    /// Write timeout on every client connection: a client that stops
    /// reading its result frames (slow loris) stalls out after this
    /// long and the daemon drops the connection, freeing the slot.
    pub write_stall: Duration,
}

impl ServerConfig {
    /// A config with production-shaped defaults: 4 workers, a queue of
    /// 8, a 5-second drain budget, JIT engine, durable commits, no
    /// fault injection.
    pub fn new(socket: impl Into<PathBuf>, fs: FsHandle) -> ServerConfig {
        ServerConfig {
            socket: socket.into(),
            fs,
            machine: MachineProfile::laptop(),
            engine: Engine::JashJit,
            workers: 4,
            queue_cap: 8,
            default_timeout: None,
            drain_budget: Duration::from_secs(5),
            journal_root: None,
            trace_root: None,
            durable: true,
            eager: false,
            cpu: None,
            disk: None,
            fault_injector: None,
            tenant_default: TenantPolicy::default(),
            tenants: Vec::new(),
            quarantine_failures: 5,
            quarantine_cooldown: 16,
            tenant_burst_secs: 2.0,
            tenant_share_secs: 0.5,
            write_stall: Duration::from_secs(10),
        }
    }
}

/// Daemon-lifetime counters, readable while running and reported by
/// [`DrainReport`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Submissions admitted (Accepted frame sent).
    pub accepted: u64,
    /// Runs that finished and sent their Done frame.
    pub completed: u64,
    /// Submissions shed because the queue was full.
    pub rejected_overload: u64,
    /// Submissions shed because the daemon was draining.
    pub rejected_draining: u64,
    /// Connections dropped for unparseable submissions.
    pub rejected_malformed: u64,
    /// Submissions carrying fault specs while injection was disabled.
    pub rejected_faults_disabled: u64,
    /// Submissions shed because the *tenant's* queue was at its cap.
    pub rejected_quota: u64,
    /// Submissions refused because the tenant was quarantined.
    pub rejected_quarantined: u64,
    /// Times any tenant's breaker newly opened (quarantine onsets).
    pub tenants_quarantined: u64,
    /// Runs aborted by their wall-clock deadline.
    pub deadline_aborts: u64,
    /// Runs cancelled because their client vanished mid-run.
    pub disconnect_cancels: u64,
    /// Runs whose engine panicked and was contained.
    pub panics_isolated: u64,
    /// Duplicate keyed submissions answered from the result cache
    /// without re-execution.
    pub replayed: u64,
    /// Duplicate keyed submissions attached to an in-flight run.
    pub attached: u64,
    /// Result-frame writes that stalled out against a slow or vanished
    /// client (the connection was dropped).
    pub write_stalls: u64,
}

/// What [`Server::drain`] observed.
#[derive(Debug, Clone)]
pub struct DrainReport {
    /// Runs in flight when drain began (each was cancelled with the
    /// SIGTERM shutdown reason and given the budget to abort cleanly).
    pub in_flight: usize,
    /// Queued submissions shed with `DRAINING` rejections.
    pub shed: usize,
    /// Runs still executing when the budget expired (the daemon exits
    /// anyway; a wedged run must not hold the process hostage).
    pub stragglers: usize,
    /// Whether every run retired within the budget.
    pub within_budget: bool,
    /// Final counters.
    pub stats: ServeStats,
    /// Per-tenant accounting rows, sorted by tenant name.
    pub tenants: Vec<TenantReport>,
}

/// One tenant's lifetime accounting, merged from the scheduler, the
/// breaker, and the resource sub-account.
#[derive(Debug, Clone)]
pub struct TenantReport {
    /// Tenant name.
    pub tenant: String,
    /// Configured (or default) service weight.
    pub weight: f64,
    /// Jobs queued right now.
    pub queued: usize,
    /// Runs executing right now.
    pub active: usize,
    /// Runs dispatched over the daemon's lifetime.
    pub dispatched: u64,
    /// Runs retired (any exit status).
    pub completed: u64,
    /// Runs that counted as failures toward quarantine.
    pub failures: u64,
    /// Times this tenant's breaker opened.
    pub quarantines: u64,
    /// Whether the tenant is quarantined (open or half-open) right now.
    pub quarantined_now: bool,
    /// Submissions bounced for a full tenant queue.
    pub rejected_quota: u64,
    /// Submissions bounced while quarantined.
    pub rejected_quarantined: u64,
    /// Longest queue wait any of this tenant's jobs saw, in ms.
    pub max_queue_wait_ms: u64,
    /// Modeled CPU seconds attributed to this tenant.
    pub cpu_seconds: f64,
    /// Disk bytes attributed to this tenant.
    pub disk_bytes: u64,
    /// The tenant's fair-share bucket pressure at snapshot time.
    pub pressure: f64,
}

struct Job {
    run_id: u64,
    tenant: String,
    script: String,
    timeout: Option<Duration>,
    fault: Option<String>,
    /// Idempotency key; empty = none.
    key: String,
    conn: UnixStream,
    /// This run is a quarantined tenant's half-open probe: its outcome
    /// alone decides whether the quarantine lifts.
    probe: bool,
}

/// A finished run's terminal result, cached for replay to duplicate
/// keyed submissions.
#[derive(Debug, Clone)]
pub struct Terminal {
    /// Exit status.
    pub status: i32,
    /// Abort reason, when cancelled.
    pub aborted: Option<String>,
    /// Terminal stdout bytes.
    pub stdout: Vec<u8>,
    /// Terminal stderr bytes.
    pub stderr: Vec<u8>,
}

/// Bound on the keyed result cache: beyond this many finished runs the
/// oldest entry (and its key mapping and result blobs) is evicted, so a
/// long-lived daemon's exactly-once window is bounded, not leaky.
const RESULT_CACHE_CAP: usize = 1024;

/// A tenant's resource sub-account: the meter fed by the run-side
/// wrappers, the bucket converting it to pressure, and the breaker-probe
/// latch.
struct TenantAccount {
    meter: Arc<UsageMeter>,
    bucket: FairShareBucket,
    cpu: Option<Arc<CpuModel>>,
    /// A half-open probe run is in flight; further submissions keep
    /// bouncing until it reports.
    probing: bool,
    failures: u64,
    quarantines: u64,
    rejected_quota: u64,
    rejected_quarantined: u64,
}

struct Gate {
    draining: bool,
    active: usize,
    sched: Scheduler<Job>,
    breaker: CircuitBreaker<String>,
    accounts: HashMap<String, TenantAccount>,
    live: HashMap<u64, CancelToken>,
    next_run: u64,
    stats: ServeStats,
    /// The durable admission ledger (`Some` when a journal root is
    /// configured): appended under this lock so ledger order is
    /// admission order.
    ledger: Option<Ledger>,
    /// Finished runs by id: `(key, terminal result)`, for replay.
    finished: HashMap<u64, (String, Arc<Terminal>)>,
    /// Finished-run ids in completion order, for cache eviction.
    finished_order: VecDeque<u64>,
    /// Idempotency key → run id, spanning queued, live, and finished.
    keys: HashMap<String, u64>,
    /// Connections attached to an in-flight run, each owed the run's
    /// terminal frames.
    waiters: HashMap<u64, Vec<UnixStream>>,
}

impl Gate {
    /// Records a finished keyed run in the replay cache, evicting the
    /// oldest entry (cache row, key mapping, result blobs) past the cap.
    fn cache_result(&mut self, cfg: &ServerConfig, run_id: u64, key: &str, term: Arc<Terminal>) {
        self.finished.insert(run_id, (key.to_string(), term));
        self.finished_order.push_back(run_id);
        while self.finished_order.len() > RESULT_CACHE_CAP {
            let Some(old) = self.finished_order.pop_front() else {
                break;
            };
            if let Some((old_key, _)) = self.finished.remove(&old) {
                if self.keys.get(&old_key) == Some(&old) {
                    self.keys.remove(&old_key);
                }
            }
            if let Some(root) = &cfg.journal_root {
                jash_io::ledger::remove_result_blobs(cfg.fs.as_ref(), root, old);
            }
        }
    }
}

/// Looks up (or lazily creates) `tenant`'s resource sub-account.
fn account_mut<'a>(gate: &'a mut Gate, cfg: &ServerConfig, tenant: &str) -> &'a mut TenantAccount {
    if !gate.accounts.contains_key(tenant) {
        let meter = UsageMeter::new();
        let weight = gate.sched.policy(tenant).weight.clamp(0.01, 100.0);
        // Disk bytes convert to resource-seconds at the modeled disk's
        // sequential read rate (or a 128 MiB/s stand-in without one).
        let disk_rate = cfg
            .disk
            .as_ref()
            .map(|d| d.profile().read_mbps * 1024.0 * 1024.0)
            .unwrap_or(128.0 * 1024.0 * 1024.0);
        let bucket = FairShareBucket::new(
            cfg.tenant_burst_secs,
            weight * cfg.tenant_share_secs,
            disk_rate,
            Instant::now(),
        );
        let cpu = cfg.cpu.as_ref().map(|c| c.sub_model(Arc::clone(&meter)));
        gate.accounts.insert(
            tenant.to_string(),
            TenantAccount {
                meter,
                bucket,
                cpu,
                probing: false,
                failures: 0,
                quarantines: 0,
                rejected_quota: 0,
                rejected_quarantined: 0,
            },
        );
    }
    gate.accounts.get_mut(tenant).expect("just inserted")
}

impl TenantAccount {
    fn settle(&self, now: Instant) -> f64 {
        self.bucket.settle(&self.meter, now)
    }
}

/// Merges scheduler snapshots, breaker state, and resource accounts
/// into per-tenant report rows.
fn tenant_reports(gate: &Gate) -> Vec<TenantReport> {
    let snapshots = gate.sched.snapshots();
    let mut seen: std::collections::HashSet<&str> =
        snapshots.iter().map(|s| s.tenant.as_str()).collect();
    let mut rows: Vec<TenantReport> = snapshots.iter().map(|s| tenant_row(gate, s)).collect();
    // Accounts can exist for tenants the scheduler never queued (e.g.
    // every submission bounced); report them too.
    for name in gate.accounts.keys() {
        if seen.insert(name) {
            let empty = TenantSnapshot {
                tenant: name.clone(),
                policy: gate.sched.policy(name),
                queued: 0,
                active: 0,
                dispatched: 0,
                completed: 0,
                max_wait: Duration::ZERO,
            };
            rows.push(tenant_row(gate, &empty));
        }
    }
    rows.sort_by(|a, b| a.tenant.cmp(&b.tenant));
    rows
}

fn tenant_row(gate: &Gate, snap: &TenantSnapshot) -> TenantReport {
    let acct = gate.accounts.get(&snap.tenant);
    TenantReport {
        tenant: snap.tenant.clone(),
        weight: snap.policy.weight,
        queued: snap.queued,
        active: snap.active,
        dispatched: snap.dispatched,
        completed: snap.completed,
        failures: acct.map_or(0, |a| a.failures),
        quarantines: acct.map_or(0, |a| a.quarantines),
        quarantined_now: gate.breaker.is_open(&snap.tenant),
        rejected_quota: acct.map_or(0, |a| a.rejected_quota),
        rejected_quarantined: acct.map_or(0, |a| a.rejected_quarantined),
        max_queue_wait_ms: snap.max_wait.as_millis() as u64,
        cpu_seconds: acct.map_or(0.0, |a| a.meter.cpu_seconds()),
        disk_bytes: acct.map_or(0, |a| a.meter.disk_bytes()),
        pressure: acct.map_or(0.0, |a| a.bucket.pressure()),
    }
}

struct Shared {
    cfg: ServerConfig,
    gate: Mutex<Gate>,
    /// Workers park here waiting for queued jobs.
    work: Condvar,
    /// Drain parks here waiting for `active` to reach zero.
    idle: Condvar,
    started: Instant,
}

/// A running daemon. Create with [`Server::start`], stop with
/// [`Server::drain`].
pub struct Server {
    shared: Arc<Shared>,
    accept: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    recovery: ServeRecovery,
}

impl Server {
    /// Runs the startup janitor over the previous daemon's estate, then
    /// binds the socket and starts the accept loop and worker pool.
    /// Recovery completes *before* the bind: a client that connects is
    /// guaranteed the ledger is settled and cached results are loaded.
    pub fn start(cfg: ServerConfig) -> io::Result<Server> {
        let mut recovery = ServeRecovery::default();
        let mut recovered = Vec::new();
        let mut next_run = 0;
        let mut ledger = None;
        if let Some(root) = &cfg.journal_root {
            let (report, runs, watermark) = recover_serve_root(
                &cfg.fs,
                root,
                cfg.engine,
                cfg.machine,
                cfg.eager,
                cfg.durable,
            )?;
            recovery = report;
            recovered = runs;
            next_run = watermark;
            ledger = Some(Ledger::open(
                Arc::clone(&cfg.fs),
                format!("{root}/ledger"),
                cfg.durable,
            ));
        }
        // A stale socket file from a dead daemon refuses the bind.
        let _ = std::fs::remove_file(&cfg.socket);
        let listener = UnixListener::bind(&cfg.socket)?;
        // Nonblocking accept + short poll, so drain can stop the loop
        // without a wake-up connection or platform-specific tricks.
        listener.set_nonblocking(true)?;
        let mut sched = Scheduler::new(cfg.tenant_default);
        for (name, policy) in &cfg.tenants {
            sched.set_policy(name, *policy);
        }
        let breaker = CircuitBreaker::new(BreakerConfig {
            failure_threshold: cfg.quarantine_failures.max(1),
            cooldown_regions: cfg.quarantine_cooldown,
        });
        let mut gate = Gate {
            draining: false,
            active: 0,
            sched,
            breaker,
            accounts: HashMap::new(),
            live: HashMap::new(),
            next_run,
            stats: ServeStats::default(),
            ledger,
            finished: HashMap::new(),
            finished_order: VecDeque::new(),
            keys: HashMap::new(),
            waiters: HashMap::new(),
        };
        for run in recovered {
            gate.keys.insert(run.key.clone(), run.run_id);
            gate.cache_result(
                &cfg,
                run.run_id,
                &run.key,
                Arc::new(Terminal {
                    status: run.status,
                    aborted: run.aborted,
                    stdout: run.stdout,
                    stderr: run.stderr,
                }),
            );
        }
        let shared = Arc::new(Shared {
            cfg,
            gate: Mutex::new(gate),
            work: Condvar::new(),
            idle: Condvar::new(),
            started: Instant::now(),
        });
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&shared, &listener))
        };
        let workers = (0..shared.cfg.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Ok(Server {
            shared,
            accept: Some(accept),
            workers,
            recovery,
        })
    }

    /// The socket path clients connect to.
    pub fn socket(&self) -> &PathBuf {
        &self.shared.cfg.socket
    }

    /// What the startup janitor recovered from the previous daemon's
    /// estate (all zeroes when journaling is off or the start was clean).
    pub fn recovery(&self) -> &ServeRecovery {
        &self.recovery
    }

    /// A snapshot of the daemon counters.
    pub fn stats(&self) -> ServeStats {
        self.shared.gate.lock().unwrap().stats.clone()
    }

    /// `(active, queued)` right now — the admission state tests and
    /// operators poll to sequence against the worker pool.
    pub fn load(&self) -> (usize, usize) {
        let gate = self.shared.gate.lock().unwrap();
        (gate.active, gate.sched.queued_total())
    }

    /// Per-tenant accounting rows (scheduling, quarantine, resource
    /// attribution), sorted by tenant name.
    pub fn tenants(&self) -> Vec<TenantReport> {
        tenant_reports(&self.shared.gate.lock().unwrap())
    }

    /// The current cross-run pressure reading, as the next admitted
    /// run's planner would see it.
    pub fn pressure(&self) -> f64 {
        self.shared.pressure()
    }

    /// Graceful drain: stop admitting, shed the queue, cancel in-flight
    /// runs with the SIGTERM shutdown reason, and wait out the budget.
    ///
    /// Never blocks past `drain_budget` (plus scheduling noise): a run
    /// that ignores its cancel token is reported as a straggler, and the
    /// caller is expected to exit the process regardless.
    pub fn drain(mut self) -> DrainReport {
        let shared = Arc::clone(&self.shared);
        let budget = shared.cfg.drain_budget;
        let (in_flight, shed, shed_waiters) = {
            let mut gate = shared.gate.lock().unwrap();
            gate.draining = true;
            let shed: Vec<(String, Job)> = gate.sched.drain_queues();
            // Waiters attached to *queued* runs will never see a Done:
            // shed them with the same rejection. (Waiters on in-flight
            // runs get their terminal frames when the cancelled run
            // retires.)
            let mut shed_waiters = Vec::new();
            for (_, job) in &shed {
                if let Some(ws) = gate.waiters.remove(&job.run_id) {
                    shed_waiters.extend(ws);
                }
            }
            for token in gate.live.values() {
                token.cancel(jash_core::shutdown_reason(15));
            }
            let in_flight = gate.active;
            gate.stats.rejected_draining += shed.len() as u64;
            // Wake parked workers so they observe `draining` and exit.
            self.shared.work.notify_all();
            (in_flight, shed, shed_waiters)
        };
        let shed_count = shed.len();
        let drain_reject = |conn: &mut UnixStream| {
            let _ = proto::write_frame(
                conn,
                &Frame::Rejected {
                    code: reject::DRAINING,
                    active: in_flight as u32,
                    queued: 0,
                    reason: "daemon draining (SIGTERM): submission shed".to_string(),
                },
            );
        };
        for (_tenant, job) in shed {
            let mut conn = job.conn;
            drain_reject(&mut conn);
        }
        for mut conn in shed_waiters {
            drain_reject(&mut conn);
        }
        // Wait for in-flight runs to retire, bounded by the budget.
        let deadline = Instant::now() + budget;
        let stragglers = {
            let mut gate = shared.gate.lock().unwrap();
            loop {
                if gate.active == 0 {
                    break 0;
                }
                let now = Instant::now();
                if now >= deadline {
                    break gate.active;
                }
                let (g, _timeout) = shared.idle.wait_timeout(gate, deadline - now).unwrap();
                gate = g;
            }
        };
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if stragglers == 0 {
            for h in self.workers.drain(..) {
                let _ = h.join();
            }
        } else {
            // Wedged runs keep their (detached) threads; the process is
            // about to exit and must not inherit their fate.
            self.workers.clear();
        }
        let _ = std::fs::remove_file(&shared.cfg.socket);
        let (stats, tenants) = {
            let gate = shared.gate.lock().unwrap();
            (gate.stats.clone(), tenant_reports(&gate))
        };
        DrainReport {
            in_flight,
            shed: shed_count,
            stragglers,
            within_budget: stragglers == 0,
            stats,
            tenants,
        }
    }
}

impl Shared {
    fn pressure(&self) -> f64 {
        let (active, queued) = {
            let gate = self.gate.lock().unwrap();
            (gate.active, gate.sched.queued_total())
        };
        let resources = resource_pressure(
            self.cfg.disk.as_ref(),
            self.cfg.cpu.as_ref(),
            self.started.elapsed().as_secs_f64(),
        );
        cross_run_pressure(
            active,
            self.cfg.workers,
            queued,
            self.cfg.queue_cap,
            resources,
        )
    }
}

fn accept_loop(shared: &Arc<Shared>, listener: &UnixListener) {
    loop {
        if shared.gate.lock().unwrap().draining {
            return;
        }
        match listener.accept() {
            Ok((conn, _addr)) => {
                let shared = Arc::clone(shared);
                // Intake runs off-thread: reading the submit frame from
                // a slow client must not block the accept loop.
                std::thread::spawn(move || intake(&shared, conn));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// Reads one submission and runs admission control. All rejection paths
/// answer with a structured frame before closing — shedding is visible,
/// stalling is forbidden.
fn intake(shared: &Arc<Shared>, mut conn: UnixStream) {
    // A client that connects and then wedges without submitting must not
    // pin the intake thread forever — and one that stops *reading* must
    // not pin any thread that writes to it (slow-loris hardening; the
    // timeout rides the connection into the worker and waiter paths).
    let _ = conn.set_read_timeout(Some(Duration::from_secs(10)));
    let _ = conn.set_write_timeout(Some(shared.cfg.write_stall));
    let submit = match proto::read_frame(&mut conn) {
        Ok(Some(f @ Frame::Submit { .. })) => f,
        _ => {
            let mut gate = shared.gate.lock().unwrap();
            gate.stats.rejected_malformed += 1;
            let (active, queued) = (gate.active as u32, gate.sched.queued_total() as u32);
            drop(gate);
            let _ = proto::write_frame(
                &mut conn,
                &Frame::Rejected {
                    code: reject::MALFORMED,
                    active,
                    queued,
                    reason: "expected a Submit frame".to_string(),
                },
            );
            return;
        }
    };
    let _ = conn.set_read_timeout(None);
    let Frame::Submit {
        script,
        timeout_ms,
        tenant,
        key,
        fault,
    } = submit
    else {
        unreachable!("matched Submit above");
    };

    let mut gate = shared.gate.lock().unwrap();
    let reject_with = |code: u8, reason: String, gate: &Gate, conn: &mut UnixStream| {
        let frame = Frame::Rejected {
            code,
            active: gate.active as u32,
            queued: gate.sched.queued_total() as u32,
            reason,
        };
        let _ = proto::write_frame(conn, &frame);
    };
    if gate.draining {
        gate.stats.rejected_draining += 1;
        reject_with(
            reject::DRAINING,
            "daemon draining (SIGTERM): not admitting".to_string(),
            &gate,
            &mut conn,
        );
        return;
    }
    if fault.is_some() && shared.cfg.fault_injector.is_none() {
        gate.stats.rejected_faults_disabled += 1;
        reject_with(
            reject::FAULTS_DISABLED,
            "fault injection not enabled on this daemon".to_string(),
            &gate,
            &mut conn,
        );
        return;
    }
    // Idempotency: a known key never creates a second run. A finished
    // run replays its cached terminal result; an in-flight (queued or
    // executing) run adopts this connection as a waiter. Either way the
    // duplicate bypasses admission control — no new work is created, so
    // there is nothing to shed.
    if !key.is_empty() {
        if let Some(&run_id) = gate.keys.get(&key) {
            if let Some((_, term)) = gate.finished.get(&run_id) {
                let term = Arc::clone(term);
                gate.stats.replayed += 1;
                drop(gate);
                if send_terminal_frames(&mut conn, Some(run_id), &term) {
                    shared.gate.lock().unwrap().stats.write_stalls += 1;
                }
                return;
            }
            gate.stats.attached += 1;
            // Attach is written under the lock so the run cannot retire
            // (and drain its waiter list) between the lookup and the
            // registration.
            if proto::write_frame(&mut conn, &Frame::Attach { run_id }).is_ok() {
                gate.waiters.entry(run_id).or_default().push(conn);
            }
            return;
        }
    }
    // One admission tick per well-formed submission: the quarantine
    // cooldown ages with daemon activity, never with wall time, so the
    // same submission sequence quarantines and paroles at the same
    // points on every run.
    let quarantine_on = shared.cfg.quarantine_failures > 0;
    let route = if quarantine_on {
        gate.breaker.tick();
        gate.breaker.route(&tenant)
    } else {
        Route::Try
    };
    if route == Route::Interpret
        || (route == Route::HalfOpenTrial
            && gate.accounts.get(&tenant).is_some_and(|a| a.probing))
    {
        gate.stats.rejected_quarantined += 1;
        account_mut(&mut gate, &shared.cfg, &tenant).rejected_quarantined += 1;
        let reason = if route == Route::Interpret {
            format!("tenant {tenant} quarantined: recent runs kept failing; cooling down")
        } else {
            format!("tenant {tenant} quarantined: half-open probe already in flight")
        };
        reject_with(reject::QUARANTINED, reason, &gate, &mut conn);
        return;
    }
    if gate.sched.queued_total() >= shared.cfg.queue_cap {
        gate.stats.rejected_overload += 1;
        reject_with(
            reject::OVERLOADED,
            format!(
                "admission queue full ({}/{}), {} active",
                gate.sched.queued_total(),
                shared.cfg.queue_cap,
                gate.active
            ),
            &gate,
            &mut conn,
        );
        return;
    }
    if let Some((depth, cap)) = gate.sched.quota_exceeded(&tenant) {
        gate.stats.rejected_quota += 1;
        account_mut(&mut gate, &shared.cfg, &tenant).rejected_quota += 1;
        reject_with(
            reject::QUOTA,
            format!("tenant {tenant} queue full ({depth}/{cap}): over per-tenant quota"),
            &gate,
            &mut conn,
        );
        return;
    }
    // Past every check: latch the probe only now, so a probe bounced by
    // OVERLOADED/QUOTA above does not wedge the half-open state.
    let probe = route == Route::HalfOpenTrial;
    if probe {
        account_mut(&mut gate, &shared.cfg, &tenant).probing = true;
    }
    gate.next_run += 1;
    let run_id = gate.next_run;
    // Exactly-once, step 1: the admission is ledgered *before* the
    // client hears `Accepted`. If the daemon dies any time after this
    // fsync, restart recovery finds the record and finalizes the run —
    // the promise survives the promiser. Appending under the gate lock
    // serializes admission on the fsync; that is the price of the
    // guarantee and it is paid only when journaling is on.
    if let Some(ledger) = &gate.ledger {
        let append = ledger.append(&LedgerRecord::Accepted {
            run_id,
            key: key.clone(),
            tenant: tenant.clone(),
            timeout_ms,
            script_hash: jash_io::fnv1a(script.as_bytes()),
            script: script.clone(),
        });
        if append.is_err() {
            // Can't make the durability promise — shed instead of
            // admitting at-most-once work under an exactly-once flag.
            // The run id is burned, not reused: the failed append may
            // still have persisted a full line, and a best-effort Done
            // closes it against a restart re-executing a run whose
            // client heard `Rejected`.
            let _ = ledger.append(&LedgerRecord::Done {
                run_id,
                status: 1,
                aborted: Some("admission ledger write failed".to_string()),
            });
            if probe {
                account_mut(&mut gate, &shared.cfg, &tenant).probing = false;
            }
            gate.stats.rejected_overload += 1;
            reject_with(
                reject::OVERLOADED,
                "admission ledger unavailable".to_string(),
                &gate,
                &mut conn,
            );
            return;
        }
    }
    if !key.is_empty() {
        gate.keys.insert(key.clone(), run_id);
    }
    // Accepted is written under the lock so no later frame for this run
    // can be ordered before it.
    if proto::write_frame(&mut conn, &Frame::Accepted { run_id }).is_err() {
        // Client vanished between connect and accept. The admission is
        // already ledgered, so close it out: without a terminal record a
        // restart would execute a run whose client never heard
        // `Accepted`.
        if let Some(ledger) = &gate.ledger {
            let _ = ledger.append(&LedgerRecord::Done {
                run_id,
                status: 1,
                aborted: Some("client vanished before accept".to_string()),
            });
        }
        if gate.keys.get(&key) == Some(&run_id) {
            gate.keys.remove(&key);
        }
        if probe {
            account_mut(&mut gate, &shared.cfg, &tenant).probing = false;
        }
        return;
    }
    gate.stats.accepted += 1;
    let job = Job {
        run_id,
        tenant: tenant.clone(),
        script,
        timeout: (timeout_ms > 0).then(|| Duration::from_millis(timeout_ms)),
        fault,
        key,
        conn,
        probe,
    };
    gate.sched.push(&tenant, job, Instant::now());
    shared.work.notify_one();
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let popped = {
            let mut gate = shared.gate.lock().unwrap();
            loop {
                // DRR dispatch: `None` means nothing runnable — either
                // empty queues or every queued tenant at its concurrency
                // cap; a completion or push wakes us either way.
                if let Some(p) = gate.sched.pop(Instant::now()) {
                    gate.active += 1;
                    break p;
                }
                if gate.draining {
                    return;
                }
                gate = shared.work.wait(gate).unwrap();
            }
        };
        let run_id = popped.job.run_id;
        let tenant = popped.tenant;
        run_job(shared, popped.job, popped.waited);
        let mut gate = shared.gate.lock().unwrap();
        gate.active -= 1;
        gate.sched.complete(&tenant);
        gate.live.remove(&run_id);
        gate.stats.completed += 1;
        // The retired run may have freed a capped tenant's only slot:
        // wake a worker to re-evaluate dispatch, and drain's idle wait.
        shared.work.notify_one();
        shared.idle.notify_all();
    }
}

/// Executes one admitted run, fully isolated: own engine, journal,
/// tracer, cancel token; shared fs/CPU/disk, metered per tenant.
fn run_job(shared: &Arc<Shared>, job: Job, waited: Duration) {
    let cfg = &shared.cfg;
    let token = CancelToken::new();
    // The tenant's sub-account: CPU charges route through the
    // sub-model, disk bytes through the metered fs wrapper, and the
    // bucket settlement here prices the run under everything the
    // tenant has consumed so far.
    let (tenant_cpu, tenant_meter, tenant_pressure) = {
        let mut gate = shared.gate.lock().unwrap();
        gate.live.insert(job.run_id, token.clone());
        let acct = account_mut(&mut gate, cfg, &job.tenant);
        let pressure = acct.settle(Instant::now());
        (acct.cpu.clone(), Arc::clone(&acct.meter), pressure)
    };

    // Deadline: the submission's limit, else the daemon's default. The
    // guard disarms on drop, so a finished run retires its watcher.
    let limit = job.timeout.or(cfg.default_timeout);
    let _deadline = limit.map(|d| DeadlineGuard::arm(&token, d));

    // Disconnect detection: the client sends nothing after Submit, so
    // any read completing with 0 bytes means the peer closed. The
    // monitor polls with a short read timeout and stands down once the
    // run is done. *Keyed* runs skip the monitor entirely: the key is
    // the client's declared intent to return (reconnect-and-attach or
    // replay), so a vanished client must not cancel the work.
    let done = Arc::new(AtomicBool::new(false));
    if let (true, Ok(reader)) = (job.key.is_empty(), job.conn.try_clone()) {
        let done = Arc::clone(&done);
        let token = token.clone();
        let shared = Arc::clone(shared);
        std::thread::spawn(move || {
            let mut reader = reader;
            let _ = reader.set_read_timeout(Some(Duration::from_millis(50)));
            let mut scratch = [0u8; 64];
            loop {
                if done.load(Ordering::SeqCst) {
                    return;
                }
                match io::Read::read(&mut reader, &mut scratch) {
                    Ok(0) => {
                        if !done.load(Ordering::SeqCst) {
                            token.cancel("client disconnected");
                            shared.gate.lock().unwrap().stats.disconnect_cancels += 1;
                        }
                        return;
                    }
                    Ok(_) => {} // Extra client bytes are ignored.
                    Err(e)
                        if matches!(
                            e.kind(),
                            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                        ) => {}
                    Err(_) => {
                        if !done.load(Ordering::SeqCst) {
                            token.cancel("client disconnected");
                            shared.gate.lock().unwrap().stats.disconnect_cancels += 1;
                        }
                        return;
                    }
                }
            }
        });
    }

    // Per-run filesystem: the shared handle metered into the tenant's
    // account, optionally wrapped with the submission's injected faults
    // (test daemons only). Metering sits *inside* the fault layer so a
    // tenant is charged for bytes actually moved, not bytes faulted.
    let mut run_fs: FsHandle = Arc::new(MeteredFs::new(
        Arc::clone(&cfg.fs),
        Arc::clone(&tenant_meter),
    ));
    if let (Some(injector), Some(spec)) = (&cfg.fault_injector, &job.fault) {
        match injector(spec, Arc::clone(&run_fs), &token) {
            Some(wrapped) => run_fs = wrapped,
            None => {
                done.store(true, Ordering::SeqCst);
                let mut conn = job.conn;
                let _ = proto::write_frame(
                    &mut conn,
                    &Frame::Rejected {
                        code: reject::MALFORMED,
                        active: 0,
                        queued: 0,
                        reason: format!("unparseable fault spec: {spec}"),
                    },
                );
                return;
            }
        }
    }

    // The isolated engine, planned under the *current* aggregate
    // pressure: a busy daemon raises every new run's widening bar.
    let mut shell = Jash::new(cfg.engine, cfg.machine);
    shell.cancel = Some(token.clone());
    shell.durable = cfg.durable;
    if cfg.eager {
        shell.planner.min_speedup = 0.0;
        shell.planner.force_width = Some(4);
    }
    // The run is planned under the worse of the machine's aggregate
    // pressure and the tenant's own fair-share overdraft: a greedy
    // tenant narrows its *own* plans first.
    shell.planner = shell
        .planner
        .under_pressure(shared.pressure().max(tenant_pressure));
    if cfg.trace_root.is_some() {
        shell.tracer = Some(Arc::new(Tracer::new()));
        shell.run_attrs = vec![
            ("run_id".to_string(), job.run_id.into()),
            ("tenant".to_string(), job.tenant.clone().into()),
            ("queue_wait_ms".to_string(), (waited.as_millis() as u64).into()),
            ("tenant_pressure".to_string(), tenant_pressure.into()),
        ];
        if job.probe {
            shell
                .run_attrs
                .push(("quarantine_probe".to_string(), true.into()));
        }
    }
    if let Some(root) = &cfg.journal_root {
        if cfg.engine == Engine::JashJit {
            let dir = format!("{root}/run-{}", job.run_id);
            let _ = shell.attach_journal(&run_fs, &dir, false);
        }
    }

    let mut state = ShellState::new(Arc::clone(&run_fs));
    // The tenant's CPU sub-model (when a machine model exists): global
    // contention unchanged, charges attributed to this tenant's meter.
    state.cpu = tenant_cpu.or_else(|| cfg.cpu.clone());
    state.shell_name = format!("jash-serve:{}", job.run_id);

    // Panic isolation: a run that blows up inside the engine must not
    // take the worker (or the daemon) with it.
    let script = job.script;
    let outcome = catch_unwind(AssertUnwindSafe(|| shell.run_script(&mut state, &script)));

    let (status, stdout, stderr, panicked) = match outcome {
        Ok(Ok(r)) => (r.status, r.stdout, r.stderr, false),
        Ok(Err(e)) => (2, Vec::new(), format!("jash: {e}\n").into_bytes(), false),
        Err(panic) => {
            let what = panic
                .downcast_ref::<&str>()
                .map(ToString::to_string)
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic".to_string());
            (
                125,
                Vec::new(),
                format!("jash: run panicked: {what}\n").into_bytes(),
                true,
            )
        }
    };
    let aborted = token.reason();
    let deadline = aborted
        .as_deref()
        .is_some_and(|r| jash_io::deadline_code(r).is_some());
    {
        let mut gate = shared.gate.lock().unwrap();
        if panicked {
            gate.stats.panics_isolated += 1;
        }
        if deadline {
            gate.stats.deadline_aborts += 1;
        }
        // Tenant health: panics, deadline overruns, and plain nonzero
        // exits count toward quarantine. Externally-caused aborts —
        // drain (shutdown) and client disconnects — do not: a tenant
        // must not be exiled for the daemon's own lifecycle.
        let failed = panicked || deadline || (status != 0 && aborted.is_none());
        let clean = !panicked && status == 0 && aborted.is_none();
        if cfg.quarantine_failures > 0 {
            if job.probe {
                account_mut(&mut gate, cfg, &job.tenant).probing = false;
            }
            if failed {
                account_mut(&mut gate, cfg, &job.tenant).failures += 1;
                if gate.breaker.record_failure(&job.tenant) {
                    gate.stats.tenants_quarantined += 1;
                    account_mut(&mut gate, cfg, &job.tenant).quarantines += 1;
                }
            } else if clean {
                gate.breaker.record_success(&job.tenant);
            }
        }
        // Debit what the run consumed now, so the tenant's *next* run
        // is planned under the pressure this one created.
        let _ = account_mut(&mut gate, cfg, &job.tenant).settle(Instant::now());
    }

    // Flush the run's trace through the *unwrapped* shared fs — the
    // observability record must survive the very faults it documents.
    // This runs on every exit path (clean, aborted, panicked): a drain
    // must never truncate a run's spans.
    if let (Some(root), Some(tracer)) = (&cfg.trace_root, &shell.tracer) {
        let path = format!("{root}/run-{}.jsonl", job.run_id);
        let _ = jash_io::fs::write_file(cfg.fs.as_ref(), &path, tracer.to_jsonl().as_bytes());
    }

    done.store(true, Ordering::SeqCst);
    let term = Arc::new(Terminal {
        status,
        aborted: aborted.clone(),
        stdout,
        stderr,
    });

    // Exactly-once, step 2: result blobs land before the terminal
    // record, the terminal record before any client hears `Done`. A
    // crash between blobs and record leaves the run an orphan (recovery
    // finalizes it again — resumed, not re-executed); a crash after the
    // record replays this exact result forever.
    if !job.key.is_empty() {
        if let Some(root) = &cfg.journal_root {
            let _ = jash_io::ledger::write_result_blobs(
                cfg.fs.as_ref(),
                root,
                job.run_id,
                &term.stdout,
                &term.stderr,
                cfg.durable,
            );
        }
    }
    let waiters = {
        let mut gate = shared.gate.lock().unwrap();
        if let Some(ledger) = &gate.ledger {
            let _ = ledger.append(&LedgerRecord::Done {
                run_id: job.run_id,
                status,
                aborted: aborted.clone(),
            });
        }
        if !job.key.is_empty() {
            gate.cache_result(cfg, job.run_id, &job.key, Arc::clone(&term));
        }
        gate.waiters.remove(&job.run_id).unwrap_or_default()
    };

    // A cleanly-retired ledgered run no longer needs its journal scope —
    // the ledger and blobs are its record now. Aborted runs keep theirs
    // (the journal is the resume evidence a restart reads).
    if aborted.is_none() && cfg.engine == Engine::JashJit {
        if let Some(root) = &cfg.journal_root {
            remove_tree(cfg.fs.as_ref(), &format!("{root}/run-{}", job.run_id));
        }
    }

    // Stream the results to the primary client and every attached
    // waiter. The client may be gone (that may be *why* the run
    // aborted); send errors are unremarkable — except stalls, which are
    // the slow-loris signal.
    let mut conn = job.conn;
    let mut stalls = 0u64;
    stalls += u64::from(send_terminal_frames(&mut conn, None, &term));
    for mut w in waiters {
        stalls += u64::from(send_terminal_frames(&mut w, Some(job.run_id), &term));
    }
    if stalls > 0 {
        shared.gate.lock().unwrap().stats.write_stalls += stalls;
    }
}

/// Streams a run's terminal frames — optionally preceded by `Attach`
/// (for waiters and cache replays) — and reports whether any write
/// stalled out against a client that stopped reading.
fn send_terminal_frames(conn: &mut UnixStream, attach: Option<u64>, term: &Terminal) -> bool {
    let mut frames: Vec<Frame> = Vec::new();
    if let Some(run_id) = attach {
        frames.push(Frame::Attach { run_id });
    }
    if !term.stdout.is_empty() {
        frames.push(Frame::Stdout(term.stdout.clone()));
    }
    if !term.stderr.is_empty() {
        frames.push(Frame::Stderr(term.stderr.clone()));
    }
    frames.push(Frame::Done {
        status: term.status,
        aborted: term.aborted.clone(),
    });
    let mut stalled = false;
    for f in &frames {
        if let Err(e) = proto::write_frame(conn, f) {
            stalled = matches!(
                e.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
            );
            break;
        }
    }
    let _ = conn.shutdown(std::net::Shutdown::Both);
    stalled
}

/// Parses the wire-level fault specs the `jash serve --test-faults`
/// daemon accepts, mirroring the crash/fault sweeps' vocabulary:
///
/// * `read-error:PATH:OFFSET` — sticky read error at a byte offset
/// * `transient-read:PATH:OFFSET` — same, but fires once (retryable)
/// * `stall-read:PATH:MILLIS` — first read stalls (cancellable)
/// * `stall-write:PATH:OFFSET:MILLIS` — writes stall at a byte offset
///   (cancellable) — the crash drill's kill window
/// * `open-error:PATH` — open fails with permission denied
/// * `truncate:PATH:OFFSET` — reads see early EOF
///
/// Returns `None` for anything else — the daemon answers with a
/// structured rejection rather than guessing.
pub fn parse_fault_spec(spec: &str) -> Option<jash_io::FaultPlan> {
    let mut parts = spec.split(':');
    let kind = parts.next()?;
    let plan = jash_io::FaultPlan::new();
    match kind {
        "read-error" => {
            let path = parts.next()?;
            let offset: u64 = parts.next()?.parse().ok()?;
            Some(plan.read_error_at(path, offset, "injected: disk surface error"))
        }
        "transient-read" => {
            let path = parts.next()?;
            let offset: u64 = parts.next()?.parse().ok()?;
            Some(plan.rule(jash_io::fault::FaultRule {
                path: Some(path.to_string()),
                op: jash_io::fault::FaultOp::Read,
                trigger: jash_io::fault::Trigger::AtByte(offset),
                kind: jash_io::fault::FaultKind::Error {
                    kind: std::io::ErrorKind::Other,
                    msg: "injected: transient controller reset".to_string(),
                },
                once: true,
            }))
        }
        "stall-read" => {
            let path = parts.next()?;
            let ms: u64 = parts.next()?.parse().ok()?;
            Some(plan.stall_reads(path, Duration::from_millis(ms)))
        }
        "stall-write" => {
            let path = parts.next()?;
            let offset: u64 = parts.next()?.parse().ok()?;
            let ms: u64 = parts.next()?.parse().ok()?;
            Some(plan.stall_writes_at(path, offset, Duration::from_millis(ms)))
        }
        "open-error" => {
            let path = parts.next()?;
            Some(plan.open_error(path, "permission denied"))
        }
        "truncate" => {
            let path = parts.next()?;
            let offset: u64 = parts.next()?.parse().ok()?;
            Some(plan.truncate_at(path, offset))
        }
        _ => None,
    }
}

/// The [`FaultInjector`] for [`parse_fault_spec`]'s vocabulary: wraps
/// the shared fs in a [`jash_io::FaultFs`] wired to the run's cancel
/// token, so injected stalls abort with the run instead of outliving it.
pub fn spec_fault_injector() -> FaultInjector {
    Arc::new(|spec: &str, fs: FsHandle, token: &CancelToken| {
        parse_fault_spec(spec).map(|plan| {
            jash_io::FaultFs::wrap_with_cancel(fs, plan, token.clone()) as FsHandle
        })
    })
}
