//! The `jash serve` daemon: a bounded worker pool multiplexing isolated
//! shell runs over one shared machine.
//!
//! Robustness decisions, in the order a submission meets them:
//!
//! * **Admission control** — per-tenant bounded queues under one global
//!   bound, scheduled by weighted deficit round-robin
//!   ([`crate::sched::Scheduler`]). Every shed answers with a
//!   structured [`Frame::Rejected`] (code, active, queued, reason) and
//!   closes the connection: the daemon *sheds* load, it never stalls
//!   accepting it. The code says exactly why: `OVERLOADED` (machine
//!   full — retry later), `QUOTA` (your own queue full — drain your
//!   backlog), `QUARANTINED` (your runs keep failing — fix them),
//!   `DRAINING` (find another server).
//! * **Noisy-neighbor quarantine** — a tenant-keyed
//!   [`CircuitBreaker`] (the same open/half-open/closed machine the
//!   JIT uses on region fingerprints) counts each tenant's consecutive
//!   failed/panicked/deadlined runs. At the threshold the tenant is
//!   quarantined: submissions bounce with `QUARANTINED` for a cooldown
//!   measured in admission ticks, after which exactly one probe run is
//!   admitted half-open — success lifts the quarantine, failure
//!   re-arms it. Drain aborts and client disconnects are *not*
//!   failures; a tenant must not be exiled for the daemon's shutdown.
//! * **Isolation** — every admitted run gets its own [`Jash`] engine,
//!   journal scope, tracer, and [`CancelToken`]. What runs *share* is
//!   the machine: one filesystem, one [`CpuModel`] token bucket, one
//!   disk model — so the planner's resource math sees aggregate load.
//! * **Per-tenant attribution** — each run's filesystem is wrapped in a
//!   [`MeteredFs`] and its CPU charges flow through a
//!   [`CpuModel::sub_model`], tallying a per-tenant [`UsageMeter`]. A
//!   [`FairShareBucket`] converts the tally into tenant pressure:
//!   heavy tenants overdraw their weight-share of the machine and see
//!   narrower plans *before* light tenants feel anything.
//! * **Cross-run pressure** — before each run is planned, the daemon
//!   reads [`jash_core::cross_run_pressure`] (worker occupancy + queue
//!   backlog + shared-model saturation), takes the max with the
//!   tenant's own bucket pressure, and tightens the run's
//!   [`PlannerOptions::under_pressure`]: a busy daemon stops widening
//!   regions into its own other tenants, and a greedy tenant stops
//!   widening into anyone.
//! * **Deadlines** — a per-run [`DeadlineGuard`] cancels the run's token
//!   with the `deadline:` reason; the session layer aborts the region,
//!   journals `RegionAborted`, and surfaces exit 124.
//! * **Disconnect detection** — a monitor thread reads the client's half
//!   of the socket; EOF before `Done` cancels the orphaned run and frees
//!   its worker slot for queued submissions.
//! * **Panic isolation** — the run executes under `catch_unwind`
//!   (defense in depth over the executor's own per-node isolation): a
//!   panicking run reports status 125 to its client and the daemon keeps
//!   serving.
//! * **Graceful drain** — [`Server::drain`] stops admission, sheds the
//!   queue with `DRAINING` rejections, cancels in-flight runs with the
//!   SIGTERM shutdown reason (journaled, resumable, exit 143), and waits
//!   out a bounded drain budget. Stragglers are *reported*, never
//!   waited on forever — the budget is the contract.

use crate::proto::{self, reject, Frame};
use crate::sched::{Scheduler, TenantPolicy, TenantSnapshot};
use jash_core::{
    cross_run_pressure, resource_pressure, BreakerConfig, CircuitBreaker, Engine, Jash, Route,
};
use jash_cost::MachineProfile;
use jash_expand::ShellState;
use jash_io::{
    CancelToken, CpuModel, DeadlineGuard, DiskModel, FairShareBucket, FsHandle, MeteredFs,
    UsageMeter,
};
use jash_trace::Tracer;
use std::collections::HashMap;
use std::io;
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Hook for wrapping a run's filesystem with injected faults. Called
/// with the submission's fault spec, the shared filesystem, and the
/// run's cancel token (so stall-style faults stay cancellable); returns
/// the wrapped handle, or `None` when the spec does not parse.
pub type FaultInjector =
    Arc<dyn Fn(&str, FsHandle, &CancelToken) -> Option<FsHandle> + Send + Sync>;

/// Daemon configuration.
pub struct ServerConfig {
    /// Unix socket path (host filesystem).
    pub socket: PathBuf,
    /// The shared filesystem every run executes against.
    pub fs: FsHandle,
    /// Machine profile handed to every run's planner.
    pub machine: MachineProfile,
    /// Engine for submitted runs.
    pub engine: Engine,
    /// Worker pool size (concurrent runs).
    pub workers: usize,
    /// Admission queue bound; submissions past it are rejected.
    pub queue_cap: usize,
    /// Deadline imposed on runs whose submission asked for none.
    pub default_timeout: Option<Duration>,
    /// How long [`Server::drain`] waits for in-flight runs to abort.
    pub drain_budget: Duration,
    /// Virtual directory for per-run journals (`<root>/run-<id>`), or
    /// `None` to disable journaling.
    pub journal_root: Option<String>,
    /// Virtual directory for per-run schema-v1 traces
    /// (`<root>/run-<id>.jsonl`), or `None` to disable tracing.
    pub trace_root: Option<String>,
    /// Whether run commits use the full durability protocol.
    pub durable: bool,
    /// Test knob: plan eagerly (`min_speedup = 0`, width 4) so small
    /// inputs still exercise the optimized path.
    pub eager: bool,
    /// Shared CPU token bucket, charged by every run.
    pub cpu: Option<Arc<CpuModel>>,
    /// Shared disk model, read by the pressure signal.
    pub disk: Option<Arc<DiskModel>>,
    /// Fault-injection hook; `None` rejects submissions carrying fault
    /// specs (production posture).
    pub fault_injector: Option<FaultInjector>,
    /// Policy for tenants not listed in `tenants`.
    pub tenant_default: TenantPolicy,
    /// Per-tenant policy overrides (weight, concurrency cap, queue cap).
    pub tenants: Vec<(String, TenantPolicy)>,
    /// Consecutive failed runs that quarantine a tenant; `0` disables
    /// the tenant breaker entirely.
    pub quarantine_failures: u32,
    /// Quarantine cooldown in admission ticks (one tick per well-formed
    /// submission, so a busy daemon ages quarantines quickly and an
    /// idle one holds them — deterministic either way).
    pub quarantine_cooldown: u64,
    /// Per-tenant burst allowance in modeled resource-seconds: how far
    /// a tenant can run ahead of its sustained share before its bucket
    /// pressure starts rising.
    pub tenant_burst_secs: f64,
    /// Sustained entitlement in modeled resource-seconds per wall
    /// second *per unit weight*. Scale to `cores / expected-tenants`
    /// for a machine-proportional split.
    pub tenant_share_secs: f64,
}

impl ServerConfig {
    /// A config with production-shaped defaults: 4 workers, a queue of
    /// 8, a 5-second drain budget, JIT engine, durable commits, no
    /// fault injection.
    pub fn new(socket: impl Into<PathBuf>, fs: FsHandle) -> ServerConfig {
        ServerConfig {
            socket: socket.into(),
            fs,
            machine: MachineProfile::laptop(),
            engine: Engine::JashJit,
            workers: 4,
            queue_cap: 8,
            default_timeout: None,
            drain_budget: Duration::from_secs(5),
            journal_root: None,
            trace_root: None,
            durable: true,
            eager: false,
            cpu: None,
            disk: None,
            fault_injector: None,
            tenant_default: TenantPolicy::default(),
            tenants: Vec::new(),
            quarantine_failures: 5,
            quarantine_cooldown: 16,
            tenant_burst_secs: 2.0,
            tenant_share_secs: 0.5,
        }
    }
}

/// Daemon-lifetime counters, readable while running and reported by
/// [`DrainReport`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Submissions admitted (Accepted frame sent).
    pub accepted: u64,
    /// Runs that finished and sent their Done frame.
    pub completed: u64,
    /// Submissions shed because the queue was full.
    pub rejected_overload: u64,
    /// Submissions shed because the daemon was draining.
    pub rejected_draining: u64,
    /// Connections dropped for unparseable submissions.
    pub rejected_malformed: u64,
    /// Submissions carrying fault specs while injection was disabled.
    pub rejected_faults_disabled: u64,
    /// Submissions shed because the *tenant's* queue was at its cap.
    pub rejected_quota: u64,
    /// Submissions refused because the tenant was quarantined.
    pub rejected_quarantined: u64,
    /// Times any tenant's breaker newly opened (quarantine onsets).
    pub tenants_quarantined: u64,
    /// Runs aborted by their wall-clock deadline.
    pub deadline_aborts: u64,
    /// Runs cancelled because their client vanished mid-run.
    pub disconnect_cancels: u64,
    /// Runs whose engine panicked and was contained.
    pub panics_isolated: u64,
}

/// What [`Server::drain`] observed.
#[derive(Debug, Clone)]
pub struct DrainReport {
    /// Runs in flight when drain began (each was cancelled with the
    /// SIGTERM shutdown reason and given the budget to abort cleanly).
    pub in_flight: usize,
    /// Queued submissions shed with `DRAINING` rejections.
    pub shed: usize,
    /// Runs still executing when the budget expired (the daemon exits
    /// anyway; a wedged run must not hold the process hostage).
    pub stragglers: usize,
    /// Whether every run retired within the budget.
    pub within_budget: bool,
    /// Final counters.
    pub stats: ServeStats,
    /// Per-tenant accounting rows, sorted by tenant name.
    pub tenants: Vec<TenantReport>,
}

/// One tenant's lifetime accounting, merged from the scheduler, the
/// breaker, and the resource sub-account.
#[derive(Debug, Clone)]
pub struct TenantReport {
    /// Tenant name.
    pub tenant: String,
    /// Configured (or default) service weight.
    pub weight: f64,
    /// Jobs queued right now.
    pub queued: usize,
    /// Runs executing right now.
    pub active: usize,
    /// Runs dispatched over the daemon's lifetime.
    pub dispatched: u64,
    /// Runs retired (any exit status).
    pub completed: u64,
    /// Runs that counted as failures toward quarantine.
    pub failures: u64,
    /// Times this tenant's breaker opened.
    pub quarantines: u64,
    /// Whether the tenant is quarantined (open or half-open) right now.
    pub quarantined_now: bool,
    /// Submissions bounced for a full tenant queue.
    pub rejected_quota: u64,
    /// Submissions bounced while quarantined.
    pub rejected_quarantined: u64,
    /// Longest queue wait any of this tenant's jobs saw, in ms.
    pub max_queue_wait_ms: u64,
    /// Modeled CPU seconds attributed to this tenant.
    pub cpu_seconds: f64,
    /// Disk bytes attributed to this tenant.
    pub disk_bytes: u64,
    /// The tenant's fair-share bucket pressure at snapshot time.
    pub pressure: f64,
}

struct Job {
    run_id: u64,
    tenant: String,
    script: String,
    timeout: Option<Duration>,
    fault: Option<String>,
    conn: UnixStream,
    /// This run is a quarantined tenant's half-open probe: its outcome
    /// alone decides whether the quarantine lifts.
    probe: bool,
}

/// A tenant's resource sub-account: the meter fed by the run-side
/// wrappers, the bucket converting it to pressure, and the breaker-probe
/// latch.
struct TenantAccount {
    meter: Arc<UsageMeter>,
    bucket: FairShareBucket,
    cpu: Option<Arc<CpuModel>>,
    /// A half-open probe run is in flight; further submissions keep
    /// bouncing until it reports.
    probing: bool,
    failures: u64,
    quarantines: u64,
    rejected_quota: u64,
    rejected_quarantined: u64,
}

struct Gate {
    draining: bool,
    active: usize,
    sched: Scheduler<Job>,
    breaker: CircuitBreaker<String>,
    accounts: HashMap<String, TenantAccount>,
    live: HashMap<u64, CancelToken>,
    next_run: u64,
    stats: ServeStats,
}

/// Looks up (or lazily creates) `tenant`'s resource sub-account.
fn account_mut<'a>(gate: &'a mut Gate, cfg: &ServerConfig, tenant: &str) -> &'a mut TenantAccount {
    if !gate.accounts.contains_key(tenant) {
        let meter = UsageMeter::new();
        let weight = gate.sched.policy(tenant).weight.clamp(0.01, 100.0);
        // Disk bytes convert to resource-seconds at the modeled disk's
        // sequential read rate (or a 128 MiB/s stand-in without one).
        let disk_rate = cfg
            .disk
            .as_ref()
            .map(|d| d.profile().read_mbps * 1024.0 * 1024.0)
            .unwrap_or(128.0 * 1024.0 * 1024.0);
        let bucket = FairShareBucket::new(
            cfg.tenant_burst_secs,
            weight * cfg.tenant_share_secs,
            disk_rate,
            Instant::now(),
        );
        let cpu = cfg.cpu.as_ref().map(|c| c.sub_model(Arc::clone(&meter)));
        gate.accounts.insert(
            tenant.to_string(),
            TenantAccount {
                meter,
                bucket,
                cpu,
                probing: false,
                failures: 0,
                quarantines: 0,
                rejected_quota: 0,
                rejected_quarantined: 0,
            },
        );
    }
    gate.accounts.get_mut(tenant).expect("just inserted")
}

impl TenantAccount {
    fn settle(&self, now: Instant) -> f64 {
        self.bucket.settle(&self.meter, now)
    }
}

/// Merges scheduler snapshots, breaker state, and resource accounts
/// into per-tenant report rows.
fn tenant_reports(gate: &Gate) -> Vec<TenantReport> {
    let snapshots = gate.sched.snapshots();
    let mut seen: std::collections::HashSet<&str> =
        snapshots.iter().map(|s| s.tenant.as_str()).collect();
    let mut rows: Vec<TenantReport> = snapshots.iter().map(|s| tenant_row(gate, s)).collect();
    // Accounts can exist for tenants the scheduler never queued (e.g.
    // every submission bounced); report them too.
    for name in gate.accounts.keys() {
        if seen.insert(name) {
            let empty = TenantSnapshot {
                tenant: name.clone(),
                policy: gate.sched.policy(name),
                queued: 0,
                active: 0,
                dispatched: 0,
                completed: 0,
                max_wait: Duration::ZERO,
            };
            rows.push(tenant_row(gate, &empty));
        }
    }
    rows.sort_by(|a, b| a.tenant.cmp(&b.tenant));
    rows
}

fn tenant_row(gate: &Gate, snap: &TenantSnapshot) -> TenantReport {
    let acct = gate.accounts.get(&snap.tenant);
    TenantReport {
        tenant: snap.tenant.clone(),
        weight: snap.policy.weight,
        queued: snap.queued,
        active: snap.active,
        dispatched: snap.dispatched,
        completed: snap.completed,
        failures: acct.map_or(0, |a| a.failures),
        quarantines: acct.map_or(0, |a| a.quarantines),
        quarantined_now: gate.breaker.is_open(&snap.tenant),
        rejected_quota: acct.map_or(0, |a| a.rejected_quota),
        rejected_quarantined: acct.map_or(0, |a| a.rejected_quarantined),
        max_queue_wait_ms: snap.max_wait.as_millis() as u64,
        cpu_seconds: acct.map_or(0.0, |a| a.meter.cpu_seconds()),
        disk_bytes: acct.map_or(0, |a| a.meter.disk_bytes()),
        pressure: acct.map_or(0.0, |a| a.bucket.pressure()),
    }
}

struct Shared {
    cfg: ServerConfig,
    gate: Mutex<Gate>,
    /// Workers park here waiting for queued jobs.
    work: Condvar,
    /// Drain parks here waiting for `active` to reach zero.
    idle: Condvar,
    started: Instant,
}

/// A running daemon. Create with [`Server::start`], stop with
/// [`Server::drain`].
pub struct Server {
    shared: Arc<Shared>,
    accept: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds the socket and starts the accept loop and worker pool.
    pub fn start(cfg: ServerConfig) -> io::Result<Server> {
        // A stale socket file from a dead daemon refuses the bind.
        let _ = std::fs::remove_file(&cfg.socket);
        let listener = UnixListener::bind(&cfg.socket)?;
        // Nonblocking accept + short poll, so drain can stop the loop
        // without a wake-up connection or platform-specific tricks.
        listener.set_nonblocking(true)?;
        let mut sched = Scheduler::new(cfg.tenant_default);
        for (name, policy) in &cfg.tenants {
            sched.set_policy(name, *policy);
        }
        let breaker = CircuitBreaker::new(BreakerConfig {
            failure_threshold: cfg.quarantine_failures.max(1),
            cooldown_regions: cfg.quarantine_cooldown,
        });
        let gate = Gate {
            draining: false,
            active: 0,
            sched,
            breaker,
            accounts: HashMap::new(),
            live: HashMap::new(),
            next_run: 0,
            stats: ServeStats::default(),
        };
        let shared = Arc::new(Shared {
            cfg,
            gate: Mutex::new(gate),
            work: Condvar::new(),
            idle: Condvar::new(),
            started: Instant::now(),
        });
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&shared, &listener))
        };
        let workers = (0..shared.cfg.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Ok(Server {
            shared,
            accept: Some(accept),
            workers,
        })
    }

    /// The socket path clients connect to.
    pub fn socket(&self) -> &PathBuf {
        &self.shared.cfg.socket
    }

    /// A snapshot of the daemon counters.
    pub fn stats(&self) -> ServeStats {
        self.shared.gate.lock().unwrap().stats.clone()
    }

    /// `(active, queued)` right now — the admission state tests and
    /// operators poll to sequence against the worker pool.
    pub fn load(&self) -> (usize, usize) {
        let gate = self.shared.gate.lock().unwrap();
        (gate.active, gate.sched.queued_total())
    }

    /// Per-tenant accounting rows (scheduling, quarantine, resource
    /// attribution), sorted by tenant name.
    pub fn tenants(&self) -> Vec<TenantReport> {
        tenant_reports(&self.shared.gate.lock().unwrap())
    }

    /// The current cross-run pressure reading, as the next admitted
    /// run's planner would see it.
    pub fn pressure(&self) -> f64 {
        self.shared.pressure()
    }

    /// Graceful drain: stop admitting, shed the queue, cancel in-flight
    /// runs with the SIGTERM shutdown reason, and wait out the budget.
    ///
    /// Never blocks past `drain_budget` (plus scheduling noise): a run
    /// that ignores its cancel token is reported as a straggler, and the
    /// caller is expected to exit the process regardless.
    pub fn drain(mut self) -> DrainReport {
        let shared = Arc::clone(&self.shared);
        let budget = shared.cfg.drain_budget;
        let (in_flight, shed) = {
            let mut gate = shared.gate.lock().unwrap();
            gate.draining = true;
            let shed: Vec<(String, Job)> = gate.sched.drain_queues();
            for token in gate.live.values() {
                token.cancel(jash_core::shutdown_reason(15));
            }
            let in_flight = gate.active;
            gate.stats.rejected_draining += shed.len() as u64;
            // Wake parked workers so they observe `draining` and exit.
            self.shared.work.notify_all();
            (in_flight, shed)
        };
        let shed_count = shed.len();
        for (_tenant, job) in shed {
            let mut conn = job.conn;
            let (active, queued) = (in_flight as u32, 0);
            let _ = proto::write_frame(
                &mut conn,
                &Frame::Rejected {
                    code: reject::DRAINING,
                    active,
                    queued,
                    reason: "daemon draining (SIGTERM): submission shed".to_string(),
                },
            );
        }
        // Wait for in-flight runs to retire, bounded by the budget.
        let deadline = Instant::now() + budget;
        let stragglers = {
            let mut gate = shared.gate.lock().unwrap();
            loop {
                if gate.active == 0 {
                    break 0;
                }
                let now = Instant::now();
                if now >= deadline {
                    break gate.active;
                }
                let (g, _timeout) = shared.idle.wait_timeout(gate, deadline - now).unwrap();
                gate = g;
            }
        };
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if stragglers == 0 {
            for h in self.workers.drain(..) {
                let _ = h.join();
            }
        } else {
            // Wedged runs keep their (detached) threads; the process is
            // about to exit and must not inherit their fate.
            self.workers.clear();
        }
        let _ = std::fs::remove_file(&shared.cfg.socket);
        let (stats, tenants) = {
            let gate = shared.gate.lock().unwrap();
            (gate.stats.clone(), tenant_reports(&gate))
        };
        DrainReport {
            in_flight,
            shed: shed_count,
            stragglers,
            within_budget: stragglers == 0,
            stats,
            tenants,
        }
    }
}

impl Shared {
    fn pressure(&self) -> f64 {
        let (active, queued) = {
            let gate = self.gate.lock().unwrap();
            (gate.active, gate.sched.queued_total())
        };
        let resources = resource_pressure(
            self.cfg.disk.as_ref(),
            self.cfg.cpu.as_ref(),
            self.started.elapsed().as_secs_f64(),
        );
        cross_run_pressure(
            active,
            self.cfg.workers,
            queued,
            self.cfg.queue_cap,
            resources,
        )
    }
}

fn accept_loop(shared: &Arc<Shared>, listener: &UnixListener) {
    loop {
        if shared.gate.lock().unwrap().draining {
            return;
        }
        match listener.accept() {
            Ok((conn, _addr)) => {
                let shared = Arc::clone(shared);
                // Intake runs off-thread: reading the submit frame from
                // a slow client must not block the accept loop.
                std::thread::spawn(move || intake(&shared, conn));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// Reads one submission and runs admission control. All rejection paths
/// answer with a structured frame before closing — shedding is visible,
/// stalling is forbidden.
fn intake(shared: &Arc<Shared>, mut conn: UnixStream) {
    // A client that connects and then wedges without submitting must not
    // pin the intake thread forever.
    let _ = conn.set_read_timeout(Some(Duration::from_secs(10)));
    let submit = match proto::read_frame(&mut conn) {
        Ok(Some(f @ Frame::Submit { .. })) => f,
        _ => {
            let mut gate = shared.gate.lock().unwrap();
            gate.stats.rejected_malformed += 1;
            let (active, queued) = (gate.active as u32, gate.sched.queued_total() as u32);
            drop(gate);
            let _ = proto::write_frame(
                &mut conn,
                &Frame::Rejected {
                    code: reject::MALFORMED,
                    active,
                    queued,
                    reason: "expected a Submit frame".to_string(),
                },
            );
            return;
        }
    };
    let _ = conn.set_read_timeout(None);
    let Frame::Submit {
        script,
        timeout_ms,
        tenant,
        fault,
    } = submit
    else {
        unreachable!("matched Submit above");
    };

    let mut gate = shared.gate.lock().unwrap();
    let reject_with = |code: u8, reason: String, gate: &Gate, conn: &mut UnixStream| {
        let frame = Frame::Rejected {
            code,
            active: gate.active as u32,
            queued: gate.sched.queued_total() as u32,
            reason,
        };
        let _ = proto::write_frame(conn, &frame);
    };
    if gate.draining {
        gate.stats.rejected_draining += 1;
        reject_with(
            reject::DRAINING,
            "daemon draining (SIGTERM): not admitting".to_string(),
            &gate,
            &mut conn,
        );
        return;
    }
    if fault.is_some() && shared.cfg.fault_injector.is_none() {
        gate.stats.rejected_faults_disabled += 1;
        reject_with(
            reject::FAULTS_DISABLED,
            "fault injection not enabled on this daemon".to_string(),
            &gate,
            &mut conn,
        );
        return;
    }
    // One admission tick per well-formed submission: the quarantine
    // cooldown ages with daemon activity, never with wall time, so the
    // same submission sequence quarantines and paroles at the same
    // points on every run.
    let quarantine_on = shared.cfg.quarantine_failures > 0;
    let route = if quarantine_on {
        gate.breaker.tick();
        gate.breaker.route(&tenant)
    } else {
        Route::Try
    };
    if route == Route::Interpret
        || (route == Route::HalfOpenTrial
            && gate.accounts.get(&tenant).is_some_and(|a| a.probing))
    {
        gate.stats.rejected_quarantined += 1;
        account_mut(&mut gate, &shared.cfg, &tenant).rejected_quarantined += 1;
        let reason = if route == Route::Interpret {
            format!("tenant {tenant} quarantined: recent runs kept failing; cooling down")
        } else {
            format!("tenant {tenant} quarantined: half-open probe already in flight")
        };
        reject_with(reject::QUARANTINED, reason, &gate, &mut conn);
        return;
    }
    if gate.sched.queued_total() >= shared.cfg.queue_cap {
        gate.stats.rejected_overload += 1;
        reject_with(
            reject::OVERLOADED,
            format!(
                "admission queue full ({}/{}), {} active",
                gate.sched.queued_total(),
                shared.cfg.queue_cap,
                gate.active
            ),
            &gate,
            &mut conn,
        );
        return;
    }
    if let Some((depth, cap)) = gate.sched.quota_exceeded(&tenant) {
        gate.stats.rejected_quota += 1;
        account_mut(&mut gate, &shared.cfg, &tenant).rejected_quota += 1;
        reject_with(
            reject::QUOTA,
            format!("tenant {tenant} queue full ({depth}/{cap}): over per-tenant quota"),
            &gate,
            &mut conn,
        );
        return;
    }
    // Past every check: latch the probe only now, so a probe bounced by
    // OVERLOADED/QUOTA above does not wedge the half-open state.
    let probe = route == Route::HalfOpenTrial;
    if probe {
        account_mut(&mut gate, &shared.cfg, &tenant).probing = true;
    }
    gate.next_run += 1;
    let run_id = gate.next_run;
    // Accepted is written under the lock so no later frame for this run
    // can be ordered before it.
    if proto::write_frame(&mut conn, &Frame::Accepted { run_id }).is_err() {
        if probe {
            account_mut(&mut gate, &shared.cfg, &tenant).probing = false;
        }
        return; // Client vanished between connect and accept.
    }
    gate.stats.accepted += 1;
    let job = Job {
        run_id,
        tenant: tenant.clone(),
        script,
        timeout: (timeout_ms > 0).then(|| Duration::from_millis(timeout_ms)),
        fault,
        conn,
        probe,
    };
    gate.sched.push(&tenant, job, Instant::now());
    shared.work.notify_one();
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let popped = {
            let mut gate = shared.gate.lock().unwrap();
            loop {
                // DRR dispatch: `None` means nothing runnable — either
                // empty queues or every queued tenant at its concurrency
                // cap; a completion or push wakes us either way.
                if let Some(p) = gate.sched.pop(Instant::now()) {
                    gate.active += 1;
                    break p;
                }
                if gate.draining {
                    return;
                }
                gate = shared.work.wait(gate).unwrap();
            }
        };
        let run_id = popped.job.run_id;
        let tenant = popped.tenant;
        run_job(shared, popped.job, popped.waited);
        let mut gate = shared.gate.lock().unwrap();
        gate.active -= 1;
        gate.sched.complete(&tenant);
        gate.live.remove(&run_id);
        gate.stats.completed += 1;
        // The retired run may have freed a capped tenant's only slot:
        // wake a worker to re-evaluate dispatch, and drain's idle wait.
        shared.work.notify_one();
        shared.idle.notify_all();
    }
}

/// Executes one admitted run, fully isolated: own engine, journal,
/// tracer, cancel token; shared fs/CPU/disk, metered per tenant.
fn run_job(shared: &Arc<Shared>, job: Job, waited: Duration) {
    let cfg = &shared.cfg;
    let token = CancelToken::new();
    // The tenant's sub-account: CPU charges route through the
    // sub-model, disk bytes through the metered fs wrapper, and the
    // bucket settlement here prices the run under everything the
    // tenant has consumed so far.
    let (tenant_cpu, tenant_meter, tenant_pressure) = {
        let mut gate = shared.gate.lock().unwrap();
        gate.live.insert(job.run_id, token.clone());
        let acct = account_mut(&mut gate, cfg, &job.tenant);
        let pressure = acct.settle(Instant::now());
        (acct.cpu.clone(), Arc::clone(&acct.meter), pressure)
    };

    // Deadline: the submission's limit, else the daemon's default. The
    // guard disarms on drop, so a finished run retires its watcher.
    let limit = job.timeout.or(cfg.default_timeout);
    let _deadline = limit.map(|d| DeadlineGuard::arm(&token, d));

    // Disconnect detection: the client sends nothing after Submit, so
    // any read completing with 0 bytes means the peer closed. The
    // monitor polls with a short read timeout and stands down once the
    // run is done.
    let done = Arc::new(AtomicBool::new(false));
    if let Ok(reader) = job.conn.try_clone() {
        let done = Arc::clone(&done);
        let token = token.clone();
        let shared = Arc::clone(shared);
        std::thread::spawn(move || {
            let mut reader = reader;
            let _ = reader.set_read_timeout(Some(Duration::from_millis(50)));
            let mut scratch = [0u8; 64];
            loop {
                if done.load(Ordering::SeqCst) {
                    return;
                }
                match io::Read::read(&mut reader, &mut scratch) {
                    Ok(0) => {
                        if !done.load(Ordering::SeqCst) {
                            token.cancel("client disconnected");
                            shared.gate.lock().unwrap().stats.disconnect_cancels += 1;
                        }
                        return;
                    }
                    Ok(_) => {} // Extra client bytes are ignored.
                    Err(e)
                        if matches!(
                            e.kind(),
                            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                        ) => {}
                    Err(_) => {
                        if !done.load(Ordering::SeqCst) {
                            token.cancel("client disconnected");
                            shared.gate.lock().unwrap().stats.disconnect_cancels += 1;
                        }
                        return;
                    }
                }
            }
        });
    }

    // Per-run filesystem: the shared handle metered into the tenant's
    // account, optionally wrapped with the submission's injected faults
    // (test daemons only). Metering sits *inside* the fault layer so a
    // tenant is charged for bytes actually moved, not bytes faulted.
    let mut run_fs: FsHandle = Arc::new(MeteredFs::new(
        Arc::clone(&cfg.fs),
        Arc::clone(&tenant_meter),
    ));
    if let (Some(injector), Some(spec)) = (&cfg.fault_injector, &job.fault) {
        match injector(spec, Arc::clone(&run_fs), &token) {
            Some(wrapped) => run_fs = wrapped,
            None => {
                done.store(true, Ordering::SeqCst);
                let mut conn = job.conn;
                let _ = proto::write_frame(
                    &mut conn,
                    &Frame::Rejected {
                        code: reject::MALFORMED,
                        active: 0,
                        queued: 0,
                        reason: format!("unparseable fault spec: {spec}"),
                    },
                );
                return;
            }
        }
    }

    // The isolated engine, planned under the *current* aggregate
    // pressure: a busy daemon raises every new run's widening bar.
    let mut shell = Jash::new(cfg.engine, cfg.machine);
    shell.cancel = Some(token.clone());
    shell.durable = cfg.durable;
    if cfg.eager {
        shell.planner.min_speedup = 0.0;
        shell.planner.force_width = Some(4);
    }
    // The run is planned under the worse of the machine's aggregate
    // pressure and the tenant's own fair-share overdraft: a greedy
    // tenant narrows its *own* plans first.
    shell.planner = shell
        .planner
        .under_pressure(shared.pressure().max(tenant_pressure));
    if cfg.trace_root.is_some() {
        shell.tracer = Some(Arc::new(Tracer::new()));
        shell.run_attrs = vec![
            ("run_id".to_string(), job.run_id.into()),
            ("tenant".to_string(), job.tenant.clone().into()),
            ("queue_wait_ms".to_string(), (waited.as_millis() as u64).into()),
            ("tenant_pressure".to_string(), tenant_pressure.into()),
        ];
        if job.probe {
            shell
                .run_attrs
                .push(("quarantine_probe".to_string(), true.into()));
        }
    }
    if let Some(root) = &cfg.journal_root {
        if cfg.engine == Engine::JashJit {
            let dir = format!("{root}/run-{}", job.run_id);
            let _ = shell.attach_journal(&run_fs, &dir, false);
        }
    }

    let mut state = ShellState::new(Arc::clone(&run_fs));
    // The tenant's CPU sub-model (when a machine model exists): global
    // contention unchanged, charges attributed to this tenant's meter.
    state.cpu = tenant_cpu.or_else(|| cfg.cpu.clone());
    state.shell_name = format!("jash-serve:{}", job.run_id);

    // Panic isolation: a run that blows up inside the engine must not
    // take the worker (or the daemon) with it.
    let script = job.script;
    let outcome = catch_unwind(AssertUnwindSafe(|| shell.run_script(&mut state, &script)));

    let (status, stdout, stderr, panicked) = match outcome {
        Ok(Ok(r)) => (r.status, r.stdout, r.stderr, false),
        Ok(Err(e)) => (2, Vec::new(), format!("jash: {e}\n").into_bytes(), false),
        Err(panic) => {
            let what = panic
                .downcast_ref::<&str>()
                .map(ToString::to_string)
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic".to_string());
            (
                125,
                Vec::new(),
                format!("jash: run panicked: {what}\n").into_bytes(),
                true,
            )
        }
    };
    let aborted = token.reason();
    let deadline = aborted
        .as_deref()
        .is_some_and(|r| jash_io::deadline_code(r).is_some());
    {
        let mut gate = shared.gate.lock().unwrap();
        if panicked {
            gate.stats.panics_isolated += 1;
        }
        if deadline {
            gate.stats.deadline_aborts += 1;
        }
        // Tenant health: panics, deadline overruns, and plain nonzero
        // exits count toward quarantine. Externally-caused aborts —
        // drain (shutdown) and client disconnects — do not: a tenant
        // must not be exiled for the daemon's own lifecycle.
        let failed = panicked || deadline || (status != 0 && aborted.is_none());
        let clean = !panicked && status == 0 && aborted.is_none();
        if cfg.quarantine_failures > 0 {
            if job.probe {
                account_mut(&mut gate, cfg, &job.tenant).probing = false;
            }
            if failed {
                account_mut(&mut gate, cfg, &job.tenant).failures += 1;
                if gate.breaker.record_failure(&job.tenant) {
                    gate.stats.tenants_quarantined += 1;
                    account_mut(&mut gate, cfg, &job.tenant).quarantines += 1;
                }
            } else if clean {
                gate.breaker.record_success(&job.tenant);
            }
        }
        // Debit what the run consumed now, so the tenant's *next* run
        // is planned under the pressure this one created.
        let _ = account_mut(&mut gate, cfg, &job.tenant).settle(Instant::now());
    }

    // Flush the run's trace through the *unwrapped* shared fs — the
    // observability record must survive the very faults it documents.
    // This runs on every exit path (clean, aborted, panicked): a drain
    // must never truncate a run's spans.
    if let (Some(root), Some(tracer)) = (&cfg.trace_root, &shell.tracer) {
        let path = format!("{root}/run-{}.jsonl", job.run_id);
        let _ = jash_io::fs::write_file(cfg.fs.as_ref(), &path, tracer.to_jsonl().as_bytes());
    }

    // Stream the results. The client may be gone (that may be *why* the
    // run aborted); send errors are unremarkable.
    done.store(true, Ordering::SeqCst);
    let mut conn = job.conn;
    if !stdout.is_empty() {
        let _ = proto::write_frame(&mut conn, &Frame::Stdout(stdout));
    }
    if !stderr.is_empty() {
        let _ = proto::write_frame(&mut conn, &Frame::Stderr(stderr));
    }
    let _ = proto::write_frame(&mut conn, &Frame::Done { status, aborted });
    let _ = conn.shutdown(std::net::Shutdown::Both);
}

/// Parses the wire-level fault specs the `jash serve --test-faults`
/// daemon accepts, mirroring the crash/fault sweeps' vocabulary:
///
/// * `read-error:PATH:OFFSET` — sticky read error at a byte offset
/// * `transient-read:PATH:OFFSET` — same, but fires once (retryable)
/// * `stall-read:PATH:MILLIS` — first read stalls (cancellable)
/// * `open-error:PATH` — open fails with permission denied
/// * `truncate:PATH:OFFSET` — reads see early EOF
///
/// Returns `None` for anything else — the daemon answers with a
/// structured rejection rather than guessing.
pub fn parse_fault_spec(spec: &str) -> Option<jash_io::FaultPlan> {
    let mut parts = spec.split(':');
    let kind = parts.next()?;
    let plan = jash_io::FaultPlan::new();
    match kind {
        "read-error" => {
            let path = parts.next()?;
            let offset: u64 = parts.next()?.parse().ok()?;
            Some(plan.read_error_at(path, offset, "injected: disk surface error"))
        }
        "transient-read" => {
            let path = parts.next()?;
            let offset: u64 = parts.next()?.parse().ok()?;
            Some(plan.rule(jash_io::fault::FaultRule {
                path: Some(path.to_string()),
                op: jash_io::fault::FaultOp::Read,
                trigger: jash_io::fault::Trigger::AtByte(offset),
                kind: jash_io::fault::FaultKind::Error {
                    kind: std::io::ErrorKind::Other,
                    msg: "injected: transient controller reset".to_string(),
                },
                once: true,
            }))
        }
        "stall-read" => {
            let path = parts.next()?;
            let ms: u64 = parts.next()?.parse().ok()?;
            Some(plan.stall_reads(path, Duration::from_millis(ms)))
        }
        "open-error" => {
            let path = parts.next()?;
            Some(plan.open_error(path, "permission denied"))
        }
        "truncate" => {
            let path = parts.next()?;
            let offset: u64 = parts.next()?.parse().ok()?;
            Some(plan.truncate_at(path, offset))
        }
        _ => None,
    }
}

/// The [`FaultInjector`] for [`parse_fault_spec`]'s vocabulary: wraps
/// the shared fs in a [`jash_io::FaultFs`] wired to the run's cancel
/// token, so injected stalls abort with the run instead of outliving it.
pub fn spec_fault_injector() -> FaultInjector {
    Arc::new(|spec: &str, fs: FsHandle, token: &CancelToken| {
        parse_fault_spec(spec).map(|plan| {
            jash_io::FaultFs::wrap_with_cancel(fs, plan, token.clone()) as FsHandle
        })
    })
}
