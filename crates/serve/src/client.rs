//! A minimal blocking client for the serve protocol, used by the
//! integration suite, the CI smoke drill, and `faultsweep --serve`.
//!
//! One call = one connection = one run: connect, send the Submit frame,
//! read frames until `Done` or `Rejected`. For disconnect testing,
//! [`submit_detached`] stops after `Accepted` and hands back the open
//! stream so the caller can drop it mid-run.

use crate::proto::{self, Frame};
use std::io;
use std::os::unix::net::UnixStream;
use std::path::Path;

/// One submission.
#[derive(Debug, Clone)]
pub struct Request {
    /// Script source.
    pub script: String,
    /// Wall-clock limit in milliseconds (`0` = daemon default).
    pub timeout_ms: u64,
    /// Tenant label for trace accounting.
    pub tenant: String,
    /// Optional fault-injection spec (test daemons only).
    pub fault: Option<String>,
}

impl Request {
    /// A plain request with no deadline, no faults, tenant "cli".
    pub fn new(script: impl Into<String>) -> Request {
        Request {
            script: script.into(),
            timeout_ms: 0,
            tenant: "cli".to_string(),
            fault: None,
        }
    }

    /// The same request submitted as `tenant` — the knob multi-tenant
    /// tests, benches, and `jash submit --tenant` ride on.
    pub fn with_tenant(mut self, tenant: impl Into<String>) -> Request {
        self.tenant = tenant.into();
        self
    }

    /// The same request with a wall-clock limit.
    pub fn with_timeout_ms(mut self, ms: u64) -> Request {
        self.timeout_ms = ms;
        self
    }
}

/// Everything one run sent back.
#[derive(Debug, Clone, Default)]
pub struct RunReply {
    /// Run id from the `Accepted` frame, when admitted.
    pub run_id: Option<u64>,
    /// `(code, active, queued, reason)` from a `Rejected` frame.
    pub rejected: Option<(u8, u32, u32, String)>,
    /// Exit status from `Done`, when the run executed.
    pub status: Option<i32>,
    /// Abort reason from `Done`, when the run was cancelled.
    pub aborted: Option<String>,
    /// Concatenated stdout frames.
    pub stdout: Vec<u8>,
    /// Concatenated stderr frames.
    pub stderr: Vec<u8>,
}

impl RunReply {
    /// Whether the daemon admitted and finished the run (any status).
    pub fn completed(&self) -> bool {
        self.status.is_some()
    }
}

fn request_frame(req: &Request) -> Frame {
    Frame::Submit {
        script: req.script.clone(),
        timeout_ms: req.timeout_ms,
        tenant: req.tenant.clone(),
        fault: req.fault.clone(),
    }
}

/// Reads server frames off `conn` into a [`RunReply`] until the
/// connection yields `Done`, `Rejected`, or EOF.
pub fn collect(conn: &mut UnixStream, reply: &mut RunReply) -> io::Result<()> {
    loop {
        match proto::read_frame(conn)? {
            Some(Frame::Accepted { run_id }) => reply.run_id = Some(run_id),
            Some(Frame::Rejected {
                code,
                active,
                queued,
                reason,
            }) => {
                reply.rejected = Some((code, active, queued, reason));
                return Ok(());
            }
            Some(Frame::Stdout(b)) => reply.stdout.extend_from_slice(&b),
            Some(Frame::Stderr(b)) => reply.stderr.extend_from_slice(&b),
            Some(Frame::Done { status, aborted }) => {
                reply.status = Some(status);
                reply.aborted = aborted;
                return Ok(());
            }
            Some(Frame::Submit { .. }) => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "server sent a Submit frame",
                ));
            }
            None => return Ok(()), // Drained daemon closed mid-run.
        }
    }
}

/// Submits `req` and blocks until the run finishes (or is rejected).
pub fn submit(socket: &Path, req: &Request) -> io::Result<RunReply> {
    let mut conn = UnixStream::connect(socket)?;
    proto::write_frame(&mut conn, &request_frame(req))?;
    let mut reply = RunReply::default();
    collect(&mut conn, &mut reply)?;
    Ok(reply)
}

/// Submits `req` and returns as soon as the daemon answers `Accepted`,
/// handing the caller the open stream — dropping it simulates a client
/// that vanished mid-run. Returns the rejection instead when shed.
pub fn submit_detached(
    socket: &Path,
    req: &Request,
) -> io::Result<Result<(UnixStream, u64), RunReply>> {
    let mut conn = UnixStream::connect(socket)?;
    proto::write_frame(&mut conn, &request_frame(req))?;
    match proto::read_frame(&mut conn)? {
        Some(Frame::Accepted { run_id }) => Ok(Ok((conn, run_id))),
        Some(Frame::Rejected {
            code,
            active,
            queued,
            reason,
        }) => Ok(Err(RunReply {
            rejected: Some((code, active, queued, reason)),
            ..RunReply::default()
        })),
        _ => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "expected Accepted or Rejected",
        )),
    }
}
