//! A minimal blocking client for the serve protocol, used by the
//! integration suite, the CI smoke drill, and `faultsweep --serve`.
//!
//! One call = one connection = one run: connect, send the Submit frame,
//! read frames until `Done` or `Rejected`. For disconnect testing,
//! [`submit_detached`] stops after `Accepted` and hands back the open
//! stream so the caller can drop it mid-run.
//!
//! [`submit_with_retry`] is the resilient path `jash submit` rides:
//! bounded jittered-backoff over connect failures, retryable rejections
//! (`OVERLOADED`/`DRAINING`/`QUOTA`/`QUARANTINED`), and — when the
//! request carries an idempotency key — mid-stream disconnects, where a
//! resubmission of the same key attaches to the live run or replays the
//! cached terminal result instead of executing twice.

use crate::proto::{self, reject, Frame};
use std::io;
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::Duration;

/// One submission.
#[derive(Debug, Clone)]
pub struct Request {
    /// Script source.
    pub script: String,
    /// Wall-clock limit in milliseconds (`0` = daemon default).
    pub timeout_ms: u64,
    /// Tenant label for trace accounting.
    pub tenant: String,
    /// Idempotency key (empty = none). Resubmitting the same key after
    /// a disconnect or daemon restart attaches to the live run or
    /// replays the cached result rather than executing the script again.
    pub key: String,
    /// Optional fault-injection spec (test daemons only).
    pub fault: Option<String>,
}

impl Request {
    /// A plain request with no deadline, no faults, tenant "cli".
    pub fn new(script: impl Into<String>) -> Request {
        Request {
            script: script.into(),
            timeout_ms: 0,
            tenant: "cli".to_string(),
            key: String::new(),
            fault: None,
        }
    }

    /// The same request submitted as `tenant` — the knob multi-tenant
    /// tests, benches, and `jash submit --tenant` ride on.
    pub fn with_tenant(mut self, tenant: impl Into<String>) -> Request {
        self.tenant = tenant.into();
        self
    }

    /// The same request with a wall-clock limit.
    pub fn with_timeout_ms(mut self, ms: u64) -> Request {
        self.timeout_ms = ms;
        self
    }

    /// The same request carrying an idempotency key.
    pub fn with_key(mut self, key: impl Into<String>) -> Request {
        self.key = key.into();
        self
    }
}

/// Everything one run sent back.
#[derive(Debug, Clone, Default)]
pub struct RunReply {
    /// Run id from the `Accepted` frame, when admitted.
    pub run_id: Option<u64>,
    /// `(code, active, queued, reason)` from a `Rejected` frame.
    pub rejected: Option<(u8, u32, u32, String)>,
    /// Exit status from `Done`, when the run executed.
    pub status: Option<i32>,
    /// Abort reason from `Done`, when the run was cancelled.
    pub aborted: Option<String>,
    /// Concatenated stdout frames.
    pub stdout: Vec<u8>,
    /// Concatenated stderr frames.
    pub stderr: Vec<u8>,
    /// Run id from an `Attach` frame — set when this reply came from a
    /// duplicate submission that joined a live run or replayed a cached
    /// result instead of executing.
    pub attached: Option<u64>,
    /// How many extra attempts [`submit_with_retry`] needed.
    pub retries: u32,
}

impl RunReply {
    /// Whether the daemon admitted and finished the run (any status).
    pub fn completed(&self) -> bool {
        self.status.is_some()
    }
}

fn request_frame(req: &Request) -> Frame {
    Frame::Submit {
        script: req.script.clone(),
        timeout_ms: req.timeout_ms,
        tenant: req.tenant.clone(),
        key: req.key.clone(),
        fault: req.fault.clone(),
    }
}

/// Reads server frames off `conn` into a [`RunReply`] until the
/// connection yields `Done`, `Rejected`, or EOF.
pub fn collect(conn: &mut UnixStream, reply: &mut RunReply) -> io::Result<()> {
    loop {
        match proto::read_frame(conn)? {
            Some(Frame::Accepted { run_id }) => reply.run_id = Some(run_id),
            Some(Frame::Attach { run_id }) => {
                reply.attached = Some(run_id);
                reply.run_id = Some(run_id);
            }
            Some(Frame::Rejected {
                code,
                active,
                queued,
                reason,
            }) => {
                reply.rejected = Some((code, active, queued, reason));
                return Ok(());
            }
            Some(Frame::Stdout(b)) => reply.stdout.extend_from_slice(&b),
            Some(Frame::Stderr(b)) => reply.stderr.extend_from_slice(&b),
            Some(Frame::Done { status, aborted }) => {
                reply.status = Some(status);
                reply.aborted = aborted;
                return Ok(());
            }
            Some(Frame::Submit { .. }) => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "server sent a Submit frame",
                ));
            }
            None => return Ok(()), // Drained daemon closed mid-run.
        }
    }
}

/// Submits `req` and blocks until the run finishes (or is rejected).
pub fn submit(socket: &Path, req: &Request) -> io::Result<RunReply> {
    let mut conn = UnixStream::connect(socket)?;
    proto::write_frame(&mut conn, &request_frame(req))?;
    let mut reply = RunReply::default();
    collect(&mut conn, &mut reply)?;
    Ok(reply)
}

/// Submits `req` and returns as soon as the daemon answers `Accepted`,
/// handing the caller the open stream — dropping it simulates a client
/// that vanished mid-run. Returns the rejection instead when shed.
pub fn submit_detached(
    socket: &Path,
    req: &Request,
) -> io::Result<Result<(UnixStream, u64), RunReply>> {
    let mut conn = UnixStream::connect(socket)?;
    proto::write_frame(&mut conn, &request_frame(req))?;
    match proto::read_frame(&mut conn)? {
        Some(Frame::Accepted { run_id }) => Ok(Ok((conn, run_id))),
        Some(Frame::Rejected {
            code,
            active,
            queued,
            reason,
        }) => Ok(Err(RunReply {
            rejected: Some((code, active, queued, reason)),
            ..RunReply::default()
        })),
        _ => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "expected Accepted or Rejected",
        )),
    }
}

/// Backoff schedule for [`submit_with_retry`]: exponential with
/// deterministic multiplicative jitter, same scheme as the per-region
/// retry supervisor in `jash-exec`.
#[derive(Debug, Clone)]
pub struct RetryConfig {
    /// Total attempts (1 = no retries).
    pub attempts: u32,
    /// Delay before the first retry.
    pub base: Duration,
    /// Growth factor per retry.
    pub multiplier: f64,
    /// Ceiling on any single delay.
    pub max: Duration,
    /// Jitter width: each delay is scaled by a deterministic factor in
    /// `[1 - jitter/2, 1 + jitter/2)`.
    pub jitter: f64,
    /// Seed for the jitter stream (so drills replay byte-identically).
    pub seed: u64,
}

impl Default for RetryConfig {
    fn default() -> RetryConfig {
        RetryConfig {
            attempts: 5,
            base: Duration::from_millis(100),
            multiplier: 2.0,
            max: Duration::from_secs(2),
            jitter: 0.5,
            seed: 0x6a61_7368, // "jash"
        }
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl RetryConfig {
    /// Delay before retry number `attempt` (1-based).
    pub fn backoff(&self, attempt: u32) -> Duration {
        let exp = self.base.as_secs_f64() * self.multiplier.powi(attempt.saturating_sub(1) as i32);
        let capped = exp.min(self.max.as_secs_f64());
        let unit = splitmix64(
            self.seed
                .wrapping_mul(0x0100_0000_01b3)
                .wrapping_add(attempt as u64),
        ) as f64
            / u64::MAX as f64;
        let factor = 1.0 - self.jitter / 2.0 + self.jitter * unit;
        Duration::from_secs_f64((capped * factor).max(0.0))
    }
}

/// Whether a failed attempt is safe to retry. Connect failures are
/// always retryable — the Submit frame never reached a daemon. Once
/// frames have flowed, a resubmission may execute the script twice, so
/// mid-exchange failures are retryable only when `req` carries an
/// idempotency key (the daemon then replays or attaches instead of
/// re-running). Retryable rejections are safe either way: the daemon
/// explicitly declined to start the run.
fn attempt_outcome(
    req: &Request,
    result: io::Result<RunReply>,
) -> Result<RunReply, (io::Error, bool)> {
    let keyed = !req.key.is_empty();
    match result {
        Err(e)
            if e.kind() == io::ErrorKind::NotFound
                || e.kind() == io::ErrorKind::ConnectionRefused =>
        {
            Err((e, true))
        }
        Err(e) => Err((e, keyed)),
        Ok(reply) => {
            if let Some((code, _, _, ref reason)) = reply.rejected {
                if reject::is_retryable(code) {
                    return Err((
                        io::Error::other(format!("rejected (code {code}): {reason}")),
                        true,
                    ));
                }
                return Ok(reply); // Permanent rejection: surface it.
            }
            if reply.status.is_some() {
                return Ok(reply);
            }
            // Accepted (or attached) but the stream died before Done —
            // e.g. the daemon was killed mid-run. Only a key makes a
            // resubmission safe.
            Err((
                io::Error::other("connection closed before the run finished"),
                keyed,
            ))
        }
    }
}

/// Submits `req`, retrying per `cfg` on connect failure, retryable
/// rejection, and — for keyed requests — mid-stream disconnection.
/// Returns the last error when every attempt fails, and the permanent
/// rejection or terminal reply as soon as one arrives.
pub fn submit_with_retry(socket: &Path, req: &Request, cfg: &RetryConfig) -> io::Result<RunReply> {
    let attempts = cfg.attempts.max(1);
    let mut last_err: Option<io::Error> = None;
    for attempt in 0..attempts {
        if attempt > 0 {
            std::thread::sleep(cfg.backoff(attempt));
        }
        match attempt_outcome(req, submit(socket, req)) {
            Ok(mut reply) => {
                reply.retries = attempt;
                return Ok(reply);
            }
            Err((e, retryable)) => {
                if !retryable {
                    return Err(io::Error::other(format!(
                        "submission failed mid-run with no idempotency key; \
                         not retrying (the run may still execute): {e}"
                    )));
                }
                last_err = Some(e);
            }
        }
    }
    Err(last_err.unwrap_or_else(|| io::Error::other("no attempts made")))
}
