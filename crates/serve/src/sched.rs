//! Weighted deficit-round-robin scheduling over per-tenant queues.
//!
//! The PR-6 daemon admitted work into one FIFO queue, so a flooding
//! tenant could fill every queue slot and starve everyone behind it.
//! [`Scheduler`] replaces the FIFO with one bounded queue *per tenant*
//! and a deficit-round-robin ring between them: each tenant earns
//! service credit in proportion to its configured weight, spends one
//! credit per dispatched job, and a tenant with an empty queue leaves
//! the ring (and forfeits its credit — idle tenants must not hoard
//! bursts). The result is classic DRR fairness with unit job cost:
//! over any window in which both tenants have work queued, a weight-2
//! tenant dispatches twice as often as a weight-1 tenant, and a
//! flooding tenant's surplus load waits in *its own* queue (or is
//! rejected by *its own* depth cap) without adding a microsecond of
//! queue wait for anyone else.
//!
//! Two per-tenant limits are enforced here:
//!
//! * **`queue_cap`** gates admission: [`Scheduler::quota_exceeded`]
//!   reports a tenant already at its depth cap, and the gate answers
//!   the client with a structured `QUOTA` rejection.
//! * **`max_active`** gates dispatch: a tenant at its concurrency cap
//!   is rotated past without earning credit until a run completes, so
//!   its queued work waits without blocking the ring.
//!
//! The scheduler is deliberately clock-free (callers pass `Instant`s
//! for wait accounting) and lock-free (the serve gate owns it under
//! its existing mutex), so its fairness behavior is unit-testable in
//! isolation.

use std::collections::{HashMap, VecDeque};
use std::time::{Duration, Instant};

/// Per-tenant scheduling limits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantPolicy {
    /// Relative service share; clamped to `[0.01, 100]` at use. A
    /// weight-2 tenant dispatches twice as often as a weight-1 tenant
    /// when both have work queued.
    pub weight: f64,
    /// Concurrent-run cap; `0` = bounded only by the worker pool.
    pub max_active: usize,
    /// Queue-depth cap; `0` = bounded only by the global admission cap.
    pub queue_cap: usize,
}

impl Default for TenantPolicy {
    fn default() -> Self {
        TenantPolicy {
            weight: 1.0,
            max_active: 0,
            queue_cap: 0,
        }
    }
}

impl TenantPolicy {
    fn clamped_weight(&self) -> f64 {
        if self.weight.is_finite() {
            self.weight.clamp(0.01, 100.0)
        } else {
            1.0
        }
    }
}

/// One dispatched job with its provenance.
#[derive(Debug)]
pub struct Popped<J> {
    /// The tenant the job belongs to.
    pub tenant: String,
    /// The job itself.
    pub job: J,
    /// How long the job sat queued before dispatch.
    pub waited: Duration,
}

/// Read-only view of one tenant's scheduling state.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSnapshot {
    /// Tenant name.
    pub tenant: String,
    /// Effective policy.
    pub policy: TenantPolicy,
    /// Jobs waiting in the tenant's queue.
    pub queued: usize,
    /// Jobs currently dispatched and running.
    pub active: usize,
    /// Jobs dispatched over the scheduler's lifetime.
    pub dispatched: u64,
    /// Runs retired (completed in any status).
    pub completed: u64,
    /// Longest queue wait any of this tenant's jobs has seen.
    pub max_wait: Duration,
}

struct TenantState<J> {
    policy: TenantPolicy,
    queue: VecDeque<(J, Instant)>,
    active: usize,
    deficit: f64,
    in_ring: bool,
    dispatched: u64,
    completed: u64,
    max_wait: Duration,
}

impl<J> TenantState<J> {
    fn new(policy: TenantPolicy) -> Self {
        TenantState {
            policy,
            queue: VecDeque::new(),
            active: 0,
            deficit: 0.0,
            in_ring: false,
            dispatched: 0,
            completed: 0,
            max_wait: Duration::ZERO,
        }
    }
}

/// Weighted deficit-round-robin over per-tenant queues. See the module
/// docs for the fairness contract.
pub struct Scheduler<J> {
    default_policy: TenantPolicy,
    tenants: HashMap<String, TenantState<J>>,
    /// Tenants with queued work, in service order. Invariant: a name is
    /// in the ring iff its state has `in_ring == true`, and every
    /// tenant with a nonempty queue is in the ring.
    ring: VecDeque<String>,
    queued: usize,
}

impl<J> Scheduler<J> {
    /// A scheduler where unknown tenants get `default_policy`.
    pub fn new(default_policy: TenantPolicy) -> Self {
        Scheduler {
            default_policy,
            tenants: HashMap::new(),
            ring: VecDeque::new(),
            queued: 0,
        }
    }

    /// Pins `tenant`'s policy (otherwise it inherits the default on
    /// first contact).
    pub fn set_policy(&mut self, tenant: &str, policy: TenantPolicy) {
        self.tenant_mut(tenant).policy = policy;
    }

    /// The policy `tenant` is (or would be) scheduled under.
    pub fn policy(&self, tenant: &str) -> TenantPolicy {
        self.tenants
            .get(tenant)
            .map(|t| t.policy)
            .unwrap_or(self.default_policy)
    }

    fn tenant_mut(&mut self, tenant: &str) -> &mut TenantState<J> {
        let default = self.default_policy;
        self.tenants
            .entry(tenant.to_string())
            .or_insert_with(|| TenantState::new(default))
    }

    /// `Some((depth, cap))` when `tenant`'s queue is at its depth cap
    /// and the next push must be rejected with `QUOTA`.
    pub fn quota_exceeded(&self, tenant: &str) -> Option<(usize, usize)> {
        let policy = self.policy(tenant);
        if policy.queue_cap == 0 {
            return None;
        }
        let depth = self.tenants.get(tenant).map_or(0, |t| t.queue.len());
        (depth >= policy.queue_cap).then_some((depth, policy.queue_cap))
    }

    /// Queues `job` for `tenant`, stamped `now` for wait accounting.
    /// Callers check [`Scheduler::quota_exceeded`] first; push itself
    /// never rejects (the global admission cap is the gate's job).
    pub fn push(&mut self, tenant: &str, job: J, now: Instant) {
        let t = self.tenant_mut(tenant);
        t.queue.push_back((job, now));
        if !t.in_ring {
            t.in_ring = true;
            self.ring.push_back(tenant.to_string());
        }
        self.queued += 1;
    }

    /// Dispatches the next job by DRR order, or `None` when every
    /// queued tenant is at its concurrency cap (or nothing is queued).
    /// The dispatched tenant's `active` count rises; callers must pair
    /// each pop with a [`Scheduler::complete`].
    pub fn pop(&mut self, now: Instant) -> Option<Popped<J>> {
        if self.queued == 0 {
            return None;
        }
        // Termination: every visit to an uncapped front tenant either
        // serves (returns) or banks ≥ 0.01 credit, so a serve happens
        // within ~100 visits per tenant; a full lap of only-capped
        // tenants returns None. The guard is a belt over those braces.
        let mut capped_streak = 0usize;
        let mut guard = self.ring.len().saturating_mul(128) + 8;
        while let Some(name) = self.ring.front().cloned() {
            guard -= 1;
            if guard == 0 {
                return None;
            }
            let t = self.tenants.get_mut(&name).expect("ring name has state");
            if t.queue.is_empty() {
                // Emptied since it was ringed; forfeit banked credit so
                // an idle tenant cannot hoard a burst.
                t.in_ring = false;
                t.deficit = 0.0;
                self.ring.pop_front();
                continue;
            }
            if t.policy.max_active > 0 && t.active >= t.policy.max_active {
                capped_streak += 1;
                if capped_streak >= self.ring.len() {
                    return None;
                }
                self.ring.rotate_left(1);
                continue;
            }
            capped_streak = 0;
            if t.deficit < 1.0 {
                t.deficit += t.policy.clamped_weight();
                if t.deficit < 1.0 {
                    self.ring.rotate_left(1);
                    continue;
                }
            }
            t.deficit -= 1.0;
            let (job, queued_at) = t.queue.pop_front().expect("nonempty queue");
            t.active += 1;
            t.dispatched += 1;
            self.queued -= 1;
            let waited = now.saturating_duration_since(queued_at);
            if waited > t.max_wait {
                t.max_wait = waited;
            }
            if t.queue.is_empty() {
                t.in_ring = false;
                t.deficit = 0.0;
                self.ring.pop_front();
            } else if t.deficit < 1.0 {
                // Credit spent; let the next tenant serve. A weight>1
                // tenant with credit to spare stays at the front and
                // bursts on the next pop.
                self.ring.rotate_left(1);
            }
            return Some(Popped {
                tenant: name,
                job,
                waited,
            });
        }
        None
    }

    /// Retires one of `tenant`'s dispatched runs, freeing a concurrency
    /// slot.
    pub fn complete(&mut self, tenant: &str) {
        let t = self.tenant_mut(tenant);
        t.active = t.active.saturating_sub(1);
        t.completed += 1;
    }

    /// Total jobs queued across all tenants.
    pub fn queued_total(&self) -> usize {
        self.queued
    }

    /// Jobs queued for one tenant.
    pub fn queued_for(&self, tenant: &str) -> usize {
        self.tenants.get(tenant).map_or(0, |t| t.queue.len())
    }

    /// Empties every queue (drain path), returning the shed jobs in
    /// tenant-grouped order.
    pub fn drain_queues(&mut self) -> Vec<(String, J)> {
        let mut shed = Vec::new();
        for name in self.ring.drain(..) {
            if let Some(t) = self.tenants.get_mut(&name) {
                t.in_ring = false;
                t.deficit = 0.0;
                for (job, _at) in t.queue.drain(..) {
                    shed.push((name.clone(), job));
                }
            }
        }
        self.queued = 0;
        shed
    }

    /// Snapshots of every tenant the scheduler has seen, sorted by name.
    pub fn snapshots(&self) -> Vec<TenantSnapshot> {
        let mut rows: Vec<TenantSnapshot> = self
            .tenants
            .iter()
            .map(|(name, t)| TenantSnapshot {
                tenant: name.clone(),
                policy: t.policy,
                queued: t.queue.len(),
                active: t.active,
                dispatched: t.dispatched,
                completed: t.completed,
                max_wait: t.max_wait,
            })
            .collect();
        rows.sort_by(|a, b| a.tenant.cmp(&b.tenant));
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched() -> Scheduler<u32> {
        Scheduler::new(TenantPolicy::default())
    }

    #[test]
    fn fifo_within_one_tenant() {
        let mut s = sched();
        let t0 = Instant::now();
        for i in 0..3 {
            s.push("a", i, t0);
        }
        let order: Vec<u32> = (0..3).map(|_| s.pop(t0).unwrap().job).collect();
        assert_eq!(order, vec![0, 1, 2]);
        assert!(s.pop(t0).is_none());
    }

    #[test]
    fn equal_weights_interleave() {
        let mut s = sched();
        let t0 = Instant::now();
        // Tenant a floods first; b's single job must not wait behind
        // all of a's.
        for i in 0..4 {
            s.push("a", i, t0);
        }
        s.push("b", 100, t0);
        let tenants: Vec<String> = (0..5).map(|_| s.pop(t0).unwrap().tenant).collect();
        let b_pos = tenants.iter().position(|t| t == "b").unwrap();
        assert!(b_pos <= 1, "b served at position {b_pos} of {tenants:?}");
    }

    #[test]
    fn weights_skew_service_two_to_one() {
        let mut s = sched();
        s.set_policy(
            "heavy",
            TenantPolicy {
                weight: 2.0,
                ..TenantPolicy::default()
            },
        );
        let t0 = Instant::now();
        for i in 0..20 {
            s.push("heavy", i, t0);
            s.push("light", i, t0);
        }
        // First 12 dispatches: heavy should take ~2/3.
        let first: Vec<String> = (0..12).map(|_| s.pop(t0).unwrap().tenant).collect();
        let heavy = first.iter().filter(|t| *t == "heavy").count();
        assert_eq!(heavy, 8, "heavy got {heavy}/12 in {first:?}");
    }

    #[test]
    fn fractional_weight_is_served_eventually() {
        let mut s = sched();
        s.set_policy(
            "slow",
            TenantPolicy {
                weight: 0.25,
                ..TenantPolicy::default()
            },
        );
        let t0 = Instant::now();
        for i in 0..8 {
            s.push("slow", i, t0);
            s.push("norm", i, t0);
        }
        let order: Vec<String> = (0..16).map(|_| s.pop(t0).unwrap().tenant).collect();
        // slow gets ~1/5 of early service but everything eventually.
        assert_eq!(order.iter().filter(|t| *t == "slow").count(), 8);
        let first_slow = order.iter().position(|t| t == "slow").unwrap();
        assert!(first_slow >= 3, "slow served too early: {order:?}");
    }

    #[test]
    fn max_active_caps_dispatch_until_complete() {
        let mut s = sched();
        s.set_policy(
            "a",
            TenantPolicy {
                max_active: 1,
                ..TenantPolicy::default()
            },
        );
        let t0 = Instant::now();
        s.push("a", 1, t0);
        s.push("a", 2, t0);
        assert_eq!(s.pop(t0).unwrap().job, 1);
        // Second job blocked on the concurrency cap, not lost.
        assert!(s.pop(t0).is_none());
        assert_eq!(s.queued_total(), 1);
        s.complete("a");
        assert_eq!(s.pop(t0).unwrap().job, 2);
    }

    #[test]
    fn capped_tenant_does_not_block_others() {
        let mut s = sched();
        s.set_policy(
            "capped",
            TenantPolicy {
                max_active: 1,
                ..TenantPolicy::default()
            },
        );
        let t0 = Instant::now();
        s.push("capped", 1, t0);
        s.push("capped", 2, t0);
        s.push("free", 3, t0);
        assert_eq!(s.pop(t0).unwrap().job, 1);
        // capped is at its cap; free must still dispatch.
        assert_eq!(s.pop(t0).unwrap().job, 3);
        assert!(s.pop(t0).is_none());
    }

    #[test]
    fn quota_reports_depth_cap() {
        let mut s = sched();
        s.set_policy(
            "a",
            TenantPolicy {
                queue_cap: 2,
                ..TenantPolicy::default()
            },
        );
        let t0 = Instant::now();
        assert!(s.quota_exceeded("a").is_none());
        s.push("a", 1, t0);
        s.push("a", 2, t0);
        assert_eq!(s.quota_exceeded("a"), Some((2, 2)));
        // Other tenants are unaffected (no cap by default).
        assert!(s.quota_exceeded("b").is_none());
        // Dispatch frees depth.
        let _ = s.pop(t0);
        assert!(s.quota_exceeded("a").is_none());
    }

    #[test]
    fn empty_tenant_forfeits_banked_credit() {
        let mut s = sched();
        s.set_policy(
            "burst",
            TenantPolicy {
                weight: 2.0,
                ..TenantPolicy::default()
            },
        );
        let t0 = Instant::now();
        // burst drains its queue (earning 2, spending 1: one credit
        // banked), goes idle, and returns: the banked credit must be
        // gone, so a fresh contest still splits 2:1, not 3:1.
        s.push("burst", 0, t0);
        assert_eq!(s.pop(t0).unwrap().job, 0);
        s.complete("burst");
        for i in 0..6 {
            s.push("burst", 10 + i, t0);
            s.push("other", 20 + i, t0);
        }
        let first: Vec<String> = (0..6).map(|_| s.pop(t0).unwrap().tenant).collect();
        let bursts = first.iter().filter(|t| *t == "burst").count();
        assert_eq!(bursts, 4, "burst got {bursts}/6 in {first:?}");
    }

    #[test]
    fn drain_returns_everything_queued() {
        let mut s = sched();
        let t0 = Instant::now();
        s.push("a", 1, t0);
        s.push("b", 2, t0);
        s.push("a", 3, t0);
        let _ = s.pop(t0);
        let shed = s.drain_queues();
        assert_eq!(shed.len(), 2);
        assert_eq!(s.queued_total(), 0);
        assert!(s.pop(t0).is_none());
    }

    #[test]
    fn wait_accounting_tracks_max() {
        let mut s = sched();
        let t0 = Instant::now();
        s.push("a", 1, t0);
        let later = t0 + Duration::from_millis(250);
        let p = s.pop(later).unwrap();
        assert_eq!(p.waited, Duration::from_millis(250));
        let snap = &s.snapshots()[0];
        assert_eq!(snap.max_wait, Duration::from_millis(250));
    }
}
