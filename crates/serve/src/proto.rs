//! The serve wire protocol: length-prefixed frames over a unix socket.
//!
//! The format is deliberately tiny — one tag byte, a big-endian `u32`
//! length, then the payload — because the protocol's job is robustness,
//! not expressiveness. Everything a hardened daemon needs is expressible
//! in six frame types: a client submits exactly one script per
//! connection ([`Frame::Submit`]), the daemon answers with either
//! [`Frame::Accepted`] or a *structured* [`Frame::Rejected`] (overload is
//! an answer, not a stall), streams captured output back as
//! [`Frame::Stdout`] / [`Frame::Stderr`], and closes the exchange with
//! [`Frame::Done`] carrying the exit status and, when the run was
//! aborted (deadline, disconnect, drain), the abort reason.
//!
//! Encoding is hand-rolled over `std::io` so the crate adds no
//! dependencies: no serde, no tokio — a 50-year protocol should be
//! implementable in an afternoon from its description.

use std::io::{self, Read, Write};

/// Upper bound on a single frame payload. A malicious or corrupted
/// length prefix must not make the daemon allocate unbounded memory;
/// scripts and captured output beyond this are a misuse of a shell
/// daemon, not a workload to support.
pub const MAX_FRAME: u32 = 16 * 1024 * 1024;

/// Structured rejection codes carried by [`Frame::Rejected`].
pub mod reject {
    /// The admission queue is full: shed load, retry later.
    pub const OVERLOADED: u8 = 1;
    /// The daemon is draining after SIGTERM: no new work, ever.
    pub const DRAINING: u8 = 2;
    /// The submission frame did not parse.
    pub const MALFORMED: u8 = 3;
    /// The submission carried a fault spec but the daemon was not
    /// started with fault injection enabled.
    pub const FAULTS_DISABLED: u8 = 4;
    /// The *tenant's* queue is at its depth cap (the machine may be
    /// idle): the tenant is over its own quota, not the daemon over
    /// capacity. Retrying helps only after the tenant's backlog drains.
    pub const QUOTA: u8 = 5;
    /// The tenant is quarantined: its recent runs kept failing and its
    /// circuit breaker is open. Submissions are refused until a
    /// half-open probe run succeeds.
    pub const QUARANTINED: u8 = 6;

    /// Human-readable name for a code.
    pub fn name(code: u8) -> &'static str {
        match code {
            OVERLOADED => "overloaded",
            DRAINING => "draining",
            MALFORMED => "malformed",
            FAULTS_DISABLED => "faults-disabled",
            QUOTA => "quota",
            QUARANTINED => "quarantined",
            _ => "unknown",
        }
    }

    /// Whether a rejection is worth retrying. `OVERLOADED`, `QUOTA`,
    /// `QUARANTINED`, and `DRAINING` are *conditions* — the machine,
    /// the tenant's backlog, the breaker, or the daemon's lifecycle —
    /// that pass with time, so a scripted caller should back off and
    /// resubmit (`jash submit` exits 75, `EX_TEMPFAIL`). `MALFORMED`
    /// and `FAULTS_DISABLED` describe the *submission*: retrying the
    /// same bytes can never succeed (`jash submit` exits 65,
    /// `EX_DATAERR`).
    pub fn is_retryable(code: u8) -> bool {
        matches!(code, OVERLOADED | DRAINING | QUOTA | QUARANTINED)
    }
}

const TAG_SUBMIT: u8 = 1;
const TAG_ACCEPTED: u8 = 2;
const TAG_REJECTED: u8 = 3;
const TAG_STDOUT: u8 = 4;
const TAG_STDERR: u8 = 5;
const TAG_DONE: u8 = 6;
const TAG_ATTACH: u8 = 7;

/// One protocol frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Client → server: run this script. One submit per connection.
    Submit {
        /// The script source.
        script: String,
        /// Wall-clock deadline in milliseconds; `0` = no client limit
        /// (the daemon may still impose its own).
        timeout_ms: u64,
        /// Tenant label for per-run trace accounting (free-form).
        tenant: String,
        /// Client-supplied idempotency key (empty = none). Submitting
        /// the same key twice never executes the script twice: a
        /// finished run's cached result is replayed, a live run's
        /// output is attached to.
        key: String,
        /// Optional fault-injection spec, honored only when the daemon
        /// was started with faults enabled (tests and smoke drills).
        fault: Option<String>,
    },
    /// Server → client: admitted; frames for run `run_id` follow.
    Accepted {
        /// Daemon-wide run identifier (also the journal/trace scope).
        run_id: u64,
    },
    /// Server → client: this submission's idempotency key matches run
    /// `run_id`, which already exists — the script was *not* executed
    /// again. The frames that follow are the cached result (finished
    /// run) or the live run's output once it completes.
    Attach {
        /// The existing run this connection is now attached to.
        run_id: u64,
    },
    /// Server → client: not admitted, and here is exactly why — the
    /// structured alternative to letting an overloaded daemon stall.
    Rejected {
        /// One of the [`reject`] codes.
        code: u8,
        /// Runs executing when the decision was made.
        active: u32,
        /// Submissions queued when the decision was made.
        queued: u32,
        /// Human-readable diagnosis.
        reason: String,
    },
    /// Server → client: captured stdout bytes.
    Stdout(Vec<u8>),
    /// Server → client: captured stderr bytes.
    Stderr(Vec<u8>),
    /// Server → client: the run finished; last frame on the connection.
    Done {
        /// Exit status (`124` deadline, `143` drain, `125` isolated
        /// panic, otherwise the script's own status).
        status: i32,
        /// The cancellation reason when the run was aborted rather than
        /// run to completion.
        aborted: Option<String>,
    },
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_be_bytes());
}

fn put_bytes(buf: &mut Vec<u8>, b: &[u8]) {
    put_u32(buf, b.len() as u32);
    buf.extend_from_slice(b);
}

fn take_u32(p: &mut &[u8]) -> io::Result<u32> {
    let (head, rest) = p
        .split_first_chunk::<4>()
        .ok_or_else(|| malformed("truncated u32"))?;
    *p = rest;
    Ok(u32::from_be_bytes(*head))
}

fn take_u64(p: &mut &[u8]) -> io::Result<u64> {
    let (head, rest) = p
        .split_first_chunk::<8>()
        .ok_or_else(|| malformed("truncated u64"))?;
    *p = rest;
    Ok(u64::from_be_bytes(*head))
}

fn take_u8(p: &mut &[u8]) -> io::Result<u8> {
    let (&b, rest) = p.split_first().ok_or_else(|| malformed("truncated u8"))?;
    *p = rest;
    Ok(b)
}

fn take_bytes(p: &mut &[u8]) -> io::Result<Vec<u8>> {
    let len = take_u32(p)? as usize;
    if p.len() < len {
        return Err(malformed("length prefix past end of frame"));
    }
    let (head, rest) = p.split_at(len);
    *p = rest;
    Ok(head.to_vec())
}

fn take_string(p: &mut &[u8]) -> io::Result<String> {
    String::from_utf8(take_bytes(p)?).map_err(|_| malformed("invalid utf-8"))
}

fn malformed(why: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("malformed frame: {why}"))
}

impl Frame {
    fn tag(&self) -> u8 {
        match self {
            Frame::Submit { .. } => TAG_SUBMIT,
            Frame::Accepted { .. } => TAG_ACCEPTED,
            Frame::Attach { .. } => TAG_ATTACH,
            Frame::Rejected { .. } => TAG_REJECTED,
            Frame::Stdout(_) => TAG_STDOUT,
            Frame::Stderr(_) => TAG_STDERR,
            Frame::Done { .. } => TAG_DONE,
        }
    }

    fn payload(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            Frame::Submit {
                script,
                timeout_ms,
                tenant,
                key,
                fault,
            } => {
                buf.extend_from_slice(&timeout_ms.to_be_bytes());
                put_bytes(&mut buf, tenant.as_bytes());
                put_bytes(&mut buf, key.as_bytes());
                match fault {
                    Some(f) => {
                        buf.push(1);
                        put_bytes(&mut buf, f.as_bytes());
                    }
                    None => buf.push(0),
                }
                buf.extend_from_slice(script.as_bytes());
            }
            Frame::Accepted { run_id } | Frame::Attach { run_id } => {
                buf.extend_from_slice(&run_id.to_be_bytes())
            }
            Frame::Rejected {
                code,
                active,
                queued,
                reason,
            } => {
                buf.push(*code);
                put_u32(&mut buf, *active);
                put_u32(&mut buf, *queued);
                buf.extend_from_slice(reason.as_bytes());
            }
            Frame::Stdout(b) | Frame::Stderr(b) => buf.extend_from_slice(b),
            Frame::Done { status, aborted } => {
                buf.extend_from_slice(&status.to_be_bytes());
                match aborted {
                    Some(r) => {
                        buf.push(1);
                        buf.extend_from_slice(r.as_bytes());
                    }
                    None => buf.push(0),
                }
            }
        }
        buf
    }

    fn decode(tag: u8, mut p: &[u8]) -> io::Result<Frame> {
        let p = &mut p;
        Ok(match tag {
            TAG_SUBMIT => {
                let timeout_ms = take_u64(p)?;
                let tenant = take_string(p)?;
                let key = take_string(p)?;
                let fault = match take_u8(p)? {
                    0 => None,
                    1 => Some(take_string(p)?),
                    _ => return Err(malformed("bad fault flag")),
                };
                let script = std::str::from_utf8(p)
                    .map_err(|_| malformed("script not utf-8"))?
                    .to_string();
                Frame::Submit {
                    script,
                    timeout_ms,
                    tenant,
                    key,
                    fault,
                }
            }
            TAG_ACCEPTED => Frame::Accepted { run_id: take_u64(p)? },
            TAG_ATTACH => Frame::Attach { run_id: take_u64(p)? },
            TAG_REJECTED => {
                let code = take_u8(p)?;
                let active = take_u32(p)?;
                let queued = take_u32(p)?;
                let reason = std::str::from_utf8(p)
                    .map_err(|_| malformed("reason not utf-8"))?
                    .to_string();
                Frame::Rejected {
                    code,
                    active,
                    queued,
                    reason,
                }
            }
            TAG_STDOUT => Frame::Stdout(p.to_vec()),
            TAG_STDERR => Frame::Stderr(p.to_vec()),
            TAG_DONE => {
                let status = take_u32(p)? as i32;
                let aborted = match take_u8(p)? {
                    0 => None,
                    1 => Some(
                        std::str::from_utf8(p)
                            .map_err(|_| malformed("abort reason not utf-8"))?
                            .to_string(),
                    ),
                    _ => return Err(malformed("bad abort flag")),
                };
                Frame::Done { status, aborted }
            }
            other => return Err(malformed(&format!("unknown tag {other}"))),
        })
    }
}

/// Writes one frame (tag, length, payload) and flushes.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> io::Result<()> {
    let payload = frame.payload();
    if payload.len() as u64 > MAX_FRAME as u64 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "frame exceeds MAX_FRAME",
        ));
    }
    let mut head = [0u8; 5];
    head[0] = frame.tag();
    head[1..5].copy_from_slice(&(payload.len() as u32).to_be_bytes());
    w.write_all(&head)?;
    w.write_all(&payload)?;
    w.flush()
}

/// Reads one frame. `Ok(None)` means the peer closed the connection
/// cleanly at a frame boundary; EOF *inside* a frame is an error, as is
/// a length prefix beyond [`MAX_FRAME`].
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Frame>> {
    let mut head = [0u8; 5];
    let mut got = 0;
    while got < head.len() {
        match r.read(&mut head[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => return Err(malformed("eof inside frame header")),
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_be_bytes(head[1..5].try_into().unwrap());
    if len > MAX_FRAME {
        return Err(malformed("length prefix exceeds MAX_FRAME"));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Frame::decode(head[0], &payload).map(Some)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(f: Frame) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &f).unwrap();
        let back = read_frame(&mut buf.as_slice()).unwrap().unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn every_frame_round_trips() {
        round_trip(Frame::Submit {
            script: "cat /data/in | sort -u > /out".to_string(),
            timeout_ms: 2500,
            tenant: "tenant-a".to_string(),
            key: "nightly-etl-42".to_string(),
            fault: Some("read-error:/data/in:4096".to_string()),
        });
        round_trip(Frame::Submit {
            script: String::new(),
            timeout_ms: 0,
            tenant: String::new(),
            key: String::new(),
            fault: None,
        });
        round_trip(Frame::Accepted { run_id: u64::MAX });
        round_trip(Frame::Attach { run_id: 7 });
        round_trip(Frame::Rejected {
            code: reject::OVERLOADED,
            active: 4,
            queued: 8,
            reason: "admission queue full (8/8)".to_string(),
        });
        round_trip(Frame::Stdout(b"hello\n".to_vec()));
        round_trip(Frame::Stderr(Vec::new()));
        round_trip(Frame::Done {
            status: -1,
            aborted: Some("deadline: wall-clock limit 2500ms exceeded".to_string()),
        });
        round_trip(Frame::Done {
            status: 0,
            aborted: None,
        });
    }

    #[test]
    fn multiple_frames_stream_in_order() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Frame::Accepted { run_id: 1 }).unwrap();
        write_frame(&mut buf, &Frame::Stdout(b"x".to_vec())).unwrap();
        write_frame(&mut buf, &Frame::Done { status: 0, aborted: None }).unwrap();
        let mut r = buf.as_slice();
        assert_eq!(read_frame(&mut r).unwrap(), Some(Frame::Accepted { run_id: 1 }));
        assert_eq!(read_frame(&mut r).unwrap(), Some(Frame::Stdout(b"x".to_vec())));
        assert!(matches!(read_frame(&mut r).unwrap(), Some(Frame::Done { .. })));
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean eof after last frame");
    }

    #[test]
    fn corrupt_input_errors_instead_of_allocating() {
        // Length prefix far past MAX_FRAME must be refused before any
        // allocation happens.
        let mut buf = vec![TAG_STDOUT];
        buf.extend_from_slice(&u32::MAX.to_be_bytes());
        assert!(read_frame(&mut buf.as_slice()).is_err());
        // EOF mid-frame is an error, not a silent None.
        let mut ok = Vec::new();
        write_frame(&mut ok, &Frame::Stdout(b"abcdef".to_vec())).unwrap();
        assert!(read_frame(&mut &ok[..ok.len() - 2]).is_err());
        // Unknown tag.
        let mut bad = vec![99u8, 0, 0, 0, 0];
        assert!(read_frame(&mut bad.as_slice()).is_err());
        bad[0] = TAG_SUBMIT; // empty submit payload: truncated u64
        assert!(read_frame(&mut bad.as_slice()).is_err());
    }

    fn splitmix64(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^ (x >> 31)
    }

    /// Seeded randomized robustness sweep: every mutation of a valid
    /// frame stream — truncation, byte flips, oversized length prefixes,
    /// garbage tags — must yield a clean `Err` or a decoded frame, never
    /// a panic, and an oversized length prefix must be refused before
    /// the payload buffer is allocated.
    #[test]
    fn randomized_corruption_never_panics() {
        let corpus: Vec<Frame> = vec![
            Frame::Submit {
                script: "cat /in | tr a-z A-Z | sort > /out".to_string(),
                timeout_ms: 1234,
                tenant: "t%0A weird".to_string(),
                key: "key with spaces %25".to_string(),
                fault: Some("stall-read:/in:50".to_string()),
            },
            Frame::Accepted { run_id: 3 },
            Frame::Attach { run_id: 9 },
            Frame::Rejected {
                code: reject::QUOTA,
                active: 2,
                queued: 3,
                reason: "quota".to_string(),
            },
            Frame::Stdout(b"line one\nline two\n".to_vec()),
            Frame::Stderr(b"oops".to_vec()),
            Frame::Done {
                status: 143,
                aborted: Some("drain".to_string()),
            },
        ];
        let mut clean = Vec::new();
        for f in &corpus {
            write_frame(&mut clean, f).unwrap();
        }

        let mut rng = 0x6a61_7368_u64; // deterministic: "jash"
        let mut next = |bound: usize| {
            rng = splitmix64(rng);
            (rng % bound.max(1) as u64) as usize
        };

        for round in 0..2000 {
            let mut buf = clean.clone();
            match round % 4 {
                // Torn stream: cut anywhere, including mid-header.
                0 => buf.truncate(next(buf.len() + 1)),
                // Single byte flip anywhere (tag, length, payload).
                1 => {
                    let i = next(buf.len());
                    buf[i] ^= (1 + next(255)) as u8;
                }
                // Oversized length prefix spliced over a real header.
                2 => {
                    let i = next(buf.len().saturating_sub(5));
                    let huge = MAX_FRAME as u64 + 1 + next(1 << 30) as u64;
                    buf[i + 1..i + 5].copy_from_slice(&(huge as u32).to_be_bytes());
                }
                // Garbage tag with a short payload of random bytes.
                _ => {
                    let mut junk = vec![next(256) as u8, 0, 0, 0, next(32) as u8];
                    let len = junk[4] as usize;
                    for _ in 0..len {
                        junk.push(next(256) as u8);
                    }
                    buf = junk;
                }
            }
            // Drain the stream until error or clean EOF. The only
            // assertion is "no panic, no runaway allocation": a frame
            // whose length prefix exceeds MAX_FRAME must error before
            // its payload is reserved.
            let mut r = buf.as_slice();
            for _ in 0..corpus.len() + 2 {
                match read_frame(&mut r) {
                    Ok(Some(_)) => continue,
                    Ok(None) | Err(_) => break,
                }
            }
        }

        // Explicit oversized-prefix check: the reader must reject the
        // header without allocating the advertised 4 GiB payload.
        let mut huge = vec![TAG_STDOUT];
        huge.extend_from_slice(&(MAX_FRAME + 1).to_be_bytes());
        huge.extend_from_slice(&[0u8; 16]);
        let err = read_frame(&mut huge.as_slice()).unwrap_err();
        assert!(err.to_string().contains("MAX_FRAME"), "got: {err}");
    }
}
