//! Makespan estimation for dataflow plans.
//!
//! The model is deliberately simple (it has to run in the JIT's hot
//! path) but captures the three effects Figure 1 turns on:
//!
//! 1. **pipelined CPU**: a streaming chain's CPU time is governed by its
//!    slowest stage; data parallelism divides stage time by the width but
//!    cannot beat the core count;
//! 2. **serial disk**: a single device services all IO — disk time is the
//!    *sum* of every byte moved, regardless of parallelism, with
//!    IOPS/burst behavior matching `jash_io::DiskModel`;
//! 3. **buffering amplification**: a plan that materializes split chunks
//!    (the PaSh baseline) moves every input byte through the disk two
//!    extra times.

use crate::calibrate::Calibration;
use crate::machine::{default_cpu_rate, MachineProfile};
use jash_dataflow::{Dfg, NodeKind};
use jash_io::disk::IO_REQUEST_BYTES;
use jash_io::DiskProfile;
use std::time::Duration;

/// A candidate execution plan for a region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanShape {
    /// Data-parallel width (1 = sequential).
    pub width: usize,
    /// Whether split chunks are materialized through the disk.
    pub buffered: bool,
    /// Whether maximal fusible runs execute as single-pass fused kernels
    /// (zero intermediate channels) instead of channel-per-stage threads.
    pub fused: bool,
}

impl PlanShape {
    /// The do-nothing plan: sequential, streaming, unfused.
    pub fn sequential() -> PlanShape {
        PlanShape {
            width: 1,
            buffered: false,
            fused: false,
        }
    }
}

/// What the estimator needs to know about the region's input.
#[derive(Debug, Clone, Copy, Default)]
pub struct InputInfo {
    /// Total bytes across all region input files.
    pub total_bytes: u64,
}

/// Unscaled seconds a device needs to move `bytes` (reads and writes use
/// the respective throughput), starting with `burst_left` burst IOs.
/// Returns the elapsed seconds and the remaining burst credit.
pub fn disk_seconds(
    disk: &DiskProfile,
    bytes: u64,
    write: bool,
    burst_left: f64,
) -> (f64, f64) {
    if bytes == 0 {
        return (0.0, burst_left);
    }
    let mbps = if write {
        disk.write_mbps
    } else {
        disk.read_mbps
    };
    let throughput_s = bytes as f64 / (mbps * 1024.0 * 1024.0);
    let ios = bytes.div_ceil(IO_REQUEST_BYTES) as f64;
    let burst_ios = burst_left.min(ios);
    let base_ios = ios - burst_ios;
    let iops_s = burst_ios / disk.burst_iops + base_ios / disk.base_iops;
    (throughput_s.max(iops_s), burst_left - burst_ios)
}

/// Estimated makespan for running `dfg`'s region under `shape`.
///
/// `input` describes the bytes entering through `ReadFile` nodes; stage
/// sizes are approximated as the input size flowing through each command
/// (upper bound — filters shrink data, making parallel plans look
/// slightly worse, which errs on the safe side for the no-regression
/// guard).
pub fn estimate(
    dfg: &Dfg,
    machine: &MachineProfile,
    input: InputInfo,
    shape: PlanShape,
) -> Duration {
    estimate_with(dfg, machine, input, shape, None)
}

/// [`estimate`] with optional profile-fed rates: commands with a
/// calibrated throughput (learned from a prior run's trace) use it in
/// place of the static table, so the model tracks what this workload
/// actually measured rather than what the table assumes.
pub fn estimate_with(
    dfg: &Dfg,
    machine: &MachineProfile,
    input: InputInfo,
    shape: PlanShape,
    calibration: Option<&Calibration>,
) -> Duration {
    let bytes = input.total_bytes.max(1);
    let mut burst = machine.disk.burst_credit_ios;

    // Disk: read every input byte once...
    let (mut disk_s, b) = disk_seconds(&machine.disk, bytes, false, burst);
    burst = b;
    // ...plus write+read amplification for buffered splits...
    if shape.buffered && shape.width > 1 {
        let (w, b) = disk_seconds(&machine.disk, bytes, true, burst);
        burst = b;
        let (r, b) = disk_seconds(&machine.disk, bytes, false, burst);
        burst = b;
        disk_s += w + r;
    }
    // ...plus any file writes at the tail.
    let writes: u64 = dfg
        .node_ids()
        .filter(|n| matches!(dfg.node(*n).kind, NodeKind::WriteFile { .. }))
        .count() as u64;
    if writes > 0 {
        let (w, _) = disk_seconds(&machine.disk, bytes / 2, true, burst);
        disk_s += w * writes as f64;
    }

    // CPU: slowest stage governs the pipeline; splittable stages divide
    // by the effective width.
    let effective_width = shape.width.min(machine.cores).max(1);
    // Under a fused plan, each maximal fusible run executes as ONE
    // virtual stage; its members drop out of the per-stage bottleneck.
    let runs = if shape.fused {
        jash_dataflow::fusible_runs(dfg)
    } else {
        Vec::new()
    };
    let fused_members: std::collections::HashSet<jash_dataflow::NodeId> =
        runs.iter().flatten().copied().collect();
    let mut cpu_bottleneck = 0.0f64;
    let mut node_count = 0usize;
    for n in dfg.node_ids() {
        if !jash_dataflow::is_live(dfg, n) || fused_members.contains(&n) {
            continue;
        }
        node_count += 1;
        if let NodeKind::Command { name, spec, .. } = &dfg.node(n).kind {
            let rate = calibration
                .and_then(|c| c.rate(name))
                .unwrap_or_else(|| default_cpu_rate(name));
            let mut stage_s = bytes as f64 / rate;
            if spec.class.is_splittable() && effective_width > 1 {
                stage_s /= effective_width as f64;
            }
            cpu_bottleneck = cpu_bottleneck.max(stage_s);
        }
    }
    for run in &runs {
        // One virtual stage per kernel: a calibrated `fused` rate when a
        // prior trace measured one, else 2× the harmonic composition of
        // the member rates (same formula as `jash_io::fused_cpu_rate`, so
        // the planner's belief matches the simulation).
        node_count += 1;
        let rate = calibration.and_then(|c| c.rate("fused")).unwrap_or_else(|| {
            let inv: f64 = run
                .iter()
                .filter_map(|&n| match &dfg.node(n).kind {
                    NodeKind::Command { name, .. } => Some(1.0 / default_cpu_rate(name)),
                    _ => None,
                })
                .sum();
            if inv <= 0.0 {
                default_cpu_rate("")
            } else {
                2.0 / inv
            }
        });
        let mut stage_s = bytes as f64 / rate;
        let all_splittable = run.iter().all(|&n| match &dfg.node(n).kind {
            NodeKind::Command { spec, .. } => spec.class.is_splittable(),
            _ => false,
        });
        if all_splittable && effective_width > 1 {
            stage_s /= effective_width as f64;
        }
        cpu_bottleneck = cpu_bottleneck.max(stage_s);
    }
    // Aggregation: merging k sorted/partial streams is a linear pass that
    // pipelines with everything else — one more stage in the max.
    let merge_s = if shape.width > 1 {
        bytes as f64 / (200.0 * 1024.0 * 1024.0)
    } else {
        0.0
    };
    // Thread/plumbing startup.
    let startup_s = 0.002 * (node_count + shape.width * 2) as f64;

    let total = disk_s.max(cpu_bottleneck).max(merge_s) + startup_s;
    Duration::from_secs_f64(total * machine.disk.time_scale.max(1e-9))
}

#[cfg(test)]
mod tests {
    use super::*;
    use jash_dataflow::{compile, ExpandedCommand, Region};
    use jash_spec::Registry;

    fn sort_words_dfg() -> Dfg {
        let cmds = vec![
            ExpandedCommand::new("cat", &["/in"]),
            ExpandedCommand::new("tr", &["-cs", "A-Za-z", "\\n"]),
            ExpandedCommand::new("sort", &[]),
        ];
        compile(&Region { commands: cmds }, &Registry::builtin())
            .unwrap()
            .dfg
    }

    const GB: u64 = 1024 * 1024 * 1024;

    #[test]
    fn disk_seconds_burst_then_base() {
        let d = jash_io::DiskProfile::gp2_standard();
        // Within burst: throughput-bound.
        let (fast, left) = disk_seconds(&d, 256 * 1024 * 100, false, d.burst_credit_ios);
        assert!(left < d.burst_credit_ios);
        // Past burst: IOPS-bound and much slower per byte.
        let (slow, _) = disk_seconds(&d, 256 * 1024 * 100, false, 0.0);
        assert!(slow > fast * 5.0, "fast {fast} slow {slow}");
    }

    #[test]
    fn parallel_helps_on_fast_disk() {
        let dfg = sort_words_dfg();
        let m = MachineProfile::io_opt_ec2();
        let input = InputInfo { total_bytes: 3 * GB };
        let seq = estimate(&dfg, &m, input, PlanShape { width: 1, buffered: false, fused: false });
        let par = estimate(&dfg, &m, input, PlanShape { width: 8, buffered: true, fused: false });
        assert!(par < seq, "par {par:?} should beat seq {seq:?} on gp3");
    }

    #[test]
    fn buffered_parallel_regresses_on_slow_disk() {
        // The Figure 1 crossover: on gp2, PaSh's buffered plan is WORSE
        // than sequential.
        let dfg = sort_words_dfg();
        let m = MachineProfile::standard_ec2();
        let input = InputInfo { total_bytes: 3 * GB };
        let seq = estimate(&dfg, &m, input, PlanShape { width: 1, buffered: false, fused: false });
        let pash = estimate(&dfg, &m, input, PlanShape { width: 8, buffered: true, fused: false });
        assert!(
            pash > seq,
            "buffered parallel {pash:?} must regress behind sequential {seq:?} on gp2"
        );
        // And the unbuffered (Jash) plan does not meaningfully regress
        // (only thread-startup noise separates it from sequential when
        // the disk is the bottleneck).
        let jash = estimate(&dfg, &m, input, PlanShape { width: 8, buffered: false, fused: false });
        assert!(jash.as_secs_f64() <= seq.as_secs_f64() * 1.01);
    }

    #[test]
    fn width_capped_by_cores() {
        let dfg = sort_words_dfg();
        let m = MachineProfile::io_opt_ec2();
        let input = InputInfo { total_bytes: GB };
        let at_cores = estimate(&dfg, &m, input, PlanShape { width: 8, buffered: false, fused: false });
        let beyond = estimate(&dfg, &m, input, PlanShape { width: 64, buffered: false, fused: false });
        assert!(beyond >= at_cores);
    }

    fn fusible_chain_dfg() -> Dfg {
        let cmds = vec![
            ExpandedCommand::new("cat", &["/in"]),
            ExpandedCommand::new("tr", &["A-Z", "a-z"]),
            ExpandedCommand::new("grep", &["x"]),
            ExpandedCommand::new("cut", &["-c", "1-20"]),
        ];
        compile(&Region { commands: cmds }, &Registry::builtin())
            .unwrap()
            .dfg
    }

    #[test]
    fn fusion_lowers_cpu_bound_estimate() {
        // tr|grep|cut: unfused bottleneck is grep (120 MB/s); the fused
        // kernel composes to ~141 MB/s, so the fused plan must win when
        // the CPU, not the disk, is the binding constraint.
        let dfg = fusible_chain_dfg();
        let m = MachineProfile::io_opt_ec2();
        let input = InputInfo { total_bytes: 3 * GB };
        let unfused = estimate(&dfg, &m, input, PlanShape { width: 1, buffered: false, fused: false });
        let fused = estimate(&dfg, &m, input, PlanShape { width: 1, buffered: false, fused: true });
        assert!(fused < unfused, "fused {fused:?} vs unfused {unfused:?}");
    }

    #[test]
    fn calibrated_fused_rate_overrides_composition() {
        let dfg = fusible_chain_dfg();
        let m = MachineProfile::io_opt_ec2();
        let input = InputInfo { total_bytes: 3 * GB };
        let shape = PlanShape { width: 1, buffered: false, fused: true };
        // A measured fused-kernel rate far above the harmonic default
        // must shrink the estimate accordingly.
        let mut cal = Calibration::default();
        cal.set_rate("fused", 2000.0 * 1024.0 * 1024.0);
        let calibrated = estimate_with(&dfg, &m, input, shape, Some(&cal));
        let default = estimate_with(&dfg, &m, input, shape, None);
        assert!(calibrated < default, "{calibrated:?} vs {default:?}");
    }

    #[test]
    fn tiny_inputs_not_worth_parallelizing() {
        let dfg = sort_words_dfg();
        let m = MachineProfile::io_opt_ec2();
        let input = InputInfo { total_bytes: 4096 };
        let seq = estimate(&dfg, &m, input, PlanShape { width: 1, buffered: false, fused: false });
        let par = estimate(&dfg, &m, input, PlanShape { width: 8, buffered: false, fused: false });
        assert!(par > seq, "startup overhead should dominate tiny inputs");
    }
}
