//! Machine profiles: the resources the optimizer reasons about.
//!
//! The paper's §3.2 point is that "the entire population of shell users
//! ranges from owners of palm-sized computers to administrators of
//! supercomputers" — so the optimizer is parameterized by an explicit
//! [`MachineProfile`] rather than baked-in assumptions.

use jash_io::DiskProfile;

/// The resources available to an execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineProfile {
    /// Worker cores usable for data parallelism.
    pub cores: usize,
    /// The disk the virtual filesystem models.
    pub disk: DiskProfile,
    /// Memory budget in MiB (bounds in-memory buffering).
    pub mem_mb: u64,
}

impl MachineProfile {
    /// The paper's *Standard* instance: c5.2xlarge (8 vCPU) + gp2.
    pub fn standard_ec2() -> Self {
        MachineProfile {
            cores: 8,
            disk: DiskProfile::gp2_standard(),
            mem_mb: 16 * 1024,
        }
    }

    /// The paper's *IO-opt* instance: c5.2xlarge + gp3 (15 K IOPS).
    pub fn io_opt_ec2() -> Self {
        MachineProfile {
            cores: 8,
            disk: DiskProfile::gp3_io_opt(),
            mem_mb: 16 * 1024,
        }
    }

    /// A developer laptop with a fast local SSD.
    pub fn laptop() -> Self {
        MachineProfile {
            cores: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            disk: DiskProfile::ramdisk(),
            mem_mb: 8 * 1024,
        }
    }

    /// A resource-constrained single-board computer.
    pub fn palm_sized() -> Self {
        MachineProfile {
            cores: 2,
            disk: DiskProfile {
                read_mbps: 40.0,
                write_mbps: 20.0,
                base_iops: 500.0,
                burst_iops: 500.0,
                burst_credit_ios: 0.0,
                time_scale: 1.0,
            },
            mem_mb: 512,
        }
    }

    /// Returns the profile with the disk's time scale replaced (used by
    /// benchmarks to shrink wall-clock time while preserving ratios).
    pub fn with_time_scale(mut self, scale: f64) -> Self {
        self.disk.time_scale = scale;
        self
    }
}

/// Per-command CPU throughput estimates, bytes/second on one core.
///
/// Delegates to [`jash_io::cpu_rate`] so the planner's beliefs and the
/// CPU simulation (when active) are one table: what the planner predicts
/// is what the simulated machine delivers, and on real hardware both are
/// calibration constants whose *relative* magnitudes drive plan choice.
pub fn default_cpu_rate(command: &str) -> f64 {
    jash_io::cpu_rate(command)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_differ_where_it_matters() {
        let std = MachineProfile::standard_ec2();
        let opt = MachineProfile::io_opt_ec2();
        assert_eq!(std.cores, opt.cores);
        assert!(std.disk.base_iops < opt.disk.base_iops / 10.0);
    }

    #[test]
    fn relative_rates_sane() {
        assert!(default_cpu_rate("cat") > default_cpu_rate("grep"));
        assert!(default_cpu_rate("grep") > default_cpu_rate("sort"));
        assert!(default_cpu_rate("unknown-thing") > 0.0);
    }

    #[test]
    fn time_scale_override() {
        let m = MachineProfile::standard_ec2().with_time_scale(0.01);
        assert_eq!(m.disk.time_scale, 0.01);
    }
}
