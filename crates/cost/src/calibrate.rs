//! Profile-fed calibration: closing the loop from trace to planner.
//!
//! The static cost model guesses per-command throughput from a fixed
//! table ([`crate::default_cpu_rate`]). A recorded trace knows better: every
//! `node` span carries the bytes a command actually moved and the wall
//! time it took. [`Calibration::from_records`] distills those spans into
//! per-command rates, and [`crate::choose_plan_with`] substitutes them for the
//! table — so a second run plans with the throughput the first run
//! *measured*, not the throughput the table assumed.
//!
//! Time scaling: the simulated machine stretches modeled seconds by
//! `DiskProfile::time_scale` before sleeping, so a host-observed rate is
//! the unscaled rate *divided* by the scale. [`Calibration::with_time_scale`]
//! multiplies the observed rates back up so they are comparable with the
//! planner's unscaled table.

use jash_trace::Record;
use std::collections::BTreeMap;

/// Per-command CPU throughput learned from a prior run's trace,
/// bytes/second on one core in the planner's unscaled time base.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Calibration {
    rates: BTreeMap<String, f64>,
}

impl Calibration {
    /// An empty calibration (the planner falls back to its table for
    /// every command).
    pub fn new() -> Self {
        Calibration::default()
    }

    /// Sets (or replaces) the learned rate for `command`.
    pub fn set_rate(&mut self, command: &str, bytes_per_sec: f64) {
        if bytes_per_sec.is_finite() && bytes_per_sec > 0.0 {
            self.rates.insert(command.to_string(), bytes_per_sec);
        }
    }

    /// The learned rate for `command`, when one was observed.
    pub fn rate(&self, command: &str) -> Option<f64> {
        self.rates.get(command).copied()
    }

    /// Number of commands with learned rates.
    pub fn len(&self) -> usize {
        self.rates.len()
    }

    /// Whether nothing was learned.
    pub fn is_empty(&self) -> bool {
        self.rates.is_empty()
    }

    /// Commands with learned rates, sorted.
    pub fn commands(&self) -> impl Iterator<Item = &str> {
        self.rates.keys().map(String::as_str)
    }

    /// Distills per-command throughput from trace records.
    ///
    /// Every `node` span with a `cmd` attribute contributes its moved
    /// bytes (the larger of `bytes_in`/`bytes_out`, since pure sources
    /// read files directly and report no edge input) and its wall time.
    /// Rates are throughput-weighted per command: total bytes over total
    /// seconds, so long nodes dominate short noisy ones.
    pub fn from_records(records: &[Record]) -> Self {
        let mut bytes: BTreeMap<String, f64> = BTreeMap::new();
        let mut secs: BTreeMap<String, f64> = BTreeMap::new();
        for r in records {
            let Record::Span { kind, wall_us, .. } = r else {
                continue;
            };
            if kind != "node" {
                continue;
            }
            let Some(cmd) = r.attr_str("cmd") else {
                continue;
            };
            let moved = r
                .attr_u64("bytes_in")
                .unwrap_or(0)
                .max(r.attr_u64("bytes_out").unwrap_or(0));
            if moved == 0 || *wall_us == 0 {
                continue;
            }
            *bytes.entry(cmd.to_string()).or_default() += moved as f64;
            *secs.entry(cmd.to_string()).or_default() += *wall_us as f64 / 1e6;
        }
        let mut cal = Calibration::new();
        for (cmd, b) in bytes {
            let s = secs.get(&cmd).copied().unwrap_or(0.0);
            if s > 0.0 {
                cal.set_rate(&cmd, b / s);
            }
        }
        cal
    }

    /// Rebases host-observed rates into the planner's unscaled time base:
    /// a machine that stretches modeled time by `scale` makes commands
    /// *look* `scale`× slower than the model says, so the observed rates
    /// are multiplied by `scale` to compare with the unscaled table.
    #[must_use]
    pub fn with_time_scale(mut self, scale: f64) -> Self {
        if scale.is_finite() && scale > 0.0 {
            for rate in self.rates.values_mut() {
                *rate *= scale;
            }
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{choose_plan, choose_plan_with, InputInfo, MachineProfile, PlannerOptions};
    use jash_dataflow::{compile, ExpandedCommand, Region};
    use jash_spec::Registry;
    use jash_trace::AttrValue;

    fn node_span(cmd: &str, bytes_in: u64, wall_us: u64) -> Record {
        Record::Span {
            kind: "node".into(),
            id: 0,
            parent: Some(1),
            name: cmd.into(),
            start_us: 0,
            wall_us,
            attrs: vec![
                ("cmd".into(), AttrValue::Str(cmd.into())),
                ("bytes_in".into(), AttrValue::UInt(bytes_in)),
                ("bytes_out".into(), AttrValue::UInt(bytes_in)),
            ],
        }
    }

    #[test]
    fn learns_weighted_rates_from_node_spans() {
        // Two sort nodes: 1 MB in 1 s and 3 MB in 1 s → 2 MB/s combined.
        let records = vec![
            node_span("sort", 1 << 20, 1_000_000),
            node_span("sort", 3 << 20, 1_000_000),
            node_span("cat", 8 << 20, 500_000),
        ];
        let cal = Calibration::from_records(&records);
        assert_eq!(cal.len(), 2);
        let sort = cal.rate("sort").unwrap();
        assert!((sort - 2.0 * (1 << 20) as f64).abs() < 1.0, "{sort}");
        let cat = cal.rate("cat").unwrap();
        assert!((cat - 16.0 * (1 << 20) as f64).abs() < 1.0, "{cat}");
        assert!(cal.rate("grep").is_none());
    }

    #[test]
    fn ignores_degenerate_observations() {
        let records = vec![
            node_span("tr", 0, 1_000_000),
            node_span("uniq", 1 << 20, 0),
            Record::Counter {
                name: "memo.hits".into(),
                value: 3,
            },
        ];
        assert!(Calibration::from_records(&records).is_empty());
    }

    #[test]
    fn time_scale_rebases_observed_rates() {
        let mut cal = Calibration::new();
        cal.set_rate("sort", 100.0);
        let cal = cal.with_time_scale(5.0);
        assert_eq!(cal.rate("sort"), Some(500.0));
    }

    #[test]
    fn calibration_changes_a_width_decision() {
        // The acceptance loop: on a fast disk with a big input the static
        // table projects a CPU bottleneck worth parallelizing…
        let cmds = vec![
            ExpandedCommand::new("cat", &["/in"]),
            ExpandedCommand::new("tr", &["-cs", "A-Za-z", "\\n"]),
            ExpandedCommand::new("sort", &[]),
        ];
        let dfg = compile(&Region { commands: cmds }, &Registry::builtin())
            .unwrap()
            .dfg;
        let m = MachineProfile::io_opt_ec2();
        let input = InputInfo {
            total_bytes: 3 << 30,
        };
        let opts = PlannerOptions::default();
        let base = choose_plan(&dfg, &m, input, &opts);
        assert!(base.transform(), "static table should parallelize");

        // …but a trace that measured every stage running far faster than
        // the table (CPU never the bottleneck) leaves nothing for width
        // to win: the serial disk dominates, and the calibrated planner
        // declines the rewrite the static table would have applied.
        let mut cal = Calibration::new();
        for c in ["cat", "tr", "sort"] {
            cal.set_rate(c, 1e12);
        }
        let tuned = choose_plan_with(&dfg, &m, input, &opts, Some(&cal));
        assert!(
            !tuned.transform(),
            "calibrated rates must flip the decision: {tuned:?}"
        );
        assert_ne!(base.shape.width, tuned.shape.width);
    }
}
