//! Cost-aware planning for dataflow regions — the "resource-aware
//! optimization procedure" of the HotOS '21 paper (§3.2).
//!
//! Given a compiled region, a [`MachineProfile`], and the input size
//! (which the Jash JIT reads off the live filesystem), [`choose_plan`]
//! selects a parallelization width and buffering strategy whose projected
//! makespan beats the sequential plan by a safety margin — or refuses to
//! transform ("performance benefits *and no regressions!*"). The PaSh
//! baseline's fixed, resource-oblivious plan is exposed as
//! [`pash_aot_plan`] so benchmarks can reproduce Figure 1.
//!
//! # Examples
//!
//! ```
//! use jash_cost::{choose_plan, InputInfo, MachineProfile, PlannerOptions};
//! use jash_dataflow::{compile, ExpandedCommand, Region};
//! use jash_spec::Registry;
//!
//! let region = Region {
//!     commands: vec![
//!         ExpandedCommand::new("cat", &["/words"]),
//!         ExpandedCommand::new("sort", &[]),
//!     ],
//! };
//! let compiled = compile(&region, &Registry::builtin()).unwrap();
//! let decision = choose_plan(
//!     &compiled.dfg,
//!     &MachineProfile::io_opt_ec2(),
//!     InputInfo { total_bytes: 3 << 30 },
//!     &PlannerOptions::default(),
//! );
//! assert!(decision.transform());
//! ```

pub mod calibrate;
pub mod estimate;
pub mod machine;
pub mod optimize;

pub use calibrate::Calibration;
pub use estimate::{disk_seconds, estimate, estimate_with, InputInfo, PlanShape};
pub use machine::{default_cpu_rate, MachineProfile};
pub use optimize::{choose_plan, choose_plan_with, pash_aot_plan, Decision, PlannerOptions};
