//! The resource-aware optimization procedure (paper §3.2).
//!
//! "An extensible graph rewriting system that applies transformations with
//! certain performance objectives within a specified cost budget": the
//! optimizer enumerates candidate plan shapes (widths × buffering),
//! estimates each against the live [`MachineProfile`] and input size, and
//! picks the best — refusing to transform at all unless the projected
//! speedup clears the no-regression margin ("no regressions!").

use crate::calibrate::Calibration;
use crate::estimate::{estimate_with, InputInfo, PlanShape};
use crate::machine::MachineProfile;
use jash_dataflow::Dfg;
use std::time::Duration;

/// Tunables for a planning session.
#[derive(Debug, Clone, Copy)]
pub struct PlannerOptions {
    /// Maximum candidate evaluations (the paper's "cost budget" for the
    /// rewriting system itself).
    pub budget: usize,
    /// Required estimated speedup before a rewrite is applied; `1.15`
    /// means at least 15 % projected improvement.
    pub min_speedup: f64,
    /// Whether plans may materialize split chunks through the disk.
    pub allow_buffered: bool,
    /// Whether fusible runs may collapse into single-pass kernels
    /// (`--no-fuse` clears this).
    pub allow_fusion: bool,
    /// Consider only fused candidates and keep fusion even when the
    /// no-regression guard declines (benchmark sweeps and tests).
    pub force_fusion: bool,
    /// Bypass estimation and force this width (benchmark sweeps and
    /// tests; `None` for normal operation).
    pub force_width: Option<usize>,
}

impl Default for PlannerOptions {
    fn default() -> Self {
        PlannerOptions {
            budget: 16,
            min_speedup: 1.15,
            allow_buffered: false,
            allow_fusion: true,
            force_fusion: false,
            force_width: None,
        }
    }
}

impl PlannerOptions {
    /// These options tightened for aggregate pressure `pressure` ∈ [0, 1]
    /// from *other* runs sharing the machine (a multi-run host like
    /// `jash serve` computes it from worker occupancy, queue depth, and
    /// the shared disk/CPU models).
    ///
    /// One run's widening math assumes the cores and disk tokens it is
    /// promised are actually idle; under cross-run load they are not, so
    /// the projected speedup is an overestimate. Rather than model every
    /// concurrent run, the planner simply raises the bar: the required
    /// speedup grows linearly with pressure (up to 3× the configured
    /// margin), and near saturation widening is declined outright —
    /// "first, do no harm" applied fleet-wide.
    #[must_use]
    pub fn under_pressure(&self, pressure: f64) -> PlannerOptions {
        let p = pressure.clamp(0.0, 1.0);
        if p == 0.0 {
            return *self;
        }
        let mut opts = *self;
        opts.min_speedup = self.min_speedup.max(1.0) * (1.0 + 2.0 * p);
        if p >= 0.95 {
            // Saturated: run sequential, don't fight the other runs.
            opts.force_width = Some(1);
        }
        opts
    }
}

/// The chosen plan and its projections.
#[derive(Debug, Clone, Copy)]
pub struct Decision {
    /// The selected shape (`width == 1` means "leave it sequential").
    pub shape: PlanShape,
    /// Projected sequential makespan.
    pub est_sequential: Duration,
    /// Projected makespan under the chosen shape.
    pub est_chosen: Duration,
    /// Candidates evaluated.
    pub evaluated: usize,
}

impl Decision {
    /// Whether the optimizer decided to transform at all (widening,
    /// kernel fusion, or both).
    pub fn transform(&self) -> bool {
        self.shape.width > 1 || self.shape.fused
    }

    /// Projected speedup of the chosen plan.
    pub fn projected_speedup(&self) -> f64 {
        self.est_sequential.as_secs_f64() / self.est_chosen.as_secs_f64().max(1e-12)
    }
}

/// Chooses the best plan for `dfg` on `machine` given `input`.
pub fn choose_plan(
    dfg: &Dfg,
    machine: &MachineProfile,
    input: InputInfo,
    opts: &PlannerOptions,
) -> Decision {
    choose_plan_with(dfg, machine, input, opts, None)
}

/// [`choose_plan`] with optional profile-fed calibration: per-command
/// rates learned from a prior run's trace replace the static table, so
/// the planner's width decision reflects measured throughput.
pub fn choose_plan_with(
    dfg: &Dfg,
    machine: &MachineProfile,
    input: InputInfo,
    opts: &PlannerOptions,
    calibration: Option<&Calibration>,
) -> Decision {
    let seq_shape = PlanShape::sequential();
    let est_sequential = estimate_with(dfg, machine, input, seq_shape, calibration);
    // Fusion is only on the table when the graph actually has a run to
    // fuse; otherwise every fused shape is identical to its unfused twin.
    let fusion_ok = opts.allow_fusion && !jash_dataflow::fusible_runs(dfg).is_empty();

    if let Some(w) = opts.force_width {
        let shape = PlanShape {
            width: w,
            buffered: false,
            fused: fusion_ok && opts.force_fusion,
        };
        return Decision {
            shape,
            est_sequential,
            est_chosen: estimate_with(dfg, machine, input, shape, calibration),
            evaluated: 1,
        };
    }

    let mut widths = vec![2usize, 4, 8, 16, 32];
    widths.retain(|w| *w <= machine.cores.max(2) * 2);
    if !widths.contains(&machine.cores) && machine.cores > 1 {
        widths.push(machine.cores);
    }
    widths.sort_unstable();
    widths.dedup();

    let fused_choices: &[bool] = match (fusion_ok, opts.force_fusion) {
        (true, true) => &[true],
        (true, false) => &[false, true],
        (false, _) => &[false],
    };
    let mut best = Decision {
        shape: seq_shape,
        est_sequential,
        est_chosen: est_sequential,
        evaluated: 1,
    };
    // Width 1 is a real candidate under fusion: a fused sequential plan
    // (zero channels, one pass) can win where widening cannot.
    widths.insert(0, 1);
    for &width in &widths {
        for buffered in [false, true] {
            if buffered && !opts.allow_buffered {
                continue;
            }
            for &fused in fused_choices {
                if width == 1 && (!fused || buffered) {
                    continue; // plain sequential is already `best`'s floor
                }
                if best.evaluated >= opts.budget {
                    return finish(best, opts, fusion_ok);
                }
                let shape = PlanShape { width, buffered, fused };
                let est = estimate_with(dfg, machine, input, shape, calibration);
                best.evaluated += 1;
                if est < best.est_chosen {
                    best.shape = shape;
                    best.est_chosen = est;
                }
            }
        }
    }
    finish(best, opts, fusion_ok)
}

/// Applies the no-regression guard. Widening must clear `min_speedup`;
/// a declined wide plan falls back to plain sequential (fusion rides a
/// width-1 candidate on its own merits next time around). `force_fusion`
/// pins fusion on regardless — benchmark sweeps need the fused engine
/// even where the model declines it.
fn finish(mut d: Decision, opts: &PlannerOptions, fusion_ok: bool) -> Decision {
    if d.shape.width > 1 && d.projected_speedup() < opts.min_speedup {
        d.shape = PlanShape::sequential();
        d.est_chosen = d.est_sequential;
    }
    if fusion_ok && opts.force_fusion {
        d.shape.fused = true;
    }
    d
}

/// The PaSh-style ahead-of-time decision: always parallelize at the core
/// count with disk buffering, never consulting machine resources (the
/// baseline of Figure 1).
pub fn pash_aot_plan(machine: &MachineProfile) -> PlanShape {
    PlanShape {
        width: machine.cores,
        buffered: true,
        fused: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jash_dataflow::{compile, ExpandedCommand, Region};
    use jash_spec::Registry;

    const GB: u64 = 1024 * 1024 * 1024;

    fn dfg() -> Dfg {
        let cmds = vec![
            ExpandedCommand::new("cat", &["/in"]),
            ExpandedCommand::new("tr", &["-cs", "A-Za-z", "\\n"]),
            ExpandedCommand::new("sort", &[]),
        ];
        compile(&Region { commands: cmds }, &Registry::builtin())
            .unwrap()
            .dfg
    }

    #[test]
    fn chooses_parallel_on_big_input_fast_disk() {
        let d = choose_plan(
            &dfg(),
            &MachineProfile::io_opt_ec2(),
            InputInfo { total_bytes: 3 * GB },
            &PlannerOptions::default(),
        );
        assert!(d.transform());
        assert!(d.shape.width >= 4);
        assert!(!d.shape.buffered, "streaming beats buffering");
        assert!(d.projected_speedup() > 1.5);
    }

    #[test]
    fn declines_tiny_inputs() {
        let d = choose_plan(
            &dfg(),
            &MachineProfile::io_opt_ec2(),
            InputInfo { total_bytes: 10_000 },
            &PlannerOptions::default(),
        );
        assert!(!d.transform(), "guard must refuse tiny inputs: {d:?}");
    }

    #[test]
    fn adapts_width_to_slow_disk() {
        // On gp2 the disk dominates; the chosen plan must not regress.
        let d = choose_plan(
            &dfg(),
            &MachineProfile::standard_ec2(),
            InputInfo { total_bytes: 3 * GB },
            &PlannerOptions::default(),
        );
        assert!(d.est_chosen <= d.est_sequential);
    }

    #[test]
    fn respects_budget() {
        let d = choose_plan(
            &dfg(),
            &MachineProfile::io_opt_ec2(),
            InputInfo { total_bytes: GB },
            &PlannerOptions {
                budget: 2,
                ..Default::default()
            },
        );
        assert!(d.evaluated <= 2);
    }

    #[test]
    fn pash_plan_is_resource_oblivious() {
        let std = pash_aot_plan(&MachineProfile::standard_ec2());
        let opt = pash_aot_plan(&MachineProfile::io_opt_ec2());
        assert_eq!(std, opt, "same plan regardless of disk");
        assert!(std.buffered);
        assert_eq!(std.width, 8);
    }

    #[test]
    fn pressure_raises_the_widening_bar_monotonically() {
        let base = PlannerOptions::default();
        assert_eq!(base.under_pressure(0.0).min_speedup, base.min_speedup);
        let mid = base.under_pressure(0.5);
        let high = base.under_pressure(0.9);
        assert!(mid.min_speedup > base.min_speedup);
        assert!(high.min_speedup > mid.min_speedup);
        assert_eq!(mid.force_width, None);
        // Saturation declines widening outright.
        assert_eq!(base.under_pressure(1.0).force_width, Some(1));
        // Out-of-range input is clamped, not amplified.
        assert_eq!(
            base.under_pressure(7.0).min_speedup,
            base.under_pressure(1.0).min_speedup
        );
        // An eager test config (min_speedup = 0) still gets a real bar
        // under pressure instead of a scaled zero.
        let eager = PlannerOptions {
            min_speedup: 0.0,
            ..PlannerOptions::default()
        };
        assert!(eager.under_pressure(0.5).min_speedup >= 1.0);
    }

    fn fusible_dfg() -> Dfg {
        let cmds = vec![
            ExpandedCommand::new("cat", &["/in"]),
            ExpandedCommand::new("tr", &["A-Z", "a-z"]),
            ExpandedCommand::new("grep", &["x"]),
            ExpandedCommand::new("cut", &["-c", "1-20"]),
        ];
        compile(&Region { commands: cmds }, &Registry::builtin())
            .unwrap()
            .dfg
    }

    /// A machine whose disk never bottlenecks, so CPU shape decides.
    fn cpu_bound_machine() -> MachineProfile {
        MachineProfile {
            cores: 8,
            disk: jash_io::DiskProfile::ramdisk(),
            mem_mb: 8 * 1024,
        }
    }

    #[test]
    fn fusion_chosen_when_kernel_throughput_wins() {
        let d = choose_plan(
            &fusible_dfg(),
            &cpu_bound_machine(),
            InputInfo { total_bytes: 3 * GB },
            &PlannerOptions::default(),
        );
        assert!(d.transform());
        assert!(
            d.shape.fused,
            "on a CPU-bound machine the fused kernel beats channel-per-stage: {d:?}"
        );
    }

    #[test]
    fn no_fuse_option_disables_fusion() {
        let opts = PlannerOptions {
            allow_fusion: false,
            ..PlannerOptions::default()
        };
        let d = choose_plan(
            &fusible_dfg(),
            &cpu_bound_machine(),
            InputInfo { total_bytes: 3 * GB },
            &opts,
        );
        assert!(!d.shape.fused, "--no-fuse must suppress fusion: {d:?}");
    }

    #[test]
    fn force_fusion_overrides_the_guard() {
        // Tiny input: the model would decline any transform, but a forced
        // sweep needs the fused engine regardless.
        let opts = PlannerOptions {
            force_fusion: true,
            ..PlannerOptions::default()
        };
        let d = choose_plan(
            &fusible_dfg(),
            &MachineProfile::io_opt_ec2(),
            InputInfo { total_bytes: 10_000 },
            &opts,
        );
        assert!(d.shape.fused && d.transform(), "{d:?}");
        assert_eq!(d.shape.width, 1, "forcing fusion does not force width");
    }

    #[test]
    fn fusion_needs_a_fusible_run() {
        // cat | sort has no two adjacent fusible stages; even forced
        // fusion must leave the shape unfused.
        let opts = PlannerOptions {
            force_fusion: true,
            ..PlannerOptions::default()
        };
        let d = choose_plan(
            &dfg(),
            &MachineProfile::io_opt_ec2(),
            InputInfo { total_bytes: 3 * GB },
            &opts,
        );
        assert!(!d.shape.fused, "{d:?}");
    }

    #[test]
    fn palm_sized_machine_gets_narrow_plans() {
        let d = choose_plan(
            &dfg(),
            &MachineProfile::palm_sized(),
            InputInfo { total_bytes: GB },
            &PlannerOptions::default(),
        );
        assert!(d.shape.width <= 4);
    }
}
