//! Effect analysis for words: may expanding this word change shell state?
//!
//! This is the Smoosh-derived reasoning the paper leans on in §3.2:
//! *"Expanding the parameters before running the pipeline must be done with
//! care; early expansions shouldn't have side-effects."* The Jash JIT calls
//! [`word_effects`] on every word of a candidate dataflow region; only if
//! all words are pure does it expand them early and hand the region to the
//! optimizer.

use jash_ast::{ParamOp, Word, WordPart};
use std::collections::BTreeSet;

/// The result of analyzing a word.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Effects {
    /// Parameters the expansion reads (`$x`, `${x:-d}` …).
    pub reads: BTreeSet<String>,
    /// Why the word is impure; empty means pure.
    pub impurities: Vec<Impurity>,
    /// Whether expansion consults the filesystem (globbing).
    pub reads_fs: bool,
}

impl Effects {
    /// True when early expansion cannot change observable state.
    ///
    /// Note that a pure word may still *read* dynamic state (variables,
    /// the filesystem); purity means re-ordering the expansion earlier in
    /// the same state is sound.
    pub fn is_pure(&self) -> bool {
        self.impurities.is_empty()
    }

    fn merge(&mut self, other: Effects) {
        self.reads.extend(other.reads);
        self.impurities.extend(other.impurities);
        self.reads_fs |= other.reads_fs;
    }
}

/// A reason a word's expansion is effectful.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Impurity {
    /// `$(...)` or backquotes: may run arbitrary commands.
    CommandSubstitution,
    /// `${x:=default}` assigns to `x`.
    AssignsParameter(String),
    /// `${x:?msg}` may abort the shell.
    MayAbort(String),
    /// `$((x = 1))` and friends.
    ArithmeticAssignment,
}

impl std::fmt::Display for Impurity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Impurity::CommandSubstitution => write!(f, "command substitution"),
            Impurity::AssignsParameter(n) => write!(f, "assigns ${n}"),
            Impurity::MayAbort(n) => write!(f, "may abort on unset ${n}"),
            Impurity::ArithmeticAssignment => write!(f, "arithmetic assignment"),
        }
    }
}

/// Analyzes a single word.
pub fn word_effects(word: &Word) -> Effects {
    let mut e = Effects::default();
    for p in &word.parts {
        e.merge(part_effects(p));
    }
    if word.has_glob() {
        e.reads_fs = true;
    }
    e
}

/// Analyzes a slice of words (e.g. a whole simple command).
pub fn words_effects(words: &[Word]) -> Effects {
    let mut e = Effects::default();
    for w in words {
        e.merge(word_effects(w));
    }
    e
}

/// Convenience: are all the words pure?
pub fn all_pure(words: &[Word]) -> bool {
    words.iter().all(|w| word_effects(w).is_pure())
}

fn part_effects(part: &WordPart) -> Effects {
    let mut e = Effects::default();
    match part {
        WordPart::Literal(_) | WordPart::SingleQuoted(_) | WordPart::Escaped(_) => {}
        WordPart::Tilde(_) => {
            e.reads.insert("HOME".to_string());
        }
        WordPart::DoubleQuoted(parts) => {
            for p in parts {
                e.merge(part_effects(p));
            }
        }
        WordPart::CmdSubst(_) => {
            e.impurities.push(Impurity::CommandSubstitution);
        }
        WordPart::Arith(expr) => {
            collect_arith_reads(expr, &mut e.reads);
            if expr.has_side_effects() {
                e.impurities.push(Impurity::ArithmeticAssignment);
            }
        }
        WordPart::Param(pe) => {
            e.reads.insert(pe.name.clone());
            match &pe.op {
                ParamOp::Plain | ParamOp::Length => {}
                ParamOp::Default { word, .. } | ParamOp::Alt { word, .. } => {
                    e.merge(word_effects(word));
                }
                ParamOp::Assign { word, .. } => {
                    e.merge(word_effects(word));
                    e.impurities.push(Impurity::AssignsParameter(pe.name.clone()));
                }
                ParamOp::Error { word, .. } => {
                    e.merge(word_effects(word));
                    e.impurities.push(Impurity::MayAbort(pe.name.clone()));
                }
                ParamOp::RemoveSmallestSuffix(w)
                | ParamOp::RemoveLargestSuffix(w)
                | ParamOp::RemoveSmallestPrefix(w)
                | ParamOp::RemoveLargestPrefix(w) => {
                    e.merge(word_effects(w));
                }
            }
        }
    }
    e
}

fn collect_arith_reads(expr: &jash_ast::ArithExpr, reads: &mut BTreeSet<String>) {
    use jash_ast::ArithExpr::*;
    match expr {
        Num(_) => {}
        Var(v) => {
            reads.insert(v.clone());
        }
        Unary(_, a) => collect_arith_reads(a, reads),
        Binary(_, a, b) => {
            collect_arith_reads(a, reads);
            collect_arith_reads(b, reads);
        }
        Ternary(a, b, c) => {
            collect_arith_reads(a, reads);
            collect_arith_reads(b, reads);
            collect_arith_reads(c, reads);
        }
        Assign(_, _, rhs) => collect_arith_reads(rhs, reads),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jash_parser::parse_unwrap;

    fn word(text: &str) -> Word {
        let prog = parse_unwrap(&format!("echo {text}"));
        let jash_ast::CommandKind::Simple(sc) = &prog.items[0].and_or.first.commands[0].kind
        else {
            panic!();
        };
        sc.words[1].clone()
    }

    #[test]
    fn literals_are_pure() {
        assert!(word_effects(&word("plain")).is_pure());
        assert!(word_effects(&word("'quoted string'")).is_pure());
    }

    #[test]
    fn plain_params_are_pure_but_read() {
        let e = word_effects(&word("$FILES"));
        assert!(e.is_pure());
        assert!(e.reads.contains("FILES"));
    }

    #[test]
    fn the_spell_script_words_are_pure() {
        // The paper's key example: `cat $FILES ... comm -13 $DICT -` must be
        // early-expandable for the JIT to optimize it.
        for w in ["$FILES", "$DICT", "A-Z", "a-z", "-13", "-"] {
            assert!(word_effects(&word(w)).is_pure(), "{w} should be pure");
        }
    }

    #[test]
    fn command_substitution_is_impure() {
        let e = word_effects(&word("$(ls)"));
        assert!(!e.is_pure());
        assert_eq!(e.impurities, vec![Impurity::CommandSubstitution]);
    }

    #[test]
    fn assign_default_is_impure() {
        let e = word_effects(&word("${X:=v}"));
        assert!(!e.is_pure());
        assert!(matches!(e.impurities[0], Impurity::AssignsParameter(_)));
    }

    #[test]
    fn error_op_is_impure() {
        let e = word_effects(&word("${X:?die}"));
        assert!(matches!(e.impurities[0], Impurity::MayAbort(_)));
    }

    #[test]
    fn default_op_is_pure() {
        let e = word_effects(&word("${X:-fallback}"));
        assert!(e.is_pure());
    }

    #[test]
    fn arith_assignment_is_impure() {
        assert!(!word_effects(&word("$((x = 1))")).is_pure());
        let e = word_effects(&word("$((x + 1))"));
        assert!(e.is_pure());
        assert!(e.reads.contains("x"));
    }

    #[test]
    fn nested_impurity_found_in_quotes() {
        let e = word_effects(&word("\"pre $(cmd) post\""));
        assert!(!e.is_pure());
    }

    #[test]
    fn glob_reads_fs() {
        let e = word_effects(&word("*.txt"));
        assert!(e.is_pure());
        assert!(e.reads_fs);
    }

    #[test]
    fn tilde_reads_home() {
        let e = word_effects(&word("~/x"));
        assert!(e.reads.contains("HOME"));
    }

    #[test]
    fn all_pure_helper() {
        assert!(all_pure(&[word("$A"), word("b")]));
        assert!(!all_pure(&[word("$A"), word("$(b)")]));
    }
}
