//! Expansion errors.

use std::fmt;

/// An error raised during word expansion.
#[derive(Debug)]
pub enum ExpandError {
    /// Filesystem error during globbing or substitution.
    Io(std::io::Error),
    /// `${x:?}` fired, or `set -u` hit an unset variable.
    UnsetParameter {
        /// Offending parameter.
        name: String,
        /// Message (the `?` word, or a default).
        message: String,
    },
    /// Arithmetic division or remainder by zero.
    DivideByZero,
    /// A variable used in arithmetic holds a non-numeric value.
    BadNumber(String),
    /// Command substitution attempted in a context that forbids it
    /// (e.g. purity-checked early expansion with [`crate::NoSubst`]).
    CmdSubstUnsupported,
    /// A command substitution's body failed.
    Subst(String),
}

impl fmt::Display for ExpandError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExpandError::Io(e) => write!(f, "io error during expansion: {e}"),
            ExpandError::UnsetParameter { name, message } => {
                write!(f, "{name}: {message}")
            }
            ExpandError::DivideByZero => write!(f, "division by zero"),
            ExpandError::BadNumber(v) => write!(f, "arithmetic: invalid number `{v}`"),
            ExpandError::CmdSubstUnsupported => {
                write!(f, "command substitution not allowed in this context")
            }
            ExpandError::Subst(m) => write!(f, "command substitution failed: {m}"),
        }
    }
}

impl std::error::Error for ExpandError {}

impl From<std::io::Error> for ExpandError {
    fn from(e: std::io::Error) -> Self {
        ExpandError::Io(e)
    }
}

/// Result alias for expansion APIs.
pub type Result<T> = std::result::Result<T, ExpandError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = ExpandError::UnsetParameter {
            name: "X".into(),
            message: "unbound variable".into(),
        };
        assert_eq!(e.to_string(), "X: unbound variable");
        assert!(ExpandError::DivideByZero.to_string().contains("zero"));
    }
}
