//! Mutable shell state: variables, functions, positional parameters.
//!
//! This is the "intricate state of the shell interpreter" (paper §2.2 B3)
//! factored into one inspectable value. The Jash JIT snapshots and queries
//! it to expand words early; the interpreter threads it through execution.

use jash_ast::Command;
use jash_io::FsHandle;
use std::collections::HashMap;

/// One shell variable.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Var {
    /// Current value.
    pub value: String,
    /// Whether the variable is exported to child environments.
    pub exported: bool,
    /// Whether the variable is marked read-only.
    pub readonly: bool,
}

/// The full dynamic context of a running shell.
#[derive(Clone)]
pub struct ShellState {
    vars: HashMap<String, Var>,
    functions: HashMap<String, Command>,
    /// Current working directory (virtual, absolute).
    pub cwd: String,
    /// `$0`.
    pub shell_name: String,
    /// `$1..$n`.
    pub positional: Vec<String>,
    /// `$?` of the last command.
    pub last_status: i32,
    /// Filesystem this shell operates on.
    pub fs: FsHandle,
    /// Optional simulated CPU: when set, command execution charges
    /// modeled per-byte compute time (benchmarking on machines smaller
    /// than the modeled one).
    pub cpu: Option<std::sync::Arc<jash_io::CpuModel>>,
    /// `set -e`.
    pub errexit: bool,
    /// `set -u`: expanding an unset variable is an error.
    pub nounset: bool,
    /// Nesting depth of loops, for `break`/`continue` validation.
    pub loop_depth: u32,
}

impl ShellState {
    /// Creates a state over `fs` with cwd `/` and default variables.
    pub fn new(fs: FsHandle) -> Self {
        let mut s = ShellState {
            vars: HashMap::new(),
            functions: HashMap::new(),
            cwd: "/".to_string(),
            shell_name: "jash".to_string(),
            positional: Vec::new(),
            last_status: 0,
            fs,
            cpu: None,
            errexit: false,
            nounset: false,
            loop_depth: 0,
        };
        s.set_var("IFS", " \t\n");
        s.set_var("HOME", "/home/user");
        s.set_var("PWD", "/");
        s
    }

    /// Looks up a variable's value.
    pub fn get_var(&self, name: &str) -> Option<&str> {
        self.vars.get(name).map(|v| v.value.as_str())
    }

    /// Sets (or creates) a variable, preserving its export flag.
    pub fn set_var(&mut self, name: &str, value: impl Into<String>) {
        let value = value.into();
        self.vars
            .entry(name.to_string())
            .and_modify(|v| v.value.clone_from(&value))
            .or_insert(Var {
                value,
                exported: false,
                readonly: false,
            });
        if name == "PWD" {
            // Keep cwd coherent when scripts assign PWD directly.
        }
    }

    /// Marks a variable exported, creating it empty if needed.
    pub fn export_var(&mut self, name: &str) {
        self.vars
            .entry(name.to_string())
            .or_default()
            .exported = true;
    }

    /// Removes a variable.
    pub fn unset_var(&mut self, name: &str) {
        self.vars.remove(name);
    }

    /// Whether the variable exists (even if empty).
    pub fn is_set(&self, name: &str) -> bool {
        self.vars.contains_key(name)
    }

    /// All exported variables, for child environments.
    pub fn exported(&self) -> Vec<(String, String)> {
        let mut out: Vec<(String, String)> = self
            .vars
            .iter()
            .filter(|(_, v)| v.exported)
            .map(|(k, v)| (k.clone(), v.value.clone()))
            .collect();
        out.sort();
        out
    }

    /// Defines (or replaces) a function.
    pub fn set_function(&mut self, name: &str, body: Command) {
        self.functions.insert(name.to_string(), body);
    }

    /// Looks up a function body.
    pub fn get_function(&self, name: &str) -> Option<&Command> {
        self.functions.get(name)
    }

    /// Removes a function.
    pub fn unset_function(&mut self, name: &str) {
        self.functions.remove(name);
    }

    /// The value of a *special* or ordinary parameter, as `$name` sees it.
    ///
    /// Returns `None` for unset ordinary variables (`$@`/`$*` are handled
    /// by the expander because they produce multiple fields).
    pub fn lookup_param(&self, name: &str) -> Option<String> {
        match name {
            "?" => Some(self.last_status.to_string()),
            "#" => Some(self.positional.len().to_string()),
            "0" => Some(self.shell_name.clone()),
            "$" => Some(std::process::id().to_string()),
            "-" => Some(self.option_flags()),
            "!" => Some(String::new()),
            _ => {
                if let Ok(n) = name.parse::<usize>() {
                    return self.positional.get(n - 1).cloned();
                }
                self.get_var(name).map(str::to_string)
            }
        }
    }

    fn option_flags(&self) -> String {
        let mut s = String::new();
        if self.errexit {
            s.push('e');
        }
        if self.nounset {
            s.push('u');
        }
        s
    }

    /// The IFS value (defaulting per POSIX when unset).
    pub fn ifs(&self) -> String {
        match self.get_var("IFS") {
            Some(v) => v.to_string(),
            None => " \t\n".to_string(),
        }
    }

    /// Resolves a possibly relative path against the cwd.
    pub fn resolve_path(&self, path: &str) -> String {
        jash_io::fs::normalize(&self.cwd, path)
    }

    /// Creates the state a subshell starts with (a copy; changes do not
    /// propagate back).
    pub fn subshell(&self) -> ShellState {
        self.clone()
    }
}

impl std::fmt::Debug for ShellState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShellState")
            .field("cwd", &self.cwd)
            .field("vars", &self.vars.len())
            .field("functions", &self.functions.len())
            .field("positional", &self.positional)
            .field("last_status", &self.last_status)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state() -> ShellState {
        ShellState::new(jash_io::mem_fs())
    }

    #[test]
    fn var_set_get_unset() {
        let mut s = state();
        assert_eq!(s.get_var("X"), None);
        s.set_var("X", "1");
        assert_eq!(s.get_var("X"), Some("1"));
        s.unset_var("X");
        assert!(!s.is_set("X"));
    }

    #[test]
    fn export_preserved_across_set() {
        let mut s = state();
        s.set_var("X", "1");
        s.export_var("X");
        s.set_var("X", "2");
        assert!(s.exported().contains(&("X".into(), "2".into())));
    }

    #[test]
    fn special_params() {
        let mut s = state();
        s.last_status = 42;
        s.positional = vec!["a".into(), "b".into()];
        assert_eq!(s.lookup_param("?").as_deref(), Some("42"));
        assert_eq!(s.lookup_param("#").as_deref(), Some("2"));
        assert_eq!(s.lookup_param("1").as_deref(), Some("a"));
        assert_eq!(s.lookup_param("3"), None);
        assert_eq!(s.lookup_param("0").as_deref(), Some("jash"));
    }

    #[test]
    fn subshell_is_isolated() {
        let mut s = state();
        s.set_var("X", "outer");
        let mut sub = s.subshell();
        sub.set_var("X", "inner");
        assert_eq!(s.get_var("X"), Some("outer"));
    }

    #[test]
    fn ifs_default() {
        let mut s = state();
        s.unset_var("IFS");
        assert_eq!(s.ifs(), " \t\n");
        s.set_var("IFS", ":");
        assert_eq!(s.ifs(), ":");
    }

    #[test]
    fn resolve_path_uses_cwd() {
        let mut s = state();
        s.cwd = "/data".into();
        assert_eq!(s.resolve_path("x.txt"), "/data/x.txt");
        assert_eq!(s.resolve_path("/abs"), "/abs");
    }
}
