//! Word-expansion semantics for the POSIX shell (the *Smoosh* role,
//! enabler E1 of the HotOS '21 paper).
//!
//! The crate provides:
//!
//! * [`ShellState`] — the dynamic context (variables, functions,
//!   positional parameters, cwd, options) expansion runs against;
//! * [`expand_word_fields`] / [`expand_words`] — the full POSIX expansion
//!   pipeline (tilde → parameter/command/arithmetic expansion → field
//!   splitting → pathname expansion → quote removal);
//! * [`eval_arith`] — `$((...))` evaluation;
//! * [`pattern::Pattern`] — `fnmatch`-style matching for `case`, the
//!   `%`/`#` operators, and globbing;
//! * [`purity`] — the effect analysis that tells the Jash JIT which words
//!   are safe to expand *early* (paper §3.2: "early expansions shouldn't
//!   have side-effects").
//!
//! # Examples
//!
//! ```
//! use jash_expand::{expand_word_fields, NoSubst, ShellState};
//!
//! let mut state = ShellState::new(jash_io::mem_fs());
//! state.set_var("FILES", "a.txt b.txt");
//! let word = {
//!     let prog = jash_parser::parse("cat $FILES").unwrap();
//!     let jash_ast::CommandKind::Simple(sc) =
//!         &prog.items[0].and_or.first.commands[0].kind else { unreachable!() };
//!     sc.words[1].clone()
//! };
//! let fields = expand_word_fields(&mut state, &mut NoSubst, &word).unwrap();
//! assert_eq!(fields, vec!["a.txt", "b.txt"]);
//! ```

pub mod arith_eval;
pub mod error;
pub mod expand;
pub mod glob;
pub mod pattern;
pub mod purity;
pub mod state;

pub use arith_eval::eval_arith;
pub use error::{ExpandError, Result};
pub use expand::{
    expand_word_field, expand_word_fields, expand_word_single, expand_words, Field, NoSubst,
    SubstRunner,
};
pub use pattern::Pattern;
pub use purity::{all_pure, word_effects, words_effects, Effects, Impurity};
pub use state::{ShellState, Var};
