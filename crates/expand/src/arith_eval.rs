//! Evaluation of arithmetic expressions against shell state.

use crate::error::{ExpandError, Result};
use crate::state::ShellState;
use jash_ast::arith::{ArithBinOp, ArithExpr, ArithUnaryOp};

/// Evaluates `$((expr))` semantics: C integer arithmetic over `i64`,
/// short-circuit logic, lazy ternary, and variable assignment writing back
/// into `state`.
pub fn eval_arith(state: &mut ShellState, expr: &ArithExpr) -> Result<i64> {
    match expr {
        ArithExpr::Num(n) => Ok(*n),
        ArithExpr::Var(name) => Ok(var_value(state, name)?),
        ArithExpr::Unary(op, inner) => {
            let v = eval_arith(state, inner)?;
            Ok(match op {
                ArithUnaryOp::Neg => v.wrapping_neg(),
                ArithUnaryOp::Pos => v,
                ArithUnaryOp::LogNot => i64::from(v == 0),
                ArithUnaryOp::BitNot => !v,
            })
        }
        ArithExpr::Binary(op, a, b) => {
            // Logical operators short-circuit; everything else is strict.
            match op {
                ArithBinOp::LogAnd => {
                    if eval_arith(state, a)? == 0 {
                        return Ok(0);
                    }
                    return Ok(i64::from(eval_arith(state, b)? != 0));
                }
                ArithBinOp::LogOr => {
                    if eval_arith(state, a)? != 0 {
                        return Ok(1);
                    }
                    return Ok(i64::from(eval_arith(state, b)? != 0));
                }
                _ => {}
            }
            let x = eval_arith(state, a)?;
            let y = eval_arith(state, b)?;
            apply_binop(*op, x, y)
        }
        ArithExpr::Ternary(c, t, f) => {
            if eval_arith(state, c)? != 0 {
                eval_arith(state, t)
            } else {
                eval_arith(state, f)
            }
        }
        ArithExpr::Assign(name, op, rhs) => {
            let r = eval_arith(state, rhs)?;
            let new = match op {
                None => r,
                Some(op) => {
                    let cur = var_value(state, name)?;
                    apply_binop(*op, cur, r)?
                }
            };
            state.set_var(name, new.to_string());
            Ok(new)
        }
    }
}

fn apply_binop(op: ArithBinOp, x: i64, y: i64) -> Result<i64> {
    use ArithBinOp::*;
    Ok(match op {
        Add => x.wrapping_add(y),
        Sub => x.wrapping_sub(y),
        Mul => x.wrapping_mul(y),
        Div => {
            if y == 0 {
                return Err(ExpandError::DivideByZero);
            }
            x.wrapping_div(y)
        }
        Rem => {
            if y == 0 {
                return Err(ExpandError::DivideByZero);
            }
            x.wrapping_rem(y)
        }
        Shl => x.wrapping_shl(y as u32),
        Shr => x.wrapping_shr(y as u32),
        Lt => i64::from(x < y),
        Le => i64::from(x <= y),
        Gt => i64::from(x > y),
        Ge => i64::from(x >= y),
        Eq => i64::from(x == y),
        Ne => i64::from(x != y),
        BitAnd => x & y,
        BitXor => x ^ y,
        BitOr => x | y,
        LogAnd | LogOr => unreachable!("handled by the caller"),
    })
}

/// The arithmetic value of a variable: parsed as an integer literal, or —
/// like bash — recursively evaluated as an expression; unset/empty is 0.
fn var_value(state: &mut ShellState, name: &str) -> Result<i64> {
    // Positional and special parameters resolve through the parameter
    // table, ordinary names through the variable map.
    let raw = if name.chars().all(|c| c.is_ascii_digit()) {
        state.lookup_param(name)
    } else {
        state.get_var(name).map(str::to_string)
    };
    let Some(raw) = raw else {
        return Ok(0);
    };
    let raw = raw.trim();
    if raw.is_empty() {
        return Ok(0);
    }
    if let Ok(n) = parse_int(raw) {
        return Ok(n);
    }
    // One level of recursive evaluation: `x="1+2"; $((x))` is 3.
    match jash_parser::parse_arith(raw, 0) {
        Ok(expr) => eval_arith(state, &expr),
        Err(_) => Err(ExpandError::BadNumber(raw.to_string())),
    }
}

fn parse_int(s: &str) -> std::result::Result<i64, std::num::ParseIntError> {
    let (neg, body) = match s.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, s.strip_prefix('+').unwrap_or(s)),
    };
    let v = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16)?
    } else if body.len() > 1 && body.starts_with('0') {
        i64::from_str_radix(&body[1..], 8)?
    } else {
        body.parse::<i64>()?
    };
    Ok(if neg { -v } else { v })
}

#[cfg(test)]
mod tests {
    use super::*;
    use jash_parser::parse_arith;

    fn state() -> ShellState {
        ShellState::new(jash_io::mem_fs())
    }

    fn eval(s: &mut ShellState, src: &str) -> Result<i64> {
        eval_arith(s, &parse_arith(src, 0).unwrap())
    }

    #[test]
    fn basic_arithmetic() {
        let mut s = state();
        assert_eq!(eval(&mut s, "1 + 2 * 3").unwrap(), 7);
        assert_eq!(eval(&mut s, "(1 + 2) * 3").unwrap(), 9);
        assert_eq!(eval(&mut s, "7 / 2").unwrap(), 3);
        assert_eq!(eval(&mut s, "7 % 2").unwrap(), 1);
        assert_eq!(eval(&mut s, "-7 / 2").unwrap(), -3);
    }

    #[test]
    fn division_by_zero_is_an_error() {
        let mut s = state();
        assert!(matches!(eval(&mut s, "1 / 0"), Err(ExpandError::DivideByZero)));
        assert!(matches!(eval(&mut s, "1 % 0"), Err(ExpandError::DivideByZero)));
    }

    #[test]
    fn comparisons_and_logic() {
        let mut s = state();
        assert_eq!(eval(&mut s, "3 < 5").unwrap(), 1);
        assert_eq!(eval(&mut s, "3 >= 5").unwrap(), 0);
        assert_eq!(eval(&mut s, "1 && 2").unwrap(), 1);
        assert_eq!(eval(&mut s, "0 || 0").unwrap(), 0);
        assert_eq!(eval(&mut s, "!5").unwrap(), 0);
        assert_eq!(eval(&mut s, "~0").unwrap(), -1);
    }

    #[test]
    fn short_circuit_skips_side_effects() {
        let mut s = state();
        assert_eq!(eval(&mut s, "0 && (x = 9)").unwrap(), 0);
        assert_eq!(s.get_var("x"), None);
        assert_eq!(eval(&mut s, "1 || (x = 9)").unwrap(), 1);
        assert_eq!(s.get_var("x"), None);
    }

    #[test]
    fn variables_default_to_zero() {
        let mut s = state();
        assert_eq!(eval(&mut s, "unset_var + 1").unwrap(), 1);
        s.set_var("n", "41");
        assert_eq!(eval(&mut s, "n + 1").unwrap(), 42);
    }

    #[test]
    fn recursive_variable_evaluation() {
        let mut s = state();
        s.set_var("e", "2 + 3");
        assert_eq!(eval(&mut s, "e * 2").unwrap(), 10);
    }

    #[test]
    fn assignment_writes_back() {
        let mut s = state();
        assert_eq!(eval(&mut s, "x = 5").unwrap(), 5);
        assert_eq!(s.get_var("x"), Some("5"));
        assert_eq!(eval(&mut s, "x += 3").unwrap(), 8);
        assert_eq!(s.get_var("x"), Some("8"));
        assert_eq!(eval(&mut s, "x <<= 2").unwrap(), 32);
    }

    #[test]
    fn ternary_is_lazy() {
        let mut s = state();
        assert_eq!(eval(&mut s, "1 ? 10 : (x = 1)").unwrap(), 10);
        assert_eq!(s.get_var("x"), None);
    }

    #[test]
    fn radix_parsing_of_variables() {
        let mut s = state();
        s.set_var("h", "0xff");
        s.set_var("o", "010");
        assert_eq!(eval(&mut s, "h").unwrap(), 255);
        assert_eq!(eval(&mut s, "o").unwrap(), 8);
    }

    #[test]
    fn bad_value_is_an_error() {
        let mut s = state();
        s.set_var("junk", "not a number @");
        assert!(eval(&mut s, "junk + 1").is_err());
    }

    #[test]
    fn wrapping_overflow() {
        let mut s = state();
        s.set_var("max", i64::MAX.to_string());
        assert_eq!(eval(&mut s, "max + 1").unwrap(), i64::MIN);
    }
}
