//! Pathname expansion against the virtual filesystem.

use crate::expand::Field;
use crate::pattern::Pattern;
use crate::state::ShellState;

/// Expands a field containing active glob characters into matching paths.
///
/// Returns `None` when nothing matches (POSIX: the word is then left
/// unchanged). Matches are sorted. Hidden entries (leading `.`) only match
/// patterns whose component starts with a literal dot.
pub fn glob_expand(state: &ShellState, field: &Field) -> Option<Vec<String>> {
    // Split the field into `/`-separated components, keeping quote flags.
    let mut components: Vec<Vec<(char, bool)>> = vec![Vec::new()];
    for &(c, q) in &field.chars {
        if c == '/' {
            components.push(Vec::new());
        } else {
            components.last_mut().expect("nonempty").push((c, q));
        }
    }
    let absolute = field.chars.first().map(|&(c, _)| c == '/').unwrap_or(false);

    // Candidates are (display, absolute) path pairs.
    let mut candidates: Vec<(String, String)> = if absolute {
        vec![(String::new(), "/".to_string())]
    } else {
        vec![(String::new(), state.cwd.clone())]
    };

    // Empty components (leading `/`, `//`, trailing `/`) carry no pattern.
    let comps: Vec<&Vec<(char, bool)>> = components.iter().filter(|c| !c.is_empty()).collect();

    for comp in comps {
        let pat = Pattern::compile(comp);
        let mut next = Vec::new();
        if let Some(lit) = pat.literal_text() {
            for (display, abs) in candidates {
                let display = join_display(&display, &lit);
                let abs = jash_io::fs::normalize(&abs, &lit);
                next.push((display, abs));
            }
        } else {
            let starts_with_dot = matches!(comp.first(), Some(('.', _)));
            for (display, abs) in candidates {
                let Ok(entries) = state.fs.list_dir(&abs) else {
                    continue;
                };
                for name in entries {
                    if name.starts_with('.') && !starts_with_dot {
                        continue;
                    }
                    if pat.matches(&name) {
                        next.push((
                            join_display(&display, &name),
                            jash_io::fs::normalize(&abs, &name),
                        ));
                    }
                }
            }
        }
        candidates = next;
        if candidates.is_empty() {
            return None;
        }
    }

    // Every candidate must exist (literal tails may not).
    let mut out: Vec<String> = candidates
        .into_iter()
        .filter(|(_, abs)| state.fs.exists(abs))
        .map(|(display, _)| {
            if absolute {
                format!("/{display}")
            } else {
                display
            }
        })
        .collect();
    out.sort();
    out.dedup();
    if out.is_empty() {
        None
    } else {
        Some(out)
    }
}

fn join_display(base: &str, name: &str) -> String {
    if base.is_empty() {
        name.to_string()
    } else {
        format!("{base}/{name}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn setup() -> ShellState {
        let fs = jash_io::MemFs::new();
        for p in [
            "/proj/src/main.c",
            "/proj/src/util.c",
            "/proj/src/util.h",
            "/proj/docs/readme.md",
            "/proj/.hidden",
            "/proj/a1",
            "/proj/a2",
            "/proj/b1",
        ] {
            fs.install(p, b"".to_vec());
        }
        let mut s = ShellState::new(Arc::new(fs));
        s.cwd = "/proj".into();
        s
    }

    fn glob(state: &ShellState, pat: &str) -> Option<Vec<String>> {
        let field = Field {
            chars: pat.chars().map(|c| (c, false)).collect(),
            forced: false,
        };
        glob_expand(state, &field)
    }

    #[test]
    fn star_in_cwd() {
        let s = setup();
        assert_eq!(
            glob(&s, "a*").unwrap(),
            vec!["a1", "a2"]
        );
    }

    #[test]
    fn multi_component() {
        let s = setup();
        assert_eq!(
            glob(&s, "src/*.c").unwrap(),
            vec!["src/main.c", "src/util.c"]
        );
        assert_eq!(
            glob(&s, "*/*.c").unwrap(),
            vec!["src/main.c", "src/util.c"]
        );
    }

    #[test]
    fn absolute_patterns() {
        let s = setup();
        assert_eq!(
            glob(&s, "/proj/src/*.h").unwrap(),
            vec!["/proj/src/util.h"]
        );
    }

    #[test]
    fn hidden_files_need_explicit_dot() {
        let s = setup();
        assert!(!glob(&s, "*").unwrap().contains(&".hidden".to_string()));
        assert_eq!(glob(&s, ".h*").unwrap(), vec![".hidden"]);
    }

    #[test]
    fn question_and_class() {
        let s = setup();
        assert_eq!(glob(&s, "a?").unwrap(), vec!["a1", "a2"]);
        assert_eq!(glob(&s, "[ab]1").unwrap(), vec!["a1", "b1"]);
    }

    #[test]
    fn no_match_returns_none() {
        let s = setup();
        assert!(glob(&s, "*.zip").is_none());
        assert!(glob(&s, "nodir/*").is_none());
    }

    #[test]
    fn literal_tail_must_exist() {
        let s = setup();
        // `*/readme.md` — only docs/ has it.
        assert_eq!(glob(&s, "*/readme.md").unwrap(), vec!["docs/readme.md"]);
        assert!(glob(&s, "*/missing.md").is_none());
    }
}
