//! Word expansion: the POSIX pipeline of tilde, parameter, command, and
//! arithmetic expansion followed by field splitting, pathname expansion,
//! and quote removal.
//!
//! Expansion tracks per-character quoting through every step (the
//! [`Field`] representation), which is what makes the later steps sound:
//! field splitting only splits unquoted expansion results, and pathname
//! expansion only reacts to unquoted metacharacters — the exact properties
//! Smoosh's semantics nails down and that the Jash JIT relies on when it
//! expands words early.

use crate::arith_eval::eval_arith;
use crate::error::{ExpandError, Result};
use crate::glob::glob_expand;
use crate::pattern::Pattern;
use crate::state::ShellState;
use jash_ast::{ParamExp, ParamOp, Program, Word, WordPart};

/// Executes command substitutions on behalf of the expander.
///
/// The interpreter implements this; analysis contexts use [`NoSubst`] to
/// keep expansion effect-free (any `$( )` then fails expansion, which the
/// JIT treats as "not early-expandable").
pub trait SubstRunner {
    /// Runs `prog` and returns its captured stdout.
    fn run_capture(&mut self, state: &mut ShellState, prog: &Program) -> Result<String>;
}

/// A [`SubstRunner`] that refuses to run anything.
pub struct NoSubst;

impl SubstRunner for NoSubst {
    fn run_capture(&mut self, _state: &mut ShellState, _prog: &Program) -> Result<String> {
        Err(ExpandError::CmdSubstUnsupported)
    }
}

/// One character of an expanded field with its quoting provenance.
pub type FieldChar = (char, bool);

/// An expansion field under construction: characters plus a flag that is
/// set when any quoted (possibly empty) portion contributed, which keeps
/// quoted-empty fields alive through splitting.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Field {
    /// `(char, quoted)` pairs.
    pub chars: Vec<FieldChar>,
    /// True if a quoted region contributed to this field.
    pub forced: bool,
}

impl Field {
    /// The field text after quote removal.
    pub fn text(&self) -> String {
        self.chars.iter().map(|(c, _)| *c).collect()
    }

    /// Whether any unquoted glob metacharacter is present.
    pub fn has_active_glob(&self) -> bool {
        self.chars
            .iter()
            .any(|(c, q)| !q && matches!(c, '*' | '?' | '['))
    }

    /// Compiles the field as a pattern (quoted chars literal).
    pub fn to_pattern(&self) -> Pattern {
        Pattern::compile(&self.chars)
    }
}

/// Field accumulator implementing the POSIX splitting rules.
#[derive(Default)]
struct Acc {
    done: Vec<Field>,
    cur: Field,
    /// A pending IFS-whitespace separator from an earlier expansion.
    ws_pending: bool,
}

impl Acc {
    fn push_char(&mut self, c: char, quoted: bool) {
        self.flush_pending();
        self.cur.chars.push((c, quoted));
        if quoted {
            self.cur.forced = true;
        }
    }

    fn push_str(&mut self, s: &str, quoted: bool) {
        if quoted {
            self.mark_quoted();
        }
        for c in s.chars() {
            self.push_char(c, quoted);
        }
    }

    /// Marks the current field as containing a quoted region (even empty).
    fn mark_quoted(&mut self) {
        self.flush_pending();
        self.cur.forced = true;
    }

    fn flush_pending(&mut self) {
        if self.ws_pending {
            self.ws_pending = false;
            if !self.cur.chars.is_empty() || self.cur.forced {
                self.emit();
            }
        }
    }

    /// Unconditionally terminates the current field, emitting it even if
    /// empty (used by non-whitespace IFS delimiters and `"$@"`).
    fn emit(&mut self) {
        self.done.push(std::mem::take(&mut self.cur));
    }

    /// Inserts expansion-result text subject to field splitting.
    fn push_split(&mut self, text: &str, ifs: &str) {
        if ifs.is_empty() {
            self.push_str(text, false);
            return;
        }
        for c in text.chars() {
            if ifs.contains(c) {
                if c == ' ' || c == '\t' || c == '\n' {
                    self.ws_pending = true;
                } else {
                    // Non-whitespace delimiter: terminates the field.
                    self.ws_pending = false;
                    self.emit();
                }
            } else {
                self.push_char(c, false);
            }
        }
    }

    fn finish(mut self) -> Vec<Field> {
        if !self.cur.chars.is_empty() || self.cur.forced {
            self.done.push(self.cur);
        }
        self.done
    }
}

/// Fully expands `word` into fields: all expansions, field splitting,
/// pathname expansion, quote removal.
pub fn expand_word_fields(
    state: &mut ShellState,
    runner: &mut dyn SubstRunner,
    word: &Word,
) -> Result<Vec<String>> {
    let fields = expand_to_fields(state, runner, word, true)?;
    let mut out = Vec::with_capacity(fields.len());
    for f in fields {
        if f.has_active_glob() {
            match glob_expand(state, &f) {
                Some(mut paths) => out.append(&mut paths),
                None => out.push(f.text()),
            }
        } else {
            out.push(f.text());
        }
    }
    Ok(out)
}

/// Expands a list of words into one argument vector.
pub fn expand_words(
    state: &mut ShellState,
    runner: &mut dyn SubstRunner,
    words: &[Word],
) -> Result<Vec<String>> {
    let mut out = Vec::new();
    for w in words {
        out.extend(expand_word_fields(state, runner, w)?);
    }
    Ok(out)
}

/// Expands `word` without field splitting or pathname expansion (the rule
/// for assignment values, redirect targets, and here-document bodies).
pub fn expand_word_single(
    state: &mut ShellState,
    runner: &mut dyn SubstRunner,
    word: &Word,
) -> Result<String> {
    let field = expand_word_field(state, runner, word)?;
    Ok(field.text())
}

/// Expands `word` into a raw [`Field`] (no splitting), preserving per-char
/// quoting — the input for `case`/parameter-operator pattern compilation.
pub fn expand_word_field(
    state: &mut ShellState,
    runner: &mut dyn SubstRunner,
    word: &Word,
) -> Result<Field> {
    let fields = expand_to_fields(state, runner, word, false)?;
    let mut merged = Field::default();
    // Without splitting there is at most one field, except `"$@"` which can
    // still produce several; POSIX leaves that case unspecified in these
    // contexts, so join with spaces like bash does.
    for (i, f) in fields.into_iter().enumerate() {
        if i > 0 {
            merged.chars.push((' ', true));
        }
        merged.chars.extend(f.chars);
        merged.forced |= f.forced;
    }
    Ok(merged)
}

fn expand_to_fields(
    state: &mut ShellState,
    runner: &mut dyn SubstRunner,
    word: &Word,
    split: bool,
) -> Result<Vec<Field>> {
    let mut acc = Acc::default();
    expand_parts(state, runner, &word.parts, false, split, &mut acc)?;
    Ok(acc.finish())
}

fn expand_parts(
    state: &mut ShellState,
    runner: &mut dyn SubstRunner,
    parts: &[WordPart],
    quoted: bool,
    split: bool,
    acc: &mut Acc,
) -> Result<()> {
    for part in parts {
        match part {
            WordPart::Literal(s) => acc.push_str(s, quoted),
            WordPart::SingleQuoted(s) => acc.push_str(s, true),
            WordPart::Escaped(c) => acc.push_char(*c, true),
            WordPart::DoubleQuoted(inner) => {
                // `"$@"` is the one quoted form that may produce *zero*
                // fields, so it must not force the current field open.
                let pure_at = !inner.is_empty()
                    && inner.iter().all(
                        |p| matches!(p, WordPart::Param(pe) if pe.name == "@" && pe.op == jash_ast::ParamOp::Plain),
                    );
                if !pure_at {
                    acc.mark_quoted();
                }
                expand_parts(state, runner, inner, true, split, acc)?;
            }
            WordPart::Tilde(user) => {
                let home = match user {
                    None => state
                        .get_var("HOME")
                        .map(str::to_string)
                        .unwrap_or_else(|| "~".to_string()),
                    Some(u) => format!("/home/{u}"),
                };
                // Tilde results are not subject to splitting or globbing.
                acc.push_str(&home, true);
            }
            WordPart::Param(pe) => expand_param(state, runner, pe, quoted, split, acc)?,
            WordPart::CmdSubst(prog) => {
                let out = runner.run_capture(state, prog)?;
                let trimmed = out.trim_end_matches('\n');
                push_result(acc, trimmed, quoted, split, &state.ifs());
            }
            WordPart::Arith(e) => {
                let v = eval_arith(state, e)?;
                push_result(acc, &v.to_string(), quoted, split, &state.ifs());
            }
        }
    }
    Ok(())
}

/// Inserts the result of an expansion, splitting iff unquoted.
fn push_result(acc: &mut Acc, text: &str, quoted: bool, split: bool, ifs: &str) {
    if quoted || !split {
        acc.push_str(text, quoted);
    } else {
        acc.push_split(text, ifs);
    }
}

fn expand_param(
    state: &mut ShellState,
    runner: &mut dyn SubstRunner,
    pe: &ParamExp,
    quoted: bool,
    split: bool,
    acc: &mut Acc,
) -> Result<()> {
    // `$@` / `$*` produce multiple fields and are handled structurally.
    if pe.name == "@" || pe.name == "*" {
        return expand_at_star(state, runner, pe, quoted, split, acc);
    }

    let ifs = state.ifs();
    let value = state.lookup_param(&pe.name);
    match &pe.op {
        ParamOp::Plain => {
            let v = require_set(state, &pe.name, value)?;
            if let Some(v) = v {
                push_result(acc, &v, quoted, split, &ifs);
            }
        }
        ParamOp::Length => {
            let v = require_set(state, &pe.name, value)?.unwrap_or_default();
            push_result(acc, &v.chars().count().to_string(), quoted, split, &ifs);
        }
        ParamOp::Default { colon, word } => {
            if use_alternative(&value, *colon) {
                expand_parts(state, runner, &word.parts, quoted, split, acc)?;
            } else if let Some(v) = value {
                push_result(acc, &v, quoted, split, &ifs);
            }
        }
        ParamOp::Assign { colon, word } => {
            if use_alternative(&value, *colon) {
                let new = expand_word_single(state, runner, word)?;
                state.set_var(&pe.name, new.clone());
                push_result(acc, &new, quoted, split, &ifs);
            } else if let Some(v) = value {
                push_result(acc, &v, quoted, split, &ifs);
            }
        }
        ParamOp::Error { colon, word } => {
            if use_alternative(&value, *colon) {
                let msg = if word.parts.is_empty() {
                    "parameter null or not set".to_string()
                } else {
                    expand_word_single(state, runner, word)?
                };
                return Err(ExpandError::UnsetParameter {
                    name: pe.name.clone(),
                    message: msg,
                });
            } else if let Some(v) = value {
                push_result(acc, &v, quoted, split, &ifs);
            }
        }
        ParamOp::Alt { colon, word } => {
            if !use_alternative(&value, *colon) {
                expand_parts(state, runner, &word.parts, quoted, split, acc)?;
            }
        }
        ParamOp::RemoveSmallestSuffix(w)
        | ParamOp::RemoveLargestSuffix(w)
        | ParamOp::RemoveSmallestPrefix(w)
        | ParamOp::RemoveLargestPrefix(w) => {
            let v = require_set(state, &pe.name, value)?.unwrap_or_default();
            let pat = expand_word_field(state, runner, w)?.to_pattern();
            let result = match &pe.op {
                ParamOp::RemoveSmallestSuffix(_) => match pat.match_suffix(&v, false) {
                    Some(start) => v.chars().take(start).collect(),
                    None => v,
                },
                ParamOp::RemoveLargestSuffix(_) => match pat.match_suffix(&v, true) {
                    Some(start) => v.chars().take(start).collect(),
                    None => v,
                },
                ParamOp::RemoveSmallestPrefix(_) => match pat.match_prefix(&v, false) {
                    Some(len) => v.chars().skip(len).collect(),
                    None => v,
                },
                ParamOp::RemoveLargestPrefix(_) => match pat.match_prefix(&v, true) {
                    Some(len) => v.chars().skip(len).collect(),
                    None => v,
                },
                _ => unreachable!(),
            };
            push_result(acc, &result, quoted, split, &ifs);
        }
    }
    Ok(())
}

/// `set -u` enforcement for plain lookups.
fn require_set(
    state: &ShellState,
    name: &str,
    value: Option<String>,
) -> Result<Option<String>> {
    if value.is_none() && state.nounset && !matches!(name, "@" | "*") {
        return Err(ExpandError::UnsetParameter {
            name: name.to_string(),
            message: "unbound variable".to_string(),
        });
    }
    Ok(value)
}

/// Decides whether `:-`-family operators take the alternative branch.
fn use_alternative(value: &Option<String>, colon: bool) -> bool {
    match value {
        None => true,
        Some(v) => colon && v.is_empty(),
    }
}

fn expand_at_star(
    state: &mut ShellState,
    runner: &mut dyn SubstRunner,
    pe: &ParamExp,
    quoted: bool,
    split: bool,
    acc: &mut Acc,
) -> Result<()> {
    let positional = state.positional.clone();
    let ifs = state.ifs();

    // Operators other than Plain work on the joined value, like dash.
    if !matches!(pe.op, ParamOp::Plain) {
        let joined = positional.join(" ");
        let mut sub = ParamExp {
            name: "__args".to_string(),
            op: pe.op.clone(),
        };
        // Evaluate by temporarily binding a synthetic variable.
        let saved = state.get_var("__args").map(str::to_string);
        if positional.is_empty() {
            state.unset_var("__args");
        } else {
            state.set_var("__args", joined);
        }
        if let ParamOp::Length = pe.op {
            sub.op = ParamOp::Plain;
            let n = positional.len().to_string();
            push_result(acc, &n, quoted, split, &ifs);
        } else {
            expand_param(state, runner, &sub, quoted, split, acc)?;
        }
        match saved {
            Some(v) => state.set_var("__args", v),
            None => state.unset_var("__args"),
        }
        return Ok(());
    }

    if quoted && pe.name == "@" {
        for (i, p) in positional.iter().enumerate() {
            if i > 0 {
                acc.emit();
            }
            acc.push_str(p, true);
        }
        return Ok(());
    }
    if quoted && pe.name == "*" {
        let sep = ifs.chars().next().map(|c| c.to_string()).unwrap_or_default();
        acc.push_str(&positional.join(&sep), true);
        return Ok(());
    }
    // Unquoted $@ / $*: each positional expanded and split.
    for (i, p) in positional.iter().enumerate() {
        if i > 0 {
            acc.ws_pending = true;
        }
        if split {
            acc.push_split(p, &ifs);
        } else {
            acc.push_str(p, false);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use jash_parser::parse_unwrap;

    fn state() -> ShellState {
        ShellState::new(jash_io::mem_fs())
    }

    /// Expands the arguments of `echo <text>` in a one-line script.
    fn fields(state: &mut ShellState, script: &str) -> Vec<String> {
        let prog = parse_unwrap(&format!("echo {script}"));
        let jash_ast::CommandKind::Simple(sc) = &prog.items[0].and_or.first.commands[0].kind
        else {
            panic!("not simple");
        };
        expand_words(state, &mut NoSubst, &sc.words[1..]).unwrap()
    }

    #[test]
    fn literal_words_pass_through() {
        let mut s = state();
        assert_eq!(fields(&mut s, "a b 'c d'"), vec!["a", "b", "c d"]);
    }

    #[test]
    fn simple_variable_expansion() {
        let mut s = state();
        s.set_var("X", "value");
        assert_eq!(fields(&mut s, "$X"), vec!["value"]);
        assert_eq!(fields(&mut s, "pre${X}post"), vec!["prevaluepost"]);
    }

    #[test]
    fn unset_variable_vanishes() {
        let mut s = state();
        assert_eq!(fields(&mut s, "a $UNSET b"), vec!["a", "b"]);
        assert!(fields(&mut s, "$UNSET").is_empty());
    }

    #[test]
    fn quoted_empty_survives() {
        let mut s = state();
        assert_eq!(fields(&mut s, "\"\""), vec![""]);
        assert_eq!(fields(&mut s, "\"$UNSET\""), vec![""]);
    }

    #[test]
    fn field_splitting_on_default_ifs() {
        let mut s = state();
        s.set_var("X", "  one   two\tthree\n");
        assert_eq!(fields(&mut s, "$X"), vec!["one", "two", "three"]);
        assert_eq!(fields(&mut s, "\"$X\""), vec!["  one   two\tthree\n"]);
    }

    #[test]
    fn field_splitting_custom_ifs() {
        let mut s = state();
        s.set_var("IFS", ":");
        s.set_var("X", "a::b:");
        assert_eq!(fields(&mut s, "$X"), vec!["a", "", "b"]);
        s.set_var("Y", ":a");
        assert_eq!(fields(&mut s, "$Y"), vec!["", "a"]);
    }

    #[test]
    fn splitting_joins_adjacent_literals() {
        let mut s = state();
        s.set_var("X", "b c");
        assert_eq!(fields(&mut s, "a$X"), vec!["ab", "c"]);
        s.set_var("Y", "a ");
        assert_eq!(fields(&mut s, "${Y}b"), vec!["a", "b"]);
    }

    #[test]
    fn default_operator() {
        let mut s = state();
        assert_eq!(fields(&mut s, "${X:-fallback}"), vec!["fallback"]);
        s.set_var("X", "");
        assert_eq!(fields(&mut s, "${X:-fallback}"), vec!["fallback"]);
        assert!(fields(&mut s, "${X-fallback}").is_empty());
        s.set_var("X", "v");
        assert_eq!(fields(&mut s, "${X:-fallback}"), vec!["v"]);
    }

    #[test]
    fn assign_operator_mutates_state() {
        let mut s = state();
        assert_eq!(fields(&mut s, "${X:=set-now}"), vec!["set-now"]);
        assert_eq!(s.get_var("X"), Some("set-now"));
    }

    #[test]
    fn error_operator_raises() {
        let mut s = state();
        let prog = parse_unwrap("echo ${X:?custom message}");
        let jash_ast::CommandKind::Simple(sc) = &prog.items[0].and_or.first.commands[0].kind
        else {
            panic!();
        };
        let err = expand_words(&mut s, &mut NoSubst, &sc.words[1..]).unwrap_err();
        match err {
            ExpandError::UnsetParameter { name, message } => {
                assert_eq!(name, "X");
                assert_eq!(message, "custom message");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn alt_operator() {
        let mut s = state();
        assert!(fields(&mut s, "${X:+yes}").is_empty());
        s.set_var("X", "v");
        assert_eq!(fields(&mut s, "${X:+yes}"), vec!["yes"]);
    }

    #[test]
    fn length_operator() {
        let mut s = state();
        s.set_var("X", "hello");
        assert_eq!(fields(&mut s, "${#X}"), vec!["5"]);
        assert_eq!(fields(&mut s, "${#UNSET}"), vec!["0"]);
    }

    #[test]
    fn suffix_prefix_removal() {
        let mut s = state();
        s.set_var("F", "archive.tar.gz");
        assert_eq!(fields(&mut s, "${F%.*}"), vec!["archive.tar"]);
        assert_eq!(fields(&mut s, "${F%%.*}"), vec!["archive"]);
        s.set_var("P", "/usr/local/bin/tool");
        assert_eq!(fields(&mut s, "${P##*/}"), vec!["tool"]);
        assert_eq!(fields(&mut s, "${P#*/}"), vec!["usr/local/bin/tool"]);
    }

    #[test]
    fn removal_pattern_from_variable_is_literal_when_quoted() {
        let mut s = state();
        s.set_var("F", "a*b");
        s.set_var("PAT", "*b");
        assert_eq!(fields(&mut s, "${F%\"$PAT\"}"), vec!["a"]);
    }

    #[test]
    fn positional_at_quoted() {
        let mut s = state();
        s.positional = vec!["one".into(), "two words".into(), "".into()];
        assert_eq!(
            fields(&mut s, "\"$@\""),
            vec!["one", "two words", ""]
        );
        assert_eq!(fields(&mut s, "$@"), vec!["one", "two", "words"]);
    }

    #[test]
    fn positional_star_quoted_joins_with_ifs() {
        let mut s = state();
        s.positional = vec!["a".into(), "b".into()];
        assert_eq!(fields(&mut s, "\"$*\""), vec!["a b"]);
        s.set_var("IFS", ":x");
        assert_eq!(fields(&mut s, "\"$*\""), vec!["a:b"]);
    }

    #[test]
    fn at_with_no_positionals_produces_nothing() {
        let mut s = state();
        s.positional = vec![];
        assert!(fields(&mut s, "\"$@\"").is_empty());
    }

    #[test]
    fn at_adjacent_text_attaches() {
        let mut s = state();
        s.positional = vec!["a".into(), "b".into()];
        assert_eq!(fields(&mut s, "x\"$@\"y"), vec!["xa", "by"]);
    }

    #[test]
    fn hash_of_args() {
        let mut s = state();
        s.positional = vec!["a".into(), "b".into()];
        assert_eq!(fields(&mut s, "$#"), vec!["2"]);
    }

    #[test]
    fn arithmetic_expansion() {
        let mut s = state();
        s.set_var("n", "6");
        assert_eq!(fields(&mut s, "$((n * 7))"), vec!["42"]);
    }

    #[test]
    fn tilde_expansion() {
        let mut s = state();
        s.set_var("HOME", "/home/tester");
        assert_eq!(fields(&mut s, "~"), vec!["/home/tester"]);
        assert_eq!(fields(&mut s, "~/docs"), vec!["/home/tester/docs"]);
        assert_eq!(fields(&mut s, "~alice/x"), vec!["/home/alice/x"]);
    }

    #[test]
    fn tilde_result_not_split() {
        let mut s = state();
        s.set_var("HOME", "/ho me");
        assert_eq!(fields(&mut s, "~"), vec!["/ho me"]);
    }

    #[test]
    fn glob_expansion_against_fs() {
        let fs = jash_io::MemFs::new();
        fs.install("/data/a.txt", b"".to_vec());
        fs.install("/data/b.txt", b"".to_vec());
        fs.install("/data/c.log", b"".to_vec());
        let mut s = ShellState::new(std::sync::Arc::new(fs));
        s.cwd = "/data".into();
        assert_eq!(fields(&mut s, "*.txt"), vec!["a.txt", "b.txt"]);
        assert_eq!(fields(&mut s, "/data/*.log"), vec!["/data/c.log"]);
        // No match: pattern stays as-is.
        assert_eq!(fields(&mut s, "*.zip"), vec!["*.zip"]);
        // Quoted glob chars do not expand.
        assert_eq!(fields(&mut s, "'*.txt'"), vec!["*.txt"]);
    }

    #[test]
    fn glob_from_expansion_result_is_active() {
        let fs = jash_io::MemFs::new();
        fs.install("/d/x.c", b"".to_vec());
        let mut s = ShellState::new(std::sync::Arc::new(fs));
        s.cwd = "/d".into();
        s.set_var("P", "*.c");
        assert_eq!(fields(&mut s, "$P"), vec!["x.c"]);
        assert_eq!(fields(&mut s, "\"$P\""), vec!["*.c"]);
    }

    #[test]
    fn nounset_errors_on_unset() {
        let mut s = state();
        s.nounset = true;
        let prog = parse_unwrap("echo $NOPE");
        let jash_ast::CommandKind::Simple(sc) = &prog.items[0].and_or.first.commands[0].kind
        else {
            panic!();
        };
        assert!(expand_words(&mut s, &mut NoSubst, &sc.words[1..]).is_err());
    }

    #[test]
    fn single_no_split_for_assignments() {
        let mut s = state();
        s.set_var("X", "a b  c");
        let w = parse_word("$X");
        assert_eq!(
            expand_word_single(&mut s, &mut NoSubst, &w).unwrap(),
            "a b  c"
        );
    }

    fn parse_word(text: &str) -> Word {
        let prog = parse_unwrap(&format!("echo {text}"));
        let jash_ast::CommandKind::Simple(sc) = &prog.items[0].and_or.first.commands[0].kind
        else {
            panic!();
        };
        sc.words[1].clone()
    }
}
