//! Shell pattern matching (`fnmatch`-style globs).
//!
//! Used by `case`, the `%`/`#` parameter operators, and pathname expansion.
//! Patterns distinguish *active* metacharacters from quoted literals, so
//! `"$x"` inside a pattern matches literally even if it contains `*`.

/// One compiled pattern element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Pat {
    /// A literal character.
    Lit(char),
    /// `?` — any single character.
    Any,
    /// `*` — any (possibly empty) run.
    Star,
    /// `[...]` — a bracket class.
    Class {
        /// `[!...]` / `[^...]`.
        negated: bool,
        /// Accepted characters/ranges.
        items: Vec<ClassItem>,
    },
}

/// A bracket-class member.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClassItem {
    /// Single character.
    Ch(char),
    /// Inclusive range `a-z`.
    Range(char, char),
}

/// A compiled pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pattern {
    elems: Vec<Pat>,
}

impl Pattern {
    /// Compiles from `(char, quoted)` pairs: quoted characters are always
    /// literal.
    pub fn compile(chars: &[(char, bool)]) -> Pattern {
        let mut elems = Vec::with_capacity(chars.len());
        let mut i = 0;
        while i < chars.len() {
            let (c, quoted) = chars[i];
            if quoted {
                elems.push(Pat::Lit(c));
                i += 1;
                continue;
            }
            match c {
                '?' => elems.push(Pat::Any),
                '*' => {
                    // Collapse runs of stars.
                    if elems.last() != Some(&Pat::Star) {
                        elems.push(Pat::Star);
                    }
                }
                '[' => {
                    if let Some((class, consumed)) = parse_class(&chars[i..]) {
                        elems.push(class);
                        i += consumed;
                        continue;
                    }
                    elems.push(Pat::Lit('['));
                }
                '\\' if i + 1 < chars.len() => {
                    // Backslash escapes the next character in a pattern.
                    elems.push(Pat::Lit(chars[i + 1].0));
                    i += 2;
                    continue;
                }
                other => elems.push(Pat::Lit(other)),
            }
            i += 1;
        }
        Pattern { elems }
    }

    /// Compiles a pattern where every character is active.
    pub fn from_glob(s: &str) -> Pattern {
        let chars: Vec<(char, bool)> = s.chars().map(|c| (c, false)).collect();
        Pattern::compile(&chars)
    }

    /// Whether the pattern contains any active metacharacter.
    pub fn is_literal(&self) -> bool {
        self.elems.iter().all(|e| matches!(e, Pat::Lit(_)))
    }

    /// The literal text, when [`Pattern::is_literal`].
    pub fn literal_text(&self) -> Option<String> {
        if !self.is_literal() {
            return None;
        }
        Some(
            self.elems
                .iter()
                .map(|e| match e {
                    Pat::Lit(c) => *c,
                    _ => unreachable!(),
                })
                .collect(),
        )
    }

    /// Matches the whole of `text`.
    pub fn matches(&self, text: &str) -> bool {
        let chars: Vec<char> = text.chars().collect();
        self.match_at(&chars, 0, 0)
    }

    fn match_at(&self, text: &[char], mut ti: usize, mut pi: usize) -> bool {
        // Iterative glob match with single-star backtracking.
        let mut star: Option<(usize, usize)> = None;
        loop {
            if pi < self.elems.len() {
                match &self.elems[pi] {
                    Pat::Star => {
                        star = Some((pi, ti));
                        pi += 1;
                        continue;
                    }
                    Pat::Any if ti < text.len() => {
                        pi += 1;
                        ti += 1;
                        continue;
                    }
                    Pat::Lit(c) if ti < text.len() && text[ti] == *c => {
                        pi += 1;
                        ti += 1;
                        continue;
                    }
                    Pat::Class { negated, items } if ti < text.len() => {
                        let hit = items.iter().any(|it| match it {
                            ClassItem::Ch(c) => text[ti] == *c,
                            ClassItem::Range(a, b) => (*a..=*b).contains(&text[ti]),
                        });
                        if hit != *negated {
                            pi += 1;
                            ti += 1;
                            continue;
                        }
                    }
                    _ => {}
                }
            } else if ti == text.len() {
                return true;
            }
            // Mismatch: backtrack to the last star, consuming one more char.
            match star {
                Some((spi, sti)) if sti < text.len() => {
                    pi = spi + 1;
                    ti = sti + 1;
                    star = Some((spi, sti + 1));
                }
                _ => return false,
            }
        }
    }

    /// Length (in chars) of the shortest prefix of `text` the pattern
    /// matches, or the longest when `longest`. `None` if no prefix matches.
    pub fn match_prefix(&self, text: &str, longest: bool) -> Option<usize> {
        let chars: Vec<char> = text.chars().collect();
        let range: Vec<usize> = (0..=chars.len()).collect();
        let iter: Box<dyn Iterator<Item = &usize>> = if longest {
            Box::new(range.iter().rev())
        } else {
            Box::new(range.iter())
        };
        for &len in iter {
            let prefix: String = chars[..len].iter().collect();
            if self.matches(&prefix) {
                return Some(len);
            }
        }
        None
    }

    /// Like [`Pattern::match_prefix`] but for suffixes; returns the char
    /// index where the matching suffix starts.
    pub fn match_suffix(&self, text: &str, longest: bool) -> Option<usize> {
        let chars: Vec<char> = text.chars().collect();
        let range: Vec<usize> = (0..=chars.len()).collect();
        let iter: Box<dyn Iterator<Item = &usize>> = if longest {
            Box::new(range.iter())
        } else {
            Box::new(range.iter().rev())
        };
        for &start in iter {
            let suffix: String = chars[start..].iter().collect();
            if self.matches(&suffix) {
                return Some(start);
            }
        }
        None
    }
}

fn parse_class(chars: &[(char, bool)]) -> Option<(Pat, usize)> {
    // chars[0] is the unquoted `[`.
    let mut i = 1;
    let negated = matches!(chars.get(i), Some(('!', false)) | Some(('^', false)));
    if negated {
        i += 1;
    }
    let mut items = Vec::new();
    let mut first = true;
    loop {
        let (c, _) = *chars.get(i)?;
        if c == ']' && !first {
            return Some((Pat::Class { negated, items }, i + 1));
        }
        first = false;
        // Range `a-z` (a `-` at the edges is literal).
        if let (Some(('-', _)), Some((hi, _))) = (chars.get(i + 1), chars.get(i + 2)) {
            if *hi != ']' {
                items.push(ClassItem::Range(c, *hi));
                i += 3;
                continue;
            }
        }
        items.push(ClassItem::Ch(c));
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(pat: &str, text: &str) -> bool {
        Pattern::from_glob(pat).matches(text)
    }

    #[test]
    fn literal_match() {
        assert!(m("abc", "abc"));
        assert!(!m("abc", "abd"));
        assert!(!m("abc", "ab"));
    }

    #[test]
    fn question_mark() {
        assert!(m("a?c", "abc"));
        assert!(!m("a?c", "ac"));
    }

    #[test]
    fn star_matching() {
        assert!(m("*", ""));
        assert!(m("*", "anything"));
        assert!(m("a*c", "ac"));
        assert!(m("a*c", "abbbc"));
        assert!(!m("a*c", "abd"));
        assert!(m("*.txt", "file.txt"));
        assert!(!m("*.txt", "file.txt.bak"));
        assert!(m("a*b*c", "aXbYc"));
    }

    #[test]
    fn classes() {
        assert!(m("[abc]", "b"));
        assert!(!m("[abc]", "d"));
        assert!(m("[a-z]x", "qx"));
        assert!(m("[!a-z]", "3"));
        assert!(!m("[!a-z]", "q"));
        assert!(m("[]]", "]")); // literal ] first in class
        assert!(m("[a-]", "-"));
    }

    #[test]
    fn unclosed_class_is_literal() {
        assert!(m("a[b", "a[b"));
    }

    #[test]
    fn quoted_chars_are_literal() {
        let p = Pattern::compile(&[('*', true)]);
        assert!(p.matches("*"));
        assert!(!p.matches("x"));
    }

    #[test]
    fn literal_text_extraction() {
        assert_eq!(Pattern::from_glob("abc").literal_text().as_deref(), Some("abc"));
        assert_eq!(Pattern::from_glob("a*c").literal_text(), None);
    }

    #[test]
    fn prefix_matching_shortest_and_longest() {
        let p = Pattern::from_glob("*/");
        // text "a/b/c": shortest prefix match "a/" (2), longest "a/b/" (4).
        assert_eq!(p.match_prefix("a/b/c", false), Some(2));
        assert_eq!(p.match_prefix("a/b/c", true), Some(4));
        assert_eq!(p.match_prefix("abc", false), None);
    }

    #[test]
    fn suffix_matching_shortest_and_longest() {
        let p = Pattern::from_glob(".*");
        // text "a.tar.gz": shortest suffix ".gz" starts at 5; longest
        // ".tar.gz" starts at 1.
        assert_eq!(p.match_suffix("a.tar.gz", false), Some(5));
        assert_eq!(p.match_suffix("a.tar.gz", true), Some(1));
    }

    #[test]
    fn escaped_star_is_literal() {
        assert!(m(r"\*", "*"));
        assert!(!m(r"\*", "x"));
    }
}
