//! Incremental recomputation for dataflow regions (paper §4,
//! *Incremental Computation*).
//!
//! "PaSh and POSH's command specifications are the missing link, exposing
//! the necessary information for an incremental computation framework.
//! For example a command that processes each of its input lines
//! independently need not be reapplied to the input lines that were
//! unchanged. The JIT framework can then be used to provide up-to-date
//! information on the latest state of script inputs."
//!
//! Two levels, both content-addressed:
//!
//! * **whole-region memoization** — the cache key hashes the region plan
//!   and every input file's contents; an identical rerun replays the
//!   stored output without executing anything;
//! * **append-only suffix reuse** — when every stage is `Stateless` (per
//!   its specification) and the new input extends the cached input, only
//!   the appended suffix is processed and its output concatenated onto
//!   the cached output. This is the common log-processing case the paper
//!   motivates (U3: "small changes to the input … lead to many hours of
//!   wasted redundant computation").

pub mod cache;
pub mod runtime;

pub use cache::{fnv1a, CacheStats, Memo};
pub use runtime::{CacheOutcome, IncRunner, IncResult};
