//! Content-addressed memo table — re-exported from [`jash_io::memo`].
//!
//! The implementation moved down to `jash-io` when the crash-recovery
//! journal landed: resume satisfies journaled-clean regions from this
//! same memo, and `jash-core` (which drives resume) sits *below*
//! `jash-incremental` in the dependency order, so the table has to live
//! in the shared substrate. This module keeps the original paths
//! (`jash_incremental::cache::Memo`, `::fnv1a`, …) working and pins the
//! compatibility with its own tests.

pub use jash_io::memo::{fnv1a, CacheStats, Entry, Memo};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_stable_and_sensitive() {
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
        assert_ne!(fnv1a(b"ab"), fnv1a(b"ba"));
    }

    #[test]
    fn memo_roundtrip_through_reexport() {
        let fs = jash_io::mem_fs();
        let memo = Memo::new(fs, "/.cache");
        assert!(memo.get(42).unwrap().is_none());
        let e = Entry {
            input_len: 10,
            input_hash: 0xdead_beef,
            output: b"result\n".to_vec(),
        };
        memo.put(42, &e).unwrap();
        assert_eq!(memo.get(42).unwrap().unwrap(), e);
        memo.invalidate(42).unwrap();
        assert!(memo.get(42).unwrap().is_none());
    }

    #[test]
    fn distinct_keys_do_not_collide() {
        let fs = jash_io::mem_fs();
        let memo = Memo::new(fs, "/.cache");
        memo.put(
            1,
            &Entry {
                input_len: 1,
                input_hash: 1,
                output: b"one".to_vec(),
            },
        )
        .unwrap();
        memo.put(
            2,
            &Entry {
                input_len: 2,
                input_hash: 2,
                output: b"two".to_vec(),
            },
        )
        .unwrap();
        assert_eq!(memo.get(1).unwrap().unwrap().output, b"one");
        assert_eq!(memo.get(2).unwrap().unwrap().output, b"two");
    }
}
