//! The incremental region runner.

use crate::cache::{fnv1a, CacheStats, Entry, Memo};
use jash_dataflow::{compile, Region};
use jash_exec::{execute, ExecConfig};
use jash_io::FsHandle;
use jash_spec::{ParallelClass, Registry};
use std::io;
use std::sync::Arc;

/// How a region's result was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Replayed entirely from cache.
    Hit,
    /// Only the appended input suffix was processed.
    PartialAppend,
    /// Fully executed (and cached for next time).
    Miss,
}

/// The result of an incremental run.
#[derive(Debug)]
pub struct IncResult {
    /// Region stdout.
    pub stdout: Vec<u8>,
    /// Exit status.
    pub status: i32,
    /// How the result was produced.
    pub outcome: CacheOutcome,
}

/// Executes regions with memoization.
pub struct IncRunner {
    fs: FsHandle,
    registry: Registry,
    memo: Memo,
    /// Counters across this runner's lifetime.
    pub stats: CacheStats,
}

impl IncRunner {
    /// Creates a runner caching under `cache_dir` on `fs`.
    pub fn new(fs: FsHandle, cache_dir: &str) -> Self {
        IncRunner {
            memo: Memo::new(Arc::clone(&fs), cache_dir),
            fs,
            registry: Registry::builtin(),
            stats: CacheStats::default(),
        }
    }

    /// Runs `region`, reusing cached work where sound.
    pub fn run(&mut self, region: &Region) -> io::Result<IncResult> {
        let input = self.read_region_input(region)?;
        let plan_key = self.plan_key(region);
        let input_hash = fnv1a(&input);

        if let Some(entry) = self.memo.get(plan_key)? {
            // Exact match: replay.
            if entry.input_len == input.len() as u64 && entry.input_hash == input_hash {
                self.stats.hits += 1;
                return Ok(IncResult {
                    stdout: entry.output,
                    status: 0,
                    outcome: CacheOutcome::Hit,
                });
            }
            // Append-only extension of a stateless region: process only
            // the suffix. Sound because for stateless stages
            // f(a ⧺ b) = f(a) ⧺ f(b) — the specification's own law.
            if self.all_stateless(region)
                && (entry.input_len as usize) < input.len()
                && !input.is_empty()
                && fnv1a(&input[..entry.input_len as usize]) == entry.input_hash
                && ends_on_line_boundary(&input, entry.input_len as usize)
            {
                let suffix = &input[entry.input_len as usize..];
                let (suffix_out, status, clean) = self.execute_bytes(region, suffix)?;
                if status == 0 && clean {
                    let mut output = entry.output.clone();
                    output.extend_from_slice(&suffix_out);
                    self.memo.put(
                        plan_key,
                        &Entry {
                            input_len: input.len() as u64,
                            input_hash,
                            output: output.clone(),
                        },
                    )?;
                    self.stats.partial_hits += 1;
                    return Ok(IncResult {
                        stdout: output,
                        status,
                        outcome: CacheOutcome::PartialAppend,
                    });
                }
            }
        }

        // Full execution. Memoize only clean runs: a nonzero status can
        // be legitimate command semantics (grep with no matches), but a
        // faulted run (injected error, panic, stall — anything on the
        // outcome's failure ledger) may have produced truncated output
        // that must never be replayed as truth.
        let (stdout, status, clean) = self.execute_bytes(region, &input)?;
        if status == 0 && clean {
            self.memo.put(
                plan_key,
                &Entry {
                    input_len: input.len() as u64,
                    input_hash,
                    output: stdout.clone(),
                },
            )?;
        }
        self.stats.misses += 1;
        Ok(IncResult {
            stdout,
            status,
            outcome: CacheOutcome::Miss,
        })
    }

    /// The cache key of a region's *plan*: command names, args, and
    /// redirect structure (inputs are fingerprinted separately).
    fn plan_key(&self, region: &Region) -> u64 {
        let mut repr = Vec::new();
        for c in &region.commands {
            repr.extend_from_slice(c.name.as_bytes());
            repr.push(0);
            for a in &c.args {
                repr.extend_from_slice(a.as_bytes());
                repr.push(1);
            }
            repr.push(2);
        }
        fnv1a(&repr)
    }

    fn all_stateless(&self, region: &Region) -> bool {
        region.commands.iter().all(|c| {
            if c.name == "cat" {
                return true;
            }
            matches!(
                self.registry.resolve(&c.name, &c.args).map(|s| s.class),
                Some(ParallelClass::Stateless)
            )
        })
    }

    /// Concatenated contents of the region's input files (declared stdin
    /// redirect of the first stage, or `cat` operands).
    fn read_region_input(&self, region: &Region) -> io::Result<Vec<u8>> {
        let mut input = Vec::new();
        let Some(first) = region.commands.first() else {
            return Ok(input);
        };
        if let Some(p) = &first.stdin_redirect {
            input.extend(jash_io::fs::read_to_vec(self.fs.as_ref(), p)?);
        }
        if first.name == "cat" {
            for a in first.args.iter().filter(|a| !a.starts_with('-')) {
                input.extend(jash_io::fs::read_to_vec(self.fs.as_ref(), a)?);
            }
        }
        Ok(input)
    }

    /// Runs the region's *pipeline body* over the given input bytes by
    /// staging them in a scratch file. The third element reports whether
    /// the run was fault-free ([`jash_exec::ExecOutcome::is_clean`]) —
    /// memo commits are gated on it.
    fn execute_bytes(&self, region: &Region, input: &[u8]) -> io::Result<(Vec<u8>, i32, bool)> {
        let scratch = "/.jash-inc-scratch";
        jash_io::fs::write_file(self.fs.as_ref(), scratch, input)?;
        let mut body = region.clone();
        // Rebind the first stage to the scratch file.
        if let Some(first) = body.commands.first_mut() {
            if first.name == "cat" {
                first.args.retain(|a| a.starts_with('-'));
                first.args.push(scratch.to_string());
            }
            first.stdin_redirect = match first.name.as_str() {
                "cat" => None,
                _ => Some(scratch.to_string()),
            };
        }
        let compiled = compile(&body, &self.registry)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        let outcome = execute(&compiled.dfg, &ExecConfig::new(Arc::clone(&self.fs)))?;
        let _ = self.fs.remove(scratch);
        let clean = outcome.is_clean();
        Ok((outcome.stdout, outcome.status, clean))
    }
}

fn ends_on_line_boundary(input: &[u8], at: usize) -> bool {
    at == 0 || input.get(at - 1) == Some(&b'\n')
}

#[cfg(test)]
mod tests {
    use super::*;
    use jash_dataflow::ExpandedCommand;

    fn setup(content: &str) -> (FsHandle, IncRunner) {
        let fs = jash_io::mem_fs();
        jash_io::fs::write_file(fs.as_ref(), "/log", content.as_bytes()).unwrap();
        let runner = IncRunner::new(Arc::clone(&fs), "/.cache");
        (fs, runner)
    }

    fn grep_region() -> Region {
        Region {
            commands: vec![
                ExpandedCommand::new("cat", &["/log"]),
                ExpandedCommand::new("grep", &["ERROR"]),
            ],
        }
    }

    #[test]
    fn first_run_misses_then_hits() {
        let (_fs, mut r) = setup("ERROR one\nok\nERROR two\n");
        let a = r.run(&grep_region()).unwrap();
        assert_eq!(a.outcome, CacheOutcome::Miss);
        assert_eq!(a.stdout, b"ERROR one\nERROR two\n");
        let b = r.run(&grep_region()).unwrap();
        assert_eq!(b.outcome, CacheOutcome::Hit);
        assert_eq!(b.stdout, a.stdout);
        assert_eq!(r.stats.hits, 1);
        assert_eq!(r.stats.misses, 1);
    }

    #[test]
    fn append_only_change_reuses_prefix() {
        let (fs, mut r) = setup("ERROR one\nok\n");
        let a = r.run(&grep_region()).unwrap();
        assert_eq!(a.outcome, CacheOutcome::Miss);
        // Append new lines (the log-rotation case).
        let mut h = fs.open_write("/log", true).unwrap();
        h.write_all(b"ERROR two\nfine\n").unwrap();
        drop(h);
        let b = r.run(&grep_region()).unwrap();
        assert_eq!(b.outcome, CacheOutcome::PartialAppend);
        assert_eq!(b.stdout, b"ERROR one\nERROR two\n");
        // And the extended entry serves an exact hit next time.
        let c = r.run(&grep_region()).unwrap();
        assert_eq!(c.outcome, CacheOutcome::Hit);
    }

    #[test]
    fn content_edit_invalidates() {
        let (fs, mut r) = setup("ERROR one\n");
        r.run(&grep_region()).unwrap();
        jash_io::fs::write_file(fs.as_ref(), "/log", b"ERROR changed\n").unwrap();
        let b = r.run(&grep_region()).unwrap();
        assert_eq!(b.outcome, CacheOutcome::Miss);
        assert_eq!(b.stdout, b"ERROR changed\n");
    }

    #[test]
    fn non_stateless_regions_never_partially_reuse() {
        let (fs, mut r) = setup("b\na\n");
        let region = Region {
            commands: vec![
                ExpandedCommand::new("cat", &["/log"]),
                ExpandedCommand::new("sort", &[]),
            ],
        };
        let a = r.run(&region).unwrap();
        assert_eq!(a.stdout, b"a\nb\n");
        let mut h = fs.open_write("/log", true).unwrap();
        h.write_all(b"0\n").unwrap();
        drop(h);
        let b = r.run(&region).unwrap();
        // sort is blocking: the whole input must be re-sorted.
        assert_eq!(b.outcome, CacheOutcome::Miss);
        assert_eq!(b.stdout, b"0\na\nb\n");
    }

    #[test]
    fn different_plans_have_distinct_entries() {
        let (_fs, mut r) = setup("ERROR x\nwarn y\n");
        let g1 = grep_region();
        let g2 = Region {
            commands: vec![
                ExpandedCommand::new("cat", &["/log"]),
                ExpandedCommand::new("grep", &["warn"]),
            ],
        };
        assert_eq!(r.run(&g1).unwrap().stdout, b"ERROR x\n");
        assert_eq!(r.run(&g2).unwrap().stdout, b"warn y\n");
        assert_eq!(r.run(&g1).unwrap().outcome, CacheOutcome::Hit);
        assert_eq!(r.run(&g2).unwrap().outcome, CacheOutcome::Hit);
    }

    #[test]
    fn faulted_run_is_never_memoized() {
        // A transient fault on the scratch file truncates the first run
        // mid-stream; its (possibly partial) output must not enter the
        // memo. The second run — fault cleared — must re-execute (Miss,
        // not a Hit replaying the damaged entry) and produce the truth.
        let fs = jash_io::mem_fs();
        let content = format!("ERROR head\n{}ERROR tail\n", "filler line\n".repeat(200));
        jash_io::fs::write_file(fs.as_ref(), "/log", content.as_bytes()).unwrap();
        let plan = jash_io::FaultPlan::new().rule(jash_io::fault::FaultRule {
            path: Some("/.jash-inc-scratch".into()),
            op: jash_io::fault::FaultOp::Read,
            trigger: jash_io::fault::Trigger::AtByte(64),
            kind: jash_io::fault::FaultKind::Error {
                kind: std::io::ErrorKind::Other,
                msg: "injected: transient controller reset".into(),
            },
            once: true,
        });
        let faulty = jash_io::FaultFs::wrap(fs, plan) as FsHandle;
        let mut r = IncRunner::new(faulty, "/.cache");
        let a = r.run(&grep_region()).unwrap();
        assert_eq!(a.outcome, CacheOutcome::Miss);
        assert_ne!(a.status, 0, "faulted run must not report success");
        let b = r.run(&grep_region()).unwrap();
        assert_eq!(b.outcome, CacheOutcome::Miss, "damaged run must not have been cached");
        assert_eq!(b.status, 0);
        assert_eq!(b.stdout, b"ERROR head\nERROR tail\n");
        let c = r.run(&grep_region()).unwrap();
        assert_eq!(c.outcome, CacheOutcome::Hit, "clean run memoizes normally");
    }

    #[test]
    fn multi_stage_stateless_chain_appends() {
        let (fs, mut r) = setup("MIXED Case\n");
        let region = Region {
            commands: vec![
                ExpandedCommand::new("cat", &["/log"]),
                ExpandedCommand::new("tr", &["A-Z", "a-z"]),
                ExpandedCommand::new("grep", &["case"]),
            ],
        };
        assert_eq!(r.run(&region).unwrap().stdout, b"mixed case\n");
        let mut h = fs.open_write("/log", true).unwrap();
        h.write_all(b"More CASE\n").unwrap();
        drop(h);
        let b = r.run(&region).unwrap();
        assert_eq!(b.outcome, CacheOutcome::PartialAppend);
        assert_eq!(b.stdout, b"mixed case\nmore case\n");
    }
}
