//! AST-to-script unparsing (the second half of the libdash contract).
//!
//! The central guarantee, exercised by property tests in `jash-parser`, is
//! the *fixpoint law*: for any tree `t`, `unparse(parse(unparse(t)))`
//! equals `unparse(t)`, and the reparse is structurally equal to `t` modulo
//! spans whenever `t`'s literals are free of shell metacharacters (which is
//! always true for parser-produced trees). Synthesized literals containing
//! metacharacters are escaped, so the emitted script is always *semantically*
//! faithful even when re-parsing produces `Escaped` parts instead.

use crate::arith::{ArithExpr, ArithUnaryOp};
use crate::ast::{
    AndOrOp, CaseClause, Command, CommandKind, Pipeline, Program, Redirect, RedirectOp,
};
use crate::word::{ParamExp, ParamOp, Word, WordPart};

/// Characters that must always be escaped in an unquoted literal. Glob
/// metacharacters (`*?[`) are deliberately *not* escaped: a `Literal` part
/// keeps them significant for pathname expansion, and escaping them would
/// change the word's meaning.
const UNQUOTED_SPECIALS: &str = "|&;<>()$`\\\"' \t\n";

/// Renders a whole program back to shell syntax.
pub fn unparse(program: &Program) -> String {
    let mut u = Unparser::new();
    u.program(program, false);
    u.finish()
}

/// Renders a single command (with its redirects).
pub fn unparse_command(cmd: &Command) -> String {
    let mut u = Unparser::new();
    u.command(cmd);
    u.finish()
}

/// Renders a single word.
pub fn unparse_word(word: &Word) -> String {
    let mut u = Unparser::new();
    u.word(word);
    u.finish()
}

struct PendingHeredoc {
    delim: String,
    body: String,
}

struct Unparser {
    out: String,
    heredocs: Vec<PendingHeredoc>,
}

impl Unparser {
    fn new() -> Self {
        Unparser {
            out: String::new(),
            heredocs: Vec::new(),
        }
    }

    fn finish(mut self) -> String {
        self.flush_heredocs();
        self.out
    }

    fn push(&mut self, s: &str) {
        self.out.push_str(s);
    }

    /// Emits a statement separator, flushing any pending here-documents
    /// (their bodies must follow the next newline).
    fn newline(&mut self) {
        self.out.push('\n');
        self.flush_heredocs();
    }

    fn flush_heredocs(&mut self) {
        if self.heredocs.is_empty() {
            return;
        }
        if !self.out.ends_with('\n') {
            self.out.push('\n');
        }
        for h in std::mem::take(&mut self.heredocs) {
            self.out.push_str(&h.body);
            if !h.body.is_empty() && !h.body.ends_with('\n') {
                self.out.push('\n');
            }
            self.out.push_str(&h.delim);
            self.out.push('\n');
        }
    }

    /// Renders `program`. When `terminate` is true the final item gets a
    /// trailing separator so a keyword (`then`, `do`, `}`) can follow.
    fn program(&mut self, program: &Program, terminate: bool) {
        for (i, item) in program.items.iter().enumerate() {
            if i > 0 {
                self.push(" ");
            }
            self.and_or(&item.and_or);
            let last = i + 1 == program.items.len();
            if item.background {
                self.push(" &");
            } else if !last || terminate {
                self.push(";");
            }
            if !last {
                // Keep one logical line per item unless a heredoc forces a
                // real newline anyway.
                if self.heredocs.is_empty() {
                    self.push("");
                } else {
                    self.newline();
                }
            }
        }
        if program.items.is_empty() && terminate {
            // An empty body is not valid POSIX; emit a no-op.
            self.push(":;");
        }
        if terminate && !self.heredocs.is_empty() {
            self.newline();
        }
    }

    fn and_or(&mut self, ao: &crate::ast::AndOrList) {
        self.pipeline(&ao.first);
        for (op, p) in &ao.rest {
            self.push(match op {
                AndOrOp::And => " && ",
                AndOrOp::Or => " || ",
            });
            self.pipeline(p);
        }
    }

    fn pipeline(&mut self, p: &Pipeline) {
        if p.negated {
            self.push("! ");
        }
        for (i, cmd) in p.commands.iter().enumerate() {
            if i > 0 {
                self.push(" | ");
            }
            self.command(cmd);
        }
    }

    fn command(&mut self, cmd: &Command) {
        match &cmd.kind {
            CommandKind::Simple(sc) => {
                let mut first = true;
                for a in &sc.assignments {
                    if !first {
                        self.push(" ");
                    }
                    first = false;
                    self.push(&a.name);
                    self.push("=");
                    self.word(&a.value);
                }
                for w in &sc.words {
                    if !first {
                        self.push(" ");
                    }
                    first = false;
                    self.word(w);
                }
                if first && cmd.redirects.is_empty() {
                    // A fully empty simple command: emit the no-op builtin.
                    self.push(":");
                }
            }
            CommandKind::BraceGroup(p) => {
                self.push("{ ");
                self.program(p, true);
                self.push(" }");
            }
            CommandKind::Subshell(p) => {
                self.push("(");
                self.program(p, false);
                self.push(")");
            }
            CommandKind::If(c) => {
                self.push("if ");
                self.program(&c.cond, true);
                self.push(" then ");
                self.program(&c.then_body, true);
                for (cond, body) in &c.elifs {
                    self.push(" elif ");
                    self.program(cond, true);
                    self.push(" then ");
                    self.program(body, true);
                }
                if let Some(e) = &c.else_body {
                    self.push(" else ");
                    self.program(e, true);
                }
                self.push(" fi");
            }
            CommandKind::For(c) => {
                self.push("for ");
                self.push(&c.var);
                if let Some(words) = &c.words {
                    self.push(" in");
                    for w in words {
                        self.push(" ");
                        self.word(w);
                    }
                }
                self.push("; do ");
                self.program(&c.body, true);
                self.push(" done");
            }
            CommandKind::While(c) => {
                self.push(if c.until { "until " } else { "while " });
                self.program(&c.cond, true);
                self.push(" do ");
                self.program(&c.body, true);
                self.push(" done");
            }
            CommandKind::Case(c) => self.case_clause(c),
            CommandKind::FunctionDef { name, body } => {
                self.push(name);
                self.push("() ");
                self.command(body);
            }
        }
        for r in &cmd.redirects {
            self.push(" ");
            self.redirect(r);
        }
    }

    fn case_clause(&mut self, c: &CaseClause) {
        self.push("case ");
        self.word(&c.word);
        self.push(" in ");
        for arm in &c.arms {
            for (i, p) in arm.patterns.iter().enumerate() {
                if i > 0 {
                    self.push("|");
                }
                self.word(p);
            }
            self.push(") ");
            self.program(&arm.body, false);
            self.push(" ;; ");
        }
        self.push("esac");
    }

    fn redirect(&mut self, r: &Redirect) {
        if let Some(fd) = r.fd {
            self.push(&fd.to_string());
        }
        match r.op {
            RedirectOp::Read => self.push("<"),
            RedirectOp::Write => self.push(">"),
            RedirectOp::Append => self.push(">>"),
            RedirectOp::Clobber => self.push(">|"),
            RedirectOp::ReadWrite => self.push("<>"),
            RedirectOp::DupRead => self.push("<&"),
            RedirectOp::DupWrite => self.push(">&"),
            RedirectOp::HereDoc { strip_tabs } => {
                self.push(if strip_tabs { "<<-" } else { "<<" });
                let body = heredoc_body_text(&r.target, r.heredoc_quoted);
                let delim = fresh_delimiter(&body);
                if r.heredoc_quoted {
                    self.push("'");
                    self.push(&delim);
                    self.push("'");
                } else {
                    self.push(&delim);
                }
                self.heredocs.push(PendingHeredoc { delim, body });
                return;
            }
        }
        self.push(" ");
        self.word(&r.target);
    }

    fn word(&mut self, w: &Word) {
        if w.parts.is_empty() {
            self.push("''");
            return;
        }
        for (i, part) in w.parts.iter().enumerate() {
            self.part_at(part, false, i == 0);
        }
    }

    fn part(&mut self, p: &WordPart, in_dquotes: bool) {
        self.part_at(p, in_dquotes, false);
    }

    fn part_at(&mut self, p: &WordPart, in_dquotes: bool, at_word_start: bool) {
        match p {
            WordPart::Literal(s) => {
                if in_dquotes {
                    self.push(&escape_dquoted(s));
                } else {
                    self.push(&escape_unquoted(s, at_word_start));
                }
            }
            WordPart::SingleQuoted(s) => {
                if in_dquotes {
                    // Single quotes are not special inside double quotes;
                    // render the content as escaped double-quoted text.
                    self.push(&escape_dquoted(s));
                } else {
                    self.push("'");
                    // A single quote cannot appear inside single quotes;
                    // splice it via a backslash escape outside the quoted
                    // run.
                    self.push(&s.replace('\'', "'\\''"));
                    self.push("'");
                }
            }
            WordPart::DoubleQuoted(parts) => {
                self.push("\"");
                for p in parts {
                    self.part(p, true);
                }
                self.push("\"");
            }
            WordPart::Escaped(c) => {
                let mut buf = [0u8; 4];
                let s = c.encode_utf8(&mut buf);
                if in_dquotes {
                    self.push(&escape_dquoted(s));
                } else {
                    self.push("\\");
                    self.push(s);
                }
            }
            WordPart::Param(pe) => self.param(pe),
            WordPart::CmdSubst(prog) => {
                self.push("$(");
                self.program(prog, false);
                self.push(")");
            }
            WordPart::Arith(e) => {
                self.push("$((");
                self.push(&unparse_arith(e));
                self.push("))");
            }
            WordPart::Tilde(user) => {
                self.push("~");
                if let Some(u) = user {
                    self.push(u);
                }
            }
        }
    }

    fn param(&mut self, pe: &ParamExp) {
        self.push("${");
        match &pe.op {
            ParamOp::Plain => self.push(&pe.name),
            ParamOp::Length => {
                self.push("#");
                self.push(&pe.name);
            }
            ParamOp::Default { colon, word } => self.param_op(pe, *colon, "-", word),
            ParamOp::Assign { colon, word } => self.param_op(pe, *colon, "=", word),
            ParamOp::Error { colon, word } => self.param_op(pe, *colon, "?", word),
            ParamOp::Alt { colon, word } => self.param_op(pe, *colon, "+", word),
            ParamOp::RemoveSmallestSuffix(w) => self.param_pat(pe, "%", w),
            ParamOp::RemoveLargestSuffix(w) => self.param_pat(pe, "%%", w),
            ParamOp::RemoveSmallestPrefix(w) => self.param_pat(pe, "#", w),
            ParamOp::RemoveLargestPrefix(w) => self.param_pat(pe, "##", w),
        }
        self.push("}");
    }

    fn param_op(&mut self, pe: &ParamExp, colon: bool, sym: &str, word: &Word) {
        self.push(&pe.name);
        if colon {
            self.push(":");
        }
        self.push(sym);
        if !word.parts.is_empty() {
            self.word(word);
        }
    }

    fn param_pat(&mut self, pe: &ParamExp, sym: &str, word: &Word) {
        self.push(&pe.name);
        self.push(sym);
        if !word.parts.is_empty() {
            self.word(word);
        }
    }
}

fn escape_unquoted(s: &str, at_word_start: bool) -> String {
    let mut out = String::with_capacity(s.len());
    for (i, c) in s.chars().enumerate() {
        // `#` starts a comment and `~` a tilde-prefix only at the start of
        // a word; elsewhere they are ordinary characters.
        if UNQUOTED_SPECIALS.contains(c) || (at_word_start && i == 0 && matches!(c, '#' | '~')) {
            if c == '\n' {
                // A literal newline cannot be backslash-escaped portably
                // inside a word; single-quote it.
                out.push_str("'\n'");
                continue;
            }
            out.push('\\');
        }
        out.push(c);
    }
    out
}

fn escape_dquoted(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        if matches!(c, '"' | '$' | '`' | '\\') {
            out.push('\\');
        }
        out.push(c);
    }
    out
}

/// Renders a here-document body word back to text.
fn heredoc_body_text(body: &Word, quoted: bool) -> String {
    if quoted {
        // Quoted-delimiter bodies are a single inert literal.
        return body
            .parts
            .iter()
            .map(|p| match p {
                WordPart::Literal(s) | WordPart::SingleQuoted(s) => s.clone(),
                _ => String::new(),
            })
            .collect();
    }
    let mut out = String::new();
    for p in &body.parts {
        match p {
            WordPart::Literal(s) => {
                for c in s.chars() {
                    if matches!(c, '$' | '`' | '\\') {
                        out.push('\\');
                    }
                    out.push(c);
                }
            }
            WordPart::Param(pe) => {
                let mut u = Unparser::new();
                u.param(pe);
                out.push_str(&u.finish());
            }
            WordPart::CmdSubst(prog) => {
                out.push_str("$(");
                let mut u = Unparser::new();
                u.program(prog, false);
                out.push_str(&u.finish());
                out.push(')');
            }
            WordPart::Arith(e) => {
                out.push_str("$((");
                out.push_str(&unparse_arith(e));
                out.push_str("))");
            }
            WordPart::Escaped(c) => {
                out.push('\\');
                out.push(*c);
            }
            // Other parts cannot occur in heredoc bodies.
            _ => {}
        }
    }
    out
}

/// Picks a delimiter that does not occur as a line of `body`.
fn fresh_delimiter(body: &str) -> String {
    let mut delim = "EOF".to_string();
    let mut n = 0;
    while body.lines().any(|l| l == delim) {
        n += 1;
        delim = format!("EOF_{n}");
    }
    delim
}

/// Renders an arithmetic expression with minimal parentheses.
pub fn unparse_arith(e: &ArithExpr) -> String {
    fn go(e: &ArithExpr, parent_prec: u8, out: &mut String) {
        match e {
            ArithExpr::Num(n) => out.push_str(&n.to_string()),
            ArithExpr::Var(v) => out.push_str(v),
            ArithExpr::Unary(op, inner) => {
                out.push_str(op.symbol());
                // Parenthesize to avoid `--x` (would lex as decrement in
                // some shells) and precedence surprises.
                let need = matches!(
                    **inner,
                    ArithExpr::Binary(..) | ArithExpr::Ternary(..) | ArithExpr::Assign(..)
                ) || matches!(
                    (op, &**inner),
                    (ArithUnaryOp::Neg, ArithExpr::Num(n)) if *n < 0
                ) || matches!(
                    (op, &**inner),
                    (ArithUnaryOp::Neg, ArithExpr::Unary(ArithUnaryOp::Neg, _))
                        | (ArithUnaryOp::Pos, ArithExpr::Unary(ArithUnaryOp::Pos, _))
                );
                if need {
                    out.push('(');
                    go(inner, 0, out);
                    out.push(')');
                } else {
                    go(inner, 100, out);
                }
            }
            ArithExpr::Binary(op, a, b) => {
                let prec = op.precedence();
                let need = prec < parent_prec;
                if need {
                    out.push('(');
                }
                go(a, prec, out);
                out.push(' ');
                out.push_str(op.symbol());
                out.push(' ');
                // Right operand needs parens at equal precedence because all
                // our binary operators are left-associative.
                go(b, prec + 1, out);
                if need {
                    out.push(')');
                }
            }
            ArithExpr::Ternary(c, t, f) => {
                let need = parent_prec > 0;
                if need {
                    out.push('(');
                }
                go(c, 1, out);
                out.push_str(" ? ");
                go(t, 0, out);
                out.push_str(" : ");
                go(f, 0, out);
                if need {
                    out.push(')');
                }
            }
            ArithExpr::Assign(name, op, rhs) => {
                let need = parent_prec > 0;
                if need {
                    out.push('(');
                }
                out.push_str(name);
                out.push(' ');
                if let Some(op) = op {
                    out.push_str(op.symbol());
                }
                out.push_str("= ");
                go(rhs, 0, out);
                if need {
                    out.push(')');
                }
            }
        }
    }
    let mut out = String::new();
    go(e, 0, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arith::ArithBinOp;
    use crate::ast::{Assignment, SimpleCommand};

    #[test]
    fn simple_command_roundtrips_text() {
        let cmd = Command::simple(&["grep", "-v", "999"]);
        assert_eq!(unparse_command(&cmd), "grep -v 999");
    }

    #[test]
    fn assignment_renders() {
        let cmd = Command::new(CommandKind::Simple(SimpleCommand {
            assignments: vec![Assignment {
                name: "X".into(),
                value: Word::literal("1"),
            }],
            words: vec![],
        }));
        assert_eq!(unparse_command(&cmd), "X=1");
    }

    #[test]
    fn metacharacters_escaped() {
        let cmd = Command::new(CommandKind::Simple(SimpleCommand {
            assignments: vec![],
            words: vec![Word::literal("echo"), Word::literal("a b|c")],
        }));
        assert_eq!(unparse_command(&cmd), "echo a\\ b\\|c");
    }

    #[test]
    fn single_quote_escaping() {
        assert_eq!(unparse_word(&Word::single_quoted("don't")), "'don'\\''t'");
    }

    #[test]
    fn empty_word_is_quoted() {
        assert_eq!(unparse_word(&Word::empty()), "''");
    }

    #[test]
    fn plain_param_is_braced() {
        assert_eq!(unparse_word(&Word::param("FILES")), "${FILES}");
    }

    #[test]
    fn arith_precedence_minimal_parens() {
        // 1 + 2 * 3
        let e = ArithExpr::bin(
            ArithBinOp::Add,
            ArithExpr::Num(1),
            ArithExpr::bin(ArithBinOp::Mul, ArithExpr::Num(2), ArithExpr::Num(3)),
        );
        assert_eq!(unparse_arith(&e), "1 + 2 * 3");
        // (1 + 2) * 3
        let e = ArithExpr::bin(
            ArithBinOp::Mul,
            ArithExpr::bin(ArithBinOp::Add, ArithExpr::Num(1), ArithExpr::Num(2)),
            ArithExpr::Num(3),
        );
        assert_eq!(unparse_arith(&e), "(1 + 2) * 3");
    }

    #[test]
    fn arith_left_assoc_subtraction() {
        // 1 - (2 - 3) must keep parens.
        let e = ArithExpr::bin(
            ArithBinOp::Sub,
            ArithExpr::Num(1),
            ArithExpr::bin(ArithBinOp::Sub, ArithExpr::Num(2), ArithExpr::Num(3)),
        );
        assert_eq!(unparse_arith(&e), "1 - (2 - 3)");
    }

    #[test]
    fn pipeline_renders_with_pipes() {
        let p = Program {
            items: vec![crate::ast::ListItem {
                and_or: crate::ast::AndOrList::single(Pipeline {
                    negated: false,
                    commands: vec![Command::simple(&["cat", "f"]), Command::simple(&["wc", "-l"])],
                }),
                background: false,
            }],
        };
        assert_eq!(unparse(&p), "cat f | wc -l");
    }

    #[test]
    fn heredoc_emits_body_after_command() {
        let mut cmd = Command::simple(&["cat"]);
        cmd.redirects.push(Redirect {
            fd: None,
            op: RedirectOp::HereDoc { strip_tabs: false },
            target: Word::literal("hello\nworld\n"),
            heredoc_quoted: true,
        });
        let text = unparse_command(&cmd);
        assert_eq!(text, "cat <<'EOF'\nhello\nworld\nEOF\n");
    }

    #[test]
    fn heredoc_delimiter_collision_avoided() {
        let mut cmd = Command::simple(&["cat"]);
        cmd.redirects.push(Redirect {
            fd: None,
            op: RedirectOp::HereDoc { strip_tabs: false },
            target: Word::literal("EOF\n"),
            heredoc_quoted: true,
        });
        let text = unparse_command(&cmd);
        assert!(text.contains("<<'EOF_1'"), "{text}");
    }
}
