//! Arithmetic-expansion expression trees (`$((...))`).
//!
//! POSIX specifies the integer arithmetic of ISO C (signed long), including
//! assignment and the ternary operator. The evaluator lives in
//! `jash-expand::arith_eval`; this module only defines the shape.

/// Binary operators, in C semantics on `i64`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArithBinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (truncating; division by zero is a runtime expansion error)
    Div,
    /// `%`
    Rem,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `&`
    BitAnd,
    /// `^`
    BitXor,
    /// `|`
    BitOr,
    /// `&&` (short-circuit)
    LogAnd,
    /// `||` (short-circuit)
    LogOr,
}

impl ArithBinOp {
    /// The concrete-syntax spelling of the operator.
    pub fn symbol(&self) -> &'static str {
        use ArithBinOp::*;
        match self {
            Add => "+",
            Sub => "-",
            Mul => "*",
            Div => "/",
            Rem => "%",
            Shl => "<<",
            Shr => ">>",
            Lt => "<",
            Le => "<=",
            Gt => ">",
            Ge => ">=",
            Eq => "==",
            Ne => "!=",
            BitAnd => "&",
            BitXor => "^",
            BitOr => "|",
            LogAnd => "&&",
            LogOr => "||",
        }
    }

    /// Binding strength; larger binds tighter. Mirrors C.
    pub fn precedence(&self) -> u8 {
        use ArithBinOp::*;
        match self {
            Mul | Div | Rem => 10,
            Add | Sub => 9,
            Shl | Shr => 8,
            Lt | Le | Gt | Ge => 7,
            Eq | Ne => 6,
            BitAnd => 5,
            BitXor => 4,
            BitOr => 3,
            LogAnd => 2,
            LogOr => 1,
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArithUnaryOp {
    /// `-`
    Neg,
    /// `+`
    Pos,
    /// `!`
    LogNot,
    /// `~`
    BitNot,
}

impl ArithUnaryOp {
    /// The concrete-syntax spelling.
    pub fn symbol(&self) -> &'static str {
        match self {
            ArithUnaryOp::Neg => "-",
            ArithUnaryOp::Pos => "+",
            ArithUnaryOp::LogNot => "!",
            ArithUnaryOp::BitNot => "~",
        }
    }
}

/// An arithmetic expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArithExpr {
    /// Integer literal (decimal, `0x..`, or `0..` octal in the source).
    Num(i64),
    /// A shell variable; unset variables evaluate to 0.
    Var(String),
    /// Unary application.
    Unary(ArithUnaryOp, Box<ArithExpr>),
    /// Binary application.
    Binary(ArithBinOp, Box<ArithExpr>, Box<ArithExpr>),
    /// `cond ? then : else`.
    Ternary(Box<ArithExpr>, Box<ArithExpr>, Box<ArithExpr>),
    /// `name = expr`, or compound `name op= expr` when `op` is `Some`.
    ///
    /// Assignments make the *expansion itself* effectful; the purity
    /// analysis flags words containing them.
    Assign(String, Option<ArithBinOp>, Box<ArithExpr>),
}

impl ArithExpr {
    /// True if evaluating the expression can modify shell state.
    pub fn has_side_effects(&self) -> bool {
        match self {
            ArithExpr::Num(_) | ArithExpr::Var(_) => false,
            ArithExpr::Unary(_, e) => e.has_side_effects(),
            ArithExpr::Binary(_, a, b) => a.has_side_effects() || b.has_side_effects(),
            ArithExpr::Ternary(c, t, e) => {
                c.has_side_effects() || t.has_side_effects() || e.has_side_effects()
            }
            ArithExpr::Assign(..) => true,
        }
    }

    /// Convenience constructor for a binary node.
    pub fn bin(op: ArithBinOp, lhs: ArithExpr, rhs: ArithExpr) -> ArithExpr {
        ArithExpr::Binary(op, Box::new(lhs), Box::new(rhs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn side_effects_found_in_nested_assign() {
        let e = ArithExpr::bin(
            ArithBinOp::Add,
            ArithExpr::Num(1),
            ArithExpr::Assign("x".into(), None, Box::new(ArithExpr::Num(2))),
        );
        assert!(e.has_side_effects());
    }

    #[test]
    fn pure_expressions_are_pure() {
        let e = ArithExpr::Ternary(
            Box::new(ArithExpr::Var("x".into())),
            Box::new(ArithExpr::Num(1)),
            Box::new(ArithExpr::Num(2)),
        );
        assert!(!e.has_side_effects());
    }

    #[test]
    fn precedence_ordering_is_c_like() {
        assert!(ArithBinOp::Mul.precedence() > ArithBinOp::Add.precedence());
        assert!(ArithBinOp::Add.precedence() > ArithBinOp::Shl.precedence());
        assert!(ArithBinOp::BitAnd.precedence() > ArithBinOp::BitXor.precedence());
        assert!(ArithBinOp::LogAnd.precedence() > ArithBinOp::LogOr.precedence());
    }
}
