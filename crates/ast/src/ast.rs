//! Command-level AST following the POSIX.1-2017 shell grammar.

use crate::span::Span;
use crate::word::Word;

/// A complete shell program: a sequence of list items.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    /// Top-level items, in source order.
    pub items: Vec<ListItem>,
}

impl Program {
    /// The empty program (expands to nothing, exit status 0).
    pub fn empty() -> Self {
        Program { items: Vec::new() }
    }

    /// Wraps a single command into a one-item program.
    pub fn single(cmd: Command) -> Self {
        Program {
            items: vec![ListItem {
                and_or: AndOrList::single(Pipeline::single(cmd)),
                background: false,
            }],
        }
    }

    /// Total number of [`Command`] nodes, for quick size heuristics.
    pub fn command_count(&self) -> usize {
        let mut n = 0;
        crate::visit::walk_commands(self, &mut |_| n += 1);
        n
    }
}

/// One `and_or [; | &]` item of a list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ListItem {
    /// The and-or list to run.
    pub and_or: AndOrList,
    /// True when terminated by `&` (asynchronous execution).
    pub background: bool,
}

/// Connective between pipelines in an and-or list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AndOrOp {
    /// `&&`: run next only on success.
    And,
    /// `||`: run next only on failure.
    Or,
}

/// `pipeline (&& pipeline | || pipeline)*`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AndOrList {
    /// The first pipeline.
    pub first: Pipeline,
    /// Subsequent pipelines with their connectives.
    pub rest: Vec<(AndOrOp, Pipeline)>,
}

impl AndOrList {
    /// An and-or list with a single pipeline.
    pub fn single(p: Pipeline) -> Self {
        AndOrList {
            first: p,
            rest: Vec::new(),
        }
    }
}

/// `[!] command (| command)*`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pipeline {
    /// True when prefixed by `!` (status negation).
    pub negated: bool,
    /// The pipeline stages, at least one.
    pub commands: Vec<Command>,
}

impl Pipeline {
    /// A pipeline with a single stage.
    pub fn single(cmd: Command) -> Self {
        Pipeline {
            negated: false,
            commands: vec![cmd],
        }
    }
}

/// A command node: its kind plus any redirections and a source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Command {
    /// What kind of command this is.
    pub kind: CommandKind,
    /// Redirections applied to the command, in source order.
    pub redirects: Vec<Redirect>,
    /// Source span (synthetic for generated nodes).
    pub span: Span,
}

impl Command {
    /// Wraps a kind with no redirects and a synthetic span.
    pub fn new(kind: CommandKind) -> Self {
        Command {
            kind,
            redirects: Vec::new(),
            span: Span::synthetic(),
        }
    }

    /// A simple command from plain-literal words, for tests and synthesis.
    pub fn simple(words: &[&str]) -> Self {
        Command::new(CommandKind::Simple(SimpleCommand {
            assignments: Vec::new(),
            words: words.iter().map(|w| Word::literal(*w)).collect(),
        }))
    }
}

/// The alternatives of the POSIX `command` production.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommandKind {
    /// `name=value ... word ...`
    Simple(SimpleCommand),
    /// `{ program ; }` — runs in the current shell environment.
    BraceGroup(Program),
    /// `( program )` — runs in a subshell (copied environment).
    Subshell(Program),
    /// `if ... fi`
    If(IfClause),
    /// `for name [in words] ; do ... done`
    For(ForClause),
    /// `while`/`until` loops.
    While(WhileClause),
    /// `case word in ... esac`
    Case(CaseClause),
    /// `name() compound-command`
    FunctionDef {
        /// Function name.
        name: String,
        /// Body (a compound command, possibly with redirects).
        body: Box<Command>,
    },
}

/// Assignments plus words: `A=1 B=2 cmd arg1 arg2`.
///
/// When `words` is empty the assignments affect the current shell; otherwise
/// they only scope over the single command invocation.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SimpleCommand {
    /// Leading variable assignments.
    pub assignments: Vec<Assignment>,
    /// Command name and arguments (pre-expansion).
    pub words: Vec<Word>,
}

/// `name=value`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assignment {
    /// Variable name (validated by the parser: `[A-Za-z_][A-Za-z0-9_]*`).
    pub name: String,
    /// Right-hand side word (expanded without field splitting).
    pub value: Word,
}

/// `if cond; then body; [elif cond; then body;]* [else body;] fi`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IfClause {
    /// The first condition.
    pub cond: Program,
    /// Body taken when `cond` succeeds.
    pub then_body: Program,
    /// `elif` arms: condition and body.
    pub elifs: Vec<(Program, Program)>,
    /// Optional `else` body.
    pub else_body: Option<Program>,
}

/// `for name [in word...]; do body; done`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForClause {
    /// Loop variable.
    pub var: String,
    /// Words to iterate; `None` means the implicit `in "$@"`.
    pub words: Option<Vec<Word>>,
    /// Loop body.
    pub body: Program,
}

/// `while cond; do body; done` (or `until` when `until` is true).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WhileClause {
    /// True for `until` loops (condition sense inverted).
    pub until: bool,
    /// Loop condition.
    pub cond: Program,
    /// Loop body.
    pub body: Program,
}

/// `case word in arms esac`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaseClause {
    /// The word being matched.
    pub word: Word,
    /// The pattern arms, in order.
    pub arms: Vec<CaseArm>,
}

/// One `pattern [| pattern]* ) program ;;` arm.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaseArm {
    /// Alternative patterns.
    pub patterns: Vec<Word>,
    /// Arm body.
    pub body: Program,
}

/// A redirection operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RedirectOp {
    /// `<`
    Read,
    /// `>`
    Write,
    /// `>>`
    Append,
    /// `>|` (clobber even under `set -C`)
    Clobber,
    /// `<>`
    ReadWrite,
    /// `<&` (duplicate input fd; target `-` closes)
    DupRead,
    /// `>&` (duplicate output fd; target `-` closes)
    DupWrite,
    /// `<<` / `<<-`; `strip_tabs` is true for `<<-`.
    HereDoc {
        /// Strip leading tabs from body lines (`<<-`).
        strip_tabs: bool,
    },
}

impl RedirectOp {
    /// Default file descriptor the operator applies to when none is given.
    pub fn default_fd(&self) -> u32 {
        match self {
            RedirectOp::Read
            | RedirectOp::ReadWrite
            | RedirectOp::DupRead
            | RedirectOp::HereDoc { .. } => 0,
            RedirectOp::Write | RedirectOp::Append | RedirectOp::Clobber | RedirectOp::DupWrite => {
                1
            }
        }
    }
}

/// One redirection: `[fd]op target`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Redirect {
    /// Explicit fd, if one was written (`2>err`).
    pub fd: Option<u32>,
    /// The operator.
    pub op: RedirectOp,
    /// Target word (filename, fd number, or `-`).
    ///
    /// For here-documents this holds the *body*; see `heredoc_quoted`.
    pub target: Word,
    /// For here-documents: true when the delimiter was quoted, which makes
    /// the body inert (no expansion). Unused for other operators.
    pub heredoc_quoted: bool,
}

impl Redirect {
    /// A plain `op target` redirect with no explicit fd.
    pub fn new(op: RedirectOp, target: Word) -> Self {
        Redirect {
            fd: None,
            op,
            target,
            heredoc_quoted: false,
        }
    }

    /// The fd this redirect applies to.
    pub fn effective_fd(&self) -> u32 {
        self.fd.unwrap_or_else(|| self.op.default_fd())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_fds_match_posix() {
        assert_eq!(RedirectOp::Read.default_fd(), 0);
        assert_eq!(RedirectOp::Write.default_fd(), 1);
        assert_eq!(RedirectOp::Append.default_fd(), 1);
        assert_eq!(RedirectOp::HereDoc { strip_tabs: false }.default_fd(), 0);
    }

    #[test]
    fn effective_fd_prefers_explicit() {
        let mut r = Redirect::new(RedirectOp::Write, Word::literal("f"));
        assert_eq!(r.effective_fd(), 1);
        r.fd = Some(2);
        assert_eq!(r.effective_fd(), 2);
    }

    #[test]
    fn command_count_counts_nested() {
        let inner = Program::single(Command::simple(&["echo", "hi"]));
        let prog = Program::single(Command::new(CommandKind::Subshell(inner)));
        assert_eq!(prog.command_count(), 2);
    }

    #[test]
    fn simple_helper_builds_literals() {
        let c = Command::simple(&["grep", "-v", "999"]);
        match &c.kind {
            CommandKind::Simple(sc) => {
                assert_eq!(sc.words.len(), 3);
                assert_eq!(sc.words[1].as_literal(), Some("-v"));
            }
            _ => panic!("expected simple"),
        }
    }
}
