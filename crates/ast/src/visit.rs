//! Lightweight AST walkers.
//!
//! Downstream crates (linter, purity analysis, dataflow compiler) mostly
//! need "visit every command" or "visit every word", including those nested
//! in compound commands and command substitutions. Closure-based walkers
//! keep that at one line per use site.

use crate::ast::{Command, CommandKind, Program};
use crate::word::{ParamOp, Word, WordPart};

/// Calls `f` on every [`Command`] in `program`, pre-order, including
/// commands nested inside compound bodies and command substitutions.
pub fn walk_commands(program: &Program, f: &mut impl FnMut(&Command)) {
    for item in &program.items {
        walk_pipeline_cmds(&item.and_or.first, f);
        for (_, p) in &item.and_or.rest {
            walk_pipeline_cmds(p, f);
        }
    }
}

fn walk_pipeline_cmds(p: &crate::ast::Pipeline, f: &mut impl FnMut(&Command)) {
    for cmd in &p.commands {
        walk_command(cmd, f);
    }
}

/// Calls `f` on `cmd` and every command nested under it.
pub fn walk_command(cmd: &Command, f: &mut impl FnMut(&Command)) {
    f(cmd);
    for r in &cmd.redirects {
        walk_word_cmds(&r.target, f);
    }
    match &cmd.kind {
        CommandKind::Simple(sc) => {
            for a in &sc.assignments {
                walk_word_cmds(&a.value, f);
            }
            for w in &sc.words {
                walk_word_cmds(w, f);
            }
        }
        CommandKind::BraceGroup(p) | CommandKind::Subshell(p) => walk_commands(p, f),
        CommandKind::If(c) => {
            walk_commands(&c.cond, f);
            walk_commands(&c.then_body, f);
            for (cond, body) in &c.elifs {
                walk_commands(cond, f);
                walk_commands(body, f);
            }
            if let Some(e) = &c.else_body {
                walk_commands(e, f);
            }
        }
        CommandKind::For(c) => {
            if let Some(words) = &c.words {
                for w in words {
                    walk_word_cmds(w, f);
                }
            }
            walk_commands(&c.body, f);
        }
        CommandKind::While(c) => {
            walk_commands(&c.cond, f);
            walk_commands(&c.body, f);
        }
        CommandKind::Case(c) => {
            walk_word_cmds(&c.word, f);
            for arm in &c.arms {
                for p in &arm.patterns {
                    walk_word_cmds(p, f);
                }
                walk_commands(&arm.body, f);
            }
        }
        CommandKind::FunctionDef { body, .. } => walk_command(body, f),
    }
}

fn walk_word_cmds(word: &Word, f: &mut impl FnMut(&Command)) {
    for part in &word.parts {
        walk_part_cmds(part, f);
    }
}

fn walk_part_cmds(part: &WordPart, f: &mut impl FnMut(&Command)) {
    match part {
        WordPart::CmdSubst(p) => walk_commands(p, f),
        WordPart::DoubleQuoted(parts) => {
            for p in parts {
                walk_part_cmds(p, f);
            }
        }
        WordPart::Param(pe) => match &pe.op {
            ParamOp::Default { word, .. }
            | ParamOp::Assign { word, .. }
            | ParamOp::Error { word, .. }
            | ParamOp::Alt { word, .. }
            | ParamOp::RemoveSmallestSuffix(word)
            | ParamOp::RemoveLargestSuffix(word)
            | ParamOp::RemoveSmallestPrefix(word)
            | ParamOp::RemoveLargestPrefix(word) => walk_word_cmds(word, f),
            ParamOp::Plain | ParamOp::Length => {}
        },
        _ => {}
    }
}

/// Calls `f` on every [`Word`] in the program (command words, assignment
/// values, redirect targets, case patterns, for-lists), *not* recursing into
/// words nested inside parameter-operator defaults.
pub fn walk_words(program: &Program, f: &mut impl FnMut(&Word)) {
    walk_commands(program, &mut |cmd| {
        for r in &cmd.redirects {
            f(&r.target);
        }
        match &cmd.kind {
            CommandKind::Simple(sc) => {
                for a in &sc.assignments {
                    f(&a.value);
                }
                for w in &sc.words {
                    f(w);
                }
            }
            CommandKind::For(c) => {
                if let Some(ws) = &c.words {
                    for w in ws {
                        f(w);
                    }
                }
            }
            CommandKind::Case(c) => {
                f(&c.word);
                for arm in &c.arms {
                    for p in &arm.patterns {
                        f(p);
                    }
                }
            }
            _ => {}
        }
    });
}

/// Resets every span in the program to [`crate::Span::synthetic`].
///
/// Useful for structural equality in tests: `parse(unparse(t))` rebuilds
/// spans relative to the new text, so compare span-stripped trees.
pub fn strip_spans(program: &mut Program) {
    fn strip_cmd(cmd: &mut Command) {
        cmd.span = crate::span::Span::synthetic();
        for r in &mut cmd.redirects {
            strip_word(&mut r.target);
        }
        match &mut cmd.kind {
            CommandKind::Simple(sc) => {
                for a in &mut sc.assignments {
                    strip_word(&mut a.value);
                }
                for w in &mut sc.words {
                    strip_word(w);
                }
            }
            CommandKind::BraceGroup(p) | CommandKind::Subshell(p) => strip_prog(p),
            CommandKind::If(c) => {
                strip_prog(&mut c.cond);
                strip_prog(&mut c.then_body);
                for (a, b) in &mut c.elifs {
                    strip_prog(a);
                    strip_prog(b);
                }
                if let Some(e) = &mut c.else_body {
                    strip_prog(e);
                }
            }
            CommandKind::For(c) => {
                if let Some(ws) = &mut c.words {
                    for w in ws {
                        strip_word(w);
                    }
                }
                strip_prog(&mut c.body);
            }
            CommandKind::While(c) => {
                strip_prog(&mut c.cond);
                strip_prog(&mut c.body);
            }
            CommandKind::Case(c) => {
                strip_word(&mut c.word);
                for arm in &mut c.arms {
                    for p in &mut arm.patterns {
                        strip_word(p);
                    }
                    strip_prog(&mut arm.body);
                }
            }
            CommandKind::FunctionDef { body, .. } => strip_cmd(body),
        }
    }
    fn strip_word(w: &mut Word) {
        for p in &mut w.parts {
            strip_part(p);
        }
    }
    fn strip_part(p: &mut WordPart) {
        match p {
            WordPart::CmdSubst(prog) => strip_prog(prog),
            WordPart::DoubleQuoted(parts) => {
                for p in parts {
                    strip_part(p);
                }
            }
            WordPart::Param(pe) => match &mut pe.op {
                ParamOp::Default { word, .. }
                | ParamOp::Assign { word, .. }
                | ParamOp::Error { word, .. }
                | ParamOp::Alt { word, .. }
                | ParamOp::RemoveSmallestSuffix(word)
                | ParamOp::RemoveLargestSuffix(word)
                | ParamOp::RemoveSmallestPrefix(word)
                | ParamOp::RemoveLargestPrefix(word) => strip_word(word),
                _ => {}
            },
            _ => {}
        }
    }
    fn strip_prog(p: &mut Program) {
        for item in &mut p.items {
            strip_pipe(&mut item.and_or.first);
            for (_, pl) in &mut item.and_or.rest {
                strip_pipe(pl);
            }
        }
    }
    fn strip_pipe(p: &mut crate::ast::Pipeline) {
        for c in &mut p.commands {
            strip_cmd(c);
        }
    }
    strip_prog(program);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::*;
    use crate::word::*;

    fn subst_program() -> Program {
        // `echo $(ls)`
        let inner = Program::single(Command::simple(&["ls"]));
        let word = Word {
            parts: vec![WordPart::CmdSubst(inner)],
        };
        Program::single(Command::new(CommandKind::Simple(SimpleCommand {
            assignments: vec![],
            words: vec![Word::literal("echo"), word],
        })))
    }

    #[test]
    fn walk_reaches_command_substitutions() {
        let mut names = Vec::new();
        walk_commands(&subst_program(), &mut |c| {
            if let CommandKind::Simple(sc) = &c.kind {
                if let Some(n) = sc.words.first().and_then(|w| w.as_literal()) {
                    names.push(n.to_string());
                }
            }
        });
        assert_eq!(names, vec!["echo", "ls"]);
    }

    #[test]
    fn walk_words_sees_all_words() {
        let mut n = 0;
        walk_words(&subst_program(), &mut |_| n += 1);
        // echo + $(ls) word at top level, plus `ls` inside the substitution.
        assert_eq!(n, 3);
    }

    #[test]
    fn strip_spans_resets() {
        let mut p = subst_program();
        if let CommandKind::Simple(_) = &p.items[0].and_or.first.commands[0].kind {
            p.items[0].and_or.first.commands[0].span = crate::span::Span::new(5, 9);
        }
        strip_spans(&mut p);
        walk_commands(&p, &mut |c| assert!(c.span.is_synthetic()));
    }
}
