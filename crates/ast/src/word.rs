//! Structured shell words.
//!
//! POSIX words are not strings: quoting and embedded expansions change both
//! evaluation (field splitting, pathname expansion) and *effects* (a command
//! substitution may write files; a `${x:=y}` assigns). Keeping the structure
//! explicit is what allows the Smoosh-style purity analysis in `jash-expand`
//! to decide when the Jash JIT may expand a word early.

use crate::arith::ArithExpr;
use crate::ast::Program;

/// One syntactic constituent of a [`Word`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WordPart {
    /// Unquoted literal text. May contain glob metacharacters (`*?[`),
    /// which stay significant during pathname expansion.
    Literal(String),
    /// Text inside single quotes; fully inert.
    SingleQuoted(String),
    /// Text inside double quotes; parameter/command/arith expansion still
    /// run inside, but field splitting and globbing are suppressed.
    DoubleQuoted(Vec<WordPart>),
    /// A backslash-escaped character outside quotes (`\x`).
    Escaped(char),
    /// A parameter expansion, `$name` or `${name...}`.
    Param(ParamExp),
    /// A command substitution, `$(program)` or `` `program` ``.
    CmdSubst(Program),
    /// An arithmetic expansion, `$((expr))`.
    Arith(ArithExpr),
    /// A tilde prefix: `~` (None) or `~user` (Some(user)).
    ///
    /// Only meaningful as the first part of a word (or after `:` in
    /// assignment context); the parser only produces it in those positions.
    Tilde(Option<String>),
}

/// A full shell word: a sequence of parts that concatenate after expansion.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Word {
    /// The parts, in source order.
    pub parts: Vec<WordPart>,
}

impl Word {
    /// An empty word (expands to the empty field).
    pub fn empty() -> Self {
        Word { parts: Vec::new() }
    }

    /// A word consisting of a single unquoted literal.
    pub fn literal(s: impl Into<String>) -> Self {
        Word {
            parts: vec![WordPart::Literal(s.into())],
        }
    }

    /// A word consisting of a single-quoted literal (inert under expansion).
    pub fn single_quoted(s: impl Into<String>) -> Self {
        Word {
            parts: vec![WordPart::SingleQuoted(s.into())],
        }
    }

    /// A bare `$name` parameter expansion.
    pub fn param(name: impl Into<String>) -> Self {
        Word {
            parts: vec![WordPart::Param(ParamExp::plain(name))],
        }
    }

    /// If the word is a pure literal (no quoting, no expansions), returns
    /// its text.
    ///
    /// This is the fast path used all over the dataflow compiler: command
    /// names and flags are almost always plain literals.
    pub fn as_literal(&self) -> Option<&str> {
        match self.parts.as_slice() {
            [WordPart::Literal(s)] => Some(s),
            _ => None,
        }
    }

    /// Returns the word's text if it is *static*: composed only of literal,
    /// quoted, and escaped parts — i.e. expansion cannot change it (modulo
    /// globbing, which the caller must consider separately).
    pub fn static_text(&self) -> Option<String> {
        fn push(parts: &[WordPart], out: &mut String) -> bool {
            for p in parts {
                match p {
                    WordPart::Literal(s) | WordPart::SingleQuoted(s) => out.push_str(s),
                    WordPart::Escaped(c) => out.push(*c),
                    WordPart::DoubleQuoted(inner) => {
                        if !push(inner, out) {
                            return false;
                        }
                    }
                    _ => return false,
                }
            }
            true
        }
        let mut out = String::new();
        if push(&self.parts, &mut out) {
            Some(out)
        } else {
            None
        }
    }

    /// True if any part is an expansion (parameter, command, arithmetic).
    pub fn has_expansion(&self) -> bool {
        fn any(parts: &[WordPart]) -> bool {
            parts.iter().any(|p| match p {
                WordPart::Param(_) | WordPart::CmdSubst(_) | WordPart::Arith(_) => true,
                WordPart::DoubleQuoted(inner) => any(inner),
                _ => false,
            })
        }
        any(&self.parts)
    }

    /// True if the word, taken literally, contains unquoted glob
    /// metacharacters.
    pub fn has_glob(&self) -> bool {
        self.parts.iter().any(|p| match p {
            WordPart::Literal(s) => s.contains(['*', '?', '[']),
            _ => false,
        })
    }
}

/// The operator inside a `${...}` expansion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParamOp {
    /// `$name` or `${name}`.
    Plain,
    /// `${name:-word}` (colon: true) or `${name-word}`: use default.
    Default { colon: bool, word: Word },
    /// `${name:=word}` or `${name=word}`: assign default. Side-effectful!
    Assign { colon: bool, word: Word },
    /// `${name:?word}` or `${name?word}`: error if unset. Side-effectful
    /// (aborts the shell).
    Error { colon: bool, word: Word },
    /// `${name:+word}` or `${name+word}`: use alternative.
    Alt { colon: bool, word: Word },
    /// `${#name}`: string length.
    Length,
    /// `${name%pattern}`: remove smallest suffix.
    RemoveSmallestSuffix(Word),
    /// `${name%%pattern}`: remove largest suffix.
    RemoveLargestSuffix(Word),
    /// `${name#pattern}`: remove smallest prefix.
    RemoveSmallestPrefix(Word),
    /// `${name##pattern}`: remove largest prefix.
    RemoveLargestPrefix(Word),
}

/// A parameter expansion: the parameter name plus an optional operator.
///
/// `name` may be a variable name, a positional parameter (`"1"`..), or a
/// special parameter (`@ * # ? - $ ! 0`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamExp {
    /// Parameter being expanded.
    pub name: String,
    /// Modifier applied to the value.
    pub op: ParamOp,
}

impl ParamExp {
    /// A plain `$name` expansion.
    pub fn plain(name: impl Into<String>) -> Self {
        ParamExp {
            name: name.into(),
            op: ParamOp::Plain,
        }
    }

    /// True if `name` is one of the POSIX special parameters.
    pub fn is_special(&self) -> bool {
        matches!(
            self.name.as_str(),
            "@" | "*" | "#" | "?" | "-" | "$" | "!" | "0"
        ) || self.name.chars().all(|c| c.is_ascii_digit()) && !self.name.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_roundtrip() {
        let w = Word::literal("hello");
        assert_eq!(w.as_literal(), Some("hello"));
        assert_eq!(w.static_text().as_deref(), Some("hello"));
        assert!(!w.has_expansion());
    }

    #[test]
    fn static_text_mixes_quoting() {
        let w = Word {
            parts: vec![
                WordPart::Literal("a".into()),
                WordPart::SingleQuoted("b c".into()),
                WordPart::Escaped('d'),
                WordPart::DoubleQuoted(vec![WordPart::Literal("e".into())]),
            ],
        };
        assert_eq!(w.static_text().as_deref(), Some("ab cde"));
        assert_eq!(w.as_literal(), None);
    }

    #[test]
    fn expansion_detected_through_double_quotes() {
        let w = Word {
            parts: vec![WordPart::DoubleQuoted(vec![WordPart::Param(
                ParamExp::plain("x"),
            )])],
        };
        assert!(w.has_expansion());
        assert_eq!(w.static_text(), None);
    }

    #[test]
    fn glob_detection_only_unquoted() {
        assert!(Word::literal("*.txt").has_glob());
        assert!(!Word::single_quoted("*.txt").has_glob());
    }

    #[test]
    fn special_params() {
        assert!(ParamExp::plain("@").is_special());
        assert!(ParamExp::plain("3").is_special());
        assert!(!ParamExp::plain("HOME").is_special());
    }
}
