//! Abstract syntax trees for the POSIX shell command language.
//!
//! This crate plays the role that *libdash* plays for Smoosh and PaSh
//! (enabler E1 of the HotOS '21 paper): a reusable, linkable representation
//! of shell programs that supports both directions of the parse/unparse
//! contract:
//!
//! * parsing produces values of [`Program`] (see the `jash-parser` crate),
//! * [`unparse`] turns any [`Program`] back into concrete shell syntax that
//!   re-parses to the same tree.
//!
//! The tree mirrors the POSIX.1-2017 shell grammar: a [`Program`] is a list
//! of and-or lists built from [`Pipeline`]s of [`Command`]s; words are not
//! flat strings but structured [`word::Word`] values that record quoting and
//! embedded expansions, which is what makes Smoosh-style purity analysis and
//! PaSh-style dataflow extraction possible downstream.

pub mod arith;
pub mod ast;
pub mod span;
pub mod unparse;
pub mod visit;
pub mod word;

pub use arith::{ArithBinOp, ArithExpr, ArithUnaryOp};
pub use ast::{
    AndOrList, AndOrOp, Assignment, CaseArm, CaseClause, Command, CommandKind, ForClause,
    IfClause, ListItem, Pipeline, Program, Redirect, RedirectOp, SimpleCommand, WhileClause,
};
pub use span::Span;
pub use unparse::{unparse, unparse_command, unparse_word};
pub use word::{ParamExp, ParamOp, Word, WordPart};
