//! Byte-offset source spans.

/// A half-open byte range `[start, end)` into the original script source.
///
/// Spans are carried on [`crate::Command`] nodes so that downstream tools
/// (the linter, the JIT trace log) can point back at concrete script text.
/// Synthesized nodes (e.g. commands emitted by the dataflow-to-shell
/// translation) use [`Span::synthetic`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
}

impl Span {
    /// Creates a span covering `[start, end)`.
    pub fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }

    /// The span used for nodes that have no source text.
    pub fn synthetic() -> Self {
        Span::default()
    }

    /// Returns true for spans produced by [`Span::synthetic`].
    pub fn is_synthetic(&self) -> bool {
        self.start == 0 && self.end == 0
    }

    /// The smallest span covering both `self` and `other`.
    pub fn join(self, other: Span) -> Span {
        if self.is_synthetic() {
            return other;
        }
        if other.is_synthetic() {
            return self;
        }
        Span::new(self.start.min(other.start), self.end.max(other.end))
    }

    /// Length of the span in bytes.
    pub fn len(&self) -> usize {
        self.end.saturating_sub(self.start)
    }

    /// Whether the span is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Maps byte offsets to 1-based `(line, column)` pairs for diagnostics.
#[derive(Debug, Clone)]
pub struct LineMap {
    /// Byte offset of the start of each line.
    line_starts: Vec<usize>,
}

impl LineMap {
    /// Builds a line map for `source`.
    pub fn new(source: &str) -> Self {
        let mut line_starts = vec![0];
        for (i, b) in source.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i + 1);
            }
        }
        LineMap { line_starts }
    }

    /// Returns the 1-based `(line, column)` of a byte offset.
    pub fn position(&self, offset: usize) -> (usize, usize) {
        let line = match self.line_starts.binary_search(&offset) {
            Ok(l) => l,
            Err(l) => l - 1,
        };
        (line + 1, offset - self.line_starts[line] + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_covers_both() {
        let a = Span::new(3, 7);
        let b = Span::new(5, 12);
        assert_eq!(a.join(b), Span::new(3, 12));
    }

    #[test]
    fn join_ignores_synthetic() {
        let a = Span::new(3, 7);
        assert_eq!(a.join(Span::synthetic()), a);
        assert_eq!(Span::synthetic().join(a), a);
    }

    #[test]
    fn line_map_positions() {
        let map = LineMap::new("ab\ncd\n\nxyz");
        assert_eq!(map.position(0), (1, 1));
        assert_eq!(map.position(1), (1, 2));
        assert_eq!(map.position(3), (2, 1));
        assert_eq!(map.position(6), (3, 1));
        assert_eq!(map.position(7), (4, 1));
        assert_eq!(map.position(9), (4, 3));
    }

    #[test]
    fn span_len() {
        assert_eq!(Span::new(2, 6).len(), 4);
        assert!(Span::synthetic().is_empty());
    }
}
