//! Engine strategies: the three systems Figure 1 compares.

use std::fmt;

/// Which execution strategy a [`crate::Jash`] session uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Engine {
    /// Plain interpretation — the `bash` baseline. Pipelines still get
    /// pipeline (stage) parallelism, as real shells do, but never data
    /// parallelism.
    Bash,
    /// The PaSh-style ahead-of-time transformer: parallelizes any region
    /// whose words are *statically* known (no expansions), always at the
    /// core count, always buffering split chunks through storage, never
    /// consulting machine resources. Dynamic regions (the paper's `spell`
    /// example) are left untouched.
    PashAot,
    /// The paper's proposal: a just-in-time compiler invoked with live
    /// shell state. Expands pure words early, reads input sizes off the
    /// filesystem, asks the resource-aware planner for a width, and
    /// applies the no-regression guard.
    JashJit,
}

impl Engine {
    /// All engines, in the order Figure 1 plots them.
    pub const ALL: [Engine; 3] = [Engine::Bash, Engine::PashAot, Engine::JashJit];
}

impl fmt::Display for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Engine::Bash => write!(f, "bash"),
            Engine::PashAot => write!(f, "pash"),
            Engine::JashJit => write!(f, "jash"),
        }
    }
}

/// What the JIT decided for one top-level pipeline, for tracing and the
/// `--explain` story in the paper's tooling section.
#[derive(Debug, Clone)]
pub enum Action {
    /// Left to the interpreter.
    Interpreted {
        /// Why the region was not optimized.
        reason: String,
    },
    /// Compiled, rewritten, and executed as a dataflow graph.
    Optimized {
        /// Chosen width.
        width: usize,
        /// Whether splits buffer through storage.
        buffered: bool,
        /// Whether fusible stage runs executed as single-pass fused
        /// kernels.
        fused: bool,
        /// Planner's projected speedup (1.0 for PashAot, which does not
        /// estimate).
        projected_speedup: f64,
    },
    /// Optimized execution faulted mid-flight; staged output was
    /// discarded and the region re-ran sequentially under the
    /// interpreter (the correctness half of the no-regression guard).
    FailedOver {
        /// Width the failed optimized attempt ran at.
        width: usize,
        /// The region failures that triggered the fallback.
        failures: Vec<String>,
    },
    /// Satisfied from the crash-recovery journal: a previous interrupted
    /// run completed this region cleanly, the durable memo still holds
    /// its verified output, so the region was replayed instead of
    /// re-executed.
    Resumed {
        /// The region's width-insensitive dataflow fingerprint.
        fingerprint: u64,
    },
    /// Aborted by a graceful shutdown (SIGINT/SIGTERM): the region was
    /// cancelled mid-flight and deliberately *not* failed over, so a
    /// later `--resume` can pick up where the signal landed.
    Aborted {
        /// The cancellation reason, e.g. `shutdown: SIGTERM (15) received`.
        reason: String,
    },
}

/// Live runtime information a session accumulates while executing —
/// the record the JIT consults (and extends) each time a region runs.
/// The failure side of the no-regression guard lives here: every
/// optimized region that faulted and fell back is on the books, so
/// tooling (and tests) can audit that no fault was silently swallowed.
#[derive(Debug, Clone, Default)]
pub struct RuntimeInfo {
    /// Regions that ran to completion through the dataflow executor.
    pub regions_optimized: u64,
    /// Regions whose optimized run faulted and re-ran sequentially.
    pub regions_failed_over: u64,
    /// Regions that faulted but recovered *inside* the supervisor — by
    /// retry, width degradation, or both — and still delivered optimized
    /// output (counted in `regions_optimized` too).
    pub regions_recovered: u64,
    /// Regions satisfied from the crash-recovery journal + memo instead
    /// of executing (not counted in `regions_optimized`).
    pub regions_resumed: u64,
    /// One record per failed-over region, in session order.
    pub failures: Vec<RegionFailure>,
    /// The ordered supervision event log: every attempt, backoff,
    /// degradation, failover, and breaker transition this session took.
    /// Wall-clock-free, so two runs with the same fault plan and retry
    /// seed produce logs that compare equal.
    pub supervision: jash_exec::SupervisionLog,
}

/// Why one optimized region was rolled back.
#[derive(Debug, Clone)]
pub struct RegionFailure {
    /// The pipeline, unparsed.
    pub pipeline: String,
    /// Node and commit failures reported by the executor.
    pub failures: Vec<String>,
}

/// One traced decision.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// The pipeline, unparsed.
    pub pipeline: String,
    /// What happened.
    pub action: Action,
}

impl TraceEvent {
    /// True when the region ran through the dataflow executor.
    pub fn was_optimized(&self) -> bool {
        matches!(self.action, Action::Optimized { .. })
    }

    /// True when the optimized run faulted and fell back.
    pub fn failed_over(&self) -> bool {
        matches!(self.action, Action::FailedOver { .. })
    }

    /// True when the region was satisfied from the journal + memo.
    pub fn was_resumed(&self) -> bool {
        matches!(self.action, Action::Resumed { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names() {
        assert_eq!(Engine::Bash.to_string(), "bash");
        assert_eq!(Engine::PashAot.to_string(), "pash");
        assert_eq!(Engine::JashJit.to_string(), "jash");
    }

    #[test]
    fn trace_classification() {
        let t = TraceEvent {
            pipeline: "cat f | sort".into(),
            action: Action::Optimized {
                width: 4,
                buffered: false,
                fused: false,
                projected_speedup: 2.0,
            },
        };
        assert!(t.was_optimized());
    }
}
