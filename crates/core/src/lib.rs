//! **Jash** — "Just a shell": the dynamically-triggered optimization
//! regime proposed by *Unix Shell Programming: The Next 50 Years*
//! (HotOS '21, §3.2).
//!
//! A [`Jash`] session interprets scripts statement by statement. For each
//! top-level pipeline it attempts, in order:
//!
//! 1. **region extraction** — purity-check every word (Smoosh-style
//!    effect analysis) and expand the pure ones *early*, against live
//!    shell state;
//! 2. **dataflow compilation** — resolve each stage against the command
//!    specification registry and build a graph;
//! 3. **runtime information** — stat the input files, snapshot the
//!    machine profile;
//! 4. **resource-aware planning** — pick a parallelization width whose
//!    projected makespan clears the no-regression margin;
//! 5. **rewriting and execution** — split/clone/merge on the threaded
//!    executor, delivering byte-identical output.
//!
//! Any step that fails falls back to the interpreter — soundness first.
//! The same type also hosts the two baselines of the paper's Figure 1:
//! [`Engine::Bash`] (never optimize) and [`Engine::PashAot`]
//! (ahead-of-time: only statically-expandable words, fixed width, disk
//! buffering, no resource awareness).
//!
//! # Examples
//!
//! ```
//! use jash_core::{Engine, Jash};
//! use jash_cost::MachineProfile;
//! use jash_expand::ShellState;
//!
//! let fs = jash_io::mem_fs();
//! jash_io::fs::write_file(fs.as_ref(), "/w.txt", b"delta\nalpha\n".repeat(1).as_slice()).unwrap();
//! let mut state = ShellState::new(fs);
//! let mut shell = Jash::new(Engine::JashJit, MachineProfile::laptop());
//! let r = shell.run_script(&mut state, "FILES=/w.txt; cat $FILES | sort | head -n1").unwrap();
//! assert_eq!(r.stdout, b"alpha\n");
//! ```

pub mod engine;
pub mod jit;
pub mod plancache;
pub mod recovery;
pub mod region;
pub mod supervise;

pub use engine::{Action, Engine, RegionFailure, RuntimeInfo, TraceEvent};
pub use recovery::{
    cancel_exit_code, list_run_scopes, recover_serve_root, remove_tree, shutdown_code,
    shutdown_reason, sweep_stage_debris, RecoveredRun, RecoveryReport, ResumePlan, ServeRecovery,
};
pub use jash_exec::{
    classify, ErrorClass, RetryPolicy, SupervisionEvent, SupervisionLog,
};
pub use jit::{Jash, JitCore};
pub use plancache::{byte_bucket, options_signature, PlanCache};
pub use region::{jit_region, static_region, Ineligible};
pub use supervise::{
    cross_run_pressure, degradation_ladder, resource_pressure, BreakerConfig, CircuitBreaker,
    Route,
};

#[cfg(test)]
mod tests {
    use super::*;
    use jash_cost::MachineProfile;
    use jash_expand::ShellState;
    use jash_io::FsHandle;

    fn fs_with(files: &[(&str, &str)]) -> FsHandle {
        let fs = jash_io::mem_fs();
        for (p, c) in files {
            jash_io::fs::write_file(fs.as_ref(), p, c.as_bytes()).unwrap();
        }
        fs
    }

    fn machine() -> MachineProfile {
        // A fixed profile so tests do not depend on the host's core count
        // (CI containers may expose a single CPU).
        MachineProfile {
            cores: 8,
            disk: jash_io::DiskProfile::ramdisk(),
            mem_mb: 8 * 1024,
        }
    }

    /// A planner that optimizes eagerly (tiny test inputs would otherwise
    /// trip the guard — which is itself under test separately).
    fn eager() -> jash_cost::PlannerOptions {
        jash_cost::PlannerOptions {
            min_speedup: 0.0,
            force_width: Some(4),
            ..Default::default()
        }
    }

    fn run_engine(engine: Engine, fs: FsHandle, src: &str) -> (jash_interp::RunResult, Jash) {
        let mut state = ShellState::new(fs);
        let mut shell = Jash::new(engine, machine());
        shell.planner = eager();
        let r = shell.run_script(&mut state, src).unwrap();
        (r, shell)
    }

    const SPELL: &str = r#"
DICT=/dict
FILES="/d/a.txt /d/b.txt"
cat $FILES | tr A-Z a-z | tr -cs A-Za-z '\n' | sort -u | comm -13 $DICT -
"#;

    fn spell_fs() -> FsHandle {
        let doc_a = "The Quick brown FOX liked Rust\n".repeat(300);
        let doc_b = "A lazy dog misspeled wrods here\n".repeat(300);
        fs_with(&[
            ("/d/a.txt", &doc_a),
            ("/d/b.txt", &doc_b),
            (
                "/dict",
                "a\nbrown\ndog\nfox\nhere\nlazy\nliked\nquick\nrust\nthe\n",
            ),
        ])
    }

    #[test]
    fn all_engines_agree_on_spell_output() {
        let (bash, _) = run_engine(Engine::Bash, spell_fs(), SPELL);
        let (pash, _) = run_engine(Engine::PashAot, spell_fs(), SPELL);
        let (jash, _) = run_engine(Engine::JashJit, spell_fs(), SPELL);
        assert_eq!(bash.status, 0);
        assert_eq!(
            String::from_utf8_lossy(&bash.stdout),
            String::from_utf8_lossy(&pash.stdout)
        );
        assert_eq!(bash.stdout, jash.stdout);
        assert_eq!(
            String::from_utf8_lossy(&bash.stdout),
            "misspeled\nwrods\n"
        );
    }

    #[test]
    fn jit_optimizes_the_dynamic_spell_pipeline_but_aot_cannot() {
        // The paper's §3.2 example: `$FILES`/`$DICT` are dynamic, so
        // "neither PaSh nor POSH optimize this script" — but the JIT does.
        let (_, pash) = run_engine(Engine::PashAot, spell_fs(), SPELL);
        assert!(
            !pash.trace.iter().any(TraceEvent::was_optimized),
            "PashAot must not optimize: {:?}",
            pash.trace
        );
        assert!(pash
            .trace
            .iter()
            .any(|t| matches!(&t.action, Action::Interpreted { reason } if reason.contains("AOT"))));

        let (_, jash) = run_engine(Engine::JashJit, spell_fs(), SPELL);
        assert!(
            jash.trace.iter().any(TraceEvent::was_optimized),
            "JashJit must optimize: {:?}",
            jash.trace
        );
    }

    #[test]
    fn aot_optimizes_static_pipelines() {
        let fs = fs_with(&[("/in", &"WORD other\n".repeat(500))]);
        let (r, shell) = run_engine(Engine::PashAot, fs, "cat /in | tr A-Z a-z | sort");
        assert_eq!(r.status, 0);
        assert!(shell.trace.iter().any(TraceEvent::was_optimized));
        // PashAot plans are buffered at core-count width.
        let Action::Optimized { width, buffered, .. } = &shell
            .trace
            .iter()
            .find(|t| t.was_optimized())
            .unwrap()
            .action
        else {
            panic!()
        };
        assert_eq!(*width, machine().cores);
        assert!(buffered);
    }

    #[test]
    fn bash_never_optimizes() {
        let fs = fs_with(&[("/in", "b\na\n")]);
        let (r, shell) = run_engine(Engine::Bash, fs, "cat /in | sort");
        assert_eq!(r.stdout, b"a\nb\n");
        assert!(shell.trace.is_empty());
    }

    #[test]
    fn guard_declines_tiny_inputs() {
        let fs = fs_with(&[("/tiny", "b\na\n")]);
        let mut state = ShellState::new(fs);
        let mut shell = Jash::new(Engine::JashJit, machine());
        // Default planner: real margin.
        let r = shell.run_script(&mut state, "cat /tiny | sort").unwrap();
        assert_eq!(r.stdout, b"a\nb\n");
        assert!(
            !shell.trace.iter().any(TraceEvent::was_optimized),
            "{:?}",
            shell.trace
        );
        assert!(shell.trace.iter().any(
            |t| matches!(&t.action, Action::Interpreted { reason } if reason.contains("declined"))
        ));
    }

    #[test]
    fn optimized_region_writes_file_output() {
        let fs = fs_with(&[("/in", &"Zebra apple\n".repeat(400))]);
        let src = "cat /in | tr A-Z a-z | sort > /out";
        let (r, shell) = run_engine(Engine::JashJit, std::sync::Arc::clone(&fs), src);
        assert_eq!(r.status, 0);
        assert!(r.stdout.is_empty());
        assert!(shell.trace.iter().any(TraceEvent::was_optimized));
        let out = jash_io::fs::read_to_vec(fs.as_ref(), "/out").unwrap();
        let (seq, _) = run_engine(Engine::Bash, fs_with(&[("/in", &"Zebra apple\n".repeat(400))]), "cat /in | tr A-Z a-z | sort");
        assert_eq!(out, seq.stdout);
    }

    #[test]
    fn impure_pipelines_fall_back() {
        let fs = fs_with(&[("/in", "x\n")]);
        let (r, shell) = run_engine(Engine::JashJit, fs, "cat /in $(echo /in) | sort");
        assert_eq!(r.status, 0);
        // Two copies of x (cat ran with both operands) — via interpreter.
        assert_eq!(r.stdout, b"x\nx\n");
        assert!(!shell.trace.iter().any(TraceEvent::was_optimized));
    }

    #[test]
    fn unknown_commands_fall_back_and_fail_normally() {
        let fs = fs_with(&[("/in", "x\n")]);
        let (r, shell) = run_engine(Engine::JashJit, fs, "cat /in | not-a-real-filter");
        assert_eq!(r.status, 127);
        assert!(!shell.trace.iter().any(TraceEvent::was_optimized));
    }

    #[test]
    fn shell_state_flows_around_optimized_regions() {
        let fs = fs_with(&[("/in", &"q W e\n".repeat(300))]);
        let src = "x=1; cat /in | tr A-Z a-z | sort -u; y=$((x+1)); echo $y";
        let (r, shell) = run_engine(Engine::JashJit, fs, src);
        assert_eq!(r.status, 0);
        assert!(shell.trace.iter().any(TraceEvent::was_optimized));
        assert!(String::from_utf8_lossy(&r.stdout).ends_with("2\n"));
    }

    #[test]
    fn exit_status_of_optimized_grep_respected() {
        let fs = fs_with(&[("/in", &"hay\n".repeat(500))]);
        let (r, shell) = run_engine(Engine::JashJit, fs, "cat /in | grep needle");
        assert_eq!(r.status, 1, "{:?}", shell.trace);
    }

    #[test]
    fn temperature_pipeline_all_engines() {
        let mut rec = String::new();
        for i in 0..400 {
            let t = (i * 83) % 700;
            rec.push_str(&"x".repeat(88));
            rec.push_str(&format!("{t:04}xxxx\n"));
        }
        let src = "cut -c 89-92 < /noaa | grep -v 999 | sort -rn | head -n1";
        let mut outputs = Vec::new();
        for e in Engine::ALL {
            let (r, _) = run_engine(e, fs_with(&[("/noaa", &rec)]), src);
            assert_eq!(r.status, 0);
            outputs.push(r.stdout);
        }
        assert_eq!(outputs[0], outputs[1]);
        assert_eq!(outputs[0], outputs[2]);
    }

    #[test]
    fn sticky_fault_falls_back_and_matches_bash() {
        // A sticky read fault fires in the optimized attempt *and* in the
        // sequential rerun, so JashJit must degrade to exactly what the
        // Bash engine reports — status and bytes.
        let src = "cat /in | tr A-Z a-z | sort -u";
        let make_fs = || {
            let fs = fs_with(&[("/in", &"Delta Alpha Bravo\n".repeat(300))]);
            let plan =
                jash_io::FaultPlan::new().read_error_at("/in", 256, "disk surface error");
            jash_io::FaultFs::wrap(fs, plan) as FsHandle
        };
        let (bash, _) = run_engine(Engine::Bash, make_fs(), src);
        let (jash, shell) = run_engine(Engine::JashJit, make_fs(), src);
        assert_eq!(jash.status, bash.status, "jash trace: {:?}", shell.trace);
        assert_eq!(jash.stdout, bash.stdout);
        assert!(
            shell.trace.iter().any(TraceEvent::failed_over),
            "{:?}",
            shell.trace
        );
        assert_eq!(shell.runtime.regions_failed_over, 1);
        assert_eq!(shell.runtime.failures.len(), 1);
        assert!(shell.runtime.failures[0]
            .failures
            .iter()
            .any(|f| f.contains("injected")));
    }

    #[test]
    fn shared_cancel_token_lets_watchdog_interrupt_stalled_reads() {
        // `Jash::cancel` is handed to optimized regions as
        // `ExecConfig::cancel`; the stall watchdog cancels it, which must
        // wake a read blocked *inside* the filesystem layer (FaultFs polls
        // the same token) — end to end, a stalled region aborts in
        // milliseconds instead of sleeping out the stall.
        let fs = fs_with(&[("/in", &"Delta Alpha Bravo\n".repeat(300))]);
        let plan = jash_io::FaultPlan::new()
            .stall_reads("/in", std::time::Duration::from_secs(300));
        let token = jash_io::CancelToken::new();
        let faulted = jash_io::FaultFs::wrap_with_cancel(fs, plan, token.clone()) as FsHandle;

        let mut state = ShellState::new(faulted);
        let mut shell = Jash::new(Engine::JashJit, machine());
        shell.planner = eager();
        shell.node_timeout = Some(std::time::Duration::from_millis(100));
        shell.cancel = Some(token);

        let start = std::time::Instant::now();
        let r = shell
            .run_script(&mut state, "cat /in | tr A-Z a-z | sort -u")
            .unwrap();
        assert!(
            start.elapsed() < std::time::Duration::from_secs(30),
            "stalled region should abort fast, took {:?}",
            start.elapsed()
        );
        assert_ne!(r.status, 0);
        assert_eq!(shell.runtime.regions_failed_over, 1);
        assert!(
            shell.runtime.failures[0]
                .failures
                .iter()
                .any(|f| f.contains("watchdog")),
            "{:?}",
            shell.runtime.failures
        );
    }

    #[test]
    fn transient_fault_recovers_via_retry_without_failover() {
        // A `once` transient fault hits only the first optimized attempt;
        // the supervisor classifies it transient, backs off, and re-runs
        // the *optimized* region — which succeeds. No interpreter
        // failover, output identical to a clean run, and the supervision
        // log shows the retry.
        let content = "Delta Alpha Bravo\n".repeat(300);
        let src = "cat /in | tr A-Z a-z | sort -u";
        let fs = fs_with(&[("/in", &content)]);
        let plan = jash_io::FaultPlan::new().rule(jash_io::fault::FaultRule {
            path: Some("/in".into()),
            op: jash_io::fault::FaultOp::Read,
            trigger: jash_io::fault::Trigger::AtByte(128),
            kind: jash_io::fault::FaultKind::Error {
                kind: std::io::ErrorKind::Other,
                msg: "injected: transient controller reset".into(),
            },
            once: true,
        });
        let faulty = jash_io::FaultFs::wrap(fs, plan) as FsHandle;
        let (jash, shell) = run_engine(Engine::JashJit, faulty, src);
        let (clean, _) = run_engine(Engine::Bash, fs_with(&[("/in", &content)]), src);
        assert_eq!(jash.status, 0, "trace: {:?}", shell.trace);
        assert_eq!(jash.stdout, clean.stdout);
        assert!(
            !shell.trace.iter().any(TraceEvent::failed_over),
            "transient fault must be absorbed by retry, not failover: {}",
            shell.runtime.supervision.render()
        );
        assert_eq!(shell.runtime.regions_failed_over, 0);
        assert_eq!(shell.runtime.regions_recovered, 1);
        assert_eq!(shell.runtime.supervision.recoveries(), 1);
        let log = &shell.runtime.supervision.events;
        assert!(
            log.iter()
                .any(|e| matches!(e, SupervisionEvent::Backoff { class: ErrorClass::Transient, .. })),
            "expected a transient backoff event: {}",
            shell.runtime.supervision.render()
        );
        assert!(
            log.iter().any(
                |e| matches!(e, SupervisionEvent::Recovered { attempts: 2, .. })
            ),
            "expected recovery on the second attempt: {}",
            shell.runtime.supervision.render()
        );
    }

    #[test]
    fn resource_fault_recovers_via_width_degradation() {
        // A resource-class fault that keeps firing for the first few
        // opens: the planned width-4 attempt fails, the supervisor steps
        // down the ladder instead of retrying (resource faults don't get
        // backoff), and a narrower rung succeeds — optimized output at
        // reduced width, no failover.
        let content = "Delta Alpha Bravo\n".repeat(300);
        let src = "cat /in | tr A-Z a-z | sort -u";
        let fs = fs_with(&[("/in", &content)]);
        let plan = jash_io::FaultPlan::new().resource_open_errors("/in", 2);
        let faulty = jash_io::FaultFs::wrap(fs, plan) as FsHandle;
        let (jash, shell) = run_engine(Engine::JashJit, faulty, src);
        let (clean, _) = run_engine(Engine::Bash, fs_with(&[("/in", &content)]), src);
        assert_eq!(jash.status, 0, "log: {}", shell.runtime.supervision.render());
        assert_eq!(jash.stdout, clean.stdout);
        assert_eq!(shell.runtime.regions_failed_over, 0);
        assert_eq!(shell.runtime.regions_recovered, 1);
        assert!(
            shell.runtime.supervision.degradations() >= 1,
            "expected width degradation: {}",
            shell.runtime.supervision.render()
        );
        assert!(
            shell
                .runtime
                .supervision
                .events
                .iter()
                .any(|e| matches!(
                    e,
                    SupervisionEvent::WidthDegraded { class: ErrorClass::Resource, .. }
                )),
            "degradations must be resource-classed: {}",
            shell.runtime.supervision.render()
        );
        // The recovery happened at a width below the planned one.
        assert!(
            shell.runtime.supervision.events.iter().any(|e| matches!(
                e,
                SupervisionEvent::Recovered { width, .. } if *width < 4
            )),
            "recovery should land at reduced width: {}",
            shell.runtime.supervision.render()
        );
    }

    #[test]
    fn breaker_quarantines_repeatedly_failing_shape() {
        // A sticky rename fault breaks the optimized path's transactional
        // commit on every attempt — but the interpreter writes /out
        // directly (no rename), so each statement still succeeds after
        // failover and the session keeps going. Statements 1-3 fail over
        // (opening the breaker at the default threshold of 3); statements
        // 4-5 route straight to the interpreter without burning an
        // optimized attempt. Output must match bash under the same fault.
        let content = "Zebra apple\n".repeat(300);
        let src = "cat /in | tr A-Z a-z | sort -u > /out\n".repeat(5);
        let make_fs = || {
            let fs = fs_with(&[("/in", &content)]);
            let plan = jash_io::FaultPlan::new().rename_error("/out", "media failure on commit");
            (
                std::sync::Arc::clone(&fs),
                jash_io::FaultFs::wrap(fs, plan) as FsHandle,
            )
        };
        let (jash_inner, jash_fs) = make_fs();
        let (jash, shell) = run_engine(Engine::JashJit, jash_fs, &src);
        let (bash_inner, bash_fs) = make_fs();
        let (bash, _) = run_engine(Engine::Bash, bash_fs, &src);
        assert_eq!(jash.status, bash.status, "log: {}", shell.runtime.supervision.render());
        assert_eq!(jash.stdout, bash.stdout);
        assert_eq!(
            jash_io::fs::read_to_vec(jash_inner.as_ref(), "/out").ok(),
            jash_io::fs::read_to_vec(bash_inner.as_ref(), "/out").ok(),
            "failover and breaker routing must both produce bash's /out"
        );
        assert_eq!(
            shell.runtime.regions_failed_over, 3,
            "log: {}",
            shell.runtime.supervision.render()
        );
        assert_eq!(shell.runtime.supervision.breaker_opens(), 1);
        assert_eq!(
            shell.runtime.supervision.breaker_routed(),
            2,
            "statements 4-5 must be routed, not attempted: {}",
            shell.runtime.supervision.render()
        );
        // No staging debris anywhere.
        for f in jash_inner.list_dir("/").unwrap() {
            assert!(!f.contains(".jash-stage-"), "debris: {f}");
        }
    }

    #[test]
    fn faulted_file_write_leaves_no_partial_output() {
        // The transactional sink plus fallback: a fault mid-region must
        // not leave /out (or any staging file) behind unless the
        // sequential rerun also produced it.
        let content = "Zebra apple\n".repeat(400);
        let make_fs = || {
            let fs = fs_with(&[("/in", &content)]);
            let plan =
                jash_io::FaultPlan::new().read_error_at("/in", 512, "disk surface error");
            (
                std::sync::Arc::clone(&fs),
                jash_io::FaultFs::wrap(fs, plan) as FsHandle,
            )
        };
        let src = "cat /in | tr A-Z a-z | sort > /out";
        let (bash_inner, bash_fs) = make_fs();
        let (bash, _) = run_engine(Engine::Bash, bash_fs, src);
        let (jash_inner, jash_fs) = make_fs();
        let (jash, shell) = run_engine(Engine::JashJit, jash_fs, src);
        assert_eq!(jash.status, bash.status, "trace: {:?}", shell.trace);
        assert!(shell.trace.iter().any(TraceEvent::failed_over));
        // Whatever the sequential engines left behind, the JIT left the
        // same — and never a staging file.
        assert_eq!(
            jash_io::fs::read_to_vec(bash_inner.as_ref(), "/out").ok(),
            jash_io::fs::read_to_vec(jash_inner.as_ref(), "/out").ok()
        );
        for f in jash_inner.list_dir("/").unwrap() {
            assert!(
                !f.contains(".jash-stage-"),
                "staging debris left behind: {f}"
            );
        }
    }

    #[test]
    fn control_flow_around_regions_still_works() {
        let fs = fs_with(&[("/in", &"A b C\n".repeat(200))]);
        let src = r#"
for pass in 1 2; do
    cat /in | tr A-Z a-z | sort -u
done
echo passes-done
"#;
        let (r, _) = run_engine(Engine::JashJit, fs, src);
        assert_eq!(r.status, 0);
        let text = String::from_utf8_lossy(&r.stdout);
        assert!(text.ends_with("passes-done\n"));
        // Pipeline inside the loop runs twice (offered to the JIT at its
        // expansion boundary each iteration), producing two identical
        // `a b c` lines either way.
        assert_eq!(text.matches("a b c\n").count(), 2);
    }

    #[test]
    fn loop_bodies_jit_compile_and_reuse_the_cached_plan() {
        // The tentpole contract: every iteration's body pipeline is
        // offered at its expansion boundary (so `$f` is already bound),
        // iteration 1 plans, iterations 2..N hit the plan cache.
        let content = "Zebra Apple Mango\n".repeat(200);
        let files = &[
            ("/d/a.txt", content.as_str()),
            ("/d/b.txt", content.as_str()),
            ("/d/c.txt", content.as_str()),
        ];
        let src = r#"
for f in /d/a.txt /d/b.txt /d/c.txt; do
    cat $f | tr A-Z a-z | sort -u
done
"#;
        let (r, shell) = run_engine(Engine::JashJit, fs_with(files), src);
        assert_eq!(r.status, 0);
        let optimized = shell.trace.iter().filter(|t| t.was_optimized()).count();
        assert_eq!(
            optimized, 3,
            "each iteration's body must be optimized: {:?}",
            shell.trace
        );
        assert_eq!(shell.plan_cache.misses, 1, "only iteration 1 plans");
        assert_eq!(shell.plan_cache.hits, 2, "iterations 2..N reuse the plan");
        let (bash, _) = run_engine(Engine::Bash, fs_with(files), src);
        assert_eq!(r.stdout, bash.stdout, "optimized loop must match bash");
    }

    #[test]
    fn input_scale_change_invalidates_the_cached_plan() {
        // Same dataflow shape, radically different input size: the log2
        // byte bucket in the cache key moves, so iteration 2 re-plans
        // instead of reusing a decision made for a different regime.
        let small = "a b\n".repeat(4);
        let large = "Zebra Apple Mango\n".repeat(4000);
        let src = r#"
for f in /small.txt /large.txt; do
    cat $f | tr A-Z a-z | sort -u
done
"#;
        let (r, shell) = run_engine(
            Engine::JashJit,
            fs_with(&[("/small.txt", &small), ("/large.txt", &large)]),
            src,
        );
        assert_eq!(r.status, 0);
        assert_eq!(shell.plan_cache.hits, 0);
        assert_eq!(shell.plan_cache.misses, 2);
        assert_eq!(
            shell.plan_cache.invalidations, 1,
            "the stale small-input entry must be dropped"
        );
    }

    #[test]
    fn cached_plan_respects_a_no_fuse_options_change() {
        // A serve host may retune the planner mid-session; a fused plan
        // cached under fusion-era options must not leak into a --no-fuse
        // configuration — the options signature forces a re-plan.
        let content = "Zebra Apple Mango\n".repeat(300);
        let files = &[
            ("/d/a.txt", content.as_str()),
            ("/d/b.txt", content.as_str()),
        ];
        let src = "for f in /d/a.txt /d/b.txt; do cat $f | tr A-Z a-z | grep -v qq | cut -c 1-20; done";
        let mut state = ShellState::new(fs_with(files));
        let mut shell = Jash::new(Engine::JashJit, machine());
        shell.planner = jash_cost::PlannerOptions {
            force_fusion: true,
            ..eager()
        };
        let r1 = shell.run_script(&mut state, src).unwrap();
        assert_eq!(r1.status, 0);
        assert!(
            shell.trace.iter().any(
                |t| matches!(t.action, Action::Optimized { fused: true, .. })
            ),
            "first pass must run fused: {:?}",
            shell.trace
        );
        assert_eq!(shell.plan_cache.hits, 1);

        // Retune: fusion off. The cached fused plan must not be reused.
        shell.planner = jash_cost::PlannerOptions {
            allow_fusion: false,
            force_fusion: false,
            ..eager()
        };
        let mark = shell.trace.len();
        let r2 = shell.run_script(&mut state, src).unwrap();
        assert_eq!(r2.status, 0);
        assert_eq!(r1.stdout, r2.stdout);
        assert!(
            shell.trace[mark..]
                .iter()
                .filter(|t| t.was_optimized())
                .all(|t| matches!(t.action, Action::Optimized { fused: false, .. })),
            "--no-fuse pass must never run a cached fused plan: {:?}",
            &shell.trace[mark..]
        );
    }

    #[test]
    fn cached_plan_respects_pressure_forced_sequential() {
        // Under full resource pressure the planner forces width 1; a
        // relaxed-era cached plan (width 4) must miss, and the pressured
        // decision (sequential → interpret) must win.
        let content = "Zebra Apple Mango\n".repeat(300);
        let files = &[
            ("/d/a.txt", content.as_str()),
            ("/d/b.txt", content.as_str()),
        ];
        let src = "for f in /d/a.txt /d/b.txt; do cat $f | tr A-Z a-z | sort -u; done";
        let mut state = ShellState::new(fs_with(files));
        let mut shell = Jash::new(Engine::JashJit, machine());
        shell.planner = eager();
        let r1 = shell.run_script(&mut state, src).unwrap();
        assert_eq!(r1.status, 0);
        assert!(shell.trace.iter().any(TraceEvent::was_optimized));

        shell.planner = shell.planner.under_pressure(1.0);
        let mark = shell.trace.len();
        let r2 = shell.run_script(&mut state, src).unwrap();
        assert_eq!(r2.status, 0);
        assert_eq!(r1.stdout, r2.stdout);
        assert!(
            !shell.trace[mark..].iter().any(TraceEvent::was_optimized),
            "pressure-forced sequential must interpret, not reuse width 4: {:?}",
            &shell.trace[mark..]
        );
    }

    #[test]
    fn disabled_plan_cache_replans_every_iteration() {
        let content = "Zebra Apple Mango\n".repeat(200);
        let files = &[
            ("/d/a.txt", content.as_str()),
            ("/d/b.txt", content.as_str()),
            ("/d/c.txt", content.as_str()),
        ];
        let src = "for f in /d/a.txt /d/b.txt /d/c.txt; do cat $f | tr A-Z a-z | sort -u; done";
        let mut state = ShellState::new(fs_with(files));
        let mut shell = Jash::new(Engine::JashJit, machine());
        shell.planner = eager();
        shell.plan_cache.set_enabled(false);
        let r = shell.run_script(&mut state, src).unwrap();
        assert_eq!(r.status, 0);
        assert_eq!(shell.plan_cache.hits, 0);
        assert_eq!(
            shell
                .trace
                .iter()
                .filter(|t| t.was_optimized())
                .count(),
            3,
            "disabling the cache changes planning cost, never behavior"
        );
    }

    #[test]
    fn while_loop_bodies_hit_the_plan_cache_too() {
        let content = "Delta Echo Foxtrot\n".repeat(200);
        let files = &[("/w.txt", content.as_str())];
        let src = r#"
i=0
while [ $i -lt 4 ]; do
    cat /w.txt | tr A-Z a-z | sort -u
    i=$((i+1))
done
echo done $i
"#;
        let (r, shell) = run_engine(Engine::JashJit, fs_with(files), src);
        assert_eq!(r.status, 0, "{:?}", shell.trace);
        assert!(String::from_utf8_lossy(&r.stdout).ends_with("done 4\n"));
        assert_eq!(
            shell
                .trace
                .iter()
                .filter(|t| t.was_optimized() && t.pipeline.contains("tr A-Z"))
                .count(),
            4,
            "every iteration's body must be optimized: {:?}",
            shell.trace
        );
        // Two planned shapes (the body chain and the trailing echo), each
        // planned once; the body's three further iterations hit.
        assert_eq!(shell.plan_cache.misses, 2);
        assert_eq!(shell.plan_cache.hits, 3);
        let (bash, _) = run_engine(Engine::Bash, fs_with(files), src);
        assert_eq!(r.stdout, bash.stdout);
    }

    #[test]
    fn loop_fault_degrades_one_iteration_and_recovers_the_next() {
        // A once-only fault inside iteration 2 of a JIT'd loop: that
        // iteration degrades through the ladder, loop state ($f, $?) stays
        // correct, and iteration 3 re-attempts the cached plan cleanly.
        let content = "Zebra Apple Mango\n".repeat(300);
        let make_fs = || {
            let fs = fs_with(&[
                ("/d/a.txt", &content),
                ("/d/b.txt", &content),
                ("/d/c.txt", &content),
            ]);
            let plan = jash_io::FaultPlan::new().rule(jash_io::fault::FaultRule {
                path: Some("/d/b.txt".into()),
                op: jash_io::fault::FaultOp::Read,
                trigger: jash_io::fault::Trigger::AtByte(128),
                kind: jash_io::fault::FaultKind::Error {
                    kind: std::io::ErrorKind::Other,
                    msg: "injected: transient controller reset".into(),
                },
                once: true,
            });
            jash_io::FaultFs::wrap(fs, plan) as FsHandle
        };
        let src = r#"
for f in /d/a.txt /d/b.txt /d/c.txt; do
    cat $f | tr A-Z a-z | sort -u
done
echo loop-done $f $?
"#;
        let (jash, shell) = run_engine(Engine::JashJit, make_fs(), src);
        // The once-fault fires inside a speculative optimized attempt,
        // whose staged effects are discarded — so the JIT's final output
        // must equal a run with no fault at all.
        let clean_fs = fs_with(&[
            ("/d/a.txt", &content),
            ("/d/b.txt", &content),
            ("/d/c.txt", &content),
        ]);
        let (bash, _) = run_engine(Engine::Bash, clean_fs, src);
        assert_eq!(jash.status, 0, "log: {}", shell.runtime.supervision.render());
        assert_eq!(jash.stdout, bash.stdout, "loop state must survive the fault");
        assert!(String::from_utf8_lossy(&jash.stdout).ends_with("loop-done /d/c.txt 0\n"));
        assert_eq!(
            shell
                .trace
                .iter()
                .filter(|t| t.was_optimized() && t.pipeline.contains("tr A-Z"))
                .count(),
            3,
            "the faulted iteration recovers optimized, the next re-attempts the cached plan: {}",
            shell.runtime.supervision.render()
        );
        assert!(shell.runtime.supervision.recoveries() >= 1);
        // The fault must not evict the cached plan: the body misses once
        // (the trailing echo is the second miss), iterations 2..3 hit.
        assert_eq!(shell.plan_cache.misses, 2);
        assert_eq!(shell.plan_cache.hits, 2);
    }
}
