//! The Jash session: a shell whose statement loop carries a JIT compiler.
//!
//! "Jash inspects each shell command as it comes in to identify candidates
//! for rewriting. Since Jash works dynamically, it can take into account
//! current system conditions to decide whether to even try to apply
//! optimizations!" (paper §3.2). The loop here is exactly that
//! architecture: interpretation by `jash-interp` for everything dynamic,
//! and — per top-level pipeline — an attempt to extract, compile, plan,
//! and execute a dataflow region with live information (variable values,
//! file sizes, machine resources).

use crate::engine::{Action, Engine, RegionFailure, RuntimeInfo, TraceEvent};
use crate::plancache::{byte_bucket, options_signature, PlanCache};
use crate::recovery::{self, RecoveryReport, ResumePlan};
use crate::region::{jit_region, resolve_paths, static_region, Ineligible};
use crate::supervise::{degradation_ladder, resource_pressure, CircuitBreaker, Route};
use jash_ast::{AndOrList, CommandKind, ListItem, Pipeline, Program};
use jash_cost::{
    choose_plan_with, pash_aot_plan, InputInfo, MachineProfile, PlanShape, PlannerOptions,
};
use jash_dataflow::{compile, parallelize_all, Dfg, NodeKind, Region};
use jash_exec::{
    balanced_targets, execute, execute_with_retry, ErrorClass, ExecConfig, ExecOutcome,
    RetryPolicy, SupervisionEvent,
};
use jash_expand::ShellState;
use jash_interp::{Flow, InputBinding, InterpError, Interpreter, PipelineJit, RunResult, ShellIo};
use jash_io::journal::JournalRecord;
use jash_io::memo::Entry;
use jash_io::{fnv1a, FsHandle, Journal, Memo};
use jash_trace::{AttrValue, SpanId, Tracer, DEFAULT_TIME_BOUNDS_US};
use std::collections::HashMap;
use std::io;
use std::sync::Arc;
use std::time::Instant;

/// A Jash shell session: the JIT engine core plus the interpreter it
/// delegates dynamic execution to.
///
/// The split matters for borrow reasons: while the interpreter walks a
/// compound statement it holds `&mut Interpreter`, and at every pipeline
/// it reaches it offers the engine (as [`PipelineJit`]) a chance to run
/// the region — which needs `&mut JitCore`. Keeping the two halves as
/// sibling fields lets both be borrowed at once. `Deref`/`DerefMut` to
/// [`JitCore`] keep the session's public field surface (`planner`,
/// `trace`, `breaker`, …) unchanged.
pub struct Jash {
    /// The engine: planner, supervisor, journal, trace — everything but
    /// the interpreter.
    pub core: JitCore,
    interp: Interpreter,
}

impl std::ops::Deref for Jash {
    type Target = JitCore;
    fn deref(&self) -> &JitCore {
        &self.core
    }
}

impl std::ops::DerefMut for Jash {
    fn deref_mut(&mut self) -> &mut JitCore {
        &mut self.core
    }
}

/// An open nested-region record: accounting the JIT callout opened for a
/// pipeline it declined, closed by [`PipelineJit::pipeline_interpreted`].
struct NestedRegion {
    span: Option<SpanId>,
    prev_region: Option<SpanId>,
    sup_mark: usize,
}

/// The engine state of a [`Jash`] session (everything except the
/// interpreter). All session tunables live here; `Jash` derefs to it.
pub struct JitCore {
    /// Strategy under evaluation.
    pub engine: Engine,
    /// The machine the planner believes it is running on.
    pub machine: MachineProfile,
    /// Command specifications.
    pub registry: jash_spec::Registry,
    /// Planner tunables (JashJit only).
    pub planner: PlannerOptions,
    /// Decisions taken this session, in order.
    pub trace: Vec<TraceEvent>,
    /// Live runtime record: optimized/failed-over region counts and the
    /// failure ledger the no-regression guard appends to.
    pub runtime: RuntimeInfo,
    /// Abort an optimized region whose pipes stop moving for this long
    /// (then fall back to the interpreter). `None` disables the watchdog.
    pub node_timeout: Option<std::time::Duration>,
    /// Cancellation token shared with optimized regions. The stall
    /// watchdog cancels it, so wiring the same token into blocking I/O
    /// layers (e.g. `FaultFs::wrap_with_cancel`) lets an abort interrupt
    /// reads that are stuck inside the filesystem, not just pipe waits.
    pub cancel: Option<jash_io::CancelToken>,
    /// Per-rung retry behavior for transient faults (JashJit only).
    /// Deterministic: the seed keys the backoff jitter stream.
    pub retry_policy: RetryPolicy,
    /// Circuit breaker over region shapes (JashJit only): shapes that
    /// keep failing over are routed straight to the interpreter for a
    /// cool-down window. Tune via `breaker.config`.
    pub breaker: CircuitBreaker,
    /// Whether optimized commits run the full durability protocol
    /// (fsync staged bytes, rename, fsync the directory) and journal
    /// appends fsync. On by default; `--no-durable` turns it off for
    /// throwaway runs.
    pub durable: bool,
    /// Fault injection for fused kernels (`faultsweep`): when set, every
    /// fused-kernel node fails with this message, exercising the
    /// kernel → unfused pipeline → interpreter degradation ladder.
    pub kernel_fault: Option<String>,
    /// Structured trace collector (`--trace` / `JASH_TRACE`). When set,
    /// the session records a `run` span, one `region` span per top-level
    /// statement, `node` spans for every dataflow node the executor ran,
    /// supervision events, and the timing/memo/journal metrics — all
    /// drained to schema-v1 JSONL at the end of the run.
    pub tracer: Option<Arc<Tracer>>,
    /// Profile-fed planner calibration: per-command throughput recorded
    /// by a previous run's trace (`--calibrate FILE`). `None` = the
    /// planner uses its static machine-profile rates.
    pub calibration: Option<jash_cost::Calibration>,
    /// Extra attributes stamped onto the `run` span when tracing —
    /// per-run/tenant accounting for hosts that multiplex sessions
    /// (`jash serve` sets `run_id` and `tenant` here so one trace file
    /// attributes work to the submission that caused it). Ignored when
    /// no tracer is attached.
    pub run_attrs: Vec<(String, AttrValue)>,
    /// Write-ahead execution journal, attached via
    /// [`Jash::attach_journal`]. `None` = journaling disabled.
    journal: Option<Arc<Journal>>,
    /// Durable memo the journal's resume path replays from.
    memo: Option<Memo>,
    /// Clean completions of an interrupted run still waiting to be
    /// claimed by matching regions this session.
    resume: Option<ResumePlan>,
    /// Open `run` span while `run_program` is on the stack.
    current_run: Option<SpanId>,
    /// Open `region` span while `run_item` is on the stack.
    current_region: Option<SpanId>,
    /// Per-fingerprint plan cache: loop iterations 2..N reuse iteration
    /// 1's planning decision (see [`crate::plancache`] for the
    /// invalidation rules). `plan_cache.set_enabled(false)` restores
    /// re-planning at every expansion boundary (`--no-plan-cache`).
    pub plan_cache: PlanCache,
    /// Innermost-first stack of live loop iteration counters, fed by the
    /// interpreter's loop markers; stamps `loop_iter` onto region spans.
    loop_iters: Vec<u64>,
    /// Open accounting for pipelines offered at expansion boundaries and
    /// declined (closed when the interpretation finishes).
    nested: Vec<NestedRegion>,
    /// High-water mark of supervision events already mirrored onto the
    /// trace timeline, so nested regions and the enclosing statement
    /// never mirror the same event twice.
    mirrored: usize,
}

impl Jash {
    /// Creates a session for `engine` on `machine`.
    pub fn new(engine: Engine, machine: MachineProfile) -> Self {
        Jash {
            core: JitCore::new(engine, machine),
            interp: Interpreter::new(),
        }
    }

    /// Parses and runs a script, returning captured stdio and status.
    pub fn run_script(
        &mut self,
        state: &mut ShellState,
        src: &str,
    ) -> jash_interp::Result<RunResult> {
        let parse_start = Instant::now();
        let prog = jash_parser::parse(src)?;
        self.trace_hist("jit.parse_us", parse_start.elapsed());
        self.run_program(state, &prog)
    }

    /// Runs a parsed program.
    pub fn run_program(
        &mut self,
        state: &mut ShellState,
        prog: &Program,
    ) -> jash_interp::Result<RunResult> {
        let (io, out, err) = ShellIo::captured();
        self.interp.base_stderr = Some(io.stderr.clone());
        let run_span = self.tracer.as_ref().map(|t| {
            let s = t.start("run", "run", None);
            t.set_attr(s, "engine", self.engine.to_string());
            t.set_attr(s, "items", prog.items.len() as u64);
            for (key, value) in &self.run_attrs {
                t.set_attr(s, key, value.clone());
            }
            s
        });
        self.current_run = run_span;
        let mut status = 0;
        let mut flow_exit = None;
        let mut shut_down = false;
        for item in &prog.items {
            // Graceful shutdown: a signal tripped the session token
            // between statements. Stop here — the journal keeps the run
            // marked interrupted so `--resume` picks up from this point.
            if let Some(code) = self.shutdown_status() {
                status = code;
                shut_down = true;
                break;
            }
            match self.run_item(state, item, &io) {
                Ok(s) => status = s,
                Err(InterpError::Flow(Flow::Exit(s))) => {
                    status = s;
                    flow_exit = Some(s);
                    break;
                }
                Err(e) => {
                    err.lock()
                        .extend_from_slice(format!("jash: {e}\n").as_bytes());
                    status = match e {
                        InterpError::Parse(_) => 2,
                        _ => 1,
                    };
                    break;
                }
            }
            state.last_status = status;
            if status != 0 && state.errexit {
                flow_exit = Some(status);
                break;
            }
        }
        let _ = flow_exit;
        // A shutdown mid-script may have been raised *inside* run_item
        // (region aborted); catch that too so the journal stays open.
        shut_down = shut_down || self.shutdown_status().is_some();
        if !shut_down {
            if let Some(journal) = &self.journal {
                let _ = journal.append(&JournalRecord::RunComplete);
            }
        }
        state.last_status = status;
        if let (Some(t), Some(s)) = (&self.tracer, run_span) {
            t.set_attr(s, "status", i64::from(status));
            if let Some(journal) = &self.journal {
                t.metrics()
                    .gauge("journal.fsyncs")
                    .set(journal.fsyncs() as i64);
            }
            t.end(s);
        }
        self.current_run = None;
        let stdout = std::mem::take(&mut *out.lock());
        let stderr = std::mem::take(&mut *err.lock());
        Ok(RunResult {
            status,
            stdout,
            stderr,
        })
    }

    fn run_item(
        &mut self,
        state: &mut ShellState,
        item: &ListItem,
        io: &ShellIo,
    ) -> jash_interp::Result<i32> {
        // One region span per top-level statement, whatever path it takes.
        // The attrs start pessimistic (interpreted, width 1, no bytes) and
        // the optimize/resume/failover paths overwrite them — last write
        // wins, so the committed span reflects what actually happened.
        let span = self.tracer.as_ref().map(|t| {
            let name = jash_ast::unparse(&Program {
                items: vec![item.clone()],
            });
            let s = t.start("region", &name, self.current_run);
            t.set_attr(s, "action", "interpreted");
            t.set_attr(s, "width", 1u64);
            t.set_attr(s, "bytes_in", 0u64);
            t.set_attr(s, "bytes_out", 0u64);
            s
        });
        let prev_region = self.current_region;
        self.current_region = span;
        let sup_mark = self.runtime.supervision.events.len();
        let result = self.run_item_inner(state, item, io);
        self.mirror_supervision(sup_mark);
        if let (Some(t), Some(s)) = (&self.tracer, span) {
            if let Ok(status) = &result {
                t.set_attr(s, "status", i64::from(*status));
            }
            t.end(s);
        }
        self.current_region = prev_region;
        result
    }

    fn run_item_inner(
        &mut self,
        state: &mut ShellState,
        item: &ListItem,
        io: &ShellIo,
    ) -> jash_interp::Result<i32> {
        let plain = !item.background
            && item.and_or.rest.is_empty()
            && !item.and_or.first.negated;
        let all_simple = item
            .and_or
            .first
            .commands
            .iter()
            .all(|c| matches!(c.kind, CommandKind::Simple(_)));
        let single = Program {
            items: vec![item.clone()],
        };
        if self.engine != Engine::Bash && plain && all_simple {
            // A plain top-level pipeline: the statement's own region span
            // already covers it, so attempt the region directly and
            // interpret hooklessly on decline (no second attempt).
            let text = jash_ast::unparse(&single);
            match self.core.try_optimize(state, &item.and_or.first, io, &text) {
                Ok(Some(status)) => return Ok(status),
                Ok(None) => {}
                Err(e) => return Err(e),
            }
            return self.interp.run_program(state, &single, io);
        }
        if self.engine != Engine::Bash {
            self.core.trace.push(TraceEvent {
                pipeline: jash_ast::unparse(&single),
                action: Action::Interpreted {
                    reason: "not a plain foreground pipeline".to_string(),
                },
            });
        }
        // Compound statements (and `&&`/`||` chains, negations) interpret
        // with the JIT callout threaded in: every pipeline the walk
        // reaches under control flow is offered to the engine at its
        // expansion boundary (paper §3.2 — optimize *after* expansion,
        // per iteration). Background items stay hookless: their subshell
        // effects are discarded wholesale.
        let Jash { core, interp } = self;
        let hook: Option<&mut dyn PipelineJit> =
            if core.engine == Engine::JashJit && !item.background {
                Some(core)
            } else {
                None
            };
        interp.run_program_jit(state, &single, io, hook)
    }
}

impl JitCore {
    /// Creates the engine state for `engine` on `machine`.
    fn new(engine: Engine, machine: MachineProfile) -> Self {
        JitCore {
            engine,
            machine,
            registry: jash_spec::Registry::builtin(),
            planner: PlannerOptions::default(),
            trace: Vec::new(),
            runtime: RuntimeInfo::default(),
            node_timeout: None,
            cancel: None,
            retry_policy: RetryPolicy::default(),
            breaker: CircuitBreaker::default(),
            durable: true,
            kernel_fault: None,
            tracer: None,
            calibration: None,
            run_attrs: Vec::new(),
            journal: None,
            memo: None,
            resume: None,
            current_run: None,
            current_region: None,
            plan_cache: PlanCache::new(),
            loop_iters: Vec::new(),
            nested: Vec::new(),
            mirrored: 0,
        }
    }

    /// Attaches the crash-recovery journal rooted at `dir` (typically
    /// `/.jash`): replays `dir/journal`, sweeps staging debris if the
    /// previous run died mid-flight, opens a fresh epoch, and — when
    /// `resume` is set and the previous run was interrupted — arms the
    /// resume plan so journaled-clean regions replay from the durable
    /// memo at `dir/memo` instead of re-executing.
    ///
    /// Call once, before `run_script`. Returns what recovery found.
    pub fn attach_journal(
        &mut self,
        fs: &FsHandle,
        dir: &str,
        resume: bool,
    ) -> io::Result<RecoveryReport> {
        let journal_path = format!("{dir}/journal");
        let replay = Journal::replay(fs.as_ref(), &journal_path)?;
        let (mut report, plan) = recovery::scan_journal(&replay);
        if report.interrupted {
            report.swept = recovery::sweep_stage_debris(fs.as_ref());
        } else if fs.exists(&journal_path) {
            // Previous run completed: its history is dead weight. Reset
            // the journal so it never grows across healthy sessions.
            fs.remove(&journal_path)?;
        }
        if resume && report.interrupted {
            self.resume = plan;
        }
        let journal = Journal::open(Arc::clone(fs), &journal_path, self.durable);
        journal.append(&JournalRecord::RunStart {
            epoch: report.epoch,
        })?;
        self.journal = Some(Arc::new(journal));
        self.memo =
            Some(Memo::new(Arc::clone(fs), format!("{dir}/memo")).with_durable(self.durable));
        Ok(report)
    }

    /// The exit status a pending graceful abort dictates, if the
    /// session's cancel token was tripped by a signal (128 + signum) or
    /// a wall-clock deadline (124). `None` for fault cancellations,
    /// which fail over instead of aborting.
    pub fn shutdown_status(&self) -> Option<i32> {
        let reason = self.cancel.as_ref()?.reason()?;
        recovery::cancel_exit_code(&reason)
    }

    /// Attempts the optimize path; `Ok(None)` means "fall back to the
    /// interpreter".
    fn try_optimize(
        &mut self,
        state: &mut ShellState,
        pl: &Pipeline,
        io: &ShellIo,
        pipeline_text: &str,
    ) -> jash_interp::Result<Option<i32>> {
        let fallback = |this: &mut Self, reason: String| {
            this.trace_region_attr("reason", reason.as_str());
            this.trace.push(TraceEvent {
                pipeline: pipeline_text.to_string(),
                action: Action::Interpreted { reason },
            });
        };

        // 1. Extract the region the way the engine can — *after*
        // expansion, with the live shell state: inside a loop the same
        // syntactic pipeline extracts to a different region each
        // iteration ($f has a new value), which is the paper's whole
        // argument for JIT-at-the-expansion-boundary.
        let expand_start = Instant::now();
        let region = match self.engine {
            Engine::PashAot => static_region(state, pl),
            Engine::JashJit => jit_region(state, pl),
            Engine::Bash => unreachable!("caller filtered"),
        };
        self.trace_hist("jit.expand_us", expand_start.elapsed());
        let mut region = match region {
            Ok(r) => r,
            Err(e @ Ineligible::ExpansionFailed(_)) => {
                // A failing expansion must surface as a real error, so let
                // the interpreter produce it faithfully.
                fallback(self, e.to_string());
                return Ok(None);
            }
            Err(e) => {
                fallback(self, e.to_string());
                return Ok(None);
            }
        };
        resolve_paths(state, &mut region);

        // 2. Compile to a dataflow graph.
        let compile_start = Instant::now();
        let compiled = compile(&region, &self.registry);
        self.trace_hist("jit.compile_us", compile_start.elapsed());
        let mut compiled = match compiled {
            Ok(c) => c,
            Err(e) => {
                fallback(self, e.to_string());
                return Ok(None);
            }
        };

        // 2b. Resume: an interrupted predecessor may have completed this
        // very region cleanly. If the journal says so and the durable
        // memo still verifies against the *current* input bytes, replay
        // the remembered outcome instead of re-executing. This runs
        // before planning on purpose: the dead run already paid for the
        // work, so the planner has no veto.
        if self.engine == Engine::JashJit && self.resume.is_some() {
            if let Some(status) =
                self.try_resume(state, io, pipeline_text, &region, &compiled.dfg)?
            {
                return Ok(Some(status));
            }
        }

        // 3. Gather runtime information: input sizes from the live fs.
        let input = InputInfo {
            total_bytes: region_input_bytes(state, &region),
        };
        self.trace_region_attr("bytes_in", input.total_bytes);

        // 4. Plan — through the per-fingerprint plan cache when this
        // shape has been planned before at a comparable input scale
        // under the same options (loop iterations 2..N hit here and skip
        // the candidate sweep entirely). The cached entry remembers the
        // *decision*, declines included, so an unprofitable loop body
        // also stops paying for planning after iteration 1.
        let (shape, projected) = match self.engine {
            Engine::PashAot => (pash_aot_plan(&self.machine), 1.0),
            Engine::JashJit => {
                let pfp = compiled.dfg.plan_fingerprint();
                let bucket = byte_bucket(input.total_bytes);
                let sig = options_signature(&self.planner);
                if let Some((shape, projected)) = self.plan_cache.lookup(pfp, bucket, sig) {
                    self.trace_counter("jit.plan_cache.hits");
                    self.trace_region_attr("plan_cache_hit", true);
                    (shape, projected)
                } else {
                    if self.plan_cache.enabled() {
                        self.trace_counter("jit.plan_cache.misses");
                        self.trace_region_attr("plan_cache_hit", false);
                    }
                    let plan_start = Instant::now();
                    let d = choose_plan_with(
                        &compiled.dfg,
                        &self.machine,
                        input,
                        &self.planner,
                        self.calibration.as_ref(),
                    );
                    self.trace_hist("jit.plan_us", plan_start.elapsed());
                    self.plan_cache
                        .insert(pfp, bucket, sig, d.shape, d.projected_speedup());
                    (d.shape, d.projected_speedup())
                }
            }
            Engine::Bash => unreachable!(),
        };
        if shape.width <= 1 && !shape.fused {
            fallback(
                self,
                format!(
                    "planner declined (input {} bytes, projected speedup < margin)",
                    input.total_bytes
                ),
            );
            return Ok(None);
        }

        // 5. Rewrite and execute. JashJit regions run supervised (retry,
        // width degradation, circuit breaker); PashAot keeps the original
        // single-shot execute-or-fail-over, because a static transformer
        // has no runtime to supervise with.
        if self.engine == Engine::JashJit {
            return self.execute_supervised(
                state,
                io,
                pipeline_text.to_string(),
                &region,
                &compiled.dfg,
                shape,
                projected,
                input.total_bytes,
            );
        }

        parallelize_all(&mut compiled.dfg, shape.width);
        let cfg = self.region_config(state, shape.buffered, &compiled.dfg, input.total_bytes);
        let exec_start_us = self.tracer.as_ref().map_or(0, |t| t.now_us());
        let outcome = match execute(&compiled.dfg, &cfg) {
            Ok(o) => o,
            Err(e) => {
                // Execution-layer refusals (unsafe split) fall back.
                fallback(self, format!("executor refused: {e}"));
                return Ok(None);
            }
        };

        // The correctness half of the no-regression guard: if any node
        // faulted (IO error, panic, stall) or the commit failed, the
        // transactional executor has already discarded staged file output;
        // drop the captured streams too, book the failure, and re-execute
        // the region sequentially under the interpreter, which reproduces
        // exactly what an unoptimized shell would have done.
        self.emit_node_spans(&compiled.dfg, &outcome, exec_start_us);
        if !outcome.is_clean() {
            self.book_failover(pipeline_text.to_string(), shape.width, &outcome);
            return Ok(None);
        }

        self.runtime.regions_optimized += 1;
        self.trace_optimized_region(shape.width, shape.buffered, projected, &outcome);
        self.trace.push(TraceEvent {
            pipeline: pipeline_text.to_string(),
            action: Action::Optimized {
                width: shape.width,
                buffered: shape.buffered,
                fused: false,
                projected_speedup: projected,
            },
        });
        self.deliver(state, io, outcome).map(Some)
    }

    /// The supervised execution path (JashJit): breaker routing, then a
    /// width-degradation ladder where each rung retries transient faults
    /// with deterministic backoff.
    #[allow(clippy::too_many_arguments)]
    fn execute_supervised(
        &mut self,
        state: &mut ShellState,
        io: &ShellIo,
        pipeline_text: String,
        src_region: &Region,
        base_dfg: &Dfg,
        shape: PlanShape,
        projected: f64,
        total_bytes: u64,
    ) -> jash_interp::Result<Option<i32>> {
        // One logical tick per region that reaches the supervisor; the
        // breaker's cool-down counts these, never wall time, so routing
        // decisions replay identically.
        let region = self.breaker.tick();
        // Fingerprint the *pre-parallelization* graph: the shape key must
        // not depend on the width chosen this time around.
        let fp = base_dfg.fingerprint();
        self.trace_region_attr("fingerprint", format!("{fp:016x}"));
        match self.breaker.route(&fp) {
            Route::Interpret => {
                self.runtime
                    .supervision
                    .push(SupervisionEvent::BreakerRouted {
                        region,
                        fingerprint: fp,
                    });
                self.trace.push(TraceEvent {
                    pipeline: pipeline_text,
                    action: Action::Interpreted {
                        reason: format!("circuit breaker open for shape {fp:08x}"),
                    },
                });
                return Ok(None);
            }
            Route::HalfOpenTrial => {
                self.runtime
                    .supervision
                    .push(SupervisionEvent::BreakerHalfOpen { fingerprint: fp });
            }
            Route::Try => {}
        }

        // Write-ahead intent: the journal learns the region is live
        // before any of its bytes move, so a hard crash anywhere past
        // this point is recognizable on replay.
        if let Some(journal) = &self.journal {
            let _ = journal.append(&JournalRecord::RegionStart {
                fingerprint: fp,
                inputs: recovery::region_input_paths(src_region),
            });
        }

        // The ladder: the fused single-pass kernel first when planned,
        // then the unfused channel-per-stage pipeline at the planned
        // width, then halves down to 1. Width 1 still runs through the
        // dataflow executor — the interpreter is only reached by failing
        // off the last rung.
        let mut rungs: Vec<(usize, bool)> = Vec::new();
        if shape.fused {
            rungs.push((shape.width, true));
        }
        rungs.push((shape.width, false));
        rungs.extend(degradation_ladder(shape.width).into_iter().map(|w| (w, false)));

        let mut total_attempts = 0u32;
        let mut last_failure: Option<(ExecOutcome, ErrorClass)> = None;
        for (i, &(width, fused)) in rungs.iter().enumerate() {
            let mut dfg = base_dfg.clone();
            if width > 1 {
                parallelize_all(&mut dfg, width);
            }
            let fused_nodes = if fused {
                jash_dataflow::fuse_kernels(&mut dfg);
                dfg.node_ids()
                    .filter_map(|n| match &dfg.node(n).kind {
                        NodeKind::Fused { stages } => Some(stages.len()),
                        _ => None,
                    })
                    .sum::<usize>()
            } else {
                0
            };
            let cfg = self.region_config(state, shape.buffered, &dfg, total_bytes);
            let wall = Instant::now();
            let exec_start_us = self.tracer.as_ref().map_or(0, |t| t.now_us());
            let result = match execute_with_retry(
                &dfg,
                &cfg,
                &self.retry_policy,
                region,
                width,
                &mut self.runtime.supervision,
            ) {
                Ok(r) => r,
                Err(e) => {
                    // Execution-layer refusals (unsafe split) fall back.
                    self.trace.push(TraceEvent {
                        pipeline: pipeline_text,
                        action: Action::Interpreted {
                            reason: format!("executor refused: {e}"),
                        },
                    });
                    return Ok(None);
                }
            };
            total_attempts += result.attempts;
            self.emit_node_spans(&dfg, &result.outcome, exec_start_us);

            if result.outcome.is_clean() {
                if self.breaker.record_success(&fp) {
                    self.runtime
                        .supervision
                        .push(SupervisionEvent::BreakerClosed { fingerprint: fp });
                }
                if total_attempts > 1 || width < shape.width {
                    self.runtime.supervision.push(SupervisionEvent::Recovered {
                        region,
                        attempts: total_attempts,
                        width,
                    });
                    self.runtime.regions_recovered += 1;
                }
                self.runtime.regions_optimized += 1;
                self.checkpoint_clean(state, src_region, fp, &result.outcome);
                self.trace_optimized_region(width, shape.buffered, projected, &result.outcome);
                self.trace_region_attr("fused", fused);
                if fused {
                    self.trace_region_attr("nodes_fused", fused_nodes as u64);
                }
                self.trace.push(TraceEvent {
                    pipeline: pipeline_text,
                    action: Action::Optimized {
                        width,
                        buffered: shape.buffered,
                        fused,
                        projected_speedup: projected,
                    },
                });
                return self.deliver(state, io, result.outcome).map(Some);
            }

            // Graceful shutdown: the cancel came from a signal, not a
            // fault. Do NOT fail over — re-running the region under the
            // interpreter is exactly what the user interrupted. Journal
            // the abort (the epoch stays incomplete, so `--resume` works)
            // and surface 128+signum.
            if result.cancelled {
                if let Some(code) = self.shutdown_status() {
                    let reason = self
                        .cancel
                        .as_ref()
                        .and_then(|t| t.reason())
                        .unwrap_or_else(|| "shutdown".to_string());
                    if let Some(journal) = &self.journal {
                        let _ = journal.append(&JournalRecord::RegionAborted {
                            fingerprint: fp,
                            reason: reason.clone(),
                        });
                    }
                    self.trace_region_attr("action", "aborted");
                    self.trace_region_attr("reason", reason.as_str());
                    self.trace.push(TraceEvent {
                        pipeline: pipeline_text,
                        action: Action::Aborted { reason },
                    });
                    state.last_status = code;
                    return Ok(Some(code));
                }
            }

            let class = result.outcome.fault_class.unwrap_or(ErrorClass::Permanent);
            let next = rungs.get(i + 1).copied();
            // A failing fused kernel steps to the unfused pipeline for
            // ANY fault class: the kernel is an optimization, not a
            // requirement, and the unfused rung below computes the same
            // bytes with none of the kernel's code in the path.
            if fused && !result.cancelled && next.is_some() {
                self.runtime
                    .supervision
                    .push(SupervisionEvent::KernelDegraded {
                        region,
                        nodes: fused_nodes,
                        class,
                    });
                last_failure = Some((result.outcome, class));
                continue;
            }
            // Resource starvation steps down the ladder instead of
            // burning retry budget against the same wall. A transient
            // fault that exhausted its retries gets the same treatment
            // when the machine models read as saturated — under pressure
            // "try the same thing again, harder" is the wrong move.
            let pressure =
                resource_pressure(None, state.cpu.as_ref(), wall.elapsed().as_secs_f64());
            let degrade = !result.cancelled
                && next.is_some()
                && (class == ErrorClass::Resource
                    || (class == ErrorClass::Transient && pressure > 0.9));
            last_failure = Some((result.outcome, class));
            if let (true, Some((to, _))) = (degrade, next) {
                self.runtime
                    .supervision
                    .push(SupervisionEvent::WidthDegraded {
                        region,
                        from: width,
                        to,
                        class,
                    });
                continue;
            }
            break;
        }

        // Every rung failed (or the fault class ruled the ladder out):
        // fail over to the interpreter, PR 1's original safety valve.
        let Some((outcome, class)) = last_failure else {
            // Unreachable (the loop always records a failure before
            // exiting unclean), but degrade gracefully if it ever isn't.
            self.trace.push(TraceEvent {
                pipeline: pipeline_text,
                action: Action::Interpreted {
                    reason: "supervisor produced no outcome".to_string(),
                },
            });
            return Ok(None);
        };
        if let Some(journal) = &self.journal {
            let _ = journal.append(&JournalRecord::RegionDone {
                fingerprint: fp,
                status: outcome.status,
                clean: false,
            });
        }
        self.runtime
            .supervision
            .push(SupervisionEvent::FailedOver { region, class });
        if self.breaker.record_failure(&fp) {
            self.runtime
                .supervision
                .push(SupervisionEvent::BreakerOpened {
                    fingerprint: fp,
                    failures: self.breaker.failures(&fp),
                });
        }
        self.book_failover(pipeline_text, shape.width, &outcome);
        Ok(None)
    }

    /// Checkpoints a cleanly-completed region: memoize its output keyed
    /// by fingerprint (so resume can replay it) and journal `RegionDone`.
    /// Both are best-effort — a full memo disk must not fail the region.
    fn checkpoint_clean(
        &mut self,
        state: &ShellState,
        src_region: &Region,
        fp: u64,
        outcome: &ExecOutcome,
    ) {
        if outcome.status == 0 {
            if let Some(memo) = &self.memo {
                if let Ok(input) = recovery::read_region_input(&state.fs, src_region) {
                    let _ = memo.put(
                        fp,
                        &Entry {
                            input_len: input.len() as u64,
                            input_hash: fnv1a(&input),
                            output: outcome.stdout.clone(),
                        },
                    );
                }
            }
        }
        if let Some(journal) = &self.journal {
            let _ = journal.append(&JournalRecord::RegionDone {
                fingerprint: fp,
                status: outcome.status,
                clean: true,
            });
        }
    }

    /// Attempts to satisfy a region from the interrupted run's journal:
    /// consume the next completion of this shape from the resume plan,
    /// verify the memo entry against the current input bytes, and — when
    /// everything checks out — deliver the remembered output without
    /// executing anything. `Ok(None)` means "execute normally".
    fn try_resume(
        &mut self,
        state: &mut ShellState,
        io: &ShellIo,
        pipeline_text: &str,
        src_region: &Region,
        dfg: &Dfg,
    ) -> jash_interp::Result<Option<i32>> {
        let fp = dfg.fingerprint();
        let claimed = match self.resume.as_mut() {
            Some(plan) => plan.take(fp),
            None => None,
        };
        let Some(done) = claimed else {
            return Ok(None);
        };
        // The journal says the dead run finished this region cleanly.
        // Trust, but verify: the memo entry must exist and its input
        // fingerprint must match what is on disk *now* — inputs edited
        // between the crash and the resume force a re-execution.
        let Some(entry) = self
            .memo
            .as_ref()
            .and_then(|m| m.get(fp).ok())
            .flatten()
        else {
            self.trace_counter("memo.misses");
            return Ok(None);
        };
        let Ok(input) = recovery::read_region_input(&state.fs, src_region) else {
            self.trace_counter("memo.misses");
            return Ok(None);
        };
        if entry.input_len != input.len() as u64 || entry.input_hash != fnv1a(&input) {
            self.trace_counter("memo.misses");
            return Ok(None);
        }
        // Re-journal the completion in this epoch, so a crash *during*
        // the resumed run leaves a journal that still resumes correctly.
        if let Some(journal) = &self.journal {
            let _ = journal.append(&JournalRecord::RegionStart {
                fingerprint: fp,
                inputs: recovery::region_input_paths(src_region),
            });
            let _ = journal.append(&JournalRecord::RegionDone {
                fingerprint: fp,
                status: done.status,
                clean: true,
            });
        }
        self.runtime.regions_resumed += 1;
        self.trace_counter("memo.hits");
        self.trace_region_attr("action", "resumed");
        self.trace_region_attr("fingerprint", format!("{fp:016x}"));
        self.trace_region_attr("bytes_in", entry.input_len);
        self.trace_region_attr("bytes_out", entry.output.len() as u64);
        self.trace.push(TraceEvent {
            pipeline: pipeline_text.to_string(),
            action: Action::Resumed { fingerprint: fp },
        });
        let outcome = ExecOutcome {
            bytes_in: entry.input_len,
            bytes_out: entry.output.len() as u64,
            stdout: entry.output,
            stderr: Vec::new(),
            status: done.status,
            metrics: Vec::new(),
            wall: std::time::Duration::ZERO,
            failures: Vec::new(),
            fault_class: None,
        };
        self.deliver(state, io, outcome).map(Some)
    }

    /// Sets an attribute on the open region span, when tracing.
    fn trace_region_attr(&self, key: &str, value: impl Into<AttrValue>) {
        if let (Some(t), Some(s)) = (&self.tracer, self.current_region) {
            t.set_attr(s, key, value);
        }
    }

    /// Records one observation in a session timing histogram.
    fn trace_hist(&self, name: &str, elapsed: std::time::Duration) {
        if let Some(t) = &self.tracer {
            t.metrics()
                .histogram(name, DEFAULT_TIME_BOUNDS_US)
                .record(elapsed.as_micros() as u64);
        }
    }

    /// Bumps a session counter.
    fn trace_counter(&self, name: &str) {
        if let Some(t) = &self.tracer {
            t.metrics().counter(name).incr();
        }
    }

    /// Stamps the current region span with a successful optimized run.
    fn trace_optimized_region(
        &self,
        width: usize,
        buffered: bool,
        projected: f64,
        outcome: &ExecOutcome,
    ) {
        self.trace_region_attr("action", "optimized");
        self.trace_region_attr("width", width as u64);
        self.trace_region_attr("buffered", buffered);
        self.trace_region_attr("projected_speedup", projected);
        // Commands that read file operands directly (no ReadFile node)
        // move bytes the executor's edge counters never see; the
        // fs-derived figure already on the span is the truthful one then.
        if outcome.bytes_in > 0 {
            self.trace_region_attr("bytes_in", outcome.bytes_in);
        }
        self.trace_region_attr("bytes_out", outcome.bytes_out);
    }

    /// Emits one `node` span per executor metric under the current
    /// region. Node timings arrive after the fact (the executor measures
    /// them), so these are recorded rather than opened/closed; starts are
    /// rebased onto the trace clock via `exec_start_us`.
    fn emit_node_spans(&self, dfg: &Dfg, outcome: &ExecOutcome, exec_start_us: u64) {
        let Some(t) = &self.tracer else { return };
        let parent = self.current_region;
        for m in &outcome.metrics {
            let node = dfg.node(m.node);
            let mut attrs: Vec<(String, AttrValue)> = vec![
                ("bytes_in".to_string(), m.bytes_in.into()),
                ("bytes_out".to_string(), m.bytes_out.into()),
            ];
            match &node.kind {
                NodeKind::Command { name, .. } => {
                    attrs.push(("cmd".to_string(), name.as_str().into()));
                }
                NodeKind::Fused { stages } => {
                    // `cmd: fused` makes calibration learn a measured
                    // fused-kernel rate exactly like any other command.
                    attrs.push(("cmd".to_string(), "fused".into()));
                    attrs.push(("nodes_fused".to_string(), (stages.len() as u64).into()));
                    attrs.push(("lines".to_string(), m.lines.into()));
                }
                NodeKind::Split { width } => {
                    attrs.push(("fan_out".to_string(), (*width as u64).into()));
                }
                NodeKind::Merge { .. } => {
                    attrs.push(("fan_in".to_string(), (node.inputs.len() as u64).into()));
                }
                _ => {}
            }
            if let Some(status) = m.status {
                attrs.push(("status".to_string(), i64::from(status).into()));
            }
            if let Some(f) = &m.failure {
                attrs.push(("failure".to_string(), f.as_str().into()));
            }
            t.record_span_at(
                "node",
                &m.label,
                parent,
                exec_start_us.saturating_add(m.start_offset.as_micros() as u64),
                m.wall.as_micros() as u64,
                attrs,
            );
        }
    }

    /// Mirrors supervision-log entries appended since `from` onto the
    /// trace timeline, so retry/degradation/breaker decisions land next
    /// to the spans they explain. The watermark makes this idempotent:
    /// a nested region mirrors its own events when it closes, and the
    /// enclosing statement's sweep skips everything already mirrored.
    fn mirror_supervision(&mut self, from: usize) {
        let upto = self.runtime.supervision.events.len();
        let from = from.max(self.mirrored);
        self.mirrored = self.mirrored.max(upto);
        let Some(t) = &self.tracer else { return };
        for e in &self.runtime.supervision.events[from..upto] {
            let (name, attrs) = supervision_attrs(e);
            t.event(name, attrs);
        }
    }

    /// Builds the per-rung executor configuration.
    fn region_config(
        &self,
        state: &ShellState,
        buffered: bool,
        dfg: &Dfg,
        total_bytes: u64,
    ) -> ExecConfig {
        let mut cfg = ExecConfig::new(Arc::clone(&state.fs));
        cfg.cwd = state.cwd.clone();
        cfg.cpu = state.cpu.clone();
        if buffered {
            cfg.buffer_splits_in = Some("/tmp/jash-buffers".to_string());
        }
        cfg.split_targets = split_plans(dfg, total_bytes);
        cfg.node_timeout = self.node_timeout;
        cfg.cancel = self.cancel.clone();
        cfg.durable = self.durable;
        cfg.journal = self.journal.clone();
        cfg.kernel_fault = self.kernel_fault.clone();
        cfg
    }

    /// Books a fail-over in the runtime ledger and trace.
    fn book_failover(&mut self, pipeline_text: String, width: usize, outcome: &ExecOutcome) {
        self.trace_region_attr("action", "failed_over");
        self.trace_region_attr("width", width as u64);
        self.runtime.regions_failed_over += 1;
        self.runtime.failures.push(RegionFailure {
            pipeline: pipeline_text.clone(),
            failures: outcome.failures.clone(),
        });
        self.trace.push(TraceEvent {
            pipeline: pipeline_text,
            action: Action::FailedOver {
                width,
                failures: outcome.failures.clone(),
            },
        });
    }

    /// Delivers captured optimized output to the session's stdio.
    fn deliver(
        &mut self,
        state: &mut ShellState,
        io: &ShellIo,
        outcome: ExecOutcome,
    ) -> jash_interp::Result<i32> {
        if !outcome.stdout.is_empty() {
            let mut sink = io.stdout.open(&state.fs)?;
            sink.write_chunk(bytes::Bytes::from(outcome.stdout))?;
            sink.finish()?;
        }
        if !outcome.stderr.is_empty() {
            let mut sink = io.stderr.open(&state.fs)?;
            sink.write_chunk(bytes::Bytes::from(outcome.stderr))?;
        }
        state.last_status = outcome.status;
        Ok(outcome.status)
    }
}

/// The JIT callout the interpreter offers every pipeline it reaches
/// under control flow (`if`/`while`/`for`/brace groups/`&&`/`||`).
///
/// This is where "optimize at the expansion boundary" happens for
/// dynamic code: the walk has already run the surrounding control flow,
/// so the shell state the region extracts against is the live,
/// per-iteration one. A handled pipeline returns `Some(status)` and the
/// interpreter skips it; a declined pipeline returns `None` with an
/// open [`NestedRegion`] record that [`PipelineJit::pipeline_interpreted`]
/// closes — so interpreted pipelines inside control flow get the same
/// span/status accounting as top-level regions.
impl PipelineJit for JitCore {
    fn on_pipeline(
        &mut self,
        state: &mut ShellState,
        pl: &Pipeline,
        io: &ShellIo,
    ) -> Option<jash_interp::Result<i32>> {
        // A signal or deadline tripped mid-statement: unwind the walk
        // gracefully instead of starting more work. The exit flow keeps
        // the journal open so `--resume` recognizes the interruption.
        if let Some(code) = self.shutdown_status() {
            return Some(Err(InterpError::Flow(Flow::Exit(code))));
        }
        let all_simple = pl
            .commands
            .iter()
            .all(|c| matches!(c.kind, CommandKind::Simple(_)));
        if !all_simple {
            // A compound stage (the pipeline wrapping an `if`, a loop, a
            // brace group…): nothing extractable at this level — the
            // pipelines *inside* each get their own offer. Stay silent:
            // no span, no trace event.
            self.nested.push(NestedRegion {
                span: None,
                prev_region: self.current_region,
                sup_mark: self.runtime.supervision.events.len(),
            });
            return None;
        }
        let text = jash_ast::unparse(&Program {
            items: vec![ListItem {
                and_or: AndOrList::single(pl.clone()),
                background: false,
            }],
        });
        // One region span per offered pipeline, nested under the
        // enclosing statement's span. Attrs start pessimistic exactly
        // like top-level regions; the optimize path overwrites them.
        let span = self.tracer.as_ref().map(|t| {
            let s = t.start(
                "region",
                &text,
                self.current_region.or(self.current_run),
            );
            t.set_attr(s, "action", "interpreted");
            t.set_attr(s, "width", 1u64);
            t.set_attr(s, "bytes_in", 0u64);
            t.set_attr(s, "bytes_out", 0u64);
            if let Some(iter) = self.loop_iters.last() {
                t.set_attr(s, "loop_iter", *iter);
            }
            s
        });
        let prev_region = self.current_region;
        self.current_region = span;
        let sup_mark = self.runtime.supervision.events.len();
        // A live stdin binding (`... | while read`, a redirected body)
        // feeds the pipeline bytes the region extractor cannot see;
        // only file-fed regions are offered to the engine.
        if !matches!(io.stdin, InputBinding::Empty) {
            self.trace_region_attr("reason", "live stdin binding");
            self.trace.push(TraceEvent {
                pipeline: text,
                action: Action::Interpreted {
                    reason: "live stdin binding".to_string(),
                },
            });
            self.nested.push(NestedRegion {
                span,
                prev_region,
                sup_mark,
            });
            return None;
        }
        match self.try_optimize(state, pl, io, &text) {
            Ok(Some(status)) => {
                self.mirror_supervision(sup_mark);
                if let (Some(t), Some(s)) = (&self.tracer, span) {
                    t.set_attr(s, "status", i64::from(status));
                    t.end(s);
                }
                self.current_region = prev_region;
                Some(Ok(status))
            }
            Ok(None) => {
                // Declined (ineligible, planner said no, or failed over):
                // leave the span open — the interpreter runs the pipeline
                // next and `pipeline_interpreted` closes the books.
                self.nested.push(NestedRegion {
                    span,
                    prev_region,
                    sup_mark,
                });
                None
            }
            Err(e) => {
                self.mirror_supervision(sup_mark);
                if let (Some(t), Some(s)) = (&self.tracer, span) {
                    t.end(s);
                }
                self.current_region = prev_region;
                Some(Err(e))
            }
        }
    }

    fn pipeline_interpreted(&mut self, result: &jash_interp::Result<i32>) {
        let Some(n) = self.nested.pop() else { return };
        self.mirror_supervision(n.sup_mark);
        if let (Some(t), Some(s)) = (&self.tracer, n.span) {
            if let Ok(status) = result {
                t.set_attr(s, "status", i64::from(*status));
            }
            t.end(s);
        }
        self.current_region = n.prev_region;
    }

    fn loop_enter(&mut self) {
        self.loop_iters.push(0);
    }

    fn loop_iter(&mut self, iter: u64) {
        if let Some(top) = self.loop_iters.last_mut() {
            *top = iter;
        }
    }

    fn loop_exit(&mut self) {
        self.loop_iters.pop();
    }
}

/// Renders one supervision event as a named trace event with typed
/// attributes (the structured twin of [`SupervisionEvent`]'s `Display`).
fn supervision_attrs(e: &SupervisionEvent) -> (&'static str, Vec<(String, AttrValue)>) {
    fn a(k: &str, v: impl Into<AttrValue>) -> (String, AttrValue) {
        (k.to_string(), v.into())
    }
    match e {
        SupervisionEvent::Attempt {
            region,
            attempt,
            width,
        } => (
            "supervision.attempt",
            vec![
                a("region", *region),
                a("attempt", u64::from(*attempt)),
                a("width", *width),
            ],
        ),
        SupervisionEvent::Backoff {
            region,
            attempt,
            delay,
            class,
        } => (
            "supervision.backoff",
            vec![
                a("region", *region),
                a("attempt", u64::from(*attempt)),
                a("delay_us", delay.as_micros() as u64),
                a("class", class.to_string()),
            ],
        ),
        SupervisionEvent::Recovered {
            region,
            attempts,
            width,
        } => (
            "supervision.recovered",
            vec![
                a("region", *region),
                a("attempts", u64::from(*attempts)),
                a("width", *width),
            ],
        ),
        SupervisionEvent::WidthDegraded {
            region,
            from,
            to,
            class,
        } => (
            "supervision.width_degraded",
            vec![
                a("region", *region),
                a("from", *from),
                a("to", *to),
                a("class", class.to_string()),
            ],
        ),
        SupervisionEvent::KernelDegraded {
            region,
            nodes,
            class,
        } => (
            "supervision.kernel_degraded",
            vec![
                a("region", *region),
                a("nodes", *nodes),
                a("class", class.to_string()),
            ],
        ),
        SupervisionEvent::FailedOver { region, class } => (
            "supervision.failed_over",
            vec![a("region", *region), a("class", class.to_string())],
        ),
        SupervisionEvent::BreakerOpened {
            fingerprint,
            failures,
        } => (
            "supervision.breaker_opened",
            vec![
                a("fingerprint", format!("{fingerprint:016x}")),
                a("failures", u64::from(*failures)),
            ],
        ),
        SupervisionEvent::BreakerRouted {
            region,
            fingerprint,
        } => (
            "supervision.breaker_routed",
            vec![
                a("region", *region),
                a("fingerprint", format!("{fingerprint:016x}")),
            ],
        ),
        SupervisionEvent::BreakerHalfOpen { fingerprint } => (
            "supervision.breaker_half_open",
            vec![a("fingerprint", format!("{fingerprint:016x}"))],
        ),
        SupervisionEvent::BreakerClosed { fingerprint } => (
            "supervision.breaker_closed",
            vec![a("fingerprint", format!("{fingerprint:016x}"))],
        ),
    }
}

/// Sums the sizes of all files the region reads.
fn region_input_bytes(state: &ShellState, region: &Region) -> u64 {
    let mut total = 0;
    for c in &region.commands {
        if let Some(p) = &c.stdin_redirect {
            if let Ok(m) = state.fs.metadata(p) {
                total += m.size;
            }
        }
        // File operands: a conservative sweep over non-flag args that
        // exist on the filesystem.
        for a in &c.args {
            if a.starts_with('-') {
                continue;
            }
            let p = state.resolve_path(a);
            if let Ok(m) = state.fs.metadata(&p) {
                if !m.is_dir {
                    total += m.size;
                }
            }
        }
    }
    total
}

/// Contiguous split plans: every split gets byte targets proportional to
/// the region input.
fn split_plans(
    dfg: &jash_dataflow::Dfg,
    total_bytes: u64,
) -> HashMap<jash_dataflow::NodeId, Vec<u64>> {
    let mut plans = HashMap::new();
    for n in dfg.node_ids() {
        if let NodeKind::Split { width } = dfg.node(n).kind {
            plans.insert(n, balanced_targets(total_bytes.max(1), width));
        }
    }
    plans
}
