//! The Jash session: a shell whose statement loop carries a JIT compiler.
//!
//! "Jash inspects each shell command as it comes in to identify candidates
//! for rewriting. Since Jash works dynamically, it can take into account
//! current system conditions to decide whether to even try to apply
//! optimizations!" (paper §3.2). The loop here is exactly that
//! architecture: interpretation by `jash-interp` for everything dynamic,
//! and — per top-level pipeline — an attempt to extract, compile, plan,
//! and execute a dataflow region with live information (variable values,
//! file sizes, machine resources).

use crate::engine::{Action, Engine, RegionFailure, RuntimeInfo, TraceEvent};
use crate::region::{jit_region, resolve_paths, static_region, Ineligible};
use jash_ast::{ListItem, Program};
use jash_cost::{choose_plan, pash_aot_plan, InputInfo, MachineProfile, PlannerOptions};
use jash_dataflow::{compile, parallelize_all, NodeKind, Region};
use jash_exec::{balanced_targets, execute, ExecConfig};
use jash_expand::ShellState;
use jash_interp::{Flow, InterpError, Interpreter, RunResult, ShellIo};
use std::collections::HashMap;
use std::sync::Arc;

/// A Jash shell session.
pub struct Jash {
    /// Strategy under evaluation.
    pub engine: Engine,
    /// The machine the planner believes it is running on.
    pub machine: MachineProfile,
    /// Command specifications.
    pub registry: jash_spec::Registry,
    /// Planner tunables (JashJit only).
    pub planner: PlannerOptions,
    /// Decisions taken this session, in order.
    pub trace: Vec<TraceEvent>,
    /// Live runtime record: optimized/failed-over region counts and the
    /// failure ledger the no-regression guard appends to.
    pub runtime: RuntimeInfo,
    /// Abort an optimized region whose pipes stop moving for this long
    /// (then fall back to the interpreter). `None` disables the watchdog.
    pub node_timeout: Option<std::time::Duration>,
    /// Cancellation token shared with optimized regions. The stall
    /// watchdog cancels it, so wiring the same token into blocking I/O
    /// layers (e.g. `FaultFs::wrap_with_cancel`) lets an abort interrupt
    /// reads that are stuck inside the filesystem, not just pipe waits.
    pub cancel: Option<jash_io::CancelToken>,
    interp: Interpreter,
}

impl Jash {
    /// Creates a session for `engine` on `machine`.
    pub fn new(engine: Engine, machine: MachineProfile) -> Self {
        Jash {
            engine,
            machine,
            registry: jash_spec::Registry::builtin(),
            planner: PlannerOptions::default(),
            trace: Vec::new(),
            runtime: RuntimeInfo::default(),
            node_timeout: None,
            cancel: None,
            interp: Interpreter::new(),
        }
    }

    /// Parses and runs a script, returning captured stdio and status.
    pub fn run_script(
        &mut self,
        state: &mut ShellState,
        src: &str,
    ) -> jash_interp::Result<RunResult> {
        let prog = jash_parser::parse(src)?;
        self.run_program(state, &prog)
    }

    /// Runs a parsed program.
    pub fn run_program(
        &mut self,
        state: &mut ShellState,
        prog: &Program,
    ) -> jash_interp::Result<RunResult> {
        let (io, out, err) = ShellIo::captured();
        self.interp.base_stderr = Some(io.stderr.clone());
        let mut status = 0;
        let mut flow_exit = None;
        for item in &prog.items {
            match self.run_item(state, item, &io) {
                Ok(s) => status = s,
                Err(InterpError::Flow(Flow::Exit(s))) => {
                    status = s;
                    flow_exit = Some(s);
                    break;
                }
                Err(e) => {
                    err.lock()
                        .extend_from_slice(format!("jash: {e}\n").as_bytes());
                    status = match e {
                        InterpError::Parse(_) => 2,
                        _ => 1,
                    };
                    break;
                }
            }
            state.last_status = status;
            if status != 0 && state.errexit {
                flow_exit = Some(status);
                break;
            }
        }
        let _ = flow_exit;
        state.last_status = status;
        let stdout = std::mem::take(&mut *out.lock());
        let stderr = std::mem::take(&mut *err.lock());
        Ok(RunResult {
            status,
            stdout,
            stderr,
        })
    }

    fn run_item(
        &mut self,
        state: &mut ShellState,
        item: &ListItem,
        io: &ShellIo,
    ) -> jash_interp::Result<i32> {
        let optimizable = !item.background
            && item.and_or.rest.is_empty()
            && !item.and_or.first.negated
            && self.engine != Engine::Bash;
        if optimizable {
            match self.try_optimize(state, item, io) {
                Ok(Some(status)) => return Ok(status),
                Ok(None) => {}
                Err(e) => return Err(e),
            }
        } else if self.engine != Engine::Bash {
            self.trace.push(TraceEvent {
                pipeline: jash_ast::unparse(&Program {
                    items: vec![item.clone()],
                }),
                action: Action::Interpreted {
                    reason: "not a plain foreground pipeline".to_string(),
                },
            });
        }
        // Interpret.
        let single = Program {
            items: vec![item.clone()],
        };
        self.interp.run_program(state, &single, io)
    }

    /// Attempts the optimize path; `Ok(None)` means "fall back to the
    /// interpreter".
    fn try_optimize(
        &mut self,
        state: &mut ShellState,
        item: &ListItem,
        io: &ShellIo,
    ) -> jash_interp::Result<Option<i32>> {
        let pipeline_text = jash_ast::unparse(&Program {
            items: vec![item.clone()],
        });
        let fallback = |this: &mut Self, reason: String| {
            this.trace.push(TraceEvent {
                pipeline: pipeline_text.clone(),
                action: Action::Interpreted { reason },
            });
        };

        // 1. Extract the region the way the engine can.
        let region = match self.engine {
            Engine::PashAot => static_region(state, &item.and_or.first),
            Engine::JashJit => jit_region(state, &item.and_or.first),
            Engine::Bash => unreachable!("caller filtered"),
        };
        let mut region = match region {
            Ok(r) => r,
            Err(e @ Ineligible::ExpansionFailed(_)) => {
                // A failing expansion must surface as a real error, so let
                // the interpreter produce it faithfully.
                fallback(self, e.to_string());
                return Ok(None);
            }
            Err(e) => {
                fallback(self, e.to_string());
                return Ok(None);
            }
        };
        resolve_paths(state, &mut region);

        // 2. Compile to a dataflow graph.
        let mut compiled = match compile(&region, &self.registry) {
            Ok(c) => c,
            Err(e) => {
                fallback(self, e.to_string());
                return Ok(None);
            }
        };

        // 3. Gather runtime information: input sizes from the live fs.
        let input = InputInfo {
            total_bytes: region_input_bytes(state, &region),
        };

        // 4. Plan.
        let (shape, projected) = match self.engine {
            Engine::PashAot => (pash_aot_plan(&self.machine), 1.0),
            Engine::JashJit => {
                let d = choose_plan(&compiled.dfg, &self.machine, input, &self.planner);
                (d.shape, d.projected_speedup())
            }
            Engine::Bash => unreachable!(),
        };
        if shape.width <= 1 {
            fallback(
                self,
                format!(
                    "planner declined (input {} bytes, projected speedup < margin)",
                    input.total_bytes
                ),
            );
            return Ok(None);
        }

        // 5. Rewrite and execute.
        parallelize_all(&mut compiled.dfg, shape.width);
        let mut cfg = ExecConfig::new(Arc::clone(&state.fs));
        cfg.cwd = state.cwd.clone();
        cfg.cpu = state.cpu.clone();
        if shape.buffered {
            cfg.buffer_splits_in = Some("/tmp/jash-buffers".to_string());
        }
        cfg.split_targets = split_plans(&compiled.dfg, input.total_bytes);
        cfg.node_timeout = self.node_timeout;
        cfg.cancel = self.cancel.clone();
        let outcome = match execute(&compiled.dfg, &cfg) {
            Ok(o) => o,
            Err(e) => {
                // Execution-layer refusals (unsafe split) fall back.
                fallback(self, format!("executor refused: {e}"));
                return Ok(None);
            }
        };

        // The correctness half of the no-regression guard: if any node
        // faulted (IO error, panic, stall) or the commit failed, the
        // transactional executor has already discarded staged file output;
        // drop the captured streams too, book the failure, and re-execute
        // the region sequentially under the interpreter, which reproduces
        // exactly what an unoptimized shell would have done.
        if !outcome.is_clean() {
            self.runtime.regions_failed_over += 1;
            self.runtime.failures.push(RegionFailure {
                pipeline: pipeline_text.clone(),
                failures: outcome.failures.clone(),
            });
            self.trace.push(TraceEvent {
                pipeline: pipeline_text,
                action: Action::FailedOver {
                    width: shape.width,
                    failures: outcome.failures,
                },
            });
            return Ok(None);
        }

        self.runtime.regions_optimized += 1;
        self.trace.push(TraceEvent {
            pipeline: pipeline_text,
            action: Action::Optimized {
                width: shape.width,
                buffered: shape.buffered,
                projected_speedup: projected,
            },
        });

        // 6. Deliver captured output to the session's stdio.
        if !outcome.stdout.is_empty() {
            let mut sink = io.stdout.open(&state.fs)?;
            sink.write_chunk(bytes::Bytes::from(outcome.stdout))?;
            sink.finish()?;
        }
        if !outcome.stderr.is_empty() {
            let mut sink = io.stderr.open(&state.fs)?;
            sink.write_chunk(bytes::Bytes::from(outcome.stderr))?;
        }
        state.last_status = outcome.status;
        Ok(Some(outcome.status))
    }
}

/// Sums the sizes of all files the region reads.
fn region_input_bytes(state: &ShellState, region: &Region) -> u64 {
    let mut total = 0;
    for c in &region.commands {
        if let Some(p) = &c.stdin_redirect {
            if let Ok(m) = state.fs.metadata(p) {
                total += m.size;
            }
        }
        // File operands: a conservative sweep over non-flag args that
        // exist on the filesystem.
        for a in &c.args {
            if a.starts_with('-') {
                continue;
            }
            let p = state.resolve_path(a);
            if let Ok(m) = state.fs.metadata(&p) {
                if !m.is_dir {
                    total += m.size;
                }
            }
        }
    }
    total
}

/// Contiguous split plans: every split gets byte targets proportional to
/// the region input.
fn split_plans(
    dfg: &jash_dataflow::Dfg,
    total_bytes: u64,
) -> HashMap<jash_dataflow::NodeId, Vec<u64>> {
    let mut plans = HashMap::new();
    for n in dfg.node_ids() {
        if let NodeKind::Split { width } = dfg.node(n).kind {
            plans.insert(n, balanced_targets(total_bytes.max(1), width));
        }
    }
    plans
}
