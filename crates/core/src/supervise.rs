//! Session-level supervision: the JIT circuit breaker and the
//! width-degradation ladder.
//!
//! The executor-side half (`jash_exec::supervise`) classifies faults and
//! retries transient ones. This half decides what the *session* does with
//! shapes that keep failing: a [`CircuitBreaker`] keyed by normalized DFG
//! fingerprint quarantines region shapes whose optimized runs repeatedly
//! fail over, routing them straight to the interpreter for a cool-down
//! window and re-probing with a half-open trial; and
//! [`degradation_ladder`] computes the width steps (width → width/2 → …
//! → 1) a resource-starved region walks down before giving up on
//! optimization entirely.
//!
//! Determinism: the breaker's cool-down is measured in *logical region
//! ticks* (the count of optimizable regions the session has seen), never
//! wall time, so the same script under the same fault plan opens, routes,
//! probes, and closes at exactly the same statements on every run.

use jash_io::{CpuModel, DiskModel};
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::Arc;

/// Breaker tunables.
#[derive(Debug, Clone, Copy)]
pub struct BreakerConfig {
    /// Consecutive fail-overs of one shape that open its breaker.
    pub failure_threshold: u32,
    /// How many logical region ticks an open breaker routes matching
    /// regions to the interpreter before allowing a half-open trial.
    pub cooldown_regions: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            cooldown_regions: 4,
        }
    }
}

/// What the breaker tells the JIT to do with a region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// Closed (or unknown shape): optimize normally.
    Try,
    /// Open and cooling down: go straight to the interpreter.
    Interpret,
    /// Cool-down elapsed: run one optimization trial; its result decides
    /// whether the breaker closes or re-opens.
    HalfOpenTrial,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BreakerState {
    Closed,
    Open { until_tick: u64 },
    HalfOpen,
}

#[derive(Debug, Clone)]
struct ShapeRecord {
    state: BreakerState,
    consecutive_failures: u32,
}

/// A keyed circuit breaker: open/half-open/closed with a logical-tick
/// cool-down, generic over the key it quarantines.
///
/// The JIT instantiates it over region fingerprints (`u64`) to
/// quarantine region *shapes* whose optimized runs keep failing over;
/// the serve daemon instantiates it over tenant names (`String`) to
/// quarantine *tenants* whose runs keep failing. Both share one state
/// machine:
///
/// Keys start closed. Each failure of a key increments its
/// consecutive-failure count; reaching [`BreakerConfig::failure_threshold`]
/// opens the breaker for [`BreakerConfig::cooldown_regions`] logical
/// ticks, during which [`CircuitBreaker::route`] answers
/// [`Route::Interpret`]. After the cool-down the next matching key is
/// a [`Route::HalfOpenTrial`]: success closes the breaker (count reset),
/// failure re-opens it for a fresh cool-down.
#[derive(Debug, Clone)]
pub struct CircuitBreaker<K = u64> {
    /// Tunables.
    pub config: BreakerConfig,
    shapes: HashMap<K, ShapeRecord>,
    ticks: u64,
}

impl<K> Default for CircuitBreaker<K> {
    fn default() -> Self {
        CircuitBreaker {
            config: BreakerConfig::default(),
            shapes: HashMap::new(),
            ticks: 0,
        }
    }
}

impl<K: Eq + Hash + Clone> CircuitBreaker<K> {
    /// A breaker with custom tunables.
    pub fn new(config: BreakerConfig) -> Self {
        CircuitBreaker {
            config,
            ..CircuitBreaker::default()
        }
    }

    /// Advances the logical clock by one optimizable region and returns
    /// the new tick. Call exactly once per region the JIT considers.
    pub fn tick(&mut self) -> u64 {
        self.ticks += 1;
        self.ticks
    }

    /// The current logical tick.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Routing decision for `key` at the current tick. Transitions
    /// Open → HalfOpen when the cool-down has elapsed.
    pub fn route(&mut self, key: &K) -> Route {
        let ticks = self.ticks;
        let Some(rec) = self.shapes.get_mut(key) else {
            return Route::Try;
        };
        match rec.state {
            BreakerState::Closed => Route::Try,
            // `until_tick` is inclusive: a failure at tick T with
            // cool-down C routes ticks T+1 ..= T+C, trial at T+C+1.
            BreakerState::Open { until_tick } if ticks <= until_tick => Route::Interpret,
            BreakerState::Open { .. } | BreakerState::HalfOpen => {
                rec.state = BreakerState::HalfOpen;
                Route::HalfOpenTrial
            }
        }
    }

    /// Records a failure of `key`. Returns `true` when this failure
    /// newly opened (or re-opened) the breaker.
    pub fn record_failure(&mut self, key: &K) -> bool {
        let ticks = self.ticks;
        let threshold = self.config.failure_threshold.max(1);
        let cooldown = self.config.cooldown_regions;
        let rec = self.shapes.entry(key.clone()).or_insert(ShapeRecord {
            state: BreakerState::Closed,
            consecutive_failures: 0,
        });
        rec.consecutive_failures += 1;
        let should_open = match rec.state {
            // A failed half-open trial re-opens immediately.
            BreakerState::HalfOpen => true,
            BreakerState::Closed => rec.consecutive_failures >= threshold,
            BreakerState::Open { .. } => false,
        };
        if should_open {
            rec.state = BreakerState::Open {
                until_tick: ticks + cooldown,
            };
        }
        should_open
    }

    /// Records a clean run of `key`. Returns `true` when this closed a
    /// half-open breaker.
    pub fn record_success(&mut self, key: &K) -> bool {
        let Some(rec) = self.shapes.get_mut(key) else {
            return false;
        };
        let was_half_open = rec.state == BreakerState::HalfOpen;
        rec.state = BreakerState::Closed;
        rec.consecutive_failures = 0;
        was_half_open
    }

    /// Consecutive failures currently on the books for `key`.
    pub fn failures(&self, key: &K) -> u32 {
        self.shapes.get(key).map_or(0, |r| r.consecutive_failures)
    }

    /// Whether `key`'s breaker is currently open or half-open (i.e. the
    /// key is quarantined pending a successful probe).
    pub fn is_open(&self, key: &K) -> bool {
        self.shapes
            .get(key)
            .is_some_and(|r| r.state != BreakerState::Closed)
    }
}

/// The width rungs a degrading region steps through, starting *below*
/// `width`: halve until 1. `degradation_ladder(8)` is `[4, 2, 1]`;
/// anything ≤ 1 has nowhere to go (`[]`).
pub fn degradation_ladder(width: usize) -> Vec<usize> {
    let mut rungs = Vec::new();
    let mut w = width;
    while w > 1 {
        w /= 2;
        rungs.push(w.max(1));
    }
    rungs
}

/// A coarse resource-pressure reading off the machine models, in
/// `[0, 1]`: the larger of the modeled disk's busy fraction and the
/// modeled CPU's per-core utilization. Returns 0 when no model is
/// attached (pressure then never influences supervision, keeping
/// model-free runs deterministic).
///
/// The supervisor consults this when a *transient* fault exhausts its
/// retry budget: under high pressure the fault is treated like resource
/// starvation (shrink width) rather than escalated straight to failover —
/// a wedged device or saturated CPU makes "try the same thing again,
/// harder" the wrong move.
pub fn resource_pressure(
    disk: Option<&Arc<DiskModel>>,
    cpu: Option<&Arc<CpuModel>>,
    wall_seconds: f64,
) -> f64 {
    if wall_seconds <= 0.0 {
        return 0.0;
    }
    let disk_busy = disk.map_or(0.0, |d| {
        d.stats().busy_ns as f64 / 1e9 / wall_seconds
    });
    let cpu_busy = cpu.map_or(0.0, |c| {
        c.busy_seconds() / (c.cores().max(1) as f64) / wall_seconds
    });
    disk_busy.max(cpu_busy).clamp(0.0, 1.0)
}

/// Aggregate pressure on a multi-run host, in `[0, 1]` — the signal the
/// cross-run planner feeds to
/// [`jash_cost::PlannerOptions::under_pressure`] so concurrent runs stop
/// widening into each other.
///
/// Admission state contributes the *demand* half: worker occupancy and
/// queue backlog, weighted equally. Full workers alone read as 0.5 —
/// that is normal operation for a busy pool; it is full workers *plus* a
/// backlog that pushes toward 1. The shared machine models contribute
/// the *supply* half via `resources` (a [`resource_pressure`] reading
/// over the shared disk/CPU token buckets); the louder of the two wins,
/// so either a saturated queue or a saturated disk is enough to make
/// every run's planner decline widening.
pub fn cross_run_pressure(
    active: usize,
    workers: usize,
    queued: usize,
    queue_cap: usize,
    resources: f64,
) -> f64 {
    let occupancy = if workers == 0 {
        1.0
    } else {
        active as f64 / workers as f64
    };
    let backlog = if queue_cap == 0 {
        0.0
    } else {
        queued as f64 / queue_cap as f64
    };
    let demand = 0.5 * occupancy.clamp(0.0, 1.0) + 0.5 * backlog.clamp(0.0, 1.0);
    demand.max(resources).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_halves_to_one() {
        assert_eq!(degradation_ladder(8), vec![4, 2, 1]);
        assert_eq!(degradation_ladder(4), vec![2, 1]);
        assert_eq!(degradation_ladder(3), vec![1]);
        assert_eq!(degradation_ladder(2), vec![1]);
        assert!(degradation_ladder(1).is_empty());
        assert!(degradation_ladder(0).is_empty());
    }

    #[test]
    fn breaker_full_cycle() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 2,
            cooldown_regions: 3,
        });
        let fp = 0xabcd;
        // Two consecutive failures open it.
        b.tick();
        assert_eq!(b.route(&fp), Route::Try);
        assert!(!b.record_failure(&fp));
        b.tick();
        assert_eq!(b.route(&fp), Route::Try);
        assert!(b.record_failure(&fp), "threshold reached must open");
        // Cooling down: routed to the interpreter for 3 ticks.
        for _ in 0..3 {
            b.tick();
            assert_eq!(b.route(&fp), Route::Interpret);
        }
        // Cool-down over: half-open trial.
        b.tick();
        assert_eq!(b.route(&fp), Route::HalfOpenTrial);
        // Trial succeeds → closed, counters reset.
        assert!(b.record_success(&fp));
        b.tick();
        assert_eq!(b.route(&fp), Route::Try);
        assert_eq!(b.failures(&fp), 0);
    }

    #[test]
    fn failed_half_open_trial_reopens() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 1,
            cooldown_regions: 2,
        });
        let fp = 7;
        b.tick();
        assert!(b.record_failure(&fp));
        b.tick();
        b.tick();
        assert_eq!(b.route(&fp), Route::Interpret);
        b.tick();
        assert_eq!(b.route(&fp), Route::HalfOpenTrial);
        assert!(b.record_failure(&fp), "failed trial re-opens");
        b.tick();
        assert_eq!(b.route(&fp), Route::Interpret);
    }

    #[test]
    fn shapes_are_independent() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 1,
            cooldown_regions: 10,
        });
        b.tick();
        assert!(b.record_failure(&1));
        b.tick();
        assert_eq!(b.route(&1), Route::Interpret);
        assert_eq!(b.route(&2), Route::Try, "other shapes unaffected");
    }

    #[test]
    fn pressure_reads_zero_without_models() {
        assert_eq!(resource_pressure(None, None, 1.0), 0.0);
        assert_eq!(resource_pressure(None, None, 0.0), 0.0);
    }

    #[test]
    fn cross_run_pressure_combines_demand_and_supply() {
        // Idle host: no pressure.
        assert_eq!(cross_run_pressure(0, 4, 0, 8, 0.0), 0.0);
        // Full workers but empty queue: busy, not overloaded.
        let busy = cross_run_pressure(4, 4, 0, 8, 0.0);
        assert!((busy - 0.5).abs() < 1e-9, "busy {busy}");
        // Backlog pushes toward saturation.
        let backed_up = cross_run_pressure(4, 4, 8, 8, 0.0);
        assert!((backed_up - 1.0).abs() < 1e-9, "backed_up {backed_up}");
        // A saturated shared disk alone is enough.
        assert_eq!(cross_run_pressure(1, 8, 0, 8, 0.97), 0.97);
        // Degenerate configs clamp instead of dividing by zero.
        assert!(cross_run_pressure(3, 0, 0, 0, 0.0) >= 0.5);
        assert!(cross_run_pressure(9, 4, 9, 8, 2.0) <= 1.0);
    }

    #[test]
    fn pressure_reflects_cpu_model() {
        let cpu = CpuModel::new(2, 0.0); // time_scale 0: charges don't sleep
        cpu.charge(3.0);
        let p = resource_pressure(None, Some(&cpu), 2.0);
        // 3 busy seconds over 2 cores over 2 wall seconds = 0.75.
        assert!((p - 0.75).abs() < 0.05, "pressure {p}");
    }
}
