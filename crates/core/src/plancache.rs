//! The per-fingerprint plan cache: iteration 2..N of a loop reuses the
//! plan iteration 1 chose.
//!
//! The paper's JIT regime re-plans every pipeline at its expansion
//! boundary with live information. Inside a loop that discipline is
//! mostly redundant work: `for f in *.txt; do cat $f | tr … ; done`
//! produces the same dataflow *shape* every iteration, over inputs of
//! comparable size, under the same planner options — so the planner
//! would sweep the same candidates to the same decision N times. This
//! cache short-circuits that: the key is the width-insensitive,
//! path-insensitive [`jash_dataflow::Dfg::plan_fingerprint`], and a hit
//! returns the remembered [`PlanShape`] and projection without invoking
//! the planner at all.
//!
//! Invalidation is deliberate and coarse:
//!
//! - **Input size** enters the key as a log2 bucket. An assignment that
//!   redirects a region at a radically different input (KB → MB)
//!   invalidates reuse; per-iteration jitter within the same power of
//!   two does not.
//! - **Planner options** enter as a signature over every tunable
//!   (budget, margin, fusion/buffering switches, forced width). A cached
//!   fused plan can never leak into a `--no-fuse` run, and a serve host
//!   that tightens options under pressure misses the relaxed entries.
//! - **Failures never evict.** A fault in iteration k degrades that
//!   iteration through the supervision ladder; iteration k+1 re-attempts
//!   the cached plan — transient trouble must not permanently de-optimize
//!   a loop.

use jash_cost::{PlanShape, PlannerOptions};
use std::collections::HashMap;

/// One remembered planning decision.
#[derive(Debug, Clone, Copy)]
struct PlanEntry {
    shape: PlanShape,
    projected: f64,
    bytes_bucket: u32,
    opts_sig: u64,
}

/// A session-lifetime cache of planner decisions keyed by plan
/// fingerprint (see module docs for the invalidation rules).
#[derive(Debug, Default)]
pub struct PlanCache {
    entries: HashMap<u64, PlanEntry>,
    /// Lookups satisfied from the cache.
    pub hits: u64,
    /// Lookups that had to invoke the planner.
    pub misses: u64,
    /// Entries dropped because the input-size bucket moved.
    pub invalidations: u64,
    disabled: bool,
}

impl PlanCache {
    /// A fresh, enabled cache.
    pub fn new() -> Self {
        PlanCache::default()
    }

    /// Whether lookups can hit (`--no-plan-cache` turns this off; the
    /// bench harness uses it to measure re-planning every iteration).
    pub fn enabled(&self) -> bool {
        !self.disabled
    }

    /// Enables or disables the cache. Disabling keeps the counters but
    /// makes every lookup miss and every insert a no-op.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.disabled = !enabled;
    }

    /// Looks up the plan for `fp` under the given input-size bucket and
    /// options signature. Counts a hit or a miss either way; a bucket
    /// mismatch drops the stale entry (and counts an invalidation), an
    /// options mismatch leaves it in place for the options that made it.
    pub fn lookup(&mut self, fp: u64, bytes_bucket: u32, opts_sig: u64) -> Option<(PlanShape, f64)> {
        if self.disabled {
            return None;
        }
        match self.entries.get(&fp) {
            Some(e) if e.opts_sig == opts_sig && e.bytes_bucket == bytes_bucket => {
                self.hits += 1;
                Some((e.shape, e.projected))
            }
            Some(e) if e.opts_sig == opts_sig => {
                // Same shape, same options, different input scale: the
                // old decision is for a different regime. Re-plan.
                self.invalidations += 1;
                self.entries.remove(&fp);
                self.misses += 1;
                None
            }
            _ => {
                self.misses += 1;
                None
            }
        }
    }

    /// Remembers a planning decision.
    pub fn insert(
        &mut self,
        fp: u64,
        bytes_bucket: u32,
        opts_sig: u64,
        shape: PlanShape,
        projected: f64,
    ) {
        if self.disabled {
            return;
        }
        self.entries.insert(
            fp,
            PlanEntry {
                shape,
                projected,
                bytes_bucket,
                opts_sig,
            },
        );
    }

    /// Number of cached decisions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no decisions.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The log2 size bucket an input byte count falls into. Bucket 0 is the
/// empty input; each further bucket covers one power of two.
pub fn byte_bucket(bytes: u64) -> u32 {
    64 - bytes.leading_zeros()
}

/// An FNV-1a signature over every planner tunable, so cached decisions
/// are scoped to the exact options that produced them.
pub fn options_signature(opts: &PlannerOptions) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut write = |bytes: &[u8]| {
        for &b in bytes {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
    };
    write(&(opts.budget as u64).to_le_bytes());
    write(&opts.min_speedup.to_bits().to_le_bytes());
    write(&[
        u8::from(opts.allow_buffered),
        u8::from(opts.allow_fusion),
        u8::from(opts.force_fusion),
    ]);
    match opts.force_width {
        Some(w) => write(&(w as u64).to_le_bytes()),
        None => write(&[0xff]),
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape(width: usize) -> PlanShape {
        PlanShape {
            width,
            buffered: false,
            fused: false,
        }
    }

    #[test]
    fn repeat_lookups_hit() {
        let mut c = PlanCache::new();
        let sig = options_signature(&PlannerOptions::default());
        assert!(c.lookup(7, 10, sig).is_none());
        c.insert(7, 10, sig, shape(4), 2.0);
        for _ in 0..3 {
            let (s, p) = c.lookup(7, 10, sig).expect("hit");
            assert_eq!(s.width, 4);
            assert!((p - 2.0).abs() < f64::EPSILON);
        }
        assert_eq!(c.hits, 3);
        assert_eq!(c.misses, 1);
    }

    #[test]
    fn bucket_change_invalidates() {
        let mut c = PlanCache::new();
        let sig = options_signature(&PlannerOptions::default());
        c.insert(7, 10, sig, shape(4), 2.0);
        assert!(c.lookup(7, 20, sig).is_none(), "bigger input re-plans");
        assert_eq!(c.invalidations, 1);
        assert!(c.is_empty(), "the stale entry is dropped");
    }

    #[test]
    fn options_change_misses_without_evicting() {
        let mut c = PlanCache::new();
        let base = PlannerOptions::default();
        let nofuse = PlannerOptions {
            allow_fusion: false,
            ..base
        };
        c.insert(7, 10, options_signature(&base), shape(4), 2.0);
        assert!(
            c.lookup(7, 10, options_signature(&nofuse)).is_none(),
            "--no-fuse must not reuse a fusion-era plan"
        );
        assert!(
            c.lookup(7, 10, options_signature(&base)).is_some(),
            "the original options still hit"
        );
        // Pressure-forced sequential mode is an options change too.
        let pressured = base.under_pressure(1.0);
        assert!(c.lookup(7, 10, options_signature(&pressured)).is_none());
    }

    #[test]
    fn disabled_cache_never_hits() {
        let mut c = PlanCache::new();
        let sig = options_signature(&PlannerOptions::default());
        c.set_enabled(false);
        c.insert(7, 10, sig, shape(4), 2.0);
        assert!(c.lookup(7, 10, sig).is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn byte_buckets_are_log2() {
        assert_eq!(byte_bucket(0), 0);
        assert_eq!(byte_bucket(1), 1);
        assert_eq!(byte_bucket(1024), 11);
        assert_eq!(byte_bucket(1500), 11);
        assert_ne!(byte_bucket(1024), byte_bucket(1024 * 1024));
    }
}
