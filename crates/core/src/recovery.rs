//! Crash recovery: journal scanning, the resume plan, the startup
//! janitor, and graceful-shutdown status codes.
//!
//! A [`crate::Jash`] session with a journal attached
//! ([`crate::Jash::attach_journal`]) records every optimized region it
//! runs. When a run is killed hard (`kill -9`, OOM, power loss), the next
//! launch replays the journal, finds the interrupted epoch, sweeps the
//! staging debris the crash stranded, and — when resuming — builds a
//! [`ResumePlan`]: each region the dead run completed cleanly is
//! satisfied from the durable memo instead of re-executing, and live
//! execution restarts at the first incomplete region.
//!
//! Regions are keyed by the width-insensitive [`jash_dataflow::Dfg::fingerprint`].
//! A script may run the same shape several times, so the plan keeps an
//! *ordered* queue of completions per fingerprint and consumes them in
//! encounter order — the Nth occurrence in the resumed run lines up with
//! the Nth occurrence the dead run journaled, which is sound because the
//! statement loop replays statements in the same order.

use jash_dataflow::Region;
use jash_io::journal::{JournalRecord, Replay};
use jash_io::{Fs, FsHandle};
use std::collections::HashMap;
use std::collections::VecDeque;
use std::io;

/// Reason prefix a graceful shutdown writes into the shared
/// [`jash_io::CancelToken`]; the session recognizes it and aborts rather
/// than failing over to the interpreter.
pub const SHUTDOWN_PREFIX: &str = "shutdown:";

/// The cancellation reason for signal number `sig`.
pub fn shutdown_reason(sig: i32) -> String {
    let name = match sig {
        2 => "SIGINT",
        15 => "SIGTERM",
        _ => "signal",
    };
    format!("{SHUTDOWN_PREFIX} {name} ({sig}) received")
}

/// Parses a cancellation reason back into a shell exit code (128 + signal
/// number, the convention every POSIX shell follows). `None` when the
/// reason is not a graceful shutdown (e.g. a watchdog cancel).
pub fn shutdown_code(reason: &str) -> Option<i32> {
    let rest = reason.strip_prefix(SHUTDOWN_PREFIX)?;
    let sig: i32 = rest
        .split(['(', ')'])
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2);
    Some(128 + sig)
}

/// Parses a cancellation reason into the exit code of a *graceful abort*
/// of either flavor: signal shutdown (`shutdown:` → 128 + signum) or a
/// wall-clock deadline (`deadline:` → 124, the `timeout(1)` convention).
/// Both ride the same session path — stop between statements, journal
/// `RegionAborted` mid-region, leave the run resumable — so everything
/// that asks "should this cancellation abort rather than fail over?"
/// asks here. `None` for fault cancellations (e.g. the stall watchdog),
/// which *should* fail over.
pub fn cancel_exit_code(reason: &str) -> Option<i32> {
    shutdown_code(reason).or_else(|| jash_io::cancel::deadline_code(reason))
}

/// What one journaled-clean region finished with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DoneRegion {
    /// Exit status the region delivered.
    pub status: i32,
}

/// Clean completions of an interrupted run, consumable in encounter
/// order.
#[derive(Debug, Default)]
pub struct ResumePlan {
    done: HashMap<u64, VecDeque<DoneRegion>>,
    total: usize,
}

impl ResumePlan {
    /// Builds the plan from an interrupted run's records. Only regions
    /// journaled `RegionDone` with a clean, zero-status outcome are
    /// resumable — those are exactly the ones the memo stored.
    pub fn from_records(records: &[JournalRecord]) -> ResumePlan {
        let mut plan = ResumePlan::default();
        for r in records {
            if let JournalRecord::RegionDone {
                fingerprint,
                status,
                clean: true,
            } = r
            {
                if *status == 0 {
                    plan.done
                        .entry(*fingerprint)
                        .or_default()
                        .push_back(DoneRegion { status: *status });
                    plan.total += 1;
                }
            }
        }
        plan
    }

    /// Consumes the next journaled completion of shape `fingerprint`, if
    /// the dead run got that far.
    pub fn take(&mut self, fingerprint: u64) -> Option<DoneRegion> {
        self.done.get_mut(&fingerprint)?.pop_front()
    }

    /// How many journaled completions remain unclaimed.
    pub fn remaining(&self) -> usize {
        self.done.values().map(|q| q.len()).sum()
    }

    /// How many completions the plan started with.
    pub fn total(&self) -> usize {
        self.total
    }
}

/// What [`crate::Jash::attach_journal`] found at startup.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Whether the previous run on this journal was interrupted (no
    /// `RunComplete`, possibly a torn tail).
    pub interrupted: bool,
    /// Whether the journal ended in a torn (half-written) record.
    pub torn_tail: bool,
    /// Clean region completions available for resume.
    pub resumable: usize,
    /// Orphaned staging files the janitor removed.
    pub swept: Vec<String>,
    /// Epoch number this session will journal under.
    pub epoch: u64,
}

/// Whether `name` is a transactional staging file
/// (`<target>.jash-stage-<digits>`).
fn is_stage_debris(name: &str) -> bool {
    const MARK: &str = ".jash-stage-";
    match name.rfind(MARK) {
        Some(i) => {
            let tail = &name[i + MARK.len()..];
            !tail.is_empty() && tail.bytes().all(|b| b.is_ascii_digit())
        }
        None => false,
    }
}

/// The startup janitor: walks the filesystem and removes orphaned
/// `.jash-stage-*` files a crashed run stranded. (A live run never leaves
/// any: commit renames them away and failure paths remove them — only a
/// hard kill mid-region can orphan one.) Returns the removed paths.
pub fn sweep_stage_debris(fs: &dyn Fs) -> Vec<String> {
    let mut swept = Vec::new();
    let mut stack = vec!["/".to_string()];
    // Breadth bound: a shell root can be huge; debris lives where sinks
    // write, never deeper than a few levels of output tree.
    let mut visited = 0usize;
    while let Some(dir) = stack.pop() {
        visited += 1;
        if visited > 4096 {
            break;
        }
        let Ok(names) = fs.list_dir(&dir) else { continue };
        for name in names {
            let path = if dir == "/" {
                format!("/{name}")
            } else {
                format!("{dir}/{name}")
            };
            let Ok(meta) = fs.metadata(&path) else { continue };
            if meta.is_dir {
                stack.push(path);
            } else if is_stage_debris(&name) && fs.remove(&path).is_ok() {
                swept.push(path);
            }
        }
    }
    swept.sort();
    swept
}

/// Scans `replay` and decides what recovery is needed: epoch to run
/// under, whether the last run was interrupted, and (when it was) the
/// resume plan.
pub fn scan_journal(replay: &Replay) -> (RecoveryReport, Option<ResumePlan>) {
    let mut report = RecoveryReport {
        torn_tail: replay.torn_tail,
        epoch: replay.last_epoch + 1,
        ..RecoveryReport::default()
    };
    let plan = match replay.interrupted_run() {
        Some(records) => {
            report.interrupted = true;
            let plan = ResumePlan::from_records(records);
            report.resumable = plan.total();
            Some(plan)
        }
        None => {
            report.interrupted = replay.torn_tail;
            None
        }
    };
    (report, plan)
}

/// Concatenated contents of the region's input files: the declared stdin
/// redirect of the first stage, then `cat` operands. This is the byte
/// stream the memo's `input_hash` fingerprints — shared between the
/// incremental runner and resume verification so the two can never
/// disagree about what "the input" is.
pub fn read_region_input(fs: &FsHandle, region: &Region) -> io::Result<Vec<u8>> {
    let mut input = Vec::new();
    let Some(first) = region.commands.first() else {
        return Ok(input);
    };
    if let Some(p) = &first.stdin_redirect {
        input.extend(jash_io::fs::read_to_vec(fs.as_ref(), p)?);
    }
    if first.name == "cat" {
        for a in first.args.iter().filter(|a| !a.starts_with('-')) {
            input.extend(jash_io::fs::read_to_vec(fs.as_ref(), a)?);
        }
    }
    Ok(input)
}

/// The input paths a region reads, for the `RegionStart` journal record.
pub fn region_input_paths(region: &Region) -> Vec<String> {
    let mut paths = Vec::new();
    let Some(first) = region.commands.first() else {
        return paths;
    };
    if let Some(p) = &first.stdin_redirect {
        paths.push(p.clone());
    }
    if first.name == "cat" {
        for a in first.args.iter().filter(|a| !a.starts_with('-')) {
            paths.push(a.clone());
        }
    }
    paths
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shutdown_codes_follow_the_128_plus_sig_convention() {
        assert_eq!(shutdown_code(&shutdown_reason(2)), Some(130));
        assert_eq!(shutdown_code(&shutdown_reason(15)), Some(143));
        assert_eq!(shutdown_code("watchdog: region stalled"), None);
        assert_eq!(shutdown_code("injected: disk gone"), None);
    }

    #[test]
    fn cancel_exit_code_covers_both_graceful_flavors() {
        use std::time::Duration;
        assert_eq!(cancel_exit_code(&shutdown_reason(15)), Some(143));
        assert_eq!(
            cancel_exit_code(&jash_io::cancel::deadline_reason(Duration::from_secs(3))),
            Some(124)
        );
        assert_eq!(cancel_exit_code("watchdog: region stalled"), None);
        assert_eq!(cancel_exit_code("client disconnected"), None);
    }

    #[test]
    fn resume_plan_consumes_duplicate_shapes_in_order() {
        let records = vec![
            JournalRecord::RegionDone {
                fingerprint: 7,
                status: 0,
                clean: true,
            },
            JournalRecord::RegionDone {
                fingerprint: 7,
                status: 0,
                clean: true,
            },
            // Unclean and nonzero completions are not resumable.
            JournalRecord::RegionDone {
                fingerprint: 8,
                status: 0,
                clean: false,
            },
            JournalRecord::RegionDone {
                fingerprint: 9,
                status: 1,
                clean: true,
            },
        ];
        let mut plan = ResumePlan::from_records(&records);
        assert_eq!(plan.total(), 2);
        assert!(plan.take(7).is_some());
        assert!(plan.take(7).is_some());
        assert!(plan.take(7).is_none(), "third occurrence must re-execute");
        assert!(plan.take(8).is_none());
        assert!(plan.take(9).is_none());
        assert_eq!(plan.remaining(), 0);
    }

    #[test]
    fn janitor_sweeps_planted_debris_only() {
        let fs = jash_io::mem_fs();
        for (p, c) in [
            ("/out.jash-stage-3", "stranded"),
            ("/data/deep/out.txt.jash-stage-11", "stranded"),
            ("/data/out.txt", "keep"),
            ("/notes.jash-stage-x", "keep: non-numeric tail"),
            ("/.jash/journal", "keep"),
        ] {
            jash_io::fs::write_file(fs.as_ref(), p, c.as_bytes()).unwrap();
        }
        let swept = sweep_stage_debris(fs.as_ref());
        assert_eq!(
            swept,
            vec![
                "/data/deep/out.txt.jash-stage-11".to_string(),
                "/out.jash-stage-3".to_string()
            ]
        );
        assert!(!fs.exists("/out.jash-stage-3"));
        assert!(fs.exists("/data/out.txt"));
        assert!(fs.exists("/notes.jash-stage-x"));
        assert!(fs.exists("/.jash/journal"));
    }

    #[test]
    fn scan_flags_interruption_and_next_epoch() {
        let mut replay = Replay {
            records: vec![
                JournalRecord::RunStart { epoch: 1 },
                JournalRecord::RunComplete,
                JournalRecord::RunStart { epoch: 2 },
                JournalRecord::RegionDone {
                    fingerprint: 1,
                    status: 0,
                    clean: true,
                },
            ],
            torn_tail: false,
            last_epoch: 2,
        };
        let (report, plan) = scan_journal(&replay);
        assert!(report.interrupted);
        assert_eq!(report.resumable, 1);
        assert_eq!(report.epoch, 3);
        assert!(plan.is_some());

        replay.records.push(JournalRecord::RunComplete);
        let (report, plan) = scan_journal(&replay);
        assert!(!report.interrupted);
        assert!(plan.is_none());
    }
}
