//! Crash recovery: journal scanning, the resume plan, the startup
//! janitor, and graceful-shutdown status codes.
//!
//! A [`crate::Jash`] session with a journal attached
//! ([`crate::Jash::attach_journal`]) records every optimized region it
//! runs. When a run is killed hard (`kill -9`, OOM, power loss), the next
//! launch replays the journal, finds the interrupted epoch, sweeps the
//! staging debris the crash stranded, and — when resuming — builds a
//! [`ResumePlan`]: each region the dead run completed cleanly is
//! satisfied from the durable memo instead of re-executing, and live
//! execution restarts at the first incomplete region.
//!
//! Regions are keyed by the width-insensitive [`jash_dataflow::Dfg::fingerprint`].
//! A script may run the same shape several times, so the plan keeps an
//! *ordered* queue of completions per fingerprint and consumes them in
//! encounter order — the Nth occurrence in the resumed run lines up with
//! the Nth occurrence the dead run journaled, which is sound because the
//! statement loop replays statements in the same order.

use jash_dataflow::Region;
use jash_io::journal::{JournalRecord, Replay};
use jash_io::{Fs, FsHandle};
use std::collections::HashMap;
use std::collections::VecDeque;
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Reason prefix a graceful shutdown writes into the shared
/// [`jash_io::CancelToken`]; the session recognizes it and aborts rather
/// than failing over to the interpreter.
pub const SHUTDOWN_PREFIX: &str = "shutdown:";

/// The cancellation reason for signal number `sig`.
pub fn shutdown_reason(sig: i32) -> String {
    let name = match sig {
        2 => "SIGINT",
        15 => "SIGTERM",
        _ => "signal",
    };
    format!("{SHUTDOWN_PREFIX} {name} ({sig}) received")
}

/// Parses a cancellation reason back into a shell exit code (128 + signal
/// number, the convention every POSIX shell follows). `None` when the
/// reason is not a graceful shutdown (e.g. a watchdog cancel).
pub fn shutdown_code(reason: &str) -> Option<i32> {
    let rest = reason.strip_prefix(SHUTDOWN_PREFIX)?;
    let sig: i32 = rest
        .split(['(', ')'])
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2);
    Some(128 + sig)
}

/// Parses a cancellation reason into the exit code of a *graceful abort*
/// of either flavor: signal shutdown (`shutdown:` → 128 + signum) or a
/// wall-clock deadline (`deadline:` → 124, the `timeout(1)` convention).
/// Both ride the same session path — stop between statements, journal
/// `RegionAborted` mid-region, leave the run resumable — so everything
/// that asks "should this cancellation abort rather than fail over?"
/// asks here. `None` for fault cancellations (e.g. the stall watchdog),
/// which *should* fail over.
pub fn cancel_exit_code(reason: &str) -> Option<i32> {
    shutdown_code(reason).or_else(|| jash_io::cancel::deadline_code(reason))
}

/// What one journaled-clean region finished with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DoneRegion {
    /// Exit status the region delivered.
    pub status: i32,
}

/// Clean completions of an interrupted run, consumable in encounter
/// order.
#[derive(Debug, Default)]
pub struct ResumePlan {
    done: HashMap<u64, VecDeque<DoneRegion>>,
    total: usize,
}

impl ResumePlan {
    /// Builds the plan from an interrupted run's records. Only regions
    /// journaled `RegionDone` with a clean, zero-status outcome are
    /// resumable — those are exactly the ones the memo stored.
    pub fn from_records(records: &[JournalRecord]) -> ResumePlan {
        let mut plan = ResumePlan::default();
        for r in records {
            if let JournalRecord::RegionDone {
                fingerprint,
                status,
                clean: true,
            } = r
            {
                if *status == 0 {
                    plan.done
                        .entry(*fingerprint)
                        .or_default()
                        .push_back(DoneRegion { status: *status });
                    plan.total += 1;
                }
            }
        }
        plan
    }

    /// Consumes the next journaled completion of shape `fingerprint`, if
    /// the dead run got that far.
    pub fn take(&mut self, fingerprint: u64) -> Option<DoneRegion> {
        self.done.get_mut(&fingerprint)?.pop_front()
    }

    /// How many journaled completions remain unclaimed.
    pub fn remaining(&self) -> usize {
        self.done.values().map(|q| q.len()).sum()
    }

    /// How many completions the plan started with.
    pub fn total(&self) -> usize {
        self.total
    }
}

/// What [`crate::Jash::attach_journal`] found at startup.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Whether the previous run on this journal was interrupted (no
    /// `RunComplete`, possibly a torn tail).
    pub interrupted: bool,
    /// Whether the journal ended in a torn (half-written) record.
    pub torn_tail: bool,
    /// Clean region completions available for resume.
    pub resumable: usize,
    /// Orphaned staging files the janitor removed.
    pub swept: Vec<String>,
    /// Epoch number this session will journal under.
    pub epoch: u64,
}

/// Whether `name` is a transactional staging file
/// (`<target>.jash-stage-<digits>`).
fn is_stage_debris(name: &str) -> bool {
    const MARK: &str = ".jash-stage-";
    match name.rfind(MARK) {
        Some(i) => {
            let tail = &name[i + MARK.len()..];
            !tail.is_empty() && tail.bytes().all(|b| b.is_ascii_digit())
        }
        None => false,
    }
}

/// The startup janitor: walks the filesystem and removes orphaned
/// `.jash-stage-*` files a crashed run stranded. (A live run never leaves
/// any: commit renames them away and failure paths remove them — only a
/// hard kill mid-region can orphan one.) Returns the removed paths.
pub fn sweep_stage_debris(fs: &dyn Fs) -> Vec<String> {
    let mut swept = Vec::new();
    let mut stack = vec!["/".to_string()];
    // Breadth bound: a shell root can be huge; debris lives where sinks
    // write, never deeper than a few levels of output tree.
    let mut visited = 0usize;
    while let Some(dir) = stack.pop() {
        visited += 1;
        if visited > 4096 {
            break;
        }
        let Ok(names) = fs.list_dir(&dir) else { continue };
        for name in names {
            let path = if dir == "/" {
                format!("/{name}")
            } else {
                format!("{dir}/{name}")
            };
            let Ok(meta) = fs.metadata(&path) else { continue };
            if meta.is_dir {
                stack.push(path);
            } else if is_stage_debris(&name) && fs.remove(&path).is_ok() {
                swept.push(path);
            }
        }
    }
    swept.sort();
    swept
}

/// Scans `replay` and decides what recovery is needed: epoch to run
/// under, whether the last run was interrupted, and (when it was) the
/// resume plan.
pub fn scan_journal(replay: &Replay) -> (RecoveryReport, Option<ResumePlan>) {
    let mut report = RecoveryReport {
        torn_tail: replay.torn_tail,
        epoch: replay.last_epoch + 1,
        ..RecoveryReport::default()
    };
    let plan = match replay.interrupted_run() {
        Some(records) => {
            report.interrupted = true;
            let plan = ResumePlan::from_records(records);
            report.resumable = plan.total();
            Some(plan)
        }
        None => {
            report.interrupted = replay.torn_tail;
            None
        }
    };
    (report, plan)
}

/// Concatenated contents of the region's input files: the declared stdin
/// redirect of the first stage, then `cat` operands. This is the byte
/// stream the memo's `input_hash` fingerprints — shared between the
/// incremental runner and resume verification so the two can never
/// disagree about what "the input" is.
pub fn read_region_input(fs: &FsHandle, region: &Region) -> io::Result<Vec<u8>> {
    let mut input = Vec::new();
    let Some(first) = region.commands.first() else {
        return Ok(input);
    };
    if let Some(p) = &first.stdin_redirect {
        input.extend(jash_io::fs::read_to_vec(fs.as_ref(), p)?);
    }
    if first.name == "cat" {
        for a in first.args.iter().filter(|a| !a.starts_with('-')) {
            input.extend(jash_io::fs::read_to_vec(fs.as_ref(), a)?);
        }
    }
    Ok(input)
}

/// Best-effort recursive removal of `dir` and everything under it.
/// Errors are swallowed: a scope that cannot be fully removed is left
/// for the next janitor pass rather than failing recovery.
pub fn remove_tree(fs: &dyn Fs, dir: &str) {
    if let Ok(names) = fs.list_dir(dir) {
        for name in names {
            let path = if dir.ends_with('/') {
                format!("{dir}{name}")
            } else {
                format!("{dir}/{name}")
            };
            match fs.metadata(&path) {
                Ok(m) if m.is_dir => remove_tree(fs, &path),
                _ => {
                    let _ = fs.remove(&path);
                }
            }
        }
    }
    let _ = fs.remove_dir(dir);
}

/// The `run-<id>` journal scopes under a serve root, in run-id order.
pub fn list_run_scopes(fs: &dyn Fs, root: &str) -> Vec<(u64, String)> {
    let mut scopes = Vec::new();
    let Ok(names) = fs.list_dir(root) else {
        return scopes;
    };
    for name in names {
        let Some(id) = name
            .strip_prefix("run-")
            .and_then(|s| s.parse::<u64>().ok())
        else {
            continue;
        };
        let path = format!("{root}/{name}");
        if fs.metadata(&path).map(|m| m.is_dir).unwrap_or(false) {
            scopes.push((id, path));
        }
    }
    scopes.sort();
    scopes
}

/// What the serve startup janitor did with a dead daemon's estate.
#[derive(Debug, Clone, Default)]
pub struct ServeRecovery {
    /// Ledgered-accepted runs with no terminal record.
    pub orphans: usize,
    /// Keyed orphans re-run (resuming journaled-clean regions) to a
    /// terminal result the returning client can collect.
    pub finalized: usize,
    /// Unkeyed orphans marked aborted — their clients saw the daemon
    /// die and, keyless, cannot safely resubmit, so nobody will return
    /// for the result.
    pub aborted: usize,
    /// Journaled-clean regions satisfied from the durable memo instead
    /// of re-executing during finalization.
    pub regions_resumed: u64,
    /// Keyed terminal results reloaded into the replay cache.
    pub cached: usize,
    /// Stale `run-<id>` scope directories removed.
    pub scopes_removed: usize,
    /// Orphaned `.jash-stage-*` files swept.
    pub swept: usize,
    /// Whether the ledger ended in a torn record (dropped).
    pub torn_tail: bool,
}

impl ServeRecovery {
    /// Whether the janitor found anything at all to do.
    pub fn acted(&self) -> bool {
        self.orphans > 0 || self.cached > 0 || self.scopes_removed > 0 || self.swept > 0
    }
}

/// One terminal result a restarted daemon can replay to a duplicate
/// keyed submission: either reloaded from ledgered blobs or produced by
/// finalizing an orphan.
#[derive(Debug, Clone)]
pub struct RecoveredRun {
    /// Run id from the previous daemon's numbering.
    pub run_id: u64,
    /// Idempotency key (never empty — unkeyed runs are not replayable).
    pub key: String,
    /// Terminal exit status.
    pub status: i32,
    /// Abort reason, when the run was cancelled.
    pub aborted: Option<String>,
    /// Terminal stdout bytes.
    pub stdout: Vec<u8>,
    /// Terminal stderr bytes.
    pub stderr: Vec<u8>,
}

/// Re-runs an orphaned submission's script in its journal scope with
/// `resume` on: regions the dead run journaled clean are satisfied from
/// the durable memo, execution restarts at the first incomplete region.
/// Returns `(status, stdout, stderr, regions_resumed)`.
fn finalize_orphan(
    fs: &FsHandle,
    scope: &str,
    script: &str,
    engine: crate::Engine,
    machine: jash_cost::MachineProfile,
    eager: bool,
    durable: bool,
) -> (i32, Vec<u8>, Vec<u8>, u64) {
    let mut shell = crate::Jash::new(engine, machine);
    shell.durable = durable;
    if eager {
        shell.planner.min_speedup = 0.0;
        shell.planner.force_width = Some(4);
    }
    if engine == crate::Engine::JashJit {
        let _ = shell.attach_journal(fs, scope, true);
    }
    let mut state = jash_expand::ShellState::new(Arc::clone(fs));
    state.shell_name = format!("jash-serve:recovery:{scope}");
    let outcome = catch_unwind(AssertUnwindSafe(|| shell.run_script(&mut state, script)));
    let resumed = shell.runtime.regions_resumed;
    match outcome {
        Ok(Ok(r)) => (r.status, r.stdout, r.stderr, resumed),
        Ok(Err(e)) => (2, Vec::new(), format!("jash: {e}\n").into_bytes(), resumed),
        Err(_) => (
            125,
            Vec::new(),
            b"jash: recovery run panicked\n".to_vec(),
            resumed,
        ),
    }
}

/// The serve startup janitor: replays the admission ledger at
/// `<root>/ledger`, finalizes or aborts every orphaned run, reloads
/// cached keyed results, removes stale `run-<id>` scopes, and sweeps
/// staging debris. Runs *before* the daemon binds its socket, so a
/// successful connect implies recovery is complete.
///
/// Keyed orphans are re-run to completion (their clients hold an
/// idempotency key and will resubmit to collect the result); regions the
/// dead daemon journaled clean are replayed from the durable memo, not
/// re-executed. Unkeyed orphans are marked aborted (status 143) — with
/// no key there is no safe way for their client to reclaim them.
/// Recovery deliberately ignores the original submission deadline: the
/// promise being kept is "accepted work reaches a terminal state", and a
/// late result beats a resource leak.
///
/// Returns the janitor's report, the replayable terminal results, and
/// the run-id watermark the new daemon must continue numbering from.
pub fn recover_serve_root(
    fs: &FsHandle,
    root: &str,
    engine: crate::Engine,
    machine: jash_cost::MachineProfile,
    eager: bool,
    durable: bool,
) -> io::Result<(ServeRecovery, Vec<RecoveredRun>, u64)> {
    let ledger_path = format!("{root}/ledger");
    let replay = jash_io::Ledger::replay(fs.as_ref(), &ledger_path)?;
    let mut report = ServeRecovery {
        torn_tail: replay.torn_tail,
        ..ServeRecovery::default()
    };
    let state = jash_io::ledger::fold(&replay.records);
    let ledger = jash_io::Ledger::open(Arc::clone(fs), &ledger_path, durable);
    let mut runs = Vec::new();

    // Terminal results from the previous life whose clients may still
    // resubmit their key.
    for fin in &state.finished {
        if fin.key.is_empty() {
            continue;
        }
        report.cached += 1;
        runs.push(RecoveredRun {
            run_id: fin.run_id,
            key: fin.key.clone(),
            status: fin.status,
            aborted: fin.aborted.clone(),
            stdout: jash_io::ledger::read_result_blob(fs.as_ref(), root, fin.run_id, "out"),
            stderr: jash_io::ledger::read_result_blob(fs.as_ref(), root, fin.run_id, "err"),
        });
    }

    report.orphans = state.orphans.len();
    for orphan in &state.orphans {
        let scope = format!("{root}/run-{}", orphan.run_id);
        if orphan.key.is_empty() {
            ledger.append(&jash_io::LedgerRecord::Done {
                run_id: orphan.run_id,
                status: 143,
                aborted: Some("recovery: daemon restarted; unkeyed run aborted".to_string()),
            })?;
            report.aborted += 1;
        } else {
            let (status, stdout, stderr, resumed) =
                finalize_orphan(fs, &scope, &orphan.script, engine, machine, eager, durable);
            report.regions_resumed += resumed;
            // Blobs before the Done record: a crash between the two
            // leaves the run an orphan again, never a Done whose result
            // bytes are missing.
            jash_io::ledger::write_result_blobs(
                fs.as_ref(),
                root,
                orphan.run_id,
                &stdout,
                &stderr,
                durable,
            )?;
            ledger.append(&jash_io::LedgerRecord::Done {
                run_id: orphan.run_id,
                status,
                aborted: None,
            })?;
            report.finalized += 1;
            runs.push(RecoveredRun {
                run_id: orphan.run_id,
                key: orphan.key.clone(),
                status,
                aborted: None,
                stdout,
                stderr,
            });
        }
    }

    // Every surviving scope is now stale: finalized runs are terminal,
    // aborted ones abandoned, and completed runs' scopes should have
    // been removed at completion. (Removal comes *after* finalization —
    // resume needs the scopes' journals and memos.)
    for (_, scope) in list_run_scopes(fs.as_ref(), root) {
        remove_tree(fs.as_ref(), &scope);
        report.scopes_removed += 1;
    }
    report.swept = sweep_stage_debris(fs.as_ref()).len();
    Ok((report, runs, state.next_run))
}

/// The input paths a region reads, for the `RegionStart` journal record.
pub fn region_input_paths(region: &Region) -> Vec<String> {
    let mut paths = Vec::new();
    let Some(first) = region.commands.first() else {
        return paths;
    };
    if let Some(p) = &first.stdin_redirect {
        paths.push(p.clone());
    }
    if first.name == "cat" {
        for a in first.args.iter().filter(|a| !a.starts_with('-')) {
            paths.push(a.clone());
        }
    }
    paths
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shutdown_codes_follow_the_128_plus_sig_convention() {
        assert_eq!(shutdown_code(&shutdown_reason(2)), Some(130));
        assert_eq!(shutdown_code(&shutdown_reason(15)), Some(143));
        assert_eq!(shutdown_code("watchdog: region stalled"), None);
        assert_eq!(shutdown_code("injected: disk gone"), None);
    }

    #[test]
    fn cancel_exit_code_covers_both_graceful_flavors() {
        use std::time::Duration;
        assert_eq!(cancel_exit_code(&shutdown_reason(15)), Some(143));
        assert_eq!(
            cancel_exit_code(&jash_io::cancel::deadline_reason(Duration::from_secs(3))),
            Some(124)
        );
        assert_eq!(cancel_exit_code("watchdog: region stalled"), None);
        assert_eq!(cancel_exit_code("client disconnected"), None);
    }

    #[test]
    fn resume_plan_consumes_duplicate_shapes_in_order() {
        let records = vec![
            JournalRecord::RegionDone {
                fingerprint: 7,
                status: 0,
                clean: true,
            },
            JournalRecord::RegionDone {
                fingerprint: 7,
                status: 0,
                clean: true,
            },
            // Unclean and nonzero completions are not resumable.
            JournalRecord::RegionDone {
                fingerprint: 8,
                status: 0,
                clean: false,
            },
            JournalRecord::RegionDone {
                fingerprint: 9,
                status: 1,
                clean: true,
            },
        ];
        let mut plan = ResumePlan::from_records(&records);
        assert_eq!(plan.total(), 2);
        assert!(plan.take(7).is_some());
        assert!(plan.take(7).is_some());
        assert!(plan.take(7).is_none(), "third occurrence must re-execute");
        assert!(plan.take(8).is_none());
        assert!(plan.take(9).is_none());
        assert_eq!(plan.remaining(), 0);
    }

    #[test]
    fn janitor_sweeps_planted_debris_only() {
        let fs = jash_io::mem_fs();
        for (p, c) in [
            ("/out.jash-stage-3", "stranded"),
            ("/data/deep/out.txt.jash-stage-11", "stranded"),
            ("/data/out.txt", "keep"),
            ("/notes.jash-stage-x", "keep: non-numeric tail"),
            ("/.jash/journal", "keep"),
        ] {
            jash_io::fs::write_file(fs.as_ref(), p, c.as_bytes()).unwrap();
        }
        let swept = sweep_stage_debris(fs.as_ref());
        assert_eq!(
            swept,
            vec![
                "/data/deep/out.txt.jash-stage-11".to_string(),
                "/out.jash-stage-3".to_string()
            ]
        );
        assert!(!fs.exists("/out.jash-stage-3"));
        assert!(fs.exists("/data/out.txt"));
        assert!(fs.exists("/notes.jash-stage-x"));
        assert!(fs.exists("/.jash/journal"));
    }

    #[test]
    fn scan_flags_interruption_and_next_epoch() {
        let mut replay = Replay {
            records: vec![
                JournalRecord::RunStart { epoch: 1 },
                JournalRecord::RunComplete,
                JournalRecord::RunStart { epoch: 2 },
                JournalRecord::RegionDone {
                    fingerprint: 1,
                    status: 0,
                    clean: true,
                },
            ],
            torn_tail: false,
            last_epoch: 2,
        };
        let (report, plan) = scan_journal(&replay);
        assert!(report.interrupted);
        assert_eq!(report.resumable, 1);
        assert_eq!(report.epoch, 3);
        assert!(plan.is_some());

        replay.records.push(JournalRecord::RunComplete);
        let (report, plan) = scan_journal(&replay);
        assert!(!report.interrupted);
        assert!(plan.is_none());
    }
}
