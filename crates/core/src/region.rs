//! Identifying and extracting optimizable regions from the AST.
//!
//! A *region* is a top-level pipeline whose stages are simple commands
//! with no shell-state effects — the "restricted-but-widely-used fragment
//! of the shell" (paper §1.3) that PaSh/POSH transform. The two entry
//! points differ in *when* words can be resolved:
//!
//! * [`static_region`] resolves only statically-known words — the
//!   ahead-of-time view PaSh has (no `$FILES`, no `$DICT`);
//! * [`jit_region`] runs Smoosh-style purity analysis and then expands
//!   pure words against *live* shell state — the paper's core move.

use jash_ast::{Pipeline, RedirectOp, Word};
use jash_dataflow::{ExpandedCommand, Region};
use jash_expand::{expand_word_fields, NoSubst, ShellState};

/// Why a pipeline is not an optimizable region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ineligible {
    /// A stage is a compound command or function definition.
    NotSimple,
    /// A stage carries assignments.
    HasAssignments,
    /// A word's expansion has side effects (command substitution,
    /// `${x:=y}`, …).
    ImpureWord(String),
    /// Words contain expansions, so an ahead-of-time system cannot see
    /// them (PaSh's blind spot).
    DynamicWords(String),
    /// An unsupported redirect shape.
    UnsupportedRedirect,
    /// A stage resolves to a shell function or builtin, which has no
    /// command specification.
    NotAUtility(String),
    /// Expansion failed outright.
    ExpansionFailed(String),
}

impl std::fmt::Display for Ineligible {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Ineligible::NotSimple => write!(f, "stage is not a simple command"),
            Ineligible::HasAssignments => write!(f, "stage has assignments"),
            Ineligible::ImpureWord(w) => write!(f, "word `{w}` has effects"),
            Ineligible::DynamicWords(w) => {
                write!(f, "word `{w}` needs runtime state (AOT cannot expand it)")
            }
            Ineligible::UnsupportedRedirect => write!(f, "unsupported redirect"),
            Ineligible::NotAUtility(n) => write!(f, "`{n}` is not an external utility"),
            Ineligible::ExpansionFailed(e) => write!(f, "expansion failed: {e}"),
        }
    }
}

/// Extracts a region the way an ahead-of-time compiler must: every word
/// has to be fully static.
pub fn static_region(state: &ShellState, pl: &Pipeline) -> Result<Region, Ineligible> {
    build_region(pl, |word, for_args| {
        match word.static_text() {
            Some(t) => {
                if for_args && word.has_glob() {
                    // A static glob still needs the filesystem; PaSh
                    // handles this case, so we allow it via live expansion
                    // against the (startup) state.
                    let mut s = state.clone();
                    expand_word_fields(&mut s, &mut NoSubst, word)
                        .map_err(|e| Ineligible::ExpansionFailed(e.to_string()))
                } else {
                    Ok(vec![t])
                }
            }
            None => Err(Ineligible::DynamicWords(jash_ast::unparse_word(word))),
        }
    })
    .and_then(|r| reject_non_utilities(state, r))
}

/// Extracts a region the JIT way: verify every word is *pure*, then
/// expand it against live state.
pub fn jit_region(state: &mut ShellState, pl: &Pipeline) -> Result<Region, Ineligible> {
    // Purity first: early expansion must not have effects (paper §3.2).
    for cmd in &pl.commands {
        let jash_ast::CommandKind::Simple(sc) = &cmd.kind else {
            return Err(Ineligible::NotSimple);
        };
        for w in sc
            .words
            .iter()
            .chain(cmd.redirects.iter().map(|r| &r.target))
        {
            let effects = jash_expand::word_effects(w);
            if !effects.is_pure() {
                return Err(Ineligible::ImpureWord(jash_ast::unparse_word(w)));
            }
        }
    }
    let region = build_region(pl, |word, _| {
        expand_word_fields(state, &mut NoSubst, word)
            .map_err(|e| Ineligible::ExpansionFailed(e.to_string()))
    })?;
    reject_non_utilities(state, region)
}

fn build_region(
    pl: &Pipeline,
    mut expand: impl FnMut(&Word, bool) -> Result<Vec<String>, Ineligible>,
) -> Result<Region, Ineligible> {
    let mut commands = Vec::new();
    for cmd in &pl.commands {
        let jash_ast::CommandKind::Simple(sc) = &cmd.kind else {
            return Err(Ineligible::NotSimple);
        };
        if !sc.assignments.is_empty() {
            return Err(Ineligible::HasAssignments);
        }
        let mut argv: Vec<String> = Vec::new();
        for w in &sc.words {
            argv.extend(expand(w, true)?);
        }
        if argv.is_empty() {
            return Err(Ineligible::NotSimple);
        }
        let mut stage = ExpandedCommand {
            name: argv.remove(0),
            args: argv,
            stdin_redirect: None,
            stdout_redirect: None,
        };
        for r in &cmd.redirects {
            let fd = r.effective_fd();
            let mut target = || -> Result<String, Ineligible> {
                let fields = expand(&r.target, false)?;
                match fields.as_slice() {
                    [one] => Ok(one.clone()),
                    _ => Err(Ineligible::UnsupportedRedirect),
                }
            };
            match (fd, r.op) {
                (0, RedirectOp::Read) => stage.stdin_redirect = Some(target()?),
                (1, RedirectOp::Write) | (1, RedirectOp::Clobber) => {
                    stage.stdout_redirect = Some((target()?, false));
                }
                (1, RedirectOp::Append) => stage.stdout_redirect = Some((target()?, true)),
                _ => return Err(Ineligible::UnsupportedRedirect),
            }
        }
        commands.push(stage);
    }
    Ok(Region { commands })
}

/// A region must consist purely of utilities: functions and builtins have
/// shell-visible effects no spec covers.
fn reject_non_utilities(state: &ShellState, region: Region) -> Result<Region, Ineligible> {
    for c in &region.commands {
        if state.get_function(&c.name).is_some() || jash_interp::builtins::is_builtin(&c.name) {
            return Err(Ineligible::NotAUtility(c.name.clone()));
        }
    }
    Ok(region)
}

/// Resolves redirect and argument paths against the shell's cwd so the
/// executor and `metadata` agree. Mutates the region in place.
pub fn resolve_paths(state: &ShellState, region: &mut Region) {
    for c in &mut region.commands {
        if let Some(p) = &c.stdin_redirect {
            c.stdin_redirect = Some(state.resolve_path(p));
        }
        if let Some((p, a)) = &c.stdout_redirect {
            c.stdout_redirect = Some((state.resolve_path(p), *a));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jash_ast::CommandKind;

    fn pipeline(src: &str) -> Pipeline {
        let prog = jash_parser::parse_unwrap(src);
        prog.items[0].and_or.first.clone()
    }

    fn state() -> ShellState {
        ShellState::new(jash_io::mem_fs())
    }

    #[test]
    fn static_pipeline_extracts() {
        let s = state();
        let r = static_region(&s, &pipeline("cat /a /b | sort -u")).unwrap();
        assert_eq!(r.commands.len(), 2);
        assert_eq!(r.commands[0].args, vec!["/a", "/b"]);
    }

    #[test]
    fn dynamic_words_block_static_extraction() {
        let s = state();
        let err = static_region(&s, &pipeline("cat $FILES | sort")).unwrap_err();
        assert!(matches!(err, Ineligible::DynamicWords(_)));
    }

    #[test]
    fn jit_extraction_expands_live_state() {
        let mut s = state();
        s.set_var("FILES", "/a.txt /b.txt");
        s.set_var("DICT", "/dict");
        let r = jit_region(
            &mut s,
            &pipeline("cat $FILES | tr A-Z a-z | sort -u | comm -13 $DICT -"),
        )
        .unwrap();
        assert_eq!(r.commands[0].args, vec!["/a.txt", "/b.txt"]);
        assert_eq!(r.commands[3].args, vec!["-13", "/dict", "-"]);
    }

    #[test]
    fn impure_words_block_jit_extraction() {
        let mut s = state();
        let err = jit_region(&mut s, &pipeline("cat $(ls) | sort")).unwrap_err();
        assert!(matches!(err, Ineligible::ImpureWord(_)));
        let err = jit_region(&mut s, &pipeline("cat ${X:=v} | sort")).unwrap_err();
        assert!(matches!(err, Ineligible::ImpureWord(_)));
    }

    #[test]
    fn compound_stage_blocks_extraction() {
        let mut s = state();
        let err = jit_region(&mut s, &pipeline("cat /f | { sort; }")).unwrap_err();
        assert_eq!(err, Ineligible::NotSimple);
    }

    #[test]
    fn assignments_block_extraction() {
        let mut s = state();
        let err = jit_region(&mut s, &pipeline("X=1 cat /f | sort")).unwrap_err();
        assert_eq!(err, Ineligible::HasAssignments);
    }

    #[test]
    fn functions_block_extraction() {
        let mut s = state();
        let body = jash_parser::parse_unwrap("{ :; }").items[0].and_or.first.commands[0].clone();
        let CommandKind::BraceGroup(_) = &body.kind else {
            panic!()
        };
        s.set_function("sort", body);
        let err = jit_region(&mut s, &pipeline("cat /f | sort")).unwrap_err();
        assert!(matches!(err, Ineligible::NotAUtility(_)));
    }

    #[test]
    fn redirects_extracted() {
        let mut s = state();
        let r = jit_region(&mut s, &pipeline("sort < /in > /out")).unwrap();
        assert_eq!(r.commands[0].stdin_redirect.as_deref(), Some("/in"));
        assert_eq!(
            r.commands[0].stdout_redirect,
            Some(("/out".to_string(), false))
        );
    }

    #[test]
    fn stderr_redirect_unsupported() {
        let mut s = state();
        let err = jit_region(&mut s, &pipeline("sort < /in 2> /err")).unwrap_err();
        assert_eq!(err, Ineligible::UnsupportedRedirect);
    }

    #[test]
    fn resolve_paths_uses_cwd() {
        let mut s = state();
        s.cwd = "/work".into();
        let mut r = jit_region(&mut s, &pipeline("sort < in > out")).unwrap();
        resolve_paths(&s, &mut r);
        assert_eq!(r.commands[0].stdin_redirect.as_deref(), Some("/work/in"));
    }
}
