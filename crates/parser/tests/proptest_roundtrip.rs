//! Property tests for the parse/unparse contract (the libdash guarantee).
//!
//! Strategy: generate random ASTs whose literals avoid shell
//! metacharacters, unparse them, reparse, and require structural equality
//! modulo spans. A second property checks the unparse fixpoint on the
//! reparsed tree for arbitrary trees.

use jash_ast::{
    AndOrList, AndOrOp, Assignment, Command, CommandKind, ForClause, IfClause, ListItem, ParamExp,
    ParamOp, Pipeline, Program, Redirect, RedirectOp, SimpleCommand, WhileClause, Word, WordPart,
};
use proptest::prelude::*;

fn literal_text() -> impl Strategy<Value = String> {
    // Reserved words would change meaning in command position when
    // unparsed bare; the parser quite correctly treats them specially,
    // so keep them out of generated literals.
    "[a-z0-9_./:-]{1,12}".prop_filter("not a reserved word", |s| {
        !matches!(
            s.as_str(),
            "if" | "then" | "else" | "elif" | "fi" | "do" | "done" | "case" | "esac" | "while"
                | "until" | "for" | "in"
        )
    })
}

fn name() -> impl Strategy<Value = String> {
    "[a-z_][a-z0-9_]{0,8}"
}

fn flat_word() -> impl Strategy<Value = Word> {
    literal_text().prop_map(Word::literal)
}

/// Merges adjacent `Literal` parts so the generated tree matches the
/// parser's canonical form (the parser never emits two literals in a row).
fn merge_literals(parts: Vec<WordPart>) -> Vec<WordPart> {
    let mut out: Vec<WordPart> = Vec::with_capacity(parts.len());
    for p in parts {
        match (out.last_mut(), p) {
            (Some(WordPart::Literal(prev)), WordPart::Literal(next)) => prev.push_str(&next),
            (_, p) => out.push(p),
        }
    }
    out
}

fn word_part(depth: u32) -> BoxedStrategy<WordPart> {
    let leaf = prop_oneof![
        literal_text().prop_map(WordPart::Literal),
        "[ -&(-~]{0,10}".prop_map(WordPart::SingleQuoted),
        name().prop_map(|n| WordPart::Param(ParamExp::plain(n))),
        (name(), any::<bool>(), flat_word()).prop_map(|(n, colon, w)| {
            WordPart::Param(ParamExp {
                name: n,
                op: ParamOp::Default { colon, word: w },
            })
        }),
        name().prop_map(|n| WordPart::Param(ParamExp {
            name: n,
            op: ParamOp::Length,
        })),
    ];
    if depth == 0 {
        leaf.boxed()
    } else {
        // Inside double quotes only literals and expansions may occur (the
        // parser never nests quoting parts there).
        let dq_inner = prop_oneof![
            literal_text().prop_map(WordPart::Literal),
            name().prop_map(|n| WordPart::Param(ParamExp::plain(n))),
        ];
        prop_oneof![
            leaf,
            prop::collection::vec(dq_inner, 1..3)
                .prop_map(|ps| WordPart::DoubleQuoted(merge_literals(ps))),
            program(depth - 1).prop_map(WordPart::CmdSubst),
        ]
        .boxed()
    }
}

fn word(depth: u32) -> BoxedStrategy<Word> {
    prop::collection::vec(word_part(depth), 1..3)
        .prop_map(|parts| Word {
            parts: merge_literals(parts),
        })
        .boxed()
}

fn simple_command(depth: u32) -> BoxedStrategy<Command> {
    (
        prop::collection::vec((name(), word(depth.min(1))), 0..2),
        prop::collection::vec(word(depth), 1..4),
        prop::collection::vec(
            (
                prop_oneof![
                    Just(RedirectOp::Read),
                    Just(RedirectOp::Write),
                    Just(RedirectOp::Append),
                ],
                literal_text(),
            ),
            0..2,
        ),
    )
        .prop_map(|(asgs, words, redirs)| {
            let mut cmd = Command::new(CommandKind::Simple(SimpleCommand {
                assignments: asgs
                    .into_iter()
                    .map(|(n, v)| Assignment { name: n, value: v })
                    .collect(),
                words,
            }));
            cmd.redirects = redirs
                .into_iter()
                .map(|(op, t)| Redirect::new(op, Word::literal(t)))
                .collect();
            cmd
        })
        .boxed()
}

fn command(depth: u32) -> BoxedStrategy<Command> {
    if depth == 0 {
        return simple_command(0);
    }
    prop_oneof![
        4 => simple_command(depth),
        1 => program(depth - 1).prop_map(|p| Command::new(CommandKind::Subshell(p))),
        1 => program(depth - 1).prop_map(|p| Command::new(CommandKind::BraceGroup(p))),
        1 => (program(depth - 1), program(depth - 1)).prop_map(|(c, t)| {
            Command::new(CommandKind::If(IfClause {
                cond: c,
                then_body: t,
                elifs: vec![],
                else_body: None,
            }))
        }),
        1 => (name(), prop::collection::vec(word(0), 1..3), program(depth - 1)).prop_map(
            |(var, words, body)| Command::new(CommandKind::For(ForClause {
                var,
                words: Some(words),
                body,
            }))
        ),
        1 => (any::<bool>(), program(depth - 1), program(depth - 1)).prop_map(
            |(until, cond, body)| Command::new(CommandKind::While(WhileClause {
                until,
                cond,
                body
            }))
        ),
    ]
    .boxed()
}

fn pipeline(depth: u32) -> BoxedStrategy<Pipeline> {
    (any::<bool>(), prop::collection::vec(command(depth), 1..3))
        .prop_map(|(negated, commands)| Pipeline { negated, commands })
        .boxed()
}

fn program(depth: u32) -> BoxedStrategy<Program> {
    prop::collection::vec(
        (
            pipeline(depth),
            prop::collection::vec(
                (
                    prop_oneof![Just(AndOrOp::And), Just(AndOrOp::Or)],
                    pipeline(depth),
                ),
                0..2,
            ),
            any::<bool>(),
        ),
        1..3,
    )
    .prop_map(|items| Program {
        items: items
            .into_iter()
            .map(|(first, rest, background)| ListItem {
                and_or: AndOrList { first, rest },
                background,
            })
            .collect(),
    })
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn generated_ast_roundtrips(prog in program(2)) {
        let text = jash_ast::unparse(&prog);
        let mut reparsed = jash_parser::parse(&text)
            .unwrap_or_else(|e| panic!("reparse failed for `{text}`: {e}"));
        jash_ast::visit::strip_spans(&mut reparsed);
        let mut orig = prog.clone();
        jash_ast::visit::strip_spans(&mut orig);
        prop_assert_eq!(orig, reparsed, "text was `{}`", text);
    }

    #[test]
    fn unparse_is_a_fixpoint(prog in program(2)) {
        let once = jash_ast::unparse(&prog);
        let reparsed = jash_parser::parse(&once).unwrap();
        let twice = jash_ast::unparse(&reparsed);
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn parser_never_panics_on_ascii(src in "[ -~\n]{0,80}") {
        let _ = jash_parser::parse(&src);
    }
}
