//! Randomized tests for the parse/unparse contract (the libdash
//! guarantee).
//!
//! Strategy: generate random ASTs from a seeded generator whose literals
//! avoid shell metacharacters, unparse them, reparse, and require
//! structural equality modulo spans. A second property checks the unparse
//! fixpoint on the reparsed tree; a third feeds random ASCII soup to the
//! parser and requires it not to panic. Seeds are fixed, so failures are
//! reproducible: the failing case prints its seed and source text.

use jash_ast::{
    AndOrList, AndOrOp, Assignment, Command, CommandKind, ForClause, IfClause, ListItem, ParamExp,
    ParamOp, Pipeline, Program, Redirect, RedirectOp, SimpleCommand, WhileClause, Word, WordPart,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 256;

fn pick<'a, T>(rng: &mut StdRng, items: &'a [T]) -> &'a T {
    &items[rng.random_range(0..items.len())]
}

fn coin(rng: &mut StdRng) -> bool {
    rng.random_range(0..2u32) == 0
}

/// A literal that is not a reserved word and contains no metacharacters.
fn literal_text(rng: &mut StdRng) -> String {
    const CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789_./:-";
    loop {
        let len = rng.random_range(1..13usize);
        let s: String = (0..len)
            .map(|_| CHARS[rng.random_range(0..CHARS.len())] as char)
            .collect();
        let reserved = matches!(
            s.as_str(),
            "if" | "then" | "else" | "elif" | "fi" | "do" | "done" | "case" | "esac" | "while"
                | "until" | "for" | "in"
        );
        if !reserved {
            return s;
        }
    }
}

fn name(rng: &mut StdRng) -> String {
    const FIRST: &[u8] = b"abcdefghijklmnopqrstuvwxyz_";
    const REST: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789_";
    let mut s = String::new();
    s.push(FIRST[rng.random_range(0..FIRST.len())] as char);
    for _ in 0..rng.random_range(0..9usize) {
        s.push(REST[rng.random_range(0..REST.len())] as char);
    }
    s
}

fn single_quoted_text(rng: &mut StdRng) -> String {
    // Printable ASCII minus the single quote.
    let len = rng.random_range(0..11usize);
    (0..len)
        .map(|_| loop {
            let c = rng.random_range(0x20u32..0x7f) as u8 as char;
            if c != '\'' {
                break c;
            }
        })
        .collect()
}

/// Merges adjacent `Literal` parts so the generated tree matches the
/// parser's canonical form (the parser never emits two literals in a row).
fn merge_literals(parts: Vec<WordPart>) -> Vec<WordPart> {
    let mut out: Vec<WordPart> = Vec::with_capacity(parts.len());
    for p in parts {
        match (out.last_mut(), p) {
            (Some(WordPart::Literal(prev)), WordPart::Literal(next)) => prev.push_str(&next),
            (_, p) => out.push(p),
        }
    }
    out
}

fn word_part(rng: &mut StdRng, depth: u32) -> WordPart {
    let leaf = |rng: &mut StdRng| match rng.random_range(0..5u32) {
        0 => WordPart::Literal(literal_text(rng)),
        1 => WordPart::SingleQuoted(single_quoted_text(rng)),
        2 => WordPart::Param(ParamExp::plain(name(rng))),
        3 => WordPart::Param(ParamExp {
            name: name(rng),
            op: ParamOp::Default {
                colon: coin(rng),
                word: Word::literal(literal_text(rng)),
            },
        }),
        _ => WordPart::Param(ParamExp {
            name: name(rng),
            op: ParamOp::Length,
        }),
    };
    if depth == 0 {
        return leaf(rng);
    }
    match rng.random_range(0..7u32) {
        0 => {
            // Inside double quotes only literals and expansions occur (the
            // parser never nests quoting parts there).
            let n = rng.random_range(1..3usize);
            let inner = (0..n)
                .map(|_| {
                    if coin(rng) {
                        WordPart::Literal(literal_text(rng))
                    } else {
                        WordPart::Param(ParamExp::plain(name(rng)))
                    }
                })
                .collect();
            WordPart::DoubleQuoted(merge_literals(inner))
        }
        1 => WordPart::CmdSubst(program(rng, depth - 1)),
        _ => leaf(rng),
    }
}

fn word(rng: &mut StdRng, depth: u32) -> Word {
    let n = rng.random_range(1..3usize);
    Word {
        parts: merge_literals((0..n).map(|_| word_part(rng, depth)).collect()),
    }
}

fn simple_command(rng: &mut StdRng, depth: u32) -> Command {
    let assignments = (0..rng.random_range(0..2usize))
        .map(|_| Assignment {
            name: name(rng),
            value: word(rng, depth.min(1)),
        })
        .collect();
    let words = (0..rng.random_range(1..4usize))
        .map(|_| word(rng, depth))
        .collect();
    let mut cmd = Command::new(CommandKind::Simple(SimpleCommand { assignments, words }));
    cmd.redirects = (0..rng.random_range(0..2usize))
        .map(|_| {
            let op = *pick(
                rng,
                &[RedirectOp::Read, RedirectOp::Write, RedirectOp::Append],
            );
            Redirect::new(op, Word::literal(literal_text(rng)))
        })
        .collect();
    cmd
}

fn command(rng: &mut StdRng, depth: u32) -> Command {
    if depth == 0 {
        return simple_command(rng, 0);
    }
    match rng.random_range(0..9u32) {
        0 => Command::new(CommandKind::Subshell(program(rng, depth - 1))),
        1 => Command::new(CommandKind::BraceGroup(program(rng, depth - 1))),
        2 => Command::new(CommandKind::If(IfClause {
            cond: program(rng, depth - 1),
            then_body: program(rng, depth - 1),
            elifs: vec![],
            else_body: None,
        })),
        3 => {
            let words = (0..rng.random_range(1..3usize))
                .map(|_| word(rng, 0))
                .collect();
            Command::new(CommandKind::For(ForClause {
                var: name(rng),
                words: Some(words),
                body: program(rng, depth - 1),
            }))
        }
        4 => Command::new(CommandKind::While(WhileClause {
            until: coin(rng),
            cond: program(rng, depth - 1),
            body: program(rng, depth - 1),
        })),
        _ => simple_command(rng, depth),
    }
}

fn pipeline(rng: &mut StdRng, depth: u32) -> Pipeline {
    Pipeline {
        negated: coin(rng),
        commands: (0..rng.random_range(1..3usize))
            .map(|_| command(rng, depth))
            .collect(),
    }
}

fn program(rng: &mut StdRng, depth: u32) -> Program {
    Program {
        items: (0..rng.random_range(1..3usize))
            .map(|_| {
                let first = pipeline(rng, depth);
                let rest = (0..rng.random_range(0..2usize))
                    .map(|_| {
                        let op = if coin(rng) { AndOrOp::And } else { AndOrOp::Or };
                        (op, pipeline(rng, depth))
                    })
                    .collect();
                ListItem {
                    and_or: AndOrList { first, rest },
                    background: coin(rng),
                }
            })
            .collect(),
    }
}

#[test]
fn generated_ast_roundtrips() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let prog = program(&mut rng, 2);
        let text = jash_ast::unparse(&prog);
        let mut reparsed = jash_parser::parse(&text)
            .unwrap_or_else(|e| panic!("seed {seed}: reparse failed for `{text}`: {e}"));
        jash_ast::visit::strip_spans(&mut reparsed);
        let mut orig = prog.clone();
        jash_ast::visit::strip_spans(&mut orig);
        assert_eq!(orig, reparsed, "seed {seed}: text was `{text}`");
    }
}

#[test]
fn unparse_is_a_fixpoint() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(1_000_000 + seed);
        let prog = program(&mut rng, 2);
        let once = jash_ast::unparse(&prog);
        let reparsed = jash_parser::parse(&once)
            .unwrap_or_else(|e| panic!("seed {seed}: reparse failed for `{once}`: {e}"));
        let twice = jash_ast::unparse(&reparsed);
        assert_eq!(once, twice, "seed {seed}");
    }
}

#[test]
fn parser_never_panics_on_ascii() {
    for seed in 0..CASES * 4 {
        let mut rng = StdRng::seed_from_u64(2_000_000 + seed);
        let len = rng.random_range(0..81usize);
        let src: String = (0..len)
            .map(|_| match rng.random_range(0..20u32) {
                0 => '\n',
                _ => rng.random_range(0x20u32..0x7f) as u8 as char,
            })
            .collect();
        let _ = jash_parser::parse(&src);
    }
}
