//! Parser for `$((...))` arithmetic expressions.
//!
//! Implements the POSIX-required subset of C expression syntax over `i64`:
//! decimal/octal/hex literals, variables, unary `+ - ! ~`, the full binary
//! operator ladder, the ternary conditional, and (compound) assignment.
//! Precedence follows C; parsing is Pratt-style precedence climbing.

use crate::error::{ParseError, Result};
use jash_ast::arith::{ArithBinOp, ArithExpr, ArithUnaryOp};

/// Parses the text between `$((` and `))` into an expression tree.
///
/// `base_offset` is the byte offset of `text` within the enclosing script,
/// used to report error positions in script coordinates.
pub fn parse_arith(text: &str, base_offset: usize) -> Result<ArithExpr> {
    let mut p = ArithParser {
        bytes: text.as_bytes(),
        pos: 0,
        base: base_offset,
    };
    let e = p.ternary()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters in arithmetic expression"));
    }
    Ok(e)
}

struct ArithParser<'a> {
    bytes: &'a [u8],
    pos: usize,
    base: usize,
}

impl<'a> ArithParser<'a> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError::new(msg, self.base + self.pos)
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.bytes.get(self.pos + 1).copied()
    }

    fn eat(&mut self, s: &str) -> bool {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(s.as_bytes()) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    /// Lowest level: assignment and ternary (right-associative).
    fn ternary(&mut self) -> Result<ArithExpr> {
        // Try assignment first: `name [op]= expr` where the `=` is not `==`.
        if let Some(save) = self.try_assignment_start() {
            let (name, op) = save;
            let rhs = self.ternary()?;
            return Ok(ArithExpr::Assign(name, op, Box::new(rhs)));
        }
        let cond = self.binary(1)?;
        if self.eat("?") {
            let then = self.ternary()?;
            if !self.eat(":") {
                return Err(self.err("expected `:` in ternary expression"));
            }
            let els = self.ternary()?;
            return Ok(ArithExpr::Ternary(
                Box::new(cond),
                Box::new(then),
                Box::new(els),
            ));
        }
        Ok(cond)
    }

    /// If the input starts with `name [op]=` (not `==`), consumes it and
    /// returns the name and compound operator; otherwise leaves the cursor
    /// untouched and returns `None`.
    fn try_assignment_start(&mut self) -> Option<(String, Option<ArithBinOp>)> {
        let start = self.pos;
        self.skip_ws();
        let name_start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_alphanumeric() || *b == b'_')
        {
            self.pos += 1;
        }
        if self.pos == name_start
            || self.bytes[name_start].is_ascii_digit()
        {
            self.pos = start;
            return None;
        }
        let name = std::str::from_utf8(&self.bytes[name_start..self.pos])
            .unwrap_or_default()
            .to_string();
        self.skip_ws();
        let ops: &[(&str, Option<ArithBinOp>)] = &[
            ("<<=", Some(ArithBinOp::Shl)),
            (">>=", Some(ArithBinOp::Shr)),
            ("+=", Some(ArithBinOp::Add)),
            ("-=", Some(ArithBinOp::Sub)),
            ("*=", Some(ArithBinOp::Mul)),
            ("/=", Some(ArithBinOp::Div)),
            ("%=", Some(ArithBinOp::Rem)),
            ("&=", Some(ArithBinOp::BitAnd)),
            ("^=", Some(ArithBinOp::BitXor)),
            ("|=", Some(ArithBinOp::BitOr)),
        ];
        for (sym, op) in ops {
            if self.bytes[self.pos..].starts_with(sym.as_bytes()) {
                self.pos += sym.len();
                return Some((name, *op));
            }
        }
        if self.bytes.get(self.pos) == Some(&b'=') && self.peek2() != Some(b'=') {
            self.pos += 1;
            return Some((name, None));
        }
        self.pos = start;
        None
    }

    /// Precedence climbing over the binary-operator ladder.
    fn binary(&mut self, min_prec: u8) -> Result<ArithExpr> {
        let mut lhs = self.unary()?;
        loop {
            self.skip_ws();
            let Some((op, len)) = self.peek_binop() else {
                return Ok(lhs);
            };
            let prec = op.precedence();
            if prec < min_prec {
                return Ok(lhs);
            }
            self.pos += len;
            let rhs = self.binary(prec + 1)?;
            lhs = ArithExpr::bin(op, lhs, rhs);
        }
    }

    fn peek_binop(&self) -> Option<(ArithBinOp, usize)> {
        let rest = &self.bytes[self.pos..];
        let table: &[(&str, ArithBinOp)] = &[
            ("<<", ArithBinOp::Shl),
            (">>", ArithBinOp::Shr),
            ("<=", ArithBinOp::Le),
            (">=", ArithBinOp::Ge),
            ("==", ArithBinOp::Eq),
            ("!=", ArithBinOp::Ne),
            ("&&", ArithBinOp::LogAnd),
            ("||", ArithBinOp::LogOr),
            ("+", ArithBinOp::Add),
            ("-", ArithBinOp::Sub),
            ("*", ArithBinOp::Mul),
            ("/", ArithBinOp::Div),
            ("%", ArithBinOp::Rem),
            ("<", ArithBinOp::Lt),
            (">", ArithBinOp::Gt),
            ("&", ArithBinOp::BitAnd),
            ("^", ArithBinOp::BitXor),
            ("|", ArithBinOp::BitOr),
        ];
        for (sym, op) in table {
            if rest.starts_with(sym.as_bytes()) {
                // Reject `=`-suffixed forms: they are assignments.
                if rest.get(sym.len()) == Some(&b'=')
                    && matches!(
                        op,
                        ArithBinOp::Add
                            | ArithBinOp::Sub
                            | ArithBinOp::Mul
                            | ArithBinOp::Div
                            | ArithBinOp::Rem
                            | ArithBinOp::BitAnd
                            | ArithBinOp::BitXor
                            | ArithBinOp::BitOr
                            | ArithBinOp::Shl
                            | ArithBinOp::Shr
                    )
                {
                    return None;
                }
                return Some((*op, sym.len()));
            }
        }
        None
    }

    fn unary(&mut self) -> Result<ArithExpr> {
        match self.peek() {
            Some(b'-') => {
                self.pos += 1;
                Ok(ArithExpr::Unary(
                    ArithUnaryOp::Neg,
                    Box::new(self.unary()?),
                ))
            }
            Some(b'+') => {
                self.pos += 1;
                Ok(ArithExpr::Unary(
                    ArithUnaryOp::Pos,
                    Box::new(self.unary()?),
                ))
            }
            Some(b'!') => {
                self.pos += 1;
                Ok(ArithExpr::Unary(
                    ArithUnaryOp::LogNot,
                    Box::new(self.unary()?),
                ))
            }
            Some(b'~') => {
                self.pos += 1;
                Ok(ArithExpr::Unary(
                    ArithUnaryOp::BitNot,
                    Box::new(self.unary()?),
                ))
            }
            _ => self.primary(),
        }
    }

    fn primary(&mut self) -> Result<ArithExpr> {
        match self.peek() {
            Some(b'(') => {
                self.pos += 1;
                let e = self.ternary()?;
                if !self.eat(")") {
                    return Err(self.err("expected `)` in arithmetic expression"));
                }
                Ok(e)
            }
            Some(b) if b.is_ascii_digit() => self.number(),
            Some(b) if b.is_ascii_alphabetic() || b == b'_' => {
                let start = self.pos;
                while self
                    .bytes
                    .get(self.pos)
                    .is_some_and(|b| b.is_ascii_alphanumeric() || *b == b'_')
                {
                    self.pos += 1;
                }
                let name = std::str::from_utf8(&self.bytes[start..self.pos])
                    .unwrap_or_default()
                    .to_string();
                Ok(ArithExpr::Var(name))
            }
            // `$x` inside arithmetic: accept and treat as a variable, which
            // matches the common-shell behavior of expanding then parsing.
            Some(b'$') => {
                self.pos += 1;
                let braced = self.bytes.get(self.pos) == Some(&b'{');
                if braced {
                    self.pos += 1;
                }
                let start = self.pos;
                while self
                    .bytes
                    .get(self.pos)
                    .is_some_and(|b| b.is_ascii_alphanumeric() || *b == b'_')
                {
                    self.pos += 1;
                }
                if self.pos == start {
                    return Err(self.err("expected variable name after `$`"));
                }
                let name = std::str::from_utf8(&self.bytes[start..self.pos])
                    .unwrap_or_default()
                    .to_string();
                if braced && !self.eat("}") {
                    return Err(self.err("expected `}`"));
                }
                Ok(ArithExpr::Var(name))
            }
            _ => Err(self.err("expected arithmetic operand")),
        }
    }

    fn number(&mut self) -> Result<ArithExpr> {
        let start = self.pos;
        let rest = &self.bytes[self.pos..];
        let (radix, skip) = if rest.starts_with(b"0x") || rest.starts_with(b"0X") {
            (16, 2)
        } else if rest.len() > 1 && rest[0] == b'0' && rest[1].is_ascii_digit() {
            (8, 1)
        } else {
            (10, 0)
        };
        self.pos += skip;
        let digits_start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_alphanumeric())
        {
            self.pos += 1;
        }
        let digits = std::str::from_utf8(&self.bytes[digits_start..self.pos]).unwrap_or_default();
        match i64::from_str_radix(digits, radix) {
            Ok(n) => Ok(ArithExpr::Num(n)),
            Err(_) => {
                self.pos = start;
                Err(self.err("invalid numeric literal"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jash_ast::unparse::unparse_arith;

    fn parse(s: &str) -> ArithExpr {
        parse_arith(s, 0).unwrap_or_else(|e| panic!("parse `{s}`: {e}"))
    }

    #[test]
    fn precedence_mul_over_add() {
        assert_eq!(unparse_arith(&parse("1+2*3")), "1 + 2 * 3");
        assert_eq!(unparse_arith(&parse("(1+2)*3")), "(1 + 2) * 3");
    }

    #[test]
    fn comparison_and_logic() {
        assert_eq!(unparse_arith(&parse("a<b&&c>=d")), "a < b && c >= d");
    }

    #[test]
    fn ternary_nests_right() {
        assert_eq!(unparse_arith(&parse("a?b:c?d:e")), "a ? b : c ? d : e");
    }

    #[test]
    fn assignment_and_compound() {
        assert_eq!(unparse_arith(&parse("x=1+2")), "x = 1 + 2");
        assert_eq!(unparse_arith(&parse("x+=5")), "x += 5");
        assert_eq!(unparse_arith(&parse("x<<=2")), "x <<= 2");
    }

    #[test]
    fn equality_is_not_assignment() {
        assert_eq!(unparse_arith(&parse("x==1")), "x == 1");
    }

    #[test]
    fn radix_literals() {
        assert_eq!(parse("0x10"), ArithExpr::Num(16));
        assert_eq!(parse("010"), ArithExpr::Num(8));
        assert_eq!(parse("10"), ArithExpr::Num(10));
    }

    #[test]
    fn unary_chain() {
        assert_eq!(unparse_arith(&parse("!~-x")), "!~-x");
        assert_eq!(unparse_arith(&parse("- - 3")), "-(-3)");
    }

    #[test]
    fn dollar_variables_accepted() {
        assert_eq!(unparse_arith(&parse("$x + ${y}")), "x + y");
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse_arith("1 + 2 )", 0).is_err());
        assert!(parse_arith("", 0).is_err());
    }

    #[test]
    fn shifts_vs_comparisons() {
        assert_eq!(unparse_arith(&parse("1<<2<3")), "1 << 2 < 3");
    }
}
