//! Character-level lexing: operators, structured words, expansions,
//! here-document bodies.
//!
//! The lexer lives on the same [`Parser`](crate::parser::Parser) struct as
//! the grammar because shell lexing is not context-free: command
//! substitutions re-enter the full parser, and here-document bodies are
//! consumed when a newline token is produced.

use crate::arith::parse_arith;
use crate::error::{ParseError, Result};
use crate::parser::{Parser, PendingHeredoc};
use crate::token::{Tok, Token};
use jash_ast::{ParamExp, ParamOp, Span, Word, WordPart};

/// How a word scan terminates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WordCtx {
    /// Normal token context: metacharacters end the word.
    Normal,
    /// Inside `${name<op>...}`: only an unquoted `}` ends the word.
    Param,
    /// An unquoted here-document body: scan to end of input; quotes are
    /// not special; backslash only escapes `$`, `` ` ``, `\` and newline.
    Heredoc,
}

impl<'a> Parser<'a> {
    pub(crate) fn peek_char(&self) -> Option<u8> {
        self.bytes().get(self.pos).copied()
    }

    pub(crate) fn char_at(&self, i: usize) -> Option<u8> {
        self.bytes().get(i).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek_char();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn starts_with(&self, s: &str) -> bool {
        self.bytes()[self.pos..].starts_with(s.as_bytes())
    }

    fn err_here(&self, msg: impl Into<String>) -> ParseError {
        ParseError::new(msg, self.pos)
    }

    /// Skips spaces, tabs, line continuations, and comments.
    fn skip_blanks(&mut self) {
        loop {
            match self.peek_char() {
                Some(b' ') | Some(b'\t') => {
                    self.pos += 1;
                }
                Some(b'\\') if self.char_at(self.pos + 1) == Some(b'\n') => {
                    self.pos += 2;
                }
                Some(b'#') => {
                    while let Some(c) = self.peek_char() {
                        if c == b'\n' {
                            break;
                        }
                        self.pos += 1;
                    }
                }
                _ => return,
            }
        }
    }

    /// Lexes the next token from the character stream.
    pub(crate) fn lex_token(&mut self) -> Result<Token> {
        self.skip_blanks();
        let start = self.pos;
        let tok = match self.peek_char() {
            None => {
                if !self.pending_heredocs.is_empty() {
                    return Err(self.err_here("unterminated here-document"));
                }
                Tok::Eof
            }
            Some(b'\n') => {
                self.pos += 1;
                self.read_pending_heredocs()?;
                Tok::Newline
            }
            Some(b'&') => {
                self.pos += 1;
                if self.peek_char() == Some(b'&') {
                    self.pos += 1;
                    Tok::AndIf
                } else {
                    Tok::Amp
                }
            }
            Some(b'|') => {
                self.pos += 1;
                if self.peek_char() == Some(b'|') {
                    self.pos += 1;
                    Tok::OrIf
                } else {
                    Tok::Pipe
                }
            }
            Some(b';') => {
                self.pos += 1;
                if self.peek_char() == Some(b';') {
                    self.pos += 1;
                    Tok::DSemi
                } else {
                    Tok::Semi
                }
            }
            Some(b'(') => {
                self.pos += 1;
                Tok::LParen
            }
            Some(b')') => {
                self.pos += 1;
                Tok::RParen
            }
            Some(b'<') => {
                self.pos += 1;
                if self.starts_with("<-") {
                    self.pos += 2;
                    Tok::DLessDash
                } else if self.peek_char() == Some(b'<') {
                    self.pos += 1;
                    Tok::DLess
                } else if self.peek_char() == Some(b'&') {
                    self.pos += 1;
                    Tok::LessAnd
                } else if self.peek_char() == Some(b'>') {
                    self.pos += 1;
                    Tok::LessGreat
                } else {
                    Tok::Less
                }
            }
            Some(b'>') => {
                self.pos += 1;
                if self.peek_char() == Some(b'>') {
                    self.pos += 1;
                    Tok::DGreat
                } else if self.peek_char() == Some(b'&') {
                    self.pos += 1;
                    Tok::GreatAnd
                } else if self.peek_char() == Some(b'|') {
                    self.pos += 1;
                    Tok::Clobber
                } else {
                    Tok::Great
                }
            }
            Some(c) if c.is_ascii_digit() => {
                // Look ahead: a pure digit run directly followed by `<`/`>`
                // is an io-number; otherwise it is an ordinary word.
                let mut i = self.pos;
                while self.char_at(i).is_some_and(|b| b.is_ascii_digit()) {
                    i += 1;
                }
                if matches!(self.char_at(i), Some(b'<') | Some(b'>')) {
                    let text = &self.src[self.pos..i];
                    let n: u32 = text
                        .parse()
                        .map_err(|_| self.err_here("file descriptor number too large"))?;
                    self.pos = i;
                    Tok::IoNumber(n)
                } else {
                    Tok::Word(self.read_word(WordCtx::Normal)?)
                }
            }
            Some(_) => Tok::Word(self.read_word(WordCtx::Normal)?),
        };
        Ok(Token {
            tok,
            span: Span::new(start, self.pos),
        })
    }

    /// Scans one structured word in the given context.
    pub(crate) fn read_word(&mut self, ctx: WordCtx) -> Result<Word> {
        let mut parts: Vec<WordPart> = Vec::new();
        let mut lit = String::new();
        let word_start = self.pos;

        macro_rules! flush {
            () => {
                if !lit.is_empty() {
                    parts.push(WordPart::Literal(std::mem::take(&mut lit)));
                }
            };
        }

        while let Some(c) = self.peek_char() {
            match c {
                // Metacharacters end a normal-context word.
                b' ' | b'\t' | b'\n' | b'|' | b'&' | b';' | b'<' | b'>' | b'(' | b')'
                    if ctx == WordCtx::Normal =>
                {
                    break;
                }
                b'}' if ctx == WordCtx::Param => break,
                b'\\' => {
                    self.pos += 1;
                    match self.peek_char() {
                        Some(b'\n') => {
                            // Line continuation: both characters vanish.
                            self.pos += 1;
                        }
                        Some(e) => {
                            if ctx == WordCtx::Heredoc {
                                // Only \$ \` \\ are escapes in heredoc bodies.
                                if matches!(e, b'$' | b'`' | b'\\') {
                                    self.pos += 1;
                                    lit.push(e as char);
                                } else {
                                    lit.push('\\');
                                }
                            } else {
                                self.pos += 1;
                                flush!();
                                // Multi-byte UTF-8: take the full char.
                                let ch = self.full_char_ending_before(self.pos, e);
                                parts.push(WordPart::Escaped(ch));
                            }
                        }
                        None => {
                            // Trailing backslash: keep it literally.
                            lit.push('\\');
                        }
                    }
                }
                b'\'' if ctx != WordCtx::Heredoc => {
                    self.pos += 1;
                    let start = self.pos;
                    loop {
                        match self.peek_char() {
                            Some(b'\'') => break,
                            Some(_) => self.pos += 1,
                            None => return Err(ParseError::new("unterminated single quote", start)),
                        }
                    }
                    flush!();
                    parts.push(WordPart::SingleQuoted(self.src[start..self.pos].to_string()));
                    self.pos += 1;
                }
                b'"' if ctx != WordCtx::Heredoc => {
                    self.pos += 1;
                    flush!();
                    parts.push(WordPart::DoubleQuoted(self.read_dquoted_parts()?));
                }
                b'$' => {
                    flush!();
                    match self.read_dollar(false)? {
                        Some(p) => parts.push(p),
                        None => lit.push('$'),
                    }
                }
                b'`' => {
                    flush!();
                    parts.push(self.read_backquote()?);
                }
                b'~' if ctx == WordCtx::Normal && parts.is_empty() && lit.is_empty() => {
                    // Possible tilde-prefix at the very start of the word.
                    let tilde_pos = self.pos;
                    self.pos += 1;
                    let name_start = self.pos;
                    while self
                        .peek_char()
                        .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-' || b == b'.')
                    {
                        self.pos += 1;
                    }
                    let boundary = matches!(
                        self.peek_char(),
                        None | Some(b'/') | Some(b' ') | Some(b'\t') | Some(b'\n') | Some(b'|')
                            | Some(b'&') | Some(b';') | Some(b'<') | Some(b'>') | Some(b'(')
                            | Some(b')')
                    );
                    if boundary {
                        let user = &self.src[name_start..self.pos];
                        parts.push(WordPart::Tilde(if user.is_empty() {
                            None
                        } else {
                            Some(user.to_string())
                        }));
                    } else {
                        // Not a tilde-prefix after all; keep the text.
                        self.pos = tilde_pos;
                        self.pos += 1;
                        lit.push('~');
                    }
                }
                _ => {
                    // Copy one full (possibly multi-byte) character.
                    let ch_len = utf8_len(c);
                    lit.push_str(&self.src[self.pos..self.pos + ch_len]);
                    self.pos += ch_len;
                }
            }
        }
        if !lit.is_empty() {
            parts.push(WordPart::Literal(lit));
        }
        if parts.is_empty() && self.pos == word_start && ctx == WordCtx::Normal {
            return Err(self.err_here("expected a word"));
        }
        Ok(Word { parts })
    }

    /// Returns the char whose encoding starts at `end - 1` when its first
    /// byte is `first`; advances the cursor over continuation bytes.
    fn full_char_ending_before(&mut self, end: usize, first: u8) -> char {
        let len = utf8_len(first);
        if len == 1 {
            return first as char;
        }
        let start = end - 1;
        let s = &self.src[start..start + len];
        self.pos = start + len;
        s.chars().next().unwrap_or('\u{FFFD}')
    }

    /// Scans the inside of a double-quoted string, up to and including the
    /// closing quote.
    fn read_dquoted_parts(&mut self) -> Result<Vec<WordPart>> {
        let mut parts = Vec::new();
        let mut lit = String::new();
        macro_rules! flush {
            () => {
                if !lit.is_empty() {
                    parts.push(WordPart::Literal(std::mem::take(&mut lit)));
                }
            };
        }
        loop {
            match self.peek_char() {
                None => return Err(self.err_here("unterminated double quote")),
                Some(b'"') => {
                    self.pos += 1;
                    break;
                }
                Some(b'\\') => {
                    match self.char_at(self.pos + 1) {
                        Some(b'\n') => {
                            self.pos += 2;
                        }
                        Some(e @ (b'$' | b'`' | b'"' | b'\\')) => {
                            self.pos += 2;
                            lit.push(e as char);
                        }
                        _ => {
                            self.pos += 1;
                            lit.push('\\');
                        }
                    }
                }
                Some(b'$') => {
                    flush!();
                    match self.read_dollar(true)? {
                        Some(p) => parts.push(p),
                        None => lit.push('$'),
                    }
                }
                Some(b'`') => {
                    flush!();
                    parts.push(self.read_backquote()?);
                }
                Some(c) => {
                    let ch_len = utf8_len(c);
                    lit.push_str(&self.src[self.pos..self.pos + ch_len]);
                    self.pos += ch_len;
                }
            }
        }
        flush!();
        Ok(parts)
    }

    /// Parses a `$`-introduced expansion. The cursor is on the `$`.
    ///
    /// Returns `None` when the `$` is just a literal dollar sign (cursor
    /// advanced past it).
    fn read_dollar(&mut self, _in_dquotes: bool) -> Result<Option<WordPart>> {
        debug_assert_eq!(self.peek_char(), Some(b'$'));
        self.pos += 1;
        match self.peek_char() {
            Some(b'(') => {
                if self.char_at(self.pos + 1) == Some(b'(') {
                    // Try arithmetic first; fall back to a command
                    // substitution that begins with a subshell.
                    if let Some(part) = self.try_arith()? {
                        return Ok(Some(part));
                    }
                }
                self.pos += 1; // consume `(`
                let prog = self.parse_cmdsubst()?;
                Ok(Some(WordPart::CmdSubst(prog)))
            }
            Some(b'{') => {
                self.pos += 1;
                Ok(Some(WordPart::Param(self.read_braced_param()?)))
            }
            Some(c) if c.is_ascii_alphabetic() || c == b'_' => {
                let start = self.pos;
                while self
                    .peek_char()
                    .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_')
                {
                    self.pos += 1;
                }
                Ok(Some(WordPart::Param(ParamExp::plain(
                    &self.src[start..self.pos],
                ))))
            }
            Some(c) if c.is_ascii_digit() => {
                // Unbraced positionals take exactly one digit: `$12` is
                // `${1}2`.
                self.pos += 1;
                Ok(Some(WordPart::Param(ParamExp::plain(
                    (c as char).to_string(),
                ))))
            }
            Some(c @ (b'@' | b'*' | b'#' | b'?' | b'-' | b'$' | b'!')) => {
                self.pos += 1;
                Ok(Some(WordPart::Param(ParamExp::plain(
                    (c as char).to_string(),
                ))))
            }
            _ => Ok(None),
        }
    }

    /// Attempts to lex `$((expr))` starting with the cursor on the first
    /// `(`. On success the cursor is past the closing `))`.
    fn try_arith(&mut self) -> Result<Option<WordPart>> {
        let body_start = self.pos + 2;
        let mut depth = 0usize;
        let mut i = body_start;
        loop {
            match self.char_at(i) {
                None => return Ok(None),
                Some(b'(') => depth += 1,
                Some(b')') => {
                    if depth > 0 {
                        depth -= 1;
                    } else if self.char_at(i + 1) == Some(b')') {
                        let text = &self.src[body_start..i];
                        return match parse_arith(text, body_start) {
                            Ok(e) => {
                                self.pos = i + 2;
                                Ok(Some(WordPart::Arith(e)))
                            }
                            Err(_) => Ok(None),
                        };
                    } else {
                        return Ok(None);
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }

    /// Parses `${name}`, `${#name}`, and all operator forms. Cursor is just
    /// past the `{`.
    fn read_braced_param(&mut self) -> Result<ParamExp> {
        // `${#}` is the special parameter `#`; `${#x}` is length-of-x.
        if self.peek_char() == Some(b'#') && self.char_at(self.pos + 1) != Some(b'}') {
            self.pos += 1;
            let name = self.read_param_name()?;
            if self.peek_char() != Some(b'}') {
                return Err(self.err_here("expected `}` after ${#name}"));
            }
            self.pos += 1;
            return Ok(ParamExp {
                name,
                op: ParamOp::Length,
            });
        }
        let name = self.read_param_name()?;
        let op = match self.peek_char() {
            Some(b'}') => {
                self.pos += 1;
                return Ok(ParamExp {
                    name,
                    op: ParamOp::Plain,
                });
            }
            Some(b':') => {
                self.pos += 1;
                let kind = self.bump().ok_or_else(|| self.err_here("unterminated ${}"))?;
                let word = self.read_word(WordCtx::Param)?;
                match kind {
                    b'-' => ParamOp::Default { colon: true, word },
                    b'=' => ParamOp::Assign { colon: true, word },
                    b'?' => ParamOp::Error { colon: true, word },
                    b'+' => ParamOp::Alt { colon: true, word },
                    _ => return Err(self.err_here("bad substitution operator after `:`")),
                }
            }
            Some(k @ (b'-' | b'=' | b'?' | b'+')) => {
                self.pos += 1;
                let word = self.read_word(WordCtx::Param)?;
                match k {
                    b'-' => ParamOp::Default { colon: false, word },
                    b'=' => ParamOp::Assign { colon: false, word },
                    b'?' => ParamOp::Error { colon: false, word },
                    _ => ParamOp::Alt { colon: false, word },
                }
            }
            Some(b'%') => {
                self.pos += 1;
                let largest = self.peek_char() == Some(b'%');
                if largest {
                    self.pos += 1;
                }
                let word = self.read_word(WordCtx::Param)?;
                if largest {
                    ParamOp::RemoveLargestSuffix(word)
                } else {
                    ParamOp::RemoveSmallestSuffix(word)
                }
            }
            Some(b'#') => {
                self.pos += 1;
                let largest = self.peek_char() == Some(b'#');
                if largest {
                    self.pos += 1;
                }
                let word = self.read_word(WordCtx::Param)?;
                if largest {
                    ParamOp::RemoveLargestPrefix(word)
                } else {
                    ParamOp::RemoveSmallestPrefix(word)
                }
            }
            _ => return Err(self.err_here("bad substitution")),
        };
        if self.peek_char() != Some(b'}') {
            return Err(self.err_here("expected `}` to close parameter expansion"));
        }
        self.pos += 1;
        Ok(ParamExp { name, op })
    }

    fn read_param_name(&mut self) -> Result<String> {
        match self.peek_char() {
            Some(c) if c.is_ascii_alphabetic() || c == b'_' => {
                let start = self.pos;
                while self
                    .peek_char()
                    .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_')
                {
                    self.pos += 1;
                }
                Ok(self.src[start..self.pos].to_string())
            }
            Some(c) if c.is_ascii_digit() => {
                let start = self.pos;
                while self.peek_char().is_some_and(|b| b.is_ascii_digit()) {
                    self.pos += 1;
                }
                Ok(self.src[start..self.pos].to_string())
            }
            Some(c @ (b'@' | b'*' | b'#' | b'?' | b'-' | b'$' | b'!')) => {
                self.pos += 1;
                Ok((c as char).to_string())
            }
            _ => Err(self.err_here("expected parameter name")),
        }
    }

    /// Lexes a backquoted command substitution. Cursor is on the backquote.
    fn read_backquote(&mut self) -> Result<WordPart> {
        let start = self.pos;
        self.pos += 1;
        let mut inner = String::new();
        loop {
            match self.peek_char() {
                None => return Err(ParseError::new("unterminated backquote", start)),
                Some(b'`') => {
                    self.pos += 1;
                    break;
                }
                Some(b'\\') => match self.char_at(self.pos + 1) {
                    Some(e @ (b'`' | b'\\' | b'$')) => {
                        self.pos += 2;
                        inner.push(e as char);
                    }
                    _ => {
                        self.pos += 1;
                        inner.push('\\');
                    }
                },
                Some(c) => {
                    let ch_len = utf8_len(c);
                    inner.push_str(&self.src[self.pos..self.pos + ch_len]);
                    self.pos += ch_len;
                }
            }
        }
        let prog = crate::parse(&inner).map_err(|e| {
            ParseError::new(
                format!("inside backquote substitution: {}", e.message),
                start,
            )
        })?;
        Ok(WordPart::CmdSubst(prog))
    }

    /// Reads the bodies of all pending here-documents. Called by the lexer
    /// immediately after consuming a newline.
    fn read_pending_heredocs(&mut self) -> Result<()> {
        let pending: Vec<PendingHeredoc> = std::mem::take(&mut self.pending_heredocs);
        for hd in pending {
            let mut body = String::new();
            loop {
                if self.pos >= self.bytes().len() {
                    return Err(ParseError::new(
                        format!("here-document delimited by `{}` not terminated", hd.delim),
                        self.pos,
                    ));
                }
                let line_start = self.pos;
                let nl = self.bytes()[self.pos..]
                    .iter()
                    .position(|&b| b == b'\n')
                    .map(|i| self.pos + i);
                let line_end = nl.unwrap_or(self.bytes().len());
                let raw_line = &self.src[line_start..line_end];
                let line = if hd.strip_tabs {
                    raw_line.trim_start_matches('\t')
                } else {
                    raw_line
                };
                self.pos = match nl {
                    Some(n) => n + 1,
                    None => line_end,
                };
                if line == hd.delim {
                    break;
                }
                body.push_str(line);
                body.push('\n');
            }
            let word = if hd.quoted {
                Word {
                    parts: if body.is_empty() {
                        Vec::new()
                    } else {
                        vec![WordPart::Literal(body)]
                    },
                }
            } else {
                Parser::new(&body).read_word(WordCtx::Heredoc)?
            };
            self.heredoc_bodies.push_back(word);
        }
        Ok(())
    }
}

pub(crate) fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}
