//! Token kinds produced by the lexer.

use jash_ast::{Span, Word};

/// A lexical token of the shell command language.
///
/// Word-internal structure (quoting, expansions) is resolved during lexing,
/// so `Word` carries a fully structured [`Word`] value rather than raw text.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// A (possibly structured) word.
    Word(Word),
    /// A digit string immediately preceding `<` or `>` (`2>file`).
    IoNumber(u32),
    /// `&&`
    AndIf,
    /// `||`
    OrIf,
    /// `;;`
    DSemi,
    /// `;`
    Semi,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `<`
    Less,
    /// `>`
    Great,
    /// `<<`
    DLess,
    /// `<<-`
    DLessDash,
    /// `>>`
    DGreat,
    /// `<&`
    LessAnd,
    /// `>&`
    GreatAnd,
    /// `<>`
    LessGreat,
    /// `>|`
    Clobber,
    /// A significant line break.
    Newline,
    /// End of input.
    Eof,
}

impl Tok {
    /// Short display name for error messages.
    pub fn describe(&self) -> String {
        match self {
            Tok::Word(w) => format!("word `{}`", jash_ast::unparse_word(w)),
            Tok::IoNumber(n) => format!("io number `{n}`"),
            Tok::AndIf => "`&&`".into(),
            Tok::OrIf => "`||`".into(),
            Tok::DSemi => "`;;`".into(),
            Tok::Semi => "`;`".into(),
            Tok::Amp => "`&`".into(),
            Tok::Pipe => "`|`".into(),
            Tok::LParen => "`(`".into(),
            Tok::RParen => "`)`".into(),
            Tok::Less => "`<`".into(),
            Tok::Great => "`>`".into(),
            Tok::DLess => "`<<`".into(),
            Tok::DLessDash => "`<<-`".into(),
            Tok::DGreat => "`>>`".into(),
            Tok::LessAnd => "`<&`".into(),
            Tok::GreatAnd => "`>&`".into(),
            Tok::LessGreat => "`<>`".into(),
            Tok::Clobber => "`>|`".into(),
            Tok::Newline => "newline".into(),
            Tok::Eof => "end of input".into(),
        }
    }

    /// True for tokens that start a redirection.
    pub fn is_redirect_op(&self) -> bool {
        matches!(
            self,
            Tok::Less
                | Tok::Great
                | Tok::DLess
                | Tok::DLessDash
                | Tok::DGreat
                | Tok::LessAnd
                | Tok::GreatAnd
                | Tok::LessGreat
                | Tok::Clobber
        )
    }
}

/// A token plus its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind/payload.
    pub tok: Tok,
    /// Source range the token was lexed from.
    pub span: Span,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn redirect_ops_classified() {
        assert!(Tok::DLess.is_redirect_op());
        assert!(Tok::Clobber.is_redirect_op());
        assert!(!Tok::Pipe.is_redirect_op());
        assert!(!Tok::Word(Word::literal("x")).is_redirect_op());
    }

    #[test]
    fn describe_is_humane() {
        assert_eq!(Tok::AndIf.describe(), "`&&`");
        assert!(Tok::Word(Word::literal("ls")).describe().contains("ls"));
    }
}
