//! Recursive-descent parser for the POSIX.1-2017 shell grammar.

use crate::error::{ParseError, Result};
use crate::token::{Tok, Token};
use jash_ast::{
    AndOrList, AndOrOp, Assignment, CaseArm, CaseClause, Command, CommandKind, ForClause,
    IfClause, ListItem, Pipeline, Program, Redirect, RedirectOp, SimpleCommand, Span, WhileClause,
    Word, WordPart,
};
use std::collections::VecDeque;

/// Reserved words recognized in command position.
const RESERVED: &[&str] = &[
    "if", "then", "else", "elif", "fi", "do", "done", "case", "esac", "while", "until", "for",
    "in", "{", "}", "!",
];

/// A here-document whose body has not been read yet.
pub(crate) struct PendingHeredoc {
    /// Delimiter after quote removal.
    pub delim: String,
    /// `<<-` strips leading tabs.
    pub strip_tabs: bool,
    /// Whether any part of the delimiter was quoted (inert body).
    pub quoted: bool,
}

/// Terminators for a compound list.
#[derive(Clone, Copy)]
struct Stops {
    words: &'static [&'static str],
    rparen: bool,
    dsemi: bool,
}

impl Stops {
    fn top() -> Self {
        Stops {
            words: &[],
            rparen: false,
            dsemi: false,
        }
    }
    fn words(words: &'static [&'static str]) -> Self {
        Stops {
            words,
            rparen: false,
            dsemi: false,
        }
    }
    fn rparen() -> Self {
        Stops {
            words: &[],
            rparen: true,
            dsemi: false,
        }
    }
    fn case_body() -> Self {
        Stops {
            words: &["esac"],
            rparen: false,
            dsemi: true,
        }
    }
}

/// The combined lexer/parser.
///
/// Lexing methods live in the `lex` module; the grammar lives here. The two
/// are one struct because shell lexing re-enters the parser (command
/// substitution) and the parser steers the lexer (here-document bodies).
pub struct Parser<'a> {
    pub(crate) src: &'a str,
    pub(crate) pos: usize,
    buf: VecDeque<Token>,
    pub(crate) pending_heredocs: Vec<PendingHeredoc>,
    pub(crate) heredoc_bodies: VecDeque<Word>,
    last_end: usize,
}

impl<'a> Parser<'a> {
    /// Creates a parser over `src`.
    pub fn new(src: &'a str) -> Self {
        Parser {
            src,
            pos: 0,
            buf: VecDeque::new(),
            pending_heredocs: Vec::new(),
            heredoc_bodies: VecDeque::new(),
            last_end: 0,
        }
    }

    fn new_at(src: &'a str, pos: usize) -> Self {
        let mut p = Parser::new(src);
        p.pos = pos;
        p
    }

    pub(crate) fn bytes(&self) -> &'a [u8] {
        self.src.as_bytes()
    }

    /// Parses a complete program; the entry point behind [`crate::parse`].
    pub fn parse_program(mut self) -> Result<Program> {
        let mut prog = self.compound_list(Stops::top())?;
        let t = self.peek()?.clone();
        if t.tok != Tok::Eof {
            return Err(ParseError::new(
                format!("unexpected {}", t.tok.describe()),
                t.span.start,
            ));
        }
        self.fixup_heredocs(&mut prog)?;
        Ok(prog)
    }

    /// Parses `$( ... )` content starting at the current cursor (just past
    /// the opening paren); consumes the closing paren.
    pub(crate) fn parse_cmdsubst(&mut self) -> Result<Program> {
        let mut sub = Parser::new_at(self.src, self.pos);
        let mut prog = sub.compound_list(Stops::rparen())?;
        let t = sub.next()?;
        if t.tok != Tok::RParen {
            return Err(ParseError::new(
                format!(
                    "expected `)` to close command substitution, found {}",
                    t.tok.describe()
                ),
                t.span.start,
            ));
        }
        sub.fixup_heredocs(&mut prog)?;
        self.pos = sub.pos;
        Ok(prog)
    }

    // ------------------------------------------------------------------
    // Token plumbing
    // ------------------------------------------------------------------

    fn fill(&mut self, n: usize) -> Result<()> {
        while self.buf.len() <= n {
            let t = self.lex_token()?;
            self.buf.push_back(t);
        }
        Ok(())
    }

    fn peek(&mut self) -> Result<&Token> {
        self.fill(0)?;
        Ok(&self.buf[0])
    }

    fn peek2(&mut self) -> Result<&Token> {
        self.fill(1)?;
        Ok(&self.buf[1])
    }

    fn next(&mut self) -> Result<Token> {
        self.fill(0)?;
        let t = self.buf.pop_front().expect("buffer filled");
        self.last_end = t.span.end;
        Ok(t)
    }

    fn skip_newlines(&mut self) -> Result<()> {
        while self.peek()?.tok == Tok::Newline {
            self.next()?;
        }
        Ok(())
    }

    fn unexpected<T>(&mut self, what: &str) -> Result<T> {
        let t = self.peek()?.clone();
        Err(ParseError::new(
            format!("expected {what}, found {}", t.tok.describe()),
            t.span.start,
        ))
    }

    fn expect_reserved(&mut self, kw: &str) -> Result<()> {
        let t = self.next()?;
        if word_literal(&t) == Some(kw) {
            Ok(())
        } else {
            Err(ParseError::new(
                format!("expected `{kw}`, found {}", t.tok.describe()),
                t.span.start,
            ))
        }
    }

    // ------------------------------------------------------------------
    // Grammar
    // ------------------------------------------------------------------

    fn at_stop(&mut self, stops: Stops) -> Result<bool> {
        let t = self.peek()?;
        Ok(match &t.tok {
            Tok::Eof => true,
            Tok::RParen => stops.rparen,
            Tok::DSemi => stops.dsemi,
            Tok::Word(w) => match w.as_literal() {
                Some(lit) => stops.words.contains(&lit),
                None => false,
            },
            _ => false,
        })
    }

    fn compound_list(&mut self, stops: Stops) -> Result<Program> {
        let mut items = Vec::new();
        loop {
            self.skip_newlines()?;
            if self.at_stop(stops)? {
                break;
            }
            let and_or = self.parse_and_or()?;
            let mut background = false;
            match self.peek()?.tok {
                Tok::Amp => {
                    self.next()?;
                    background = true;
                }
                Tok::Semi => {
                    self.next()?;
                }
                Tok::Newline => {
                    // Consumed at the top of the loop.
                }
                _ => {
                    if !self.at_stop(stops)? {
                        return self.unexpected("`;`, `&`, or newline after command");
                    }
                }
            }
            items.push(ListItem { and_or, background });
        }
        Ok(Program { items })
    }

    fn parse_and_or(&mut self) -> Result<AndOrList> {
        let first = self.parse_pipeline()?;
        let mut rest = Vec::new();
        loop {
            let op = match self.peek()?.tok {
                Tok::AndIf => AndOrOp::And,
                Tok::OrIf => AndOrOp::Or,
                _ => break,
            };
            self.next()?;
            self.skip_newlines()?;
            rest.push((op, self.parse_pipeline()?));
        }
        Ok(AndOrList { first, rest })
    }

    fn parse_pipeline(&mut self) -> Result<Pipeline> {
        let mut negated = false;
        while word_literal(self.peek()?) == Some("!") {
            self.next()?;
            negated = !negated;
        }
        let mut commands = vec![self.parse_command()?];
        while self.peek()?.tok == Tok::Pipe {
            self.next()?;
            self.skip_newlines()?;
            commands.push(self.parse_command()?);
        }
        Ok(Pipeline { negated, commands })
    }

    fn parse_command(&mut self) -> Result<Command> {
        let start = self.peek()?.span.start;
        let mut cmd = match &self.peek()?.tok {
            Tok::LParen => {
                self.next()?;
                let body = self.compound_list(Stops::rparen())?;
                let t = self.next()?;
                if t.tok != Tok::RParen {
                    return Err(ParseError::new(
                        format!("expected `)`, found {}", t.tok.describe()),
                        t.span.start,
                    ));
                }
                Command::new(CommandKind::Subshell(body))
            }
            Tok::Word(w) => match w.as_literal() {
                Some("if") => self.parse_if()?,
                Some("while") => self.parse_while(false)?,
                Some("until") => self.parse_while(true)?,
                Some("for") => self.parse_for()?,
                Some("case") => self.parse_case()?,
                Some("{") => self.parse_brace_group()?,
                Some(kw) if RESERVED.contains(&kw) && kw != "!" => {
                    return self.unexpected("a command");
                }
                _ => {
                    // Function definition: `name ( ) body`.
                    let is_funcdef = w
                        .as_literal()
                        .is_some_and(is_valid_name)
                        .then(|| self.peek2().map(|t| t.tok == Tok::LParen))
                        .transpose()?
                        .unwrap_or(false);
                    if is_funcdef {
                        self.parse_funcdef()?
                    } else {
                        self.parse_simple()?
                    }
                }
            },
            Tok::IoNumber(_) => self.parse_simple()?,
            t if t.is_redirect_op() => self.parse_simple()?,
            _ => return self.unexpected("a command"),
        };
        // Redirects following compound commands.
        if !matches!(cmd.kind, CommandKind::Simple(_)) {
            loop {
                let t = self.peek()?;
                match &t.tok {
                    Tok::IoNumber(n) => {
                        let n = *n;
                        self.next()?;
                        let r = self.parse_redirect(Some(n))?;
                        cmd.redirects.push(r);
                    }
                    t if t.is_redirect_op() => {
                        let r = self.parse_redirect(None)?;
                        cmd.redirects.push(r);
                    }
                    _ => break,
                }
            }
        }
        cmd.span = Span::new(start, self.last_end);
        Ok(cmd)
    }

    fn parse_simple(&mut self) -> Result<Command> {
        let mut assignments = Vec::new();
        let mut words: Vec<Word> = Vec::new();
        let mut redirects = Vec::new();
        loop {
            let t = self.peek()?;
            match &t.tok {
                Tok::IoNumber(n) => {
                    let n = *n;
                    self.next()?;
                    redirects.push(self.parse_redirect(Some(n))?);
                }
                tok if tok.is_redirect_op() => {
                    redirects.push(self.parse_redirect(None)?);
                }
                Tok::Word(w) => {
                    if words.is_empty() {
                        if let Some(asg) = split_assignment(w) {
                            self.next()?;
                            assignments.push(asg);
                            continue;
                        }
                    }
                    let w = w.clone();
                    self.next()?;
                    words.push(w);
                }
                _ => break,
            }
        }
        if assignments.is_empty() && words.is_empty() && redirects.is_empty() {
            return self.unexpected("a command");
        }
        let mut cmd = Command::new(CommandKind::Simple(SimpleCommand { assignments, words }));
        cmd.redirects = redirects;
        Ok(cmd)
    }

    fn parse_redirect(&mut self, fd: Option<u32>) -> Result<Redirect> {
        let t = self.next()?;
        let op = match t.tok {
            Tok::Less => RedirectOp::Read,
            Tok::Great => RedirectOp::Write,
            Tok::DGreat => RedirectOp::Append,
            Tok::Clobber => RedirectOp::Clobber,
            Tok::LessGreat => RedirectOp::ReadWrite,
            Tok::LessAnd => RedirectOp::DupRead,
            Tok::GreatAnd => RedirectOp::DupWrite,
            Tok::DLess => RedirectOp::HereDoc { strip_tabs: false },
            Tok::DLessDash => RedirectOp::HereDoc { strip_tabs: true },
            other => {
                return Err(ParseError::new(
                    format!("expected a redirection operator, found {}", other.describe()),
                    t.span.start,
                ))
            }
        };
        let target_tok = self.next()?;
        let Tok::Word(target) = target_tok.tok else {
            return Err(ParseError::new(
                format!(
                    "expected a redirection target, found {}",
                    target_tok.tok.describe()
                ),
                target_tok.span.start,
            ));
        };
        if let RedirectOp::HereDoc { strip_tabs } = op {
            let quoted = target.parts.iter().any(|p| {
                matches!(
                    p,
                    WordPart::SingleQuoted(_) | WordPart::DoubleQuoted(_) | WordPart::Escaped(_)
                )
            });
            let Some(delim) = target.static_text() else {
                return Err(ParseError::new(
                    "here-document delimiter must not contain expansions",
                    target_tok.span.start,
                ));
            };
            self.pending_heredocs.push(PendingHeredoc {
                delim,
                strip_tabs,
                quoted,
            });
            return Ok(Redirect {
                fd,
                op,
                target: Word::empty(),
                heredoc_quoted: quoted,
            });
        }
        Ok(Redirect {
            fd,
            op,
            target,
            heredoc_quoted: false,
        })
    }

    fn parse_if(&mut self) -> Result<Command> {
        self.expect_reserved("if")?;
        let cond = self.compound_list(Stops::words(&["then"]))?;
        self.expect_reserved("then")?;
        let then_body = self.compound_list(Stops::words(&["elif", "else", "fi"]))?;
        let mut elifs = Vec::new();
        let mut else_body = None;
        loop {
            let t = self.peek()?;
            match word_literal(t) {
                Some("elif") => {
                    self.next()?;
                    let c = self.compound_list(Stops::words(&["then"]))?;
                    self.expect_reserved("then")?;
                    let b = self.compound_list(Stops::words(&["elif", "else", "fi"]))?;
                    elifs.push((c, b));
                }
                Some("else") => {
                    self.next()?;
                    else_body = Some(self.compound_list(Stops::words(&["fi"]))?);
                    self.expect_reserved("fi")?;
                    break;
                }
                Some("fi") => {
                    self.next()?;
                    break;
                }
                _ => return self.unexpected("`elif`, `else`, or `fi`"),
            }
        }
        Ok(Command::new(CommandKind::If(IfClause {
            cond,
            then_body,
            elifs,
            else_body,
        })))
    }

    fn parse_while(&mut self, until: bool) -> Result<Command> {
        self.expect_reserved(if until { "until" } else { "while" })?;
        let cond = self.compound_list(Stops::words(&["do"]))?;
        self.expect_reserved("do")?;
        let body = self.compound_list(Stops::words(&["done"]))?;
        self.expect_reserved("done")?;
        Ok(Command::new(CommandKind::While(WhileClause {
            until,
            cond,
            body,
        })))
    }

    fn parse_for(&mut self) -> Result<Command> {
        self.expect_reserved("for")?;
        let name_tok = self.next()?;
        let var = match word_literal(&name_tok) {
            Some(n) if is_valid_name(n) => n.to_string(),
            _ => {
                return Err(ParseError::new(
                    "expected a variable name after `for`",
                    name_tok.span.start,
                ))
            }
        };
        self.skip_newlines()?;
        let mut words = None;
        if word_literal(self.peek()?) == Some("in") {
            self.next()?;
            let mut list = Vec::new();
            loop {
                match &self.peek()?.tok {
                    Tok::Word(w) => {
                        let w = w.clone();
                        self.next()?;
                        list.push(w);
                    }
                    Tok::Semi | Tok::Newline => {
                        self.next()?;
                        break;
                    }
                    _ => return self.unexpected("a word, `;`, or newline in `for` list"),
                }
            }
            words = Some(list);
        } else if self.peek()?.tok == Tok::Semi {
            // `for x; do ...` — implicit "$@".
            self.next()?;
        }
        self.skip_newlines()?;
        self.expect_reserved("do")?;
        let body = self.compound_list(Stops::words(&["done"]))?;
        self.expect_reserved("done")?;
        Ok(Command::new(CommandKind::For(ForClause {
            var,
            words,
            body,
        })))
    }

    fn parse_case(&mut self) -> Result<Command> {
        self.expect_reserved("case")?;
        let word_tok = self.next()?;
        let Tok::Word(word) = word_tok.tok else {
            return Err(ParseError::new(
                "expected a word after `case`",
                word_tok.span.start,
            ));
        };
        self.skip_newlines()?;
        self.expect_reserved("in")?;
        self.skip_newlines()?;
        let mut arms = Vec::new();
        loop {
            if word_literal(self.peek()?) == Some("esac") {
                self.next()?;
                break;
            }
            if self.peek()?.tok == Tok::LParen {
                self.next()?;
            }
            let mut patterns = Vec::new();
            loop {
                let t = self.next()?;
                let Tok::Word(p) = t.tok else {
                    return Err(ParseError::new(
                        format!("expected a case pattern, found {}", t.tok.describe()),
                        t.span.start,
                    ));
                };
                patterns.push(p);
                if self.peek()?.tok == Tok::Pipe {
                    self.next()?;
                } else {
                    break;
                }
            }
            let t = self.next()?;
            if t.tok != Tok::RParen {
                return Err(ParseError::new(
                    format!("expected `)` after case pattern, found {}", t.tok.describe()),
                    t.span.start,
                ));
            }
            let body = self.compound_list(Stops::case_body())?;
            arms.push(CaseArm { patterns, body });
            if self.peek()?.tok == Tok::DSemi {
                self.next()?;
                self.skip_newlines()?;
            } else {
                self.skip_newlines()?;
                self.expect_reserved("esac")?;
                break;
            }
        }
        Ok(Command::new(CommandKind::Case(CaseClause { word, arms })))
    }

    fn parse_brace_group(&mut self) -> Result<Command> {
        self.expect_reserved("{")?;
        let body = self.compound_list(Stops::words(&["}"]))?;
        self.expect_reserved("}")?;
        Ok(Command::new(CommandKind::BraceGroup(body)))
    }

    fn parse_funcdef(&mut self) -> Result<Command> {
        let name_tok = self.next()?;
        let name = word_literal(&name_tok)
            .expect("checked by caller")
            .to_string();
        let lp = self.next()?;
        debug_assert_eq!(lp.tok, Tok::LParen);
        let rp = self.next()?;
        if rp.tok != Tok::RParen {
            return Err(ParseError::new(
                format!("expected `)` in function definition, found {}", rp.tok.describe()),
                rp.span.start,
            ));
        }
        self.skip_newlines()?;
        let body = self.parse_command()?;
        Ok(Command::new(CommandKind::FunctionDef {
            name,
            body: Box::new(body),
        }))
    }

    // ------------------------------------------------------------------
    // Here-document fixup
    // ------------------------------------------------------------------

    /// Replaces here-document sentinel targets with the bodies collected by
    /// the lexer, in source order.
    fn fixup_heredocs(&mut self, prog: &mut Program) -> Result<()> {
        fn prog_walk(p: &mut Program, bodies: &mut VecDeque<Word>) -> std::result::Result<(), ()> {
            for item in &mut p.items {
                pipe_walk(&mut item.and_or.first, bodies)?;
                for (_, pl) in &mut item.and_or.rest {
                    pipe_walk(pl, bodies)?;
                }
            }
            Ok(())
        }
        fn pipe_walk(
            pl: &mut Pipeline,
            bodies: &mut VecDeque<Word>,
        ) -> std::result::Result<(), ()> {
            for c in &mut pl.commands {
                cmd_walk(c, bodies)?;
            }
            Ok(())
        }
        fn cmd_walk(c: &mut Command, bodies: &mut VecDeque<Word>) -> std::result::Result<(), ()> {
            // Command substitutions resolve their own here-documents, so
            // words are deliberately not visited here.
            match &mut c.kind {
                CommandKind::Simple(_) => {}
                CommandKind::BraceGroup(p) | CommandKind::Subshell(p) => prog_walk(p, bodies)?,
                CommandKind::If(cl) => {
                    prog_walk(&mut cl.cond, bodies)?;
                    prog_walk(&mut cl.then_body, bodies)?;
                    for (a, b) in &mut cl.elifs {
                        prog_walk(a, bodies)?;
                        prog_walk(b, bodies)?;
                    }
                    if let Some(e) = &mut cl.else_body {
                        prog_walk(e, bodies)?;
                    }
                }
                CommandKind::For(cl) => prog_walk(&mut cl.body, bodies)?,
                CommandKind::While(cl) => {
                    prog_walk(&mut cl.cond, bodies)?;
                    prog_walk(&mut cl.body, bodies)?;
                }
                CommandKind::Case(cl) => {
                    for arm in &mut cl.arms {
                        prog_walk(&mut arm.body, bodies)?;
                    }
                }
                CommandKind::FunctionDef { body, .. } => cmd_walk(body, bodies)?,
            }
            for r in &mut c.redirects {
                if matches!(r.op, RedirectOp::HereDoc { .. }) {
                    match bodies.pop_front() {
                        Some(w) => r.target = w,
                        None => return Err(()),
                    }
                }
            }
            Ok(())
        }
        // NOTE: redirects are visited after the body walk above because
        // compound redirects lex after the compound body in source order.
        prog_walk(prog, &mut self.heredoc_bodies).map_err(|()| {
            ParseError::new("here-document not terminated before end of input", self.pos)
        })?;
        if !self.heredoc_bodies.is_empty() {
            return Err(ParseError::new(
                "internal error: unattached here-document body",
                self.pos,
            ));
        }
        Ok(())
    }
}

/// Returns the word text if the token is a plain unquoted literal word.
fn word_literal(t: &Token) -> Option<&str> {
    match &t.tok {
        Tok::Word(w) => w.as_literal(),
        _ => None,
    }
}

/// Checks `[A-Za-z_][A-Za-z0-9_]*`.
pub(crate) fn is_valid_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// If `w` looks like `name=value`, splits it into an [`Assignment`].
fn split_assignment(w: &Word) -> Option<Assignment> {
    let WordPart::Literal(first) = w.parts.first()? else {
        return None;
    };
    let eq = first.find('=')?;
    let name = &first[..eq];
    if !is_valid_name(name) {
        return None;
    }
    let rest = &first[eq + 1..];
    let mut parts = Vec::new();
    if !rest.is_empty() {
        // Tilde expansion applies at the start of an assignment value.
        if let Some(stripped) = rest.strip_prefix('~') {
            let (user, tail) = match stripped.find('/') {
                Some(i) => (&stripped[..i], &stripped[i..]),
                None => (stripped, ""),
            };
            if user.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-' || c == '.')
            {
                parts.push(WordPart::Tilde(if user.is_empty() {
                    None
                } else {
                    Some(user.to_string())
                }));
                if !tail.is_empty() {
                    parts.push(WordPart::Literal(tail.to_string()));
                }
            } else {
                parts.push(WordPart::Literal(rest.to_string()));
            }
        } else {
            parts.push(WordPart::Literal(rest.to_string()));
        }
    }
    parts.extend(w.parts[1..].iter().cloned());
    Some(Assignment {
        name: name.to_string(),
        value: Word { parts },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_names() {
        assert!(is_valid_name("_x1"));
        assert!(is_valid_name("PATH"));
        assert!(!is_valid_name("1x"));
        assert!(!is_valid_name(""));
        assert!(!is_valid_name("a-b"));
    }

    #[test]
    fn assignment_split_basic() {
        let w = Word::literal("FOO=bar");
        let a = split_assignment(&w).unwrap();
        assert_eq!(a.name, "FOO");
        assert_eq!(a.value.as_literal(), Some("bar"));
    }

    #[test]
    fn assignment_split_with_expansion_tail() {
        let w = Word {
            parts: vec![
                WordPart::Literal("FOO=".into()),
                WordPart::Param(jash_ast::ParamExp::plain("x")),
            ],
        };
        let a = split_assignment(&w).unwrap();
        assert_eq!(a.name, "FOO");
        assert!(a.value.has_expansion());
    }

    #[test]
    fn assignment_split_tilde_value() {
        let w = Word::literal("HOMEDIR=~/src");
        let a = split_assignment(&w).unwrap();
        assert!(matches!(a.value.parts[0], WordPart::Tilde(None)));
    }

    #[test]
    fn non_assignment_not_split() {
        assert!(split_assignment(&Word::literal("=x")).is_none());
        assert!(split_assignment(&Word::literal("1a=x")).is_none());
        assert!(split_assignment(&Word::literal("noeq")).is_none());
    }
}
