//! POSIX shell parser: script text to [`jash_ast::Program`] and back.
//!
//! This crate is the reproduction's *libdash* (enabler E1 in the HotOS '21
//! paper): a linkable parsing library supporting both parsing shell scripts
//! to ASTs and — together with [`jash_ast::unparse`] — unparsing those ASTs
//! back to scripts. The grammar follows POSIX.1-2017 §2 (Shell Command
//! Language): quoting, all parameter-expansion operators, command and
//! arithmetic substitution, here-documents, compound commands, and function
//! definitions.
//!
//! # Examples
//!
//! ```
//! let prog = jash_parser::parse("cut -c 89-92 | grep -v 999 | sort -rn | head -n1").unwrap();
//! assert_eq!(prog.items.len(), 1);
//! assert_eq!(prog.items[0].and_or.first.commands.len(), 4);
//! let text = jash_ast::unparse(&prog);
//! let again = jash_parser::parse(&text).unwrap();
//! assert_eq!(jash_ast::unparse(&again), text);
//! ```

mod arith;
mod error;
mod lex;
mod parser;
mod token;

pub use arith::parse_arith;
pub use error::{ParseError, Result};
pub use parser::Parser;

use jash_ast::Program;

/// Parses a complete shell script.
pub fn parse(src: &str) -> Result<Program> {
    Parser::new(src).parse_program()
}

/// Parses a script and panics with a readable message on error.
///
/// Intended for tests and examples where the script is a trusted constant.
pub fn parse_unwrap(src: &str) -> Program {
    match parse(src) {
        Ok(p) => p,
        Err(e) => panic!("{}", e.display_with_source(src)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jash_ast::*;

    fn first_simple(prog: &Program) -> &SimpleCommand {
        match &prog.items[0].and_or.first.commands[0].kind {
            CommandKind::Simple(sc) => sc,
            other => panic!("expected simple command, got {other:?}"),
        }
    }

    fn roundtrip(src: &str) -> String {
        let p1 = parse_unwrap(src);
        let text = unparse(&p1);
        let p2 = match parse(&text) {
            Ok(p) => p,
            Err(e) => panic!("reparse of `{text}` failed: {e}"),
        };
        let (mut a, mut b) = (p1, p2);
        visit::strip_spans(&mut a);
        visit::strip_spans(&mut b);
        assert_eq!(a, b, "roundtrip mismatch for `{src}` via `{text}`");
        text
    }

    #[test]
    fn empty_and_blank_programs() {
        assert!(parse("").unwrap().items.is_empty());
        assert!(parse("\n\n  \n").unwrap().items.is_empty());
        assert!(parse("# just a comment\n").unwrap().items.is_empty());
    }

    #[test]
    fn simple_command_words() {
        let p = parse_unwrap("echo hello world");
        let sc = first_simple(&p);
        assert_eq!(sc.words.len(), 3);
        assert_eq!(sc.words[0].as_literal(), Some("echo"));
    }

    #[test]
    fn pipeline_stages() {
        let p = parse_unwrap("cat f | tr a b | sort | uniq -c");
        assert_eq!(p.items[0].and_or.first.commands.len(), 4);
        roundtrip("cat f | tr a b | sort | uniq -c");
    }

    #[test]
    fn and_or_chain() {
        let p = parse_unwrap("a && b || c");
        let ao = &p.items[0].and_or;
        assert_eq!(ao.rest.len(), 2);
        assert_eq!(ao.rest[0].0, AndOrOp::And);
        assert_eq!(ao.rest[1].0, AndOrOp::Or);
    }

    #[test]
    fn background_and_sequence() {
        let p = parse_unwrap("a & b; c");
        assert_eq!(p.items.len(), 3);
        assert!(p.items[0].background);
        assert!(!p.items[1].background);
    }

    #[test]
    fn negated_pipeline() {
        let p = parse_unwrap("! grep -q x f");
        assert!(p.items[0].and_or.first.negated);
        let p = parse_unwrap("! ! true");
        assert!(!p.items[0].and_or.first.negated);
    }

    #[test]
    fn newlines_separate_commands() {
        let p = parse_unwrap("echo a\necho b\n\necho c\n");
        assert_eq!(p.items.len(), 3);
    }

    #[test]
    fn assignments_before_words() {
        let p = parse_unwrap("FOO=1 BAR=two env");
        let sc = first_simple(&p);
        assert_eq!(sc.assignments.len(), 2);
        assert_eq!(sc.assignments[1].name, "BAR");
        assert_eq!(sc.words.len(), 1);
    }

    #[test]
    fn assignment_after_command_word_is_a_word() {
        let p = parse_unwrap("env FOO=1");
        let sc = first_simple(&p);
        assert!(sc.assignments.is_empty());
        assert_eq!(sc.words.len(), 2);
    }

    #[test]
    fn quoting_forms() {
        let p = parse_unwrap(r#"echo 'single' "double" back\slash"#);
        let sc = first_simple(&p);
        assert!(matches!(sc.words[1].parts[0], WordPart::SingleQuoted(_)));
        assert!(matches!(sc.words[2].parts[0], WordPart::DoubleQuoted(_)));
        assert!(sc.words[3]
            .parts
            .iter()
            .any(|p| matches!(p, WordPart::Escaped('s'))));
    }

    #[test]
    fn dollar_variants() {
        let p = parse_unwrap("echo $FOO ${BAR} $1 $12 $@ $# $?");
        let sc = first_simple(&p);
        let name = |i: usize| match &sc.words[i].parts[0] {
            WordPart::Param(pe) => pe.name.clone(),
            other => panic!("{other:?}"),
        };
        assert_eq!(name(1), "FOO");
        assert_eq!(name(2), "BAR");
        assert_eq!(name(3), "1");
        // `$12` is `${1}2`.
        assert_eq!(name(4), "1");
        assert_eq!(sc.words[4].parts.len(), 2);
        assert_eq!(name(5), "@");
        assert_eq!(name(6), "#");
        assert_eq!(name(7), "?");
    }

    #[test]
    fn param_operators() {
        let p =
            parse_unwrap("echo ${x:-def} ${y:=set} ${z:?msg} ${w:+alt} ${#v} ${a%.txt} ${b##*/}");
        let sc = first_simple(&p);
        let op = |i: usize| match &sc.words[i].parts[0] {
            WordPart::Param(pe) => pe.op.clone(),
            other => panic!("{other:?}"),
        };
        assert!(matches!(op(1), ParamOp::Default { colon: true, .. }));
        assert!(matches!(op(2), ParamOp::Assign { colon: true, .. }));
        assert!(matches!(op(3), ParamOp::Error { colon: true, .. }));
        assert!(matches!(op(4), ParamOp::Alt { colon: true, .. }));
        assert!(matches!(op(5), ParamOp::Length));
        assert!(matches!(op(6), ParamOp::RemoveSmallestSuffix(_)));
        assert!(matches!(op(7), ParamOp::RemoveLargestPrefix(_)));
    }

    #[test]
    fn param_operators_without_colon() {
        let p = parse_unwrap("echo ${x-d} ${y+a}");
        let sc = first_simple(&p);
        assert!(matches!(
            &sc.words[1].parts[0],
            WordPart::Param(ParamExp {
                op: ParamOp::Default { colon: false, .. },
                ..
            })
        ));
    }

    #[test]
    fn special_braced_params() {
        let p = parse_unwrap("echo ${#} ${10} ${#x}");
        let sc = first_simple(&p);
        match &sc.words[1].parts[0] {
            WordPart::Param(pe) => {
                assert_eq!(pe.name, "#");
                assert!(matches!(pe.op, ParamOp::Plain));
            }
            other => panic!("{other:?}"),
        }
        match &sc.words[2].parts[0] {
            WordPart::Param(pe) => assert_eq!(pe.name, "10"),
            other => panic!("{other:?}"),
        }
        match &sc.words[3].parts[0] {
            WordPart::Param(pe) => assert!(matches!(pe.op, ParamOp::Length)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn command_substitution() {
        let p = parse_unwrap("echo $(ls -l | wc -l)");
        let sc = first_simple(&p);
        match &sc.words[1].parts[0] {
            WordPart::CmdSubst(prog) => {
                assert_eq!(prog.items[0].and_or.first.commands.len(), 2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn nested_command_substitution() {
        let p = parse_unwrap("echo $(echo $(echo hi))");
        assert_eq!(p.command_count(), 3);
    }

    #[test]
    fn backquote_substitution() {
        let p = parse_unwrap("echo `ls -l`");
        let sc = first_simple(&p);
        assert!(matches!(sc.words[1].parts[0], WordPart::CmdSubst(_)));
    }

    #[test]
    fn backquote_with_escapes() {
        let p = parse_unwrap(r"echo `echo \`echo hi\``");
        assert_eq!(p.command_count(), 3);
    }

    #[test]
    fn arithmetic_expansion() {
        let p = parse_unwrap("echo $((1 + 2 * x))");
        let sc = first_simple(&p);
        assert!(matches!(sc.words[1].parts[0], WordPart::Arith(_)));
    }

    #[test]
    fn arith_with_inner_parens() {
        let p = parse_unwrap("echo $(( (1+2) * 3 ))");
        let sc = first_simple(&p);
        assert!(matches!(sc.words[1].parts[0], WordPart::Arith(_)));
    }

    #[test]
    fn dollar_paren_paren_subshell_fallback() {
        // Not arithmetic: a command substitution that starts with a subshell.
        let p = parse_unwrap("echo $( (echo a) )");
        let sc = first_simple(&p);
        assert!(matches!(sc.words[1].parts[0], WordPart::CmdSubst(_)));
    }

    #[test]
    fn redirections() {
        let p = parse_unwrap("sort <in >out 2>>err 3<&1 2>&- <>rw");
        let cmd = &p.items[0].and_or.first.commands[0];
        assert_eq!(cmd.redirects.len(), 6);
        assert_eq!(cmd.redirects[0].op, RedirectOp::Read);
        assert_eq!(cmd.redirects[1].op, RedirectOp::Write);
        assert_eq!(cmd.redirects[2].op, RedirectOp::Append);
        assert_eq!(cmd.redirects[2].fd, Some(2));
        assert_eq!(cmd.redirects[3].op, RedirectOp::DupRead);
        assert_eq!(cmd.redirects[3].fd, Some(3));
        assert_eq!(cmd.redirects[4].op, RedirectOp::DupWrite);
        assert_eq!(cmd.redirects[5].op, RedirectOp::ReadWrite);
    }

    #[test]
    fn clobber_redirect() {
        let p = parse_unwrap("echo x >|f");
        let cmd = &p.items[0].and_or.first.commands[0];
        assert_eq!(cmd.redirects[0].op, RedirectOp::Clobber);
    }

    #[test]
    fn io_number_vs_word() {
        // `2>x` is fd 2; `2 >x` is the word `2` then a redirect.
        let p = parse_unwrap("echo 2>x");
        let sc = first_simple(&p);
        assert_eq!(sc.words.len(), 1);
        let p = parse_unwrap("echo 2 >x");
        let sc = first_simple(&p);
        assert_eq!(sc.words.len(), 2);
    }

    #[test]
    fn heredoc_basic() {
        let p = parse_unwrap("cat <<EOF\nhello $USER\nEOF\n");
        let cmd = &p.items[0].and_or.first.commands[0];
        let r = &cmd.redirects[0];
        assert!(matches!(r.op, RedirectOp::HereDoc { strip_tabs: false }));
        assert!(!r.heredoc_quoted);
        assert!(r.target.has_expansion());
    }

    #[test]
    fn heredoc_quoted_is_inert() {
        let p = parse_unwrap("cat <<'EOF'\nhello $USER\nEOF\n");
        let r = &p.items[0].and_or.first.commands[0].redirects[0];
        assert!(r.heredoc_quoted);
        assert!(!r.target.has_expansion());
        assert_eq!(r.target.static_text().as_deref(), Some("hello $USER\n"));
    }

    #[test]
    fn heredoc_strip_tabs() {
        let p = parse_unwrap("cat <<-END\n\t\tindented\n\tEND\n");
        let r = &p.items[0].and_or.first.commands[0].redirects[0];
        assert_eq!(r.target.static_text().as_deref(), Some("indented\n"));
    }

    #[test]
    fn two_heredocs_one_line() {
        let p = parse_unwrap("cat <<A <<B\nbody-a\nA\nbody-b\nB\n");
        let cmd = &p.items[0].and_or.first.commands[0];
        assert_eq!(
            cmd.redirects[0].target.static_text().as_deref(),
            Some("body-a\n")
        );
        assert_eq!(
            cmd.redirects[1].target.static_text().as_deref(),
            Some("body-b\n")
        );
    }

    #[test]
    fn heredocs_across_pipeline() {
        let p = parse_unwrap("cat <<A | rev <<B\naaa\nA\nbbb\nB\n");
        let cmds = &p.items[0].and_or.first.commands;
        assert_eq!(
            cmds[0].redirects[0].target.static_text().as_deref(),
            Some("aaa\n")
        );
        assert_eq!(
            cmds[1].redirects[0].target.static_text().as_deref(),
            Some("bbb\n")
        );
    }

    #[test]
    fn unterminated_heredoc_errors() {
        assert!(parse("cat <<EOF\nno end").is_err());
        assert!(parse("cat <<EOF").is_err());
    }

    #[test]
    fn if_clause_full() {
        let p = parse_unwrap("if a; then b; elif c; then d; else e; fi");
        match &p.items[0].and_or.first.commands[0].kind {
            CommandKind::If(c) => {
                assert_eq!(c.elifs.len(), 1);
                assert!(c.else_body.is_some());
            }
            other => panic!("{other:?}"),
        }
        roundtrip("if a; then b; elif c; then d; else e; fi");
    }

    #[test]
    fn while_and_until() {
        let p = parse_unwrap("while test -f x; do sleep 1; done");
        assert!(matches!(
            &p.items[0].and_or.first.commands[0].kind,
            CommandKind::While(WhileClause { until: false, .. })
        ));
        let p = parse_unwrap("until test -f x; do sleep 1; done");
        assert!(matches!(
            &p.items[0].and_or.first.commands[0].kind,
            CommandKind::While(WhileClause { until: true, .. })
        ));
    }

    #[test]
    fn for_with_words() {
        let p = parse_unwrap("for f in a b c; do echo $f; done");
        match &p.items[0].and_or.first.commands[0].kind {
            CommandKind::For(c) => {
                assert_eq!(c.var, "f");
                assert_eq!(c.words.as_ref().unwrap().len(), 3);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn for_without_in_uses_positional() {
        let p = parse_unwrap("for f; do echo $f; done");
        match &p.items[0].and_or.first.commands[0].kind {
            CommandKind::For(c) => assert!(c.words.is_none()),
            other => panic!("{other:?}"),
        }
        let p = parse_unwrap("for f\ndo echo $f; done");
        match &p.items[0].and_or.first.commands[0].kind {
            CommandKind::For(c) => assert!(c.words.is_none()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn case_clause() {
        let p = parse_unwrap("case $x in a|b) echo ab;; *) echo other;; esac");
        match &p.items[0].and_or.first.commands[0].kind {
            CommandKind::Case(c) => {
                assert_eq!(c.arms.len(), 2);
                assert_eq!(c.arms[0].patterns.len(), 2);
            }
            other => panic!("{other:?}"),
        }
        roundtrip("case $x in a|b) echo ab;; *) echo other;; esac");
    }

    #[test]
    fn case_with_paren_patterns_and_no_trailing_dsemi() {
        let p = parse_unwrap("case x in (a) echo a;; (b) echo b\nesac");
        match &p.items[0].and_or.first.commands[0].kind {
            CommandKind::Case(c) => assert_eq!(c.arms.len(), 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn case_empty_arm() {
        let p = parse_unwrap("case x in a) ;; esac");
        match &p.items[0].and_or.first.commands[0].kind {
            CommandKind::Case(c) => assert!(c.arms[0].body.items.is_empty()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn subshell_and_brace_group() {
        let p = parse_unwrap("(cd /tmp; ls)");
        assert!(matches!(
            &p.items[0].and_or.first.commands[0].kind,
            CommandKind::Subshell(_)
        ));
        let p = parse_unwrap("{ cd /tmp; ls; }");
        assert!(matches!(
            &p.items[0].and_or.first.commands[0].kind,
            CommandKind::BraceGroup(_)
        ));
    }

    #[test]
    fn function_definition() {
        let p = parse_unwrap("greet() { echo hi; }");
        match &p.items[0].and_or.first.commands[0].kind {
            CommandKind::FunctionDef { name, body } => {
                assert_eq!(name, "greet");
                assert!(matches!(body.kind, CommandKind::BraceGroup(_)));
            }
            other => panic!("{other:?}"),
        }
        roundtrip("greet() { echo hi; }");
    }

    #[test]
    fn compound_redirects() {
        let p = parse_unwrap("while read l; do echo $l; done <input >output");
        let cmd = &p.items[0].and_or.first.commands[0];
        assert_eq!(cmd.redirects.len(), 2);
    }

    #[test]
    fn tilde_words() {
        let p = parse_unwrap("ls ~ ~/src ~alice/doc x~y");
        let sc = first_simple(&p);
        assert!(matches!(sc.words[1].parts[0], WordPart::Tilde(None)));
        assert!(matches!(sc.words[2].parts[0], WordPart::Tilde(None)));
        assert!(matches!(sc.words[3].parts[0], WordPart::Tilde(Some(_))));
        assert!(sc.words[4].as_literal() == Some("x~y"));
    }

    #[test]
    fn comments_ignored() {
        let p = parse_unwrap("echo a # trailing comment\necho b");
        assert_eq!(p.items.len(), 2);
        // `#` mid-word is not a comment.
        let p = parse_unwrap("echo a#b");
        assert_eq!(first_simple(&p).words[1].as_literal(), Some("a#b"));
    }

    #[test]
    fn line_continuation() {
        let p = parse_unwrap("echo a \\\n b");
        assert_eq!(first_simple(&p).words.len(), 3);
        let p = parse_unwrap("echo ab\\\ncd");
        assert_eq!(first_simple(&p).words[1].as_literal(), Some("abcd"));
    }

    #[test]
    fn reserved_words_only_in_command_position() {
        let p = parse_unwrap("echo if then fi");
        assert_eq!(first_simple(&p).words.len(), 4);
    }

    #[test]
    fn quoted_reserved_word_is_not_reserved() {
        let p = parse_unwrap(r"\if x");
        let sc = first_simple(&p);
        assert_eq!(sc.words.len(), 2);
    }

    #[test]
    fn the_spell_pipeline_parses() {
        let src = "cat $FILES | tr A-Z a-z | tr -cs A-Za-z '\\n' | sort -u | comm -13 $DICT -";
        let p = parse_unwrap(src);
        assert_eq!(p.items[0].and_or.first.commands.len(), 5);
        roundtrip(src);
    }

    #[test]
    fn the_temperature_pipeline_parses() {
        let src = "cut -c 89-92 | grep -v 999 | sort -rn | head -n1";
        let p = parse_unwrap(src);
        assert_eq!(p.items[0].and_or.first.commands.len(), 4);
        roundtrip(src);
    }

    #[test]
    fn syntax_errors_are_reported() {
        for bad in [
            "echo )",
            "|",
            "a | | b",
            "if x; then y",
            "while x do done",
            "case x in a) b",
            "'unterminated",
            "\"unterminated",
            "echo ${x",
            "a &&",
            "( echo a",
        ] {
            assert!(parse(bad).is_err(), "expected error for `{bad}`");
        }
    }

    #[test]
    fn error_positions_are_plausible() {
        let err = parse("echo hi\necho )").unwrap_err();
        let msg = err.display_with_source("echo hi\necho )");
        assert!(msg.contains("line 2"), "{msg}");
    }

    #[test]
    fn roundtrip_corpus() {
        for src in [
            "echo hello",
            "a=1 b=2 cmd x y",
            "cat <f | sort >g 2>&1",
            "if true; then echo y; else echo n; fi",
            "for i in 1 2 3; do echo $i; done",
            "while :; do break; done",
            "case $1 in -v) v=1;; --*) echo long;; *) usage;; esac",
            "f() ( cd /; ls )",
            "echo \"a $b c\" 'd e' f\\ g",
            "x=$(date) y=`hostname` echo $x$y",
            "echo $((x * (y + 1)))",
            "echo ${PATH:+nonempty} ${HOME:-/root} ${0##*/}",
            "! grep x f && echo absent || echo present",
            "(a; b) & { c; d; }",
            "cmd ~alice/file ~/other",
        ] {
            roundtrip(src);
        }
    }

    #[test]
    fn unparse_fixpoint() {
        for src in [
            "echo a | tee f &",
            "if a; then b; fi >log",
            "cat <<X\nbody $v\nX\n",
            "for x in \"$@\"; do echo \"$x\"; done",
        ] {
            let once = unparse(&parse_unwrap(src));
            let twice = unparse(&parse_unwrap(&once));
            assert_eq!(once, twice, "fixpoint failed for `{src}`");
        }
    }

    #[test]
    fn spans_cover_source() {
        let src = "echo first; echo second";
        let p = parse_unwrap(src);
        let mut spans = Vec::new();
        visit::walk_commands(&p, &mut |c| spans.push(c.span));
        assert_eq!(spans.len(), 2);
        assert_eq!(&src[spans[0].start..spans[0].end], "echo first");
        assert_eq!(&src[spans[1].start..spans[1].end], "echo second");
    }

    #[test]
    fn double_quoted_internal_structure() {
        let p = parse_unwrap(r#"echo "pre $x $(cmd) $((1+1)) post""#);
        let sc = first_simple(&p);
        match &sc.words[1].parts[0] {
            WordPart::DoubleQuoted(parts) => {
                assert!(parts.iter().any(|p| matches!(p, WordPart::Param(_))));
                assert!(parts.iter().any(|p| matches!(p, WordPart::CmdSubst(_))));
                assert!(parts.iter().any(|p| matches!(p, WordPart::Arith(_))));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn escaped_dollar_in_double_quotes() {
        let p = parse_unwrap(r#"echo "\$HOME""#);
        let sc = first_simple(&p);
        assert!(!sc.words[1].has_expansion());
    }

    #[test]
    fn multiline_script() {
        let src = "\
FILES=\"$@\"
cat $FILES | tr A-Z a-z |
tr -cs A-Za-z '\\n' | sort -u | comm -13 $DICT -
";
        let p = parse_unwrap(src);
        assert_eq!(p.items.len(), 2);
        // Pipe at end of line continues the pipeline.
        assert_eq!(p.items[1].and_or.first.commands.len(), 5);
    }
}
