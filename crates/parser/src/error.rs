//! Parse errors with source positions.

use jash_ast::span::LineMap;
use std::fmt;

/// A syntax error produced by the lexer or parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of what went wrong.
    pub message: String,
    /// Byte offset into the source where the error was detected.
    pub offset: usize,
}

impl ParseError {
    /// Creates an error at `offset`.
    pub fn new(message: impl Into<String>, offset: usize) -> Self {
        ParseError {
            message: message.into(),
            offset,
        }
    }

    /// Formats the error with 1-based line/column resolved against `source`.
    pub fn display_with_source(&self, source: &str) -> String {
        let (line, col) = LineMap::new(source).position(self.offset.min(source.len()));
        format!("syntax error at line {line}, column {col}: {}", self.message)
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "syntax error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Result alias for parser APIs.
pub type Result<T> = std::result::Result<T, ParseError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = ParseError::new("unexpected `)`", 7);
        assert!(e.to_string().contains("byte 7"));
        assert!(e.to_string().contains("unexpected `)`"));
    }

    #[test]
    fn display_with_source_resolves_line() {
        let src = "echo a\necho )";
        let e = ParseError::new("unexpected `)`", 12);
        let s = e.display_with_source(src);
        assert!(s.contains("line 2"), "{s}");
    }
}
