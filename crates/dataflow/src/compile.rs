//! Compiling expanded shell pipelines into dataflow graphs.
//!
//! The input is a *fully expanded* pipeline — word expansion has already
//! happened (in the JIT, against live shell state), so commands are plain
//! argv vectors and redirect targets are concrete paths. This is exactly
//! the hand-off point the paper describes for Jash: interpretation handles
//! the dynamic features, then "the core analysis and transformation
//! infrastructure" takes over.

use crate::graph::{Dfg, NodeId, NodeKind};
use jash_spec::{ParallelClass, Registry};
use std::fmt;

/// A pipeline stage after word expansion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExpandedCommand {
    /// Command name.
    pub name: String,
    /// Arguments (no name).
    pub args: Vec<String>,
    /// `< path` redirect, already resolved to an absolute path.
    pub stdin_redirect: Option<String>,
    /// `> path` / `>> path` redirect.
    pub stdout_redirect: Option<(String, bool)>,
}

impl ExpandedCommand {
    /// A stage with no redirects.
    pub fn new(name: impl Into<String>, args: &[&str]) -> Self {
        ExpandedCommand {
            name: name.into(),
            args: args.iter().map(|s| s.to_string()).collect(),
            stdin_redirect: None,
            stdout_redirect: None,
        }
    }
}

/// A dataflow region: a pipeline plus its boundary bindings.
#[derive(Debug, Clone, Default)]
pub struct Region {
    /// The stages, in pipe order.
    pub commands: Vec<ExpandedCommand>,
}

/// Why a pipeline cannot become a dataflow graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// No specification is registered for the command.
    UnknownCommand(String),
    /// The command's spec says it touches external state.
    SideEffectful(String),
    /// A mid-pipeline stage carries a redirect we cannot model.
    UnsupportedShape(String),
    /// The region reads interactive stdin, which the optimizer leaves to
    /// the interpreter.
    NeedsInteractiveStdin,
    /// Empty region.
    Empty,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::UnknownCommand(n) => write!(f, "no specification for `{n}`"),
            CompileError::SideEffectful(n) => write!(f, "`{n}` is side-effectful"),
            CompileError::UnsupportedShape(m) => write!(f, "unsupported shape: {m}"),
            CompileError::NeedsInteractiveStdin => {
                write!(f, "region reads interactive stdin")
            }
            CompileError::Empty => write!(f, "empty region"),
        }
    }
}

impl std::error::Error for CompileError {}

/// The compiled region: graph plus the sink node carrying final output.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// The graph.
    pub dfg: Dfg,
    /// Node whose input edge carries the region's stdout (a `WriteFile` or
    /// `Discard` node added by the compiler when the script redirects; when
    /// `None` the final command's stdout is the region's observable
    /// output and the executor captures it).
    pub capture_from: Option<NodeId>,
}

/// Compiles a region to a dataflow graph, or explains why it cannot be.
pub fn compile(region: &Region, registry: &Registry) -> Result<Compiled, CompileError> {
    if region.commands.is_empty() {
        return Err(CompileError::Empty);
    }
    let mut dfg = Dfg::new();
    let mut prev_out: Option<NodeId> = None;

    for (idx, cmd) in region.commands.iter().enumerate() {
        let first = idx == 0;
        let spec = registry
            .resolve(&cmd.name, &cmd.args)
            .ok_or_else(|| CompileError::UnknownCommand(cmd.name.clone()))?;
        if matches!(spec.class, ParallelClass::SideEffectful) {
            return Err(CompileError::SideEffectful(cmd.name.clone()));
        }
        if !first && cmd.stdin_redirect.is_some() {
            return Err(CompileError::UnsupportedShape(format!(
                "`{}` has a stdin redirect mid-pipeline",
                cmd.name
            )));
        }
        if cmd.stdout_redirect.is_some() && idx + 1 != region.commands.len() {
            return Err(CompileError::UnsupportedShape(format!(
                "`{}` redirects stdout mid-pipeline",
                cmd.name
            )));
        }

        // `cat f1 f2 ...` fuses into the read layer: its output is the
        // ordered concatenation of its operands (PaSh's cat-fusion, the
        // enabler of per-file splits).
        let node = if cmd.name == "cat"
            && !cmd.args.iter().any(|a| a.starts_with('-') && a.len() > 1)
            && (!cmd.args.is_empty() || cmd.stdin_redirect.is_some())
            && !cmd.args.iter().any(|a| a == "-")
        {
            let files: Vec<String> = cmd
                .args
                .iter()
                .cloned()
                .chain(cmd.stdin_redirect.iter().cloned())
                .collect();
            if files.len() == 1 {
                dfg.add_node(NodeKind::ReadFile {
                    path: files[0].clone(),
                })
            } else {
                let merge = dfg.add_node(NodeKind::Merge {
                    agg: jash_spec::Aggregator::Concat,
                });
                for f in files {
                    let r = dfg.add_node(NodeKind::ReadFile { path: f });
                    dfg.connect(r, merge);
                }
                merge
            }
        } else {
            // Normalize a lone positional input file into a stdin edge for
            // commands whose output is identical either way.
            let mut args = cmd.args.clone();
            let mut stdin_file = cmd.stdin_redirect.clone();
            if stdin_file.is_none() && spec.input_args.len() == 1 && normalizable(&cmd.name) {
                let i = spec.input_args[0];
                if args.get(i).map(|a| a != "-").unwrap_or(false) {
                    stdin_file = Some(args.remove(i));
                }
            }
            let spec = registry
                .resolve(&cmd.name, &args)
                .ok_or_else(|| CompileError::UnknownCommand(cmd.name.clone()))?;
            let reads_stdin = spec.reads_stdin || args.iter().any(|a| a == "-");

            let n = dfg.add_node(NodeKind::Command {
                name: cmd.name.clone(),
                args,
                spec,
            });
            if let Some(path) = stdin_file {
                let r = dfg.add_node(NodeKind::ReadFile { path });
                dfg.connect(r, n);
            } else if first && reads_stdin {
                return Err(CompileError::NeedsInteractiveStdin);
            } else if let Some(prev) = prev_out {
                if reads_stdin {
                    dfg.connect(prev, n);
                } else {
                    // The stage ignores the pipe; drain it.
                    let d = dfg.add_node(NodeKind::Discard);
                    dfg.connect(prev, d);
                }
            }
            n
        };
        if !first {
            // `cat`-fusion nodes mid-pipeline (`x | cat f`) ignore the
            // incoming pipe; drain it so the upstream stage can finish.
            if matches!(
                dfg.node(node).kind,
                NodeKind::ReadFile { .. } | NodeKind::Merge { .. }
            ) {
                if let Some(prev) = prev_out {
                    let d = dfg.add_node(NodeKind::Discard);
                    dfg.connect(prev, d);
                }
            }
        }
        prev_out = Some(node);
    }

    // Bind the region's stdout.
    let last_cmd = region.commands.last().expect("nonempty");
    let capture_from = match &last_cmd.stdout_redirect {
        Some((path, append)) => {
            let w = dfg.add_node(NodeKind::WriteFile {
                path: path.clone(),
                append: *append,
            });
            dfg.connect(prev_out.expect("at least one node"), w);
            Some(w)
        }
        None => None,
    };

    dfg.validate()
        .map_err(CompileError::UnsupportedShape)?;
    Ok(Compiled { dfg, capture_from })
}

/// Commands whose output is unchanged when a single file operand moves to
/// stdin.
fn normalizable(name: &str) -> bool {
    matches!(
        name,
        "sort" | "grep" | "tr" | "cut" | "uniq" | "head" | "tail" | "sed" | "rev" | "fold"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use jash_spec::Registry;

    fn reg() -> Registry {
        Registry::builtin()
    }

    fn region(cmds: Vec<ExpandedCommand>) -> Region {
        Region { commands: cmds }
    }

    #[test]
    fn simple_pipeline_compiles() {
        let mut first = ExpandedCommand::new("tr", &["A-Z", "a-z"]);
        first.stdin_redirect = Some("/in".into());
        let mut last = ExpandedCommand::new("sort", &[]);
        last.stdout_redirect = Some(("/out".into(), false));
        let c = compile(&region(vec![first, last]), &reg()).unwrap();
        c.dfg.validate().unwrap();
        assert_eq!(c.dfg.command_nodes().len(), 2);
        assert!(c.capture_from.is_some());
    }

    #[test]
    fn cat_fuses_to_reads() {
        let cat = ExpandedCommand::new("cat", &["/f1", "/f2"]);
        let wc = ExpandedCommand::new("wc", &["-l"]);
        let c = compile(&region(vec![cat, wc]), &reg()).unwrap();
        // No `cat` command node; two reads + concat merge + wc.
        assert_eq!(c.dfg.command_nodes().len(), 1);
        let reads = c
            .dfg
            .node_ids()
            .filter(|n| matches!(c.dfg.node(*n).kind, NodeKind::ReadFile { .. }))
            .count();
        assert_eq!(reads, 2);
    }

    #[test]
    fn single_file_cat_is_one_read() {
        let cat = ExpandedCommand::new("cat", &["/only"]);
        let grep = ExpandedCommand::new("grep", &["x"]);
        let c = compile(&region(vec![cat, grep]), &reg()).unwrap();
        let reads = c
            .dfg
            .node_ids()
            .filter(|n| matches!(c.dfg.node(*n).kind, NodeKind::ReadFile { .. }))
            .count();
        assert_eq!(reads, 1);
        assert!(c
            .dfg
            .node_ids()
            .all(|n| !matches!(c.dfg.node(n).kind, NodeKind::Merge { .. })));
    }

    #[test]
    fn sort_file_arg_normalized_to_read() {
        let sort = ExpandedCommand::new("sort", &["-n", "/data"]);
        let c = compile(&region(vec![sort]), &reg()).unwrap();
        let reads = c
            .dfg
            .node_ids()
            .filter(|n| matches!(c.dfg.node(*n).kind, NodeKind::ReadFile { .. }))
            .count();
        assert_eq!(reads, 1);
        // The sort node's args no longer include the file.
        let cmd = c.dfg.command_nodes()[0];
        match &c.dfg.node(cmd).kind {
            NodeKind::Command { args, .. } => assert_eq!(args, &vec!["-n".to_string()]),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unknown_command_rejected() {
        let bad = ExpandedCommand::new("no-such-cmd", &[]);
        assert_eq!(
            compile(&region(vec![bad]), &reg()).unwrap_err(),
            CompileError::UnknownCommand("no-such-cmd".into())
        );
    }

    #[test]
    fn side_effectful_rejected() {
        let mut rm = ExpandedCommand::new("rm", &["/x"]);
        rm.stdin_redirect = Some("/in".into());
        assert!(matches!(
            compile(&region(vec![rm]), &reg()).unwrap_err(),
            CompileError::SideEffectful(_)
        ));
    }

    #[test]
    fn interactive_stdin_rejected() {
        let sort = ExpandedCommand::new("sort", &[]);
        assert_eq!(
            compile(&region(vec![sort]), &reg()).unwrap_err(),
            CompileError::NeedsInteractiveStdin
        );
    }

    #[test]
    fn the_spell_pipeline_compiles() {
        // cat F1 F2 | tr A-Z a-z | tr -cs A-Za-z '\n' | sort -u
        //   | comm -13 /dict -
        let cmds = vec![
            ExpandedCommand::new("cat", &["/f1", "/f2"]),
            ExpandedCommand::new("tr", &["A-Z", "a-z"]),
            ExpandedCommand::new("tr", &["-cs", "A-Za-z", "\\n"]),
            ExpandedCommand::new("sort", &["-u"]),
            ExpandedCommand::new("comm", &["-13", "/dict", "-"]),
        ];
        let c = compile(&region(cmds), &reg()).unwrap();
        assert_eq!(c.dfg.command_nodes().len(), 4);
        c.dfg.validate().unwrap();
    }

    #[test]
    fn the_temperature_pipeline_compiles() {
        let mut cut = ExpandedCommand::new("cut", &["-c", "89-92"]);
        cut.stdin_redirect = Some("/noaa".into());
        let cmds = vec![
            cut,
            ExpandedCommand::new("grep", &["-v", "999"]),
            ExpandedCommand::new("sort", &["-rn"]),
            ExpandedCommand::new("head", &["-n1"]),
        ];
        let c = compile(&region(cmds), &reg()).unwrap();
        assert_eq!(c.dfg.command_nodes().len(), 4);
    }

    #[test]
    fn mid_pipeline_redirect_rejected() {
        let mut a = ExpandedCommand::new("tr", &["a", "b"]);
        a.stdin_redirect = Some("/in".into());
        a.stdout_redirect = Some(("/mid".into(), false));
        let b = ExpandedCommand::new("sort", &[]);
        assert!(matches!(
            compile(&region(vec![a, b]), &reg()).unwrap_err(),
            CompileError::UnsupportedShape(_)
        ));
    }
}
