//! The order-aware dataflow model: shell pipelines ⇄ dataflow graphs,
//! plus the parallelizing rewrite system (paper E2, building on Handa et
//! al.'s formal model).
//!
//! The flow is:
//!
//! 1. the JIT expands a pipeline's words against live shell state and
//!    produces a [`Region`] of [`ExpandedCommand`]s;
//! 2. [`compile()`](compile::compile) turns the region into a [`Dfg`] (or explains why it
//!    cannot — unknown spec, side effects, interactive stdin);
//! 3. rewrites ([`parallelize_node`], [`parallelize_all`],
//!    [`fuse_merge_split`]) restructure the graph while preserving the
//!    sequential output byte-for-byte;
//! 4. `jash-exec` runs the graph; [`emit::to_shell`] renders linear
//!    graphs back to shell syntax for inspection.
//!
//! # Examples
//!
//! ```
//! use jash_dataflow::{compile, ExpandedCommand, Region, parallelize_all};
//! use jash_spec::Registry;
//!
//! let region = Region {
//!     commands: vec![
//!         ExpandedCommand::new("cat", &["/a.txt", "/b.txt"]),
//!         ExpandedCommand::new("tr", &["A-Z", "a-z"]),
//!         ExpandedCommand::new("sort", &[]),
//!     ],
//! };
//! let mut compiled = compile(&region, &Registry::builtin()).unwrap();
//! let replicated = parallelize_all(&mut compiled.dfg, 4);
//! assert_eq!(replicated, 2); // tr and sort
//! compiled.dfg.validate().unwrap();
//! ```

pub mod compile;
pub mod emit;
pub mod graph;
pub mod rewrite;

pub use compile::{compile, Compiled, CompileError, ExpandedCommand, Region};
pub use emit::{explain, to_shell};
pub use graph::{Dfg, Edge, EdgeId, FusedStage, Node, NodeId, NodeKind};
pub use rewrite::{
    fuse_kernels, fuse_merge_split, fusible_runs, is_live, is_parallelizable, parallelize_all,
    parallelize_node,
};
