//! Graph rewrites: the parallelizing transformations.
//!
//! The two core rewrites (both from the PaSh playbook, paper E2):
//!
//! * [`parallelize_node`] — replace a splittable command node with
//!   `split → k clones → merge(agg)`;
//! * [`fuse_merge_split`] — cancel a `merge(concat)` feeding a `split`,
//!   wiring the k upstream branches straight into the k downstream
//!   branches, so a chain of stateless stages parallelizes end-to-end with
//!   a single split at the head and a single aggregate at the tail.
//!
//! Rewrites preserve the order-aware semantics: every aggregator
//! reconstructs exactly the sequential output.

use crate::graph::{Dfg, NodeId, NodeKind};
use jash_spec::Aggregator;

/// Whether the node is a command that may be replicated.
pub fn is_parallelizable(dfg: &Dfg, n: NodeId) -> bool {
    match &dfg.node(n).kind {
        NodeKind::Command { spec, .. } => {
            spec.class.is_splittable()
                && dfg.node(n).inputs.len() == 1
                && dfg.node(n).outputs.len() <= 1
                // Extra declared outputs (tee) would be written k times.
                && spec.output_files.is_empty()
        }
        _ => false,
    }
}

/// Replaces command node `n` with `split → width copies → merge`.
///
/// Returns the new merge node, or `None` when the node is not
/// parallelizable or `width < 2`.
pub fn parallelize_node(dfg: &mut Dfg, n: NodeId, width: usize) -> Option<NodeId> {
    if width < 2 || !is_parallelizable(dfg, n) {
        return None;
    }
    let (name, args, spec) = match &dfg.node(n).kind {
        NodeKind::Command { name, args, spec } => (name.clone(), args.clone(), spec.clone()),
        _ => return None,
    };
    let agg = spec.class.aggregator()?;

    let in_edge = dfg.node(n).inputs[0];
    let out_edge = dfg.node(n).outputs.first().copied();

    let split = dfg.add_node(NodeKind::Split { width });
    let merge = dfg.add_node(NodeKind::Merge { agg });

    // The old node becomes the first clone (keeps ids stable and the old
    // edges reusable).
    dfg.retarget_consumer(in_edge, split);
    dfg.connect(split, n);
    if let Some(e) = out_edge {
        dfg.retarget_producer(e, merge);
    }
    dfg.connect(n, merge);
    for _ in 1..width {
        let clone = dfg.add_node(NodeKind::Command {
            name: name.clone(),
            args: args.clone(),
            spec: spec.clone(),
        });
        dfg.connect(split, clone);
        dfg.connect(clone, merge);
    }
    Some(merge)
}

/// Fuses every `merge(concat) → split(k)` pair whose widths match,
/// connecting the merge's inputs directly to the split's consumers in
/// order. Returns the number of pairs fused.
pub fn fuse_merge_split(dfg: &mut Dfg) -> usize {
    let mut fused = 0;
    loop {
        let Some((merge, split)) = find_fusable(dfg) else {
            return fused;
        };
        let in_edges: Vec<_> = dfg.node(merge).inputs.clone();
        let out_edges: Vec<_> = dfg.node(split).outputs.clone();
        debug_assert_eq!(in_edges.len(), out_edges.len());
        for (ie, oe) in in_edges.iter().zip(out_edges.iter()) {
            let consumer = dfg.edge(*oe).to;
            // Re-point the upstream edge at the downstream consumer and
            // drop the split's edge from the consumer's input list,
            // preserving that input's position.
            let pos = dfg
                .node(consumer)
                .inputs
                .iter()
                .position(|e| e == oe)
                .expect("consumer lists the edge");
            dfg.node_mut(consumer).inputs[pos] = *ie;
            dfg.edges[ie.0].to = consumer;
            dfg.node_mut(merge).inputs.clear();
        }
        // Detach the merge→split edge and neutralize both nodes (arena
        // nodes are cheap; leaving tombstones keeps NodeIds stable).
        dfg.node_mut(merge).inputs.clear();
        dfg.node_mut(merge).outputs.clear();
        dfg.node_mut(split).inputs.clear();
        dfg.node_mut(split).outputs.clear();
        tombstone(dfg, merge);
        tombstone(dfg, split);
        fused += 1;
    }
}

fn tombstone(dfg: &mut Dfg, n: NodeId) {
    dfg.node_mut(n).kind = NodeKind::Discard;
    // A Discard with no inputs is pruned by the executor; mark it
    // explicitly disconnected.
}

fn find_fusable(dfg: &Dfg) -> Option<(NodeId, NodeId)> {
    for n in dfg.node_ids() {
        if let NodeKind::Merge {
            agg: Aggregator::Concat,
        } = dfg.node(n).kind
        {
            if dfg.node(n).outputs.len() != 1 {
                continue;
            }
            let out = dfg.edge(dfg.node(n).outputs[0]).to;
            if let NodeKind::Split { width } = dfg.node(out).kind {
                if width == dfg.node(n).inputs.len() {
                    return Some((n, out));
                }
            }
        }
    }
    None
}

/// Whether the node participates in execution.
///
/// Rewrites leave fully disconnected `Discard` tombstones behind (node
/// ids stay valid); everything else is live — including port-less
/// commands like a bare `echo`, which produce output without any edges.
pub fn is_live(dfg: &Dfg, n: NodeId) -> bool {
    !(matches!(dfg.node(n).kind, NodeKind::Discard)
        && dfg.node(n).inputs.is_empty()
        && dfg.node(n).outputs.is_empty())
}

/// Parallelizes every eligible node in the graph at `width`, then fuses
/// adjacent merge/split pairs. Returns how many command nodes were
/// replicated.
pub fn parallelize_all(dfg: &mut Dfg, width: usize) -> usize {
    let mut count = 0;
    for n in dfg.command_nodes() {
        if parallelize_node(dfg, n, width).is_some() {
            count += 1;
        }
    }
    if count > 0 {
        fuse_merge_split(dfg);
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{compile, ExpandedCommand, Region};
    use jash_spec::Registry;

    fn spell_dfg() -> Dfg {
        let cmds = vec![
            ExpandedCommand::new("cat", &["/f1", "/f2"]),
            ExpandedCommand::new("tr", &["A-Z", "a-z"]),
            ExpandedCommand::new("sort", &["-u"]),
        ];
        compile(&Region { commands: cmds }, &Registry::builtin())
            .unwrap()
            .dfg
    }

    #[test]
    fn parallelize_single_stateless_node() {
        let mut dfg = spell_dfg();
        let tr = dfg
            .command_nodes()
            .into_iter()
            .find(|n| matches!(&dfg.node(*n).kind, NodeKind::Command { name, .. } if name == "tr"))
            .unwrap();
        let merge = parallelize_node(&mut dfg, tr, 4).unwrap();
        dfg.validate().unwrap();
        assert_eq!(dfg.node(merge).inputs.len(), 4);
        let splits = dfg
            .node_ids()
            .filter(|n| matches!(dfg.node(*n).kind, NodeKind::Split { .. }))
            .count();
        assert_eq!(splits, 1);
        // 4 tr clones total.
        let trs = dfg
            .node_ids()
            .filter(
                |n| matches!(&dfg.node(*n).kind, NodeKind::Command { name, .. } if name == "tr"),
            )
            .count();
        assert_eq!(trs, 4);
    }

    #[test]
    fn head_not_parallelizable() {
        let cmds = vec![
            ExpandedCommand::new("cat", &["/f"]),
            ExpandedCommand::new("head", &["-n1"]),
        ];
        let mut c = compile(&Region { commands: cmds }, &Registry::builtin()).unwrap();
        let head = c.dfg.command_nodes()[0];
        assert!(parallelize_node(&mut c.dfg, head, 4).is_none());
    }

    #[test]
    fn parallelize_all_fuses_chain() {
        let mut dfg = spell_dfg();
        let replicated = parallelize_all(&mut dfg, 3);
        assert_eq!(replicated, 2, "tr and sort both splittable");
        dfg.validate().unwrap();
        // After fusion: one split at head, tr/sort chains of width 3, one
        // merge-sort at the tail, and one concat merge from the cat fusion.
        let live_splits = dfg
            .node_ids()
            .filter(|n| is_live(&dfg, *n) && matches!(dfg.node(*n).kind, NodeKind::Split { .. }))
            .count();
        assert_eq!(live_splits, 1);
        let live_merges: Vec<_> = dfg
            .node_ids()
            .filter(|n| is_live(&dfg, *n) && matches!(dfg.node(*n).kind, NodeKind::Merge { .. }))
            .collect();
        // cat-concat merge + final sort merge; the tr→sort concat/split
        // pair fused away.
        assert_eq!(live_merges.len(), 2);
    }

    #[test]
    fn width_one_is_identity() {
        let mut dfg = spell_dfg();
        let before = dfg.nodes.len();
        assert_eq!(parallelize_all(&mut dfg, 1), 0);
        assert_eq!(dfg.nodes.len(), before);
    }

    #[test]
    fn fused_graph_preserves_branch_order() {
        // Build tr | tr, parallelize both, fuse; the k branches must pair
        // first-with-first (order preservation).
        let cmds = vec![
            ExpandedCommand::new("cat", &["/in"]),
            ExpandedCommand::new("tr", &["a", "b"]),
            ExpandedCommand::new("tr", &["b", "c"]),
        ];
        let mut c = compile(&Region { commands: cmds }, &Registry::builtin()).unwrap();
        parallelize_all(&mut c.dfg, 2);
        c.dfg.validate().unwrap();
        // Find the split; its i-th consumer chain must reach the final
        // merge as input i.
        let split = c
            .dfg
            .node_ids()
            .find(|n| {
                is_live(&c.dfg, *n) && matches!(c.dfg.node(*n).kind, NodeKind::Split { .. })
            })
            .unwrap();
        let final_merge = c
            .dfg
            .node_ids()
            .find(|n| {
                is_live(&c.dfg, *n) && matches!(c.dfg.node(*n).kind, NodeKind::Merge { .. })
            })
            .unwrap();
        for (i, &out) in c.dfg.node(split).outputs.iter().enumerate() {
            // Walk the chain from this branch to the merge.
            let mut cur = c.dfg.edge(out).to;
            let mut last_edge = out;
            loop {
                if cur == final_merge {
                    break;
                }
                last_edge = c.dfg.node(cur).outputs[0];
                cur = c.dfg.edge(last_edge).to;
            }
            let pos = c
                .dfg
                .node(final_merge)
                .inputs
                .iter()
                .position(|e| *e == last_edge)
                .unwrap();
            assert_eq!(pos, i, "branch {i} arrives at merge position {pos}");
        }
    }
}
